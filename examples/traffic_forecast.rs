//! Near-real-time traffic prediction over a road network with changing
//! sensor readings.
//!
//! ```bash
//! cargo run --release --example traffic_forecast
//! ```
//!
//! Road junctions are vertices, road segments are weighted edges (the weight
//! encodes capacity), and each junction's feature vector holds its recent
//! sensor readings. Sensor refreshes arrive as vertex-feature updates and
//! occasional road closures/openings arrive as edge deletions/additions. The
//! workload uses the weighted-sum aggregator (GC-W), the configuration the
//! paper evaluates for edge-weighted graphs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ripple::prelude::*;

fn main() {
    // A sparse, roughly planar-degree road network: 5 000 junctions with an
    // average in-degree of 3.
    let spec = DatasetSpec::custom(5_000, 3.0, 12, 5);
    let graph = spec.generate_weighted(7, true).expect("dataset generation");

    let model = Workload::GcW.build_model(12, 32, 5, 3, 9).expect("model");
    let store = full_inference(&graph, &model).expect("bootstrap");
    let mut engine =
        RippleEngine::new(graph.clone(), model, store, RippleConfig::default()).expect("engine");

    // Simulate 30 seconds of operation: every "second", a burst of sensor
    // refreshes on random junctions plus an occasional closure/re-opening.
    let mut rng = SmallRng::seed_from_u64(123);
    let mut closed: Vec<(VertexId, VertexId, f32)> = Vec::new();
    let mut total_updates = 0usize;
    let mut worst_latency_ms = 0.0f64;
    for second in 0..30 {
        let mut batch = UpdateBatch::new();
        // ~40 sensor refreshes per second.
        for _ in 0..40 {
            let junction = VertexId(rng.gen_range(0..graph.num_vertices() as u32));
            let readings: Vec<f32> = (0..12).map(|_| rng.gen_range(0.0f32..1.0)).collect();
            batch.push(GraphUpdate::update_feature(junction, readings));
        }
        // Every 5 seconds a road closes; closed roads re-open a little later.
        if second % 5 == 0 {
            if let Some((src, dst, w)) = engine
                .graph()
                .iter_edges()
                .nth(rng.gen_range(0..engine.graph().num_edges()))
            {
                batch.push(GraphUpdate::delete_edge(src, dst));
                closed.push((src, dst, w));
            }
        }
        if second % 7 == 6 {
            if let Some((src, dst, w)) = closed.pop() {
                batch.push(GraphUpdate::add_weighted_edge(src, dst, w));
            }
        }

        total_updates += batch.len();
        let stats = engine.process_batch(&batch).expect("batch processing");
        let latency_ms = stats.total_time().as_secs_f64() * 1e3;
        worst_latency_ms = worst_latency_ms.max(latency_ms);
        if second % 10 == 0 {
            println!(
                "t={second:>2}s  {:>3} updates -> {:>5} junction forecasts refreshed in {latency_ms:>8.3} ms",
                stats.batch_size, stats.affected_final
            );
        }
    }

    println!();
    println!(
        "streamed {total_updates} updates over 30 simulated seconds; worst batch latency {worst_latency_ms:.3} ms"
    );
    println!(
        "a signal-control loop polling junction {} currently reads congestion class {}",
        VertexId(100),
        engine.predicted_label(VertexId(100))
    );
}
