//! Distributed serving for a social network that outgrows one machine.
//!
//! ```bash
//! cargo run --release --example social_recommendations
//! ```
//!
//! Friend/follow events arrive as edge additions and deletions; the
//! recommendation model's per-user class must stay fresh. This example runs
//! the same stream through the single-machine engine and the distributed
//! engine on 4 partitions, verifies they agree, and prints the communication
//! volume the distributed deployment would put on the wire — comparing
//! Ripple's delta messages against the recompute baseline's embedding pulls
//! (the paper's ~70x communication argument, Fig 12c).

use ripple::prelude::*;

fn main() {
    // A follower-style graph: 4 000 users, skewed degrees.
    let spec = DatasetSpec::custom(4_000, 10.0, 16, 6);
    let full = spec.generate(77).expect("dataset generation");
    let plan = build_stream(
        &full,
        &StreamConfig {
            holdout_fraction: 0.10,
            total_updates: 400,
            seed: 3,
        },
    )
    .expect("stream construction");
    let model = Workload::GcS.build_model(16, 32, 6, 2, 13).expect("model");
    let store = full_inference(&plan.snapshot, &model).expect("bootstrap");
    let batches = plan.batches(100);

    // Partition the users across 4 workers with the LDG streaming partitioner.
    let partitioning = LdgPartitioner::new()
        .partition(&plan.snapshot, 4)
        .expect("partitioning");
    println!(
        "partitioned {} users into 4 parts (edge cut {:.1}%, balance {:.3})",
        plan.snapshot.num_vertices(),
        partitioning.edge_cut_fraction(&plan.snapshot) * 100.0,
        partitioning.balance_factor()
    );

    // Distributed Ripple and distributed RC over the same stream.
    let network = NetworkModel::ten_gbe();
    let mut dist_ripple = DistRippleEngine::new(
        &plan.snapshot,
        model.clone(),
        &store,
        partitioning.clone(),
        network,
    )
    .expect("dist ripple");
    let mut dist_rc =
        DistRecomputeEngine::new(&plan.snapshot, model.clone(), &store, partitioning, network)
            .expect("dist rc");
    let mut single =
        RippleEngine::new(plan.snapshot.clone(), model, store, RippleConfig::default())
            .expect("single-machine engine");

    let mut ripple_stats = Vec::new();
    let mut rc_stats = Vec::new();
    for batch in &batches {
        ripple_stats.push(dist_ripple.process_batch(batch).expect("dist ripple batch"));
        rc_stats.push(dist_rc.process_batch(batch).expect("dist rc batch"));
        single.process_batch(batch).expect("single batch");
    }

    // The distributed result matches the single-machine result exactly (up to
    // float accumulation order).
    let diff = dist_ripple
        .gather_store()
        .max_final_diff(single.store())
        .expect("comparable stores");
    println!("max |distributed - single machine| final embeddings: {diff:.2e}");

    let ripple_summary = DistSummary::from_stats("dist-ripple", 4, &ripple_stats);
    let rc_summary = DistSummary::from_stats("dist-rc", 4, &rc_stats);
    println!("{ripple_summary}");
    println!("{rc_summary}");
    let ratio = rc_summary.total_bytes as f64 / ripple_summary.total_bytes.max(1) as f64;
    println!(
        "distributed RC moves {ratio:.1}x more bytes than Ripple's delta messages for this stream"
    );
}
