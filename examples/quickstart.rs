//! Quickstart: bootstrap a graph, stream updates, read fresh predictions.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! This walks through the full Ripple pipeline on a small synthetic graph:
//! generate a dataset, pre-compute all layer embeddings (the bootstrap step),
//! wrap them in the incremental engine, stream a few batches of updates, and
//! compare the incremental result against full re-inference to show it is
//! exact.

use ripple::prelude::*;

fn main() {
    // 1. A synthetic dataset: 2 000 vertices, average in-degree 6, 32-wide
    //    features, 8 output classes.
    let spec = DatasetSpec::custom(2_000, 6.0, 32, 8);
    let full_graph = spec.generate(42).expect("dataset generation");

    // 2. Hold out 10% of edges as future additions; the rest is the snapshot.
    let plan = build_stream(
        &full_graph,
        &StreamConfig {
            holdout_fraction: 0.10,
            total_updates: 300,
            seed: 7,
        },
    )
    .expect("stream construction");
    println!(
        "snapshot: {} vertices, {} edges; stream: {} updates",
        plan.snapshot.num_vertices(),
        plan.snapshot.num_edges(),
        plan.updates.len()
    );

    // 3. A 2-layer GraphSAGE-with-sum model and the bootstrap inference pass.
    let model = Workload::GsS
        .build_model(32, 64, 8, 2, 1)
        .expect("model construction");
    let store = full_inference(&plan.snapshot, &model).expect("bootstrap inference");
    println!(
        "bootstrapped {} layers of embeddings ({} MiB incl. aggregates)",
        store.num_layers(),
        store.memory_bytes() / (1024 * 1024)
    );

    // 4. Stream updates through the incremental engine in batches of 50.
    let mut engine = RippleEngine::new(
        plan.snapshot.clone(),
        model.clone(),
        store,
        RippleConfig::default(),
    )
    .expect("engine construction");
    let batches = plan.batches(50);
    let mut runner = StreamRunner::new();
    runner
        .run(&mut engine, &batches)
        .expect("stream processing");
    let summary = runner.summary("ripple");
    println!("{summary}");

    // 5. The incremental embeddings are exact: compare against full
    //    re-inference over the final graph.
    let mut final_graph = plan.snapshot.clone();
    for batch in &batches {
        final_graph.apply_batch(batch).expect("reference apply");
    }
    let reference = full_inference(&final_graph, &model).expect("reference inference");
    let diff = engine
        .store()
        .max_final_diff(&reference)
        .expect("comparable stores");
    println!("max |incremental - full recompute| over final-layer embeddings: {diff:.2e}");

    // 6. Trigger-based serving: read a prediction straight from the store.
    let vertex = VertexId(17);
    println!(
        "current predicted class of {vertex}: {}",
        engine.predicted_label(vertex)
    );
}
