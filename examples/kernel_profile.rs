//! Scratch profiling harness for the batched bootstrap path (not shipped in
//! docs; run with `cargo run --release --example kernel_profile`).
use ripple::gnn::layer_wise::{full_inference, full_inference_per_vertex};
use ripple::prelude::*;
use std::time::Instant;

fn time(label: &str, reps: u32, mut f: impl FnMut()) {
    f();
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    println!(
        "{label}: {:.3} ms",
        start.elapsed().as_secs_f64() * 1e3 / f64::from(reps)
    );
}

fn main() {
    for dim in [64usize, 256] {
        let graph = DatasetSpec::custom(2_000, 8.0, 16, 8).generate(42).unwrap();
        let model = GnnModel::new(LayerKind::GraphConv, Aggregator::Sum, &[16, dim, 8], 7).unwrap();
        println!("--- hidden {dim} ---");
        time("per_vertex", 20, || {
            let _ = std::hint::black_box(full_inference_per_vertex(&graph, &model).unwrap());
        });
        time("batched   ", 20, || {
            let _ = std::hint::black_box(full_inference(&graph, &model).unwrap());
        });
        // aggregation-only cost: model with 1-wide output? approximate by timing raw aggregation loop
        let store = full_inference(&graph, &model).unwrap();
        time("agg_only h1", 20, || {
            let mut acc = vec![0.0f32; 16];
            for v in 0..2000u32 {
                let vid = VertexId(v);
                Aggregator::Sum.raw_aggregate_into(
                    store.embeddings(0),
                    graph.in_neighbors(vid),
                    graph.in_weights(vid),
                    &mut acc,
                );
            }
            std::hint::black_box(acc[0]);
        });
        time("agg_only h2", 20, || {
            let mut acc = vec![0.0f32; dim];
            for v in 0..2000u32 {
                let vid = VertexId(v);
                Aggregator::Sum.raw_aggregate_into(
                    store.embeddings(1),
                    graph.in_neighbors(vid),
                    graph.in_weights(vid),
                    &mut acc,
                );
            }
            std::hint::black_box(acc[0]);
        });
        let w1 = ripple::tensor::init::uniform(16, dim, -1.0, 1.0, 3);
        let w2 = ripple::tensor::init::uniform(dim, 8, -1.0, 1.0, 4);
        let mut out = ripple::tensor::Matrix::default();
        time("gemm h1   ", 20, || {
            ripple::tensor::ops::gemm_into(store.embeddings(0), &w1, &mut out).unwrap();
        });
        let mut out2 = ripple::tensor::Matrix::default();
        time("gemm h2   ", 20, || {
            ripple::tensor::ops::gemm_into(store.embeddings(1), &w2, &mut out2).unwrap();
        });
        let mut rout = vec![0.0f32; dim];
        time("matvec h1 ", 20, || {
            for v in 0..2000 {
                ripple::tensor::ops::row_matmul_into(store.embeddings(0).row(v), &w1, &mut rout)
                    .unwrap();
            }
        });
        let mut rout2 = vec![0.0f32; 8];
        time("matvec h2 ", 20, || {
            for v in 0..2000 {
                ripple::tensor::ops::row_matmul_into(store.embeddings(1).row(v), &w2, &mut rout2)
                    .unwrap();
            }
        });
    }
}
