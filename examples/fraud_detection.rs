//! Trigger-based fraud detection on a streaming transaction graph.
//!
//! ```bash
//! cargo run --release --example fraud_detection
//! ```
//!
//! The paper's motivating fintech scenario: accounts are vertices, transfers
//! are directed edges, and account attributes (balances, activity counters)
//! are vertex features. New transactions arrive continuously as edge
//! additions and feature updates; the application must be *notified* whenever
//! the predicted class (legitimate / suspicious / ...) of any account changes
//! — the trigger-based serving model Ripple targets.

use ripple::prelude::*;
use std::collections::HashMap;

fn main() {
    // A scale-free "account" graph: most accounts transact with a few peers,
    // a handful (merchants, exchanges) with thousands.
    let spec = DatasetSpec::custom(3_000, 8.0, 24, 4);
    let full = spec.generate(2024).expect("dataset generation");
    let plan = build_stream(
        &full,
        &StreamConfig {
            holdout_fraction: 0.15,
            total_updates: 600,
            seed: 99,
        },
    )
    .expect("stream construction");

    // A 2-layer GraphConv-with-sum classifier over 4 risk classes.
    let model = Workload::GcS.build_model(24, 48, 4, 2, 5).expect("model");
    let store = full_inference(&plan.snapshot, &model).expect("bootstrap");
    let baseline_labels = store.predicted_labels();

    let batches = plan.batches(20);
    let mut engine =
        RippleEngine::new(plan.snapshot, model, store, RippleConfig::default()).expect("engine");

    // Process transactions in small batches (low latency matters more than
    // throughput for fraud) and raise an alert whenever a vertex's predicted
    // class flips into class 3 ("suspicious" in this synthetic labelling).
    const SUSPICIOUS: usize = 3;
    let mut alerts: HashMap<VertexId, usize> = HashMap::new();
    let mut previous = baseline_labels;
    for (i, batch) in batches.iter().enumerate() {
        let stats = engine.process_batch(batch).expect("batch processing");
        // Only the affected vertices can have changed — a real deployment
        // would get exactly those from the engine; here we rescan labels to
        // keep the example short.
        let current = engine.store().predicted_labels();
        let mut new_alerts = 0;
        for (v, (&old, &new)) in previous.iter().zip(current.iter()).enumerate() {
            if old != new && new == SUSPICIOUS {
                *alerts.entry(VertexId(v as u32)).or_default() += 1;
                new_alerts += 1;
            }
        }
        previous = current;
        println!(
            "batch {i:>3}: {:>3} updates, {:>5} vertices refreshed in {:>8.3} ms, {new_alerts} new alerts",
            stats.batch_size,
            stats.affected_final,
            stats.total_time().as_secs_f64() * 1e3
        );
    }

    println!();
    println!(
        "{} accounts were flagged suspicious at least once while streaming {} transactions",
        alerts.len(),
        plan.updates.len()
    );
    let mut flagged: Vec<_> = alerts.into_iter().collect();
    flagged.sort_by_key(|(_, count)| std::cmp::Reverse(*count));
    for (account, count) in flagged.into_iter().take(5) {
        println!("  account {account}: flipped to suspicious {count} time(s)");
    }
}
