//! Online serving walkthrough: queries against versioned snapshots while a
//! stream of graph updates propagates through the incremental engine.
//!
//! A fraud-detection-style deployment: account vertices with transaction
//! edges stream in continuously; dashboards and checkout flows read risk
//! labels concurrently and must never block on (or observe half of) an
//! in-flight propagation.
//!
//! Run with `cargo run --release --example online_serving`.

use ripple::prelude::*;
use ripple::serve::ServeError;

fn main() -> Result<(), ServeError> {
    // Bootstrap: synthetic transaction graph + pre-computed embeddings.
    let spec = DatasetSpec::custom(1_500, 6.0, 16, 4);
    let full = spec.generate(11).expect("dataset");
    let plan = build_stream(
        &full,
        &StreamConfig {
            total_updates: 600,
            seed: 13,
            ..Default::default()
        },
    )
    .expect("stream");
    let model = Workload::GcS.build_model(16, 32, 4, 2, 7).expect("model");
    let store = full_inference(&plan.snapshot, &model).expect("bootstrap");
    let updates: Vec<GraphUpdate> = plan
        .batches(1)
        .into_iter()
        .flat_map(UpdateBatch::into_updates)
        .collect();
    let engine =
        RippleEngine::new(plan.snapshot, model, store, RippleConfig::default()).expect("engine");

    // Serve: scheduler thread owns the engine; we keep a client + queries.
    // `ServeConfig::builder()` validates the window/queue knobs up front.
    let serve_config = ServeConfig::builder().max_batch(32).build()?;
    let handle = spawn_serve(engine, serve_config)?;
    let client = handle.client();
    let mut queries = handle.query_service();

    let watched = VertexId(7);
    let before = queries.read_label(watched)?;
    println!(
        "epoch {:>3}  vertex {watched}: label {} (staleness {})",
        before.epoch, before.value, before.staleness
    );

    // Stream updates while reading: each chunk is coalesced into batches by
    // the scheduler; reads keep flowing against the latest published epoch.
    for chunk in updates.chunks(100) {
        for update in chunk {
            match client.submit(update.clone()) {
                Submission::Enqueued { .. } => {}
                other => panic!("submission failed: {other:?}"),
            }
        }
        handle.flush(); // close the window so the chunk becomes visible
        let stamped = queries.read_label(watched)?;
        println!(
            "epoch {:>3}  vertex {watched}: label {} (applied {} updates, staleness {})",
            stamped.epoch, stamped.value, stamped.applied_seq, stamped.staleness
        );
    }

    // A similarity read: top-5 vertices by dot product with a probe vector.
    // The request names the mode explicitly — an exact scan here, then the
    // same request again through the epoch-repaired IVF index.
    let probe = vec![1.0, 0.0, 0.0, 0.0];
    let request = TopKRequest::new(probe, 5);
    let top = queries.top_k(&request)?;
    println!("top-5 by <h, probe> at epoch {}:", top.epoch);
    for (v, score) in &top.value {
        println!("  {v}: {score:.4}");
    }
    // Approximate: probe 4 of the index's clusters. Scores are read from
    // the same snapshot, so any vertex both modes return is scored identically.
    let approx = queries.top_k(&request.clone().approx(4))?;
    println!("approx top-5 (nprobe 4) at epoch {}:", approx.epoch);
    for (v, score) in &approx.value {
        println!("  {v}: {score:.4}");
    }

    let metrics = handle.metrics().report();
    println!("serving session: {metrics}");
    let engine = handle.shutdown()?;
    println!(
        "scheduler returned the engine: {} vertices, {} edges after the stream",
        engine.graph().num_vertices(),
        engine.graph().num_edges()
    );

    // ------------------------------------------------------------------
    // The same workload on the sharded tier: two hash-partitioned shard
    // engines behind the identical `ServeFrontend` surface. Point reads now
    // carry the owning shard; whole-graph reads carry the epoch vector.
    // ------------------------------------------------------------------
    println!();
    println!("-- sharded tier (2 shards) --");
    let graph = engine.graph().clone();
    let model = engine.model().clone();
    let store = engine.store().clone();
    let sharded = spawn_sharded(
        &graph,
        &model,
        &store,
        RippleConfig::default(),
        ServeConfig::builder().max_batch(32).build()?,
        2,
    )?;
    let router = sharded.client();
    router.submit(GraphUpdate::add_edge(VertexId(3), VertexId(42)));
    sharded.quiesce()?;
    let mut queries = sharded.query_service();
    let stamped = queries.read_label(watched)?;
    println!(
        "vertex {watched}: label {} served by shard {:?} at epoch {} \
         (tier epoch vector {:?})",
        stamped.value,
        stamped.shard,
        stamped.epoch,
        queries.epoch_vector()
    );
    sharded.shutdown()?;
    Ok(())
}
