//! Counting-allocator proof of the streaming-checkpoint contract: writing
//! a durable checkpoint from borrowed engine state allocates **no
//! spine-scale memory** — the graph and the embedding store are streamed
//! through a fixed-size buffered writer, never cloned and never serialised
//! into a payload-sized intermediate buffer.
//!
//! This is what lets the scheduler thread checkpoint its quiesced engine at
//! the group-commit boundary without a latency spike proportional to the
//! store.
//!
//! The allocator is process-global, so this file holds exactly one test.

use ripple::prelude::*;
use ripple::serve::durability::{recover, write_checkpoint_ref, CheckpointRef};
use ripple::serve::{FailPoints, FsyncPolicy, PartitionId};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Wraps the system allocator, counting every allocated byte while armed.
struct ByteCountingAllocator;

static ARMED: AtomicBool = AtomicBool::new(false);
static BYTES: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for ByteCountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            BYTES.fetch_add(layout.size(), Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            BYTES.fetch_add(new_size, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: ByteCountingAllocator = ByteCountingAllocator;

/// Runs `f` with the byte counter armed and returns how much it allocated.
fn count_bytes<T>(f: impl FnOnce() -> T) -> (usize, T) {
    BYTES.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let value = f();
    ARMED.store(false, Ordering::SeqCst);
    (BYTES.load(Ordering::SeqCst), value)
}

#[test]
fn streaming_checkpoint_allocates_no_spine_scale_memory() {
    let graph = DatasetSpec::custom(1500, 4.0, 16, 4).generate(21).unwrap();
    let model = Workload::GcS.build_model(16, 32, 4, 2, 22).unwrap();
    let store = full_inference(&graph, &model).unwrap();
    let dir = std::env::temp_dir().join(format!("ripple-ckpt-alloc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fail = FailPoints::new();
    let watermarks = [(PartitionId(0), 3u64), (PartitionId(1), 5)];
    let ckpt = CheckpointRef {
        window_seq: 7,
        epoch: 7,
        applied_seq: 40,
        applied_secondary: 2,
        topology_epoch: 3,
        graph: &graph,
        store: &store,
        halo_watermarks: &watermarks,
    };

    // Warm-up write: directory creation and first-touch path costs land
    // here, not in the measured region.
    write_checkpoint_ref(&dir, &ckpt, FsyncPolicy::Never, &fail).unwrap();

    let spine_bytes = store.memory_bytes();
    assert!(
        spine_bytes > 512 * 1024,
        "the bound below is only meaningful against a sizeable store \
         (got {spine_bytes} bytes)"
    );
    let (allocated, result) = count_bytes(|| {
        write_checkpoint_ref(
            &dir,
            &CheckpointRef {
                window_seq: 8,
                ..ckpt
            },
            FsyncPolicy::Never,
            &fail,
        )
    });
    result.unwrap();
    assert!(
        allocated < spine_bytes / 8,
        "checkpointing must stream, not clone: allocated {allocated} bytes \
         against a {spine_bytes}-byte store"
    );

    // The streamed bytes are still a complete, bit-exact checkpoint.
    let recovered = recover(&dir).unwrap();
    let ckpt = recovered.checkpoint.expect("checkpoint published");
    assert_eq!(ckpt.window_seq, 8);
    assert_eq!(ckpt.applied_secondary, 2);
    assert_eq!(ckpt.halo_watermarks, watermarks.to_vec());
    assert!(ckpt.store == store, "streamed store diverged");
    assert!(ckpt.graph == graph, "streamed graph diverged");
    let _ = std::fs::remove_dir_all(&dir);
}
