//! Property tests for the epoch-repaired IVF top-k index.
//!
//! Two obligations from the serving contract:
//!
//! 1. **Recall oracle** — the approximate read mode is a *recall* trade-off,
//!    never a correctness one. Probing every cluster must reproduce the
//!    exact scan bit for bit (same vertices, same order, same score bits),
//!    and a reduced probe must stay above a recall@10 floor while every
//!    score it does return is bit-identical to the exact oracle's score for
//!    that vertex (both modes read the same published snapshot).
//! 2. **Repair determinism** — after any number of epochs of incremental
//!    dirty-row repair (plus whatever lazy splits/merges fired along the
//!    way), the index must land on exactly the state a from-scratch
//!    reassignment of the final store under the same centroids produces.
//!    Repair is an optimisation of rebuild, not an approximation of it.

use proptest::prelude::*;
use ripple::prelude::*;
use ripple::serve::index::IndexMaintainer;
use ripple::serve::ServeConfig;
use std::time::{Duration, Instant};

/// Builds a random but valid update stream against `graph`: intents that are
/// invalid in the current state (duplicate additions, deletions of missing
/// edges) are skipped, so any generated intent list yields an applicable
/// stream. Vertices are never added, so the served id space stays fixed.
fn realise_updates(graph: &DynamicGraph, intents: &[(u8, u32, u32, Vec<f32>)]) -> Vec<GraphUpdate> {
    let n = graph.num_vertices() as u32;
    let mut shadow = graph.clone();
    let mut updates = Vec::new();
    for (kind, a, b, feats) in intents {
        let (src, dst) = (VertexId(a % n), VertexId(b % n));
        match kind % 3 {
            0 => {
                if src != dst && !shadow.has_edge(src, dst) {
                    shadow.add_edge(src, dst, 1.0).unwrap();
                    updates.push(GraphUpdate::add_edge(src, dst));
                }
            }
            1 => {
                if shadow.has_edge(src, dst) {
                    shadow.remove_edge(src, dst).unwrap();
                    updates.push(GraphUpdate::delete_edge(src, dst));
                }
            }
            _ => {
                let mut f = feats.clone();
                f.resize(graph.feature_dim(), 0.25);
                shadow.set_feature(src, &f).unwrap();
                updates.push(GraphUpdate::update_feature(src, f));
            }
        }
    }
    updates
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Full-probe approx ≡ exact, and reduced-probe approx keeps
    /// recall@10 ≥ 0.9 with bit-identical scores, across random graphs,
    /// update streams and probe vectors — all through the serving API.
    #[test]
    fn approx_read_mode_tracks_the_exact_oracle(
        seed in 0u64..500,
        intents in prop::collection::vec(
            (0u8..3, 0u32..160, 0u32..160, prop::collection::vec(-1.0f32..1.0, 6)),
            1..40,
        ),
        probes in prop::collection::vec(
            prop::collection::vec(-1.0f32..1.0, 4),
            1..4,
        ),
    ) {
        let graph = DatasetSpec::custom(160, 4.0, 6, 4).generate(seed).unwrap();
        let updates = realise_updates(&graph, &intents);
        prop_assume!(!updates.is_empty());
        let num_vertices = graph.num_vertices();

        let model = Workload::GcS.build_model(6, 8, 4, 2, seed ^ 0xf1de).unwrap();
        let store = full_inference(&graph, &model).unwrap();
        let engine =
            RippleEngine::new(graph, model, store, RippleConfig::default()).unwrap();
        let handle = ripple::serve::spawn(
            engine,
            ServeConfig::builder().max_batch(8).build().unwrap(),
        )
        .unwrap();
        let client = handle.client();
        let metrics = handle.metrics();
        for update in updates {
            prop_assert!(matches!(
                client.submit(update),
                Submission::Enqueued { .. }
            ));
        }
        let deadline = Instant::now() + Duration::from_secs(60);
        while metrics.applied() < metrics.enqueued() {
            handle.flush();
            prop_assert!(Instant::now() < deadline, "scheduler failed to drain");
            std::thread::sleep(Duration::from_micros(200));
        }

        let clusters = IndexParams::default().effective_clusters(num_vertices);
        let reduced_nprobe = (clusters * 3 / 4).max(4);
        let mut queries = handle.query_service();
        for probe in probes {
            // Skip near-degenerate probes: an all-zero query makes every
            // dot product tie at 0.0 and recall against an id-tie-broken
            // top-10 becomes meaningless.
            prop_assume!(probe.iter().any(|c| c.abs() >= 0.25));

            // The exact oracle: every vertex, ranked (score desc, id asc).
            let oracle = queries
                .top_k(&TopKRequest::new(probe.clone(), num_vertices))
                .unwrap();
            prop_assert_eq!(oracle.value.len(), num_vertices);

            // Probing every cluster reproduces the exact scan bit for bit.
            let exact = queries.top_k(&TopKRequest::new(probe.clone(), 10)).unwrap();
            let full_probe = queries
                .top_k(&TopKRequest::new(probe.clone(), 10).approx(usize::MAX))
                .unwrap();
            prop_assert_eq!(&exact.value, &full_probe.value);

            // A reduced probe trades recall, never score fidelity.
            let approx = queries
                .top_k(&TopKRequest::new(probe.clone(), 10).approx(reduced_nprobe))
                .unwrap();
            for &(v, score) in &approx.value {
                let oracle_score = oracle
                    .value
                    .iter()
                    .find(|(ov, _)| *ov == v)
                    .map(|(_, s)| *s)
                    .unwrap();
                prop_assert_eq!(
                    score.to_bits(),
                    oracle_score.to_bits(),
                    "approx score for {} diverged from the snapshot dot product",
                    v
                );
            }
            let floor = exact.value[exact.value.len() - 1].1;
            let hits = approx.value.iter().filter(|(_, s)| *s >= floor).count();
            let recall = hits as f64 / exact.value.len() as f64;
            prop_assert!(
                recall >= 0.9,
                "recall@10 {recall:.2} below floor at nprobe {reduced_nprobe}/{clusters}"
            );
        }
        handle.shutdown().unwrap();
    }

    /// After any stream of engine batches with per-epoch dirty-row repair,
    /// the index equals a from-scratch reassignment of the final store under
    /// the same centroids — repairs and lazy splits/merges never drift.
    #[test]
    fn epoch_repair_is_deterministic_against_rebuild(
        seed in 0u64..500,
        batch_size in 1usize..6,
        intents in prop::collection::vec(
            (0u8..3, 0u32..64, 0u32..64, prop::collection::vec(-1.0f32..1.0, 6)),
            1..48,
        ),
    ) {
        let graph = DatasetSpec::custom(64, 4.0, 6, 4).generate(seed).unwrap();
        let updates = realise_updates(&graph, &intents);
        prop_assume!(!updates.is_empty());

        let model = Workload::GcS.build_model(6, 8, 4, 2, seed ^ 0x5eed).unwrap();
        let store = full_inference(&graph, &model).unwrap();
        let mut engine =
            RippleEngine::new(graph, model, store, RippleConfig::default()).unwrap();
        let (mut maintainer, mut reader) =
            IndexMaintainer::bootstrap(engine.store(), None, IndexParams::default());

        let mut epochs = 0u64;
        for chunk in updates.chunks(batch_size) {
            let batch = UpdateBatch::from_updates(chunk.to_vec());
            engine.process_batch(&batch).unwrap();
            let dirty = engine.dirty_rows().to_vec();
            epochs = maintainer.publish(engine.store(), Some(&dirty));
        }

        let live = reader.index();
        prop_assert_eq!(live.epoch(), epochs);
        let oracle = live.rebuilt_with_same_centroids(engine.store(), None);
        prop_assert!(
            live.contents_eq(&oracle),
            "incremental repair drifted from the same-centroid rebuild after {} epochs",
            epochs
        );

        // Incremental maintenance means *zero* rebuilds after bootstrap.
        let stats = maintainer.stats();
        prop_assert_eq!(stats.builds, 1);
        prop_assert_eq!(stats.rebuilds, 0);
    }
}
