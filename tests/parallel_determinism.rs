//! Property-based tests of the parallel engine's determinism guarantee: for
//! any thread count, [`ParallelRippleEngine`] produces embeddings (and raw
//! aggregates) **bit-identical** to the serial [`RippleEngine`] — not merely
//! within tolerance. The frontier of every hop is processed in a canonical
//! sorted vertex order and per-worker results are merged by a chunk-ordered
//! reduction, so float accumulation order never depends on the thread count.

use proptest::prelude::*;
use ripple::prelude::*;

/// Builds a random but valid update stream against `graph`. `deletion_bias`
/// maps two of the five intent kinds to deletions (instead of one of three),
/// producing the deletion-heavy streams that historically stress the
/// pre-batch snapshot machinery.
fn realise_updates(
    graph: &DynamicGraph,
    intents: &[(u8, u32, u32, Vec<f32>)],
    deletion_bias: bool,
) -> Vec<GraphUpdate> {
    let n = graph.num_vertices() as u32;
    let mut shadow = graph.clone();
    let mut updates = Vec::new();
    for (kind, a, b, feats) in intents {
        let (src, dst) = (VertexId(a % n), VertexId(b % n));
        let kind = if deletion_bias {
            // 0 => add, 1..=3 => delete, 4 => feature update.
            match kind % 5 {
                0 => 0,
                1..=3 => 1,
                _ => 2,
            }
        } else {
            kind % 3
        };
        match kind {
            0 => {
                if src != dst && !shadow.has_edge(src, dst) {
                    shadow.add_edge(src, dst, 1.0).unwrap();
                    updates.push(GraphUpdate::add_edge(src, dst));
                }
            }
            1 => {
                if shadow.has_edge(src, dst) {
                    shadow.remove_edge(src, dst).unwrap();
                    updates.push(GraphUpdate::delete_edge(src, dst));
                }
            }
            _ => {
                let mut f = feats.clone();
                f.resize(graph.feature_dim(), 0.25);
                shadow.set_feature(src, &f).unwrap();
                updates.push(GraphUpdate::update_feature(src, f));
            }
        }
    }
    updates
}

fn workload_from_index(i: u8) -> Workload {
    Workload::all()[(i % 5) as usize]
}

/// Streams `updates` through a serial engine and through parallel engines at
/// 2/4/8 threads, asserting exact store equality after every batch boundary.
fn assert_bit_identical(
    graph: &DynamicGraph,
    model: &GnnModel,
    store: &EmbeddingStore,
    updates: &[GraphUpdate],
    batch_size: usize,
) {
    let mut serial = RippleEngine::new(
        graph.clone(),
        model.clone(),
        store.clone(),
        RippleConfig::default(),
    )
    .unwrap();
    let batches: Vec<UpdateBatch> = updates
        .chunks(batch_size)
        .map(|c| UpdateBatch::from_updates(c.to_vec()))
        .collect();
    for batch in &batches {
        serial.process_batch(batch).unwrap();
    }
    for threads in [2usize, 4, 8] {
        let mut parallel = ParallelRippleEngine::new(
            graph.clone(),
            model.clone(),
            store.clone(),
            RippleConfig::default(),
            threads,
        )
        .unwrap();
        for batch in &batches {
            parallel.process_batch(batch).unwrap();
        }
        assert!(
            parallel.store() == serial.store(),
            "{threads}-thread store differs bitwise from serial (max diff {:?})",
            parallel.store().max_diff_all_layers(serial.store())
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Parallel propagation at 2/4/8 threads is bit-identical to serial for
    /// any workload, layer count, batch size and valid update stream.
    #[test]
    fn parallel_matches_serial_bitwise_for_random_streams(
        seed in 0u64..1000,
        workload_idx in 0u8..5,
        num_layers in 1usize..4,
        batch_size in 1usize..10,
        intents in prop::collection::vec(
            (0u8..3, 0u32..96, 0u32..96, prop::collection::vec(-1.0f32..1.0, 4)),
            1..40,
        ),
    ) {
        let workload = workload_from_index(workload_idx);
        let graph = DatasetSpec::custom(96, 4.0, 4, 3)
            .generate_weighted(seed, workload.needs_edge_weights())
            .unwrap();
        let updates = realise_updates(&graph, &intents, false);
        prop_assume!(!updates.is_empty());
        let model = workload.build_model(4, 6, 3, num_layers, seed ^ 0xda7a).unwrap();
        let store = full_inference(&graph, &model).unwrap();
        assert_bit_identical(&graph, &model, &store, &updates, batch_size);
    }

    /// Deletion-heavy streams (60% of intents are edge deletions) hit the
    /// pre-batch snapshot and per-hop injection paths hardest; they must be
    /// just as deterministic.
    #[test]
    fn parallel_matches_serial_bitwise_for_deletion_heavy_streams(
        seed in 0u64..500,
        workload_idx in 0u8..5,
        intents in prop::collection::vec(
            (0u8..5, 0u32..80, 0u32..80, prop::collection::vec(-1.0f32..1.0, 4)),
            4..40,
        ),
    ) {
        let workload = workload_from_index(workload_idx);
        // A denser graph so there are plenty of edges to delete.
        let graph = DatasetSpec::custom(80, 6.0, 4, 3)
            .generate_weighted(seed, workload.needs_edge_weights())
            .unwrap();
        let updates = realise_updates(&graph, &intents, true);
        prop_assume!(updates.iter().any(|u| matches!(u, GraphUpdate::DeleteEdge { .. })));
        let model = workload.build_model(4, 6, 3, 2, seed ^ 0xdead).unwrap();
        let store = full_inference(&graph, &model).unwrap();
        assert_bit_identical(&graph, &model, &store, &updates, 6);
    }
}

/// A single deterministic end-to-end check that also exercises a large batch
/// (everything in one batch) and per-batch streaming, comparing both against
/// full re-inference — the exactness and determinism claims together.
#[test]
fn parallel_engine_is_exact_and_deterministic_end_to_end() {
    let graph = DatasetSpec::custom(150, 5.0, 6, 4).generate(41).unwrap();
    let model = Workload::GsS.build_model(6, 8, 4, 2, 43).unwrap();
    let plan = build_stream(
        &graph,
        &StreamConfig {
            total_updates: 60,
            seed: 47,
            ..Default::default()
        },
    )
    .unwrap();
    let bootstrap = full_inference(&plan.snapshot, &model).unwrap();
    let batches = plan.batches(12);

    let mut serial = RippleEngine::new(
        plan.snapshot.clone(),
        model.clone(),
        bootstrap.clone(),
        RippleConfig::default(),
    )
    .unwrap();
    let mut parallel = ParallelRippleEngine::new(
        plan.snapshot.clone(),
        model.clone(),
        bootstrap,
        RippleConfig::default(),
        8,
    )
    .unwrap();
    let mut reference_graph = plan.snapshot.clone();
    for batch in &batches {
        serial.process_batch(batch).unwrap();
        parallel.process_batch(batch).unwrap();
        reference_graph.apply_batch(batch).unwrap();
    }
    assert!(parallel.store() == serial.store(), "bitwise determinism");
    let reference = full_inference(&reference_graph, &model).unwrap();
    let diff = parallel.store().max_diff_all_layers(&reference).unwrap();
    assert!(diff < 2e-3, "exactness vs full re-inference: diff {diff}");
}
