//! Property suite for the batched mailbox apply path: draining a hop into
//! the flat sorted [`MailArena`] and folding its rows into the aggregate
//! tables must be **bit-identical** — not merely within tolerance — to the
//! historical `HashMap` walk ([`ripple::core::engine::apply_mail_map`]), for
//! any deposit pattern. Each delta targets its own store row, so only the
//! iteration order differs between the paths, and addition into disjoint
//! rows is order-insensitive at the bit level; these tests pin that
//! contract, in the same style as `tests/kernel_parity.rs` pins the GEMM
//! kernels.

use proptest::prelude::*;
use ripple::core::engine::apply_mail_map;
use ripple::core::{BatchStats, MailArena, MailboxSet};
use ripple::prelude::*;
use ripple::tensor::add_assign;

/// Asserts two equal-length f32 slices are identical bit for bit.
fn assert_bits_eq(a: &[f32], b: &[f32], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: width mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{context}: element {i} differs ({x} vs {y})"
        );
    }
}

fn zeroed_store(num_vertices: usize, width: usize) -> EmbeddingStore {
    let model = Workload::GcS
        .build_model(width, width, width, 2, 1)
        .unwrap();
    EmbeddingStore::zeroed(&model, num_vertices)
}

/// Replays one deposit pattern through both apply paths and asserts the
/// resulting aggregate tables are bit-identical.
fn check_parity(deposits: &[(u32, f32, Vec<f32>)], num_vertices: usize, width: usize) {
    let mut map_boxes = MailboxSet::new(2);
    let mut arena_boxes = MailboxSet::new(2);
    for (v, coeff, delta) in deposits {
        map_boxes.deposit(1, VertexId(*v), *coeff, delta);
        arena_boxes.deposit(1, VertexId(*v), *coeff, delta);
    }

    // Historical path: drained map, per-slot HashMap walk.
    let mut map_store = zeroed_store(num_vertices, width);
    let mut map_stats = BatchStats::default();
    let taken = map_boxes.take_hop(1);
    apply_mail_map(&mut map_store, 1, &taken, &mut map_stats);

    // Batched path: flat sorted arena walk.
    let mut arena_store = zeroed_store(num_vertices, width);
    let mut arena_stats = BatchStats::default();
    let mut arena = MailArena::new();
    arena_boxes.drain_hop_sorted_into(1, &mut arena);
    assert!(
        arena.ids().windows(2).all(|w| w[0] < w[1]),
        "sorted, deduped"
    );
    for (v, row) in arena.iter() {
        add_assign(arena_store.aggregate_mut(1, v), row);
        arena_stats.aggregate_ops += 1;
    }

    assert_eq!(map_stats.aggregate_ops, arena_stats.aggregate_ops);
    assert_bits_eq(
        arena_store.aggregates(1).as_slice(),
        map_store.aggregates(1).as_slice(),
        "hop-1 aggregates",
    );
}

#[test]
fn arena_apply_matches_map_apply_on_a_fixed_churn_pattern() {
    // Repeated slots, negative coefficients, a mix of magnitudes.
    let deposits = vec![
        (3u32, 1.0f32, vec![1.0, 2.0, -3.0, 0.5]),
        (0, -0.5, vec![4.0, 0.0, 1.0, 1.0]),
        (3, 0.25, vec![-8.0, 1e-3, 7.5, 2.0]),
        (7, 1.0, vec![0.1, 0.2, 0.3, 0.4]),
        (0, 2.0, vec![1e6, -1e6, 3.0, 0.125]),
        (5, -1.0, vec![0.0, 0.0, 0.0, 0.0]),
    ];
    check_parity(&deposits, 10, 4);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Randomized deposit patterns: arbitrary target churn, coefficients and
    /// delta values never let the two apply paths diverge by a single bit.
    #[test]
    fn arena_apply_matches_map_apply_on_random_deposits(
        seed in 0u64..1_000,
        num_deposits in 1usize..120,
    ) {
        // Derive the deposit pattern from a SplitMix-style walk so each
        // proptest case is fully determined by its drawn seed.
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = || {
            state ^= state >> 30;
            state = state.wrapping_mul(0xbf58476d1ce4e5b9);
            state ^= state >> 27;
            state
        };
        let width = 3;
        let num_vertices = 24;
        let deposits: Vec<(u32, f32, Vec<f32>)> = (0..num_deposits)
            .map(|_| {
                let v = (next() % num_vertices as u64) as u32;
                let coeff = ((next() % 2000) as f32 - 1000.0) / 256.0;
                let delta: Vec<f32> = (0..width)
                    .map(|_| ((next() % 2000) as f32 - 1000.0) / 128.0)
                    .collect();
                (v, coeff, delta)
            })
            .collect();
        check_parity(&deposits, num_vertices, width);
    }
}
