//! Property-based tests of the paper's central claim: Ripple's incremental
//! embeddings are *exact* — identical (up to floating-point accumulation
//! order) to full layer-wise re-inference on the updated graph — for every
//! linear aggregation function, model family, layer count and any valid
//! stream of edge additions, edge deletions and feature updates.

use proptest::prelude::*;
use ripple::prelude::*;

/// Builds a random but valid update stream against `graph`: intents that are
/// invalid in the current state (duplicate additions, deletions of missing
/// edges) are skipped, so any generated intent list yields an applicable
/// stream.
fn realise_updates(graph: &DynamicGraph, intents: &[(u8, u32, u32, Vec<f32>)]) -> Vec<GraphUpdate> {
    let n = graph.num_vertices() as u32;
    let mut shadow = graph.clone();
    let mut updates = Vec::new();
    for (kind, a, b, feats) in intents {
        let (src, dst) = (VertexId(a % n), VertexId(b % n));
        match kind % 3 {
            0 => {
                if src != dst && !shadow.has_edge(src, dst) {
                    shadow.add_edge(src, dst, 1.0).unwrap();
                    updates.push(GraphUpdate::add_edge(src, dst));
                }
            }
            1 => {
                if shadow.has_edge(src, dst) {
                    shadow.remove_edge(src, dst).unwrap();
                    updates.push(GraphUpdate::delete_edge(src, dst));
                }
            }
            _ => {
                let mut f = feats.clone();
                f.resize(graph.feature_dim(), 0.25);
                shadow.set_feature(src, &f).unwrap();
                updates.push(GraphUpdate::update_feature(src, f));
            }
        }
    }
    updates
}

fn workload_from_index(i: u8) -> Workload {
    Workload::all()[(i % 5) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Incremental processing of any valid update stream matches full
    /// re-inference for every workload and 1–3 layers.
    #[test]
    fn ripple_is_exact_for_random_streams(
        seed in 0u64..1000,
        workload_idx in 0u8..5,
        num_layers in 1usize..4,
        batch_size in 1usize..8,
        intents in prop::collection::vec(
            (0u8..3, 0u32..64, 0u32..64, prop::collection::vec(-1.0f32..1.0, 4)),
            1..30,
        ),
    ) {
        let workload = workload_from_index(workload_idx);
        let spec = DatasetSpec::custom(40, 3.0, 4, 3);
        let graph = spec
            .generate_weighted(seed, workload.needs_edge_weights())
            .unwrap();
        let updates = realise_updates(&graph, &intents);
        prop_assume!(!updates.is_empty());

        let model = workload.build_model(4, 6, 3, num_layers, seed ^ 0xf00d).unwrap();
        let store = full_inference(&graph, &model).unwrap();
        let mut engine =
            RippleEngine::new(graph.clone(), model.clone(), store, RippleConfig::default()).unwrap();

        let mut reference_graph = graph;
        for chunk in updates.chunks(batch_size) {
            let batch = UpdateBatch::from_updates(chunk.to_vec());
            engine.process_batch(&batch).unwrap();
            reference_graph.apply_batch(&batch).unwrap();
        }
        let reference = full_inference(&reference_graph, &model).unwrap();
        let diff = engine.store().max_diff_all_layers(&reference).unwrap();
        prop_assert!(diff < 2e-3, "diff {diff} for workload {workload}, {num_layers} layers");
    }

    /// Batch composition is irrelevant: processing an update stream as one
    /// large batch or as many single-update batches produces the same
    /// embeddings (the commutativity/associativity property of the mailbox
    /// accumulation, §4.3.1).
    #[test]
    fn batching_granularity_does_not_change_results(
        seed in 0u64..500,
        workload_idx in 0u8..5,
        intents in prop::collection::vec(
            (0u8..3, 0u32..48, 0u32..48, prop::collection::vec(-1.0f32..1.0, 4)),
            2..20,
        ),
    ) {
        let workload = workload_from_index(workload_idx);
        let spec = DatasetSpec::custom(30, 3.0, 4, 3);
        let graph = spec
            .generate_weighted(seed, workload.needs_edge_weights())
            .unwrap();
        let updates = realise_updates(&graph, &intents);
        prop_assume!(updates.len() >= 2);

        let model = workload.build_model(4, 6, 3, 2, seed).unwrap();
        let store = full_inference(&graph, &model).unwrap();

        let mut one_batch =
            RippleEngine::new(graph.clone(), model.clone(), store.clone(), RippleConfig::default())
                .unwrap();
        one_batch
            .process_batch(&UpdateBatch::from_updates(updates.clone()))
            .unwrap();

        let mut single_updates =
            RippleEngine::new(graph, model, store, RippleConfig::default()).unwrap();
        for update in &updates {
            single_updates
                .process_batch(&UpdateBatch::from_updates(vec![update.clone()]))
                .unwrap();
        }

        let diff = one_batch
            .store()
            .max_diff_all_layers(single_updates.store())
            .unwrap();
        prop_assert!(diff < 2e-3, "diff {diff}");
    }

    /// The recompute baseline and Ripple always agree — they are two
    /// implementations of the same exact semantics.
    #[test]
    fn ripple_and_rc_agree(
        seed in 0u64..500,
        workload_idx in 0u8..5,
        num_layers in 1usize..3,
        intents in prop::collection::vec(
            (0u8..3, 0u32..48, 0u32..48, prop::collection::vec(-1.0f32..1.0, 4)),
            1..16,
        ),
    ) {
        let workload = workload_from_index(workload_idx);
        let spec = DatasetSpec::custom(32, 3.0, 4, 3);
        let graph = spec
            .generate_weighted(seed, workload.needs_edge_weights())
            .unwrap();
        let updates = realise_updates(&graph, &intents);
        prop_assume!(!updates.is_empty());
        let batch = UpdateBatch::from_updates(updates);

        let model = workload.build_model(4, 6, 3, num_layers, seed ^ 0xbeef).unwrap();
        let store = full_inference(&graph, &model).unwrap();
        let mut ripple =
            RippleEngine::new(graph.clone(), model.clone(), store.clone(), RippleConfig::default())
                .unwrap();
        let mut rc = RecomputeEngine::new(graph, model, store, RecomputeConfig::rc()).unwrap();
        ripple.process_batch(&batch).unwrap();
        rc.process_batch(&batch).unwrap();
        let diff = ripple.store().max_diff_all_layers(rc.store()).unwrap();
        prop_assert!(diff < 2e-3, "diff {diff}");
    }
}
