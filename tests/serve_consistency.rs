//! Snapshot-consistency property tests for the serving subsystem.
//!
//! The serving contract under test (the "linearizable epoch" property): a
//! reader hammering [`ripple::serve::QueryService`] while a randomized
//! update stream flows through the scheduler must only ever observe
//! embeddings **bit-identical to some serial-engine prefix of the stream**
//! of flushed windows — never a torn or half-propagated state — and every
//! response must be stamped with the epoch of exactly that prefix.
//!
//! The scheduler records each flushed window (`record_batches`); after the
//! run, a serial [`RippleEngine`] replays the recorded windows one by one,
//! cloning the store after each, which yields the ground-truth store for
//! every epoch. Every observation any reader made is then checked against
//! the store of its stamped epoch, bit for bit.
//!
//! The sharded tier upholds the same property **per shard**: point reads
//! carry the owning shard and that shard's scalar epoch, and the observed
//! embedding must be bit-identical to a serial [`ShardEngine`] replay of
//! that shard's flush-window prefix (coalesced batches *plus* the halo
//! deltas received from peers — both are recorded per window).

use ripple::core::ShardEngine;
use ripple::prelude::*;
use ripple::serve::{PartitionId, ServeConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One reader observation: the stamp and the embedding bytes it was served.
struct Observation {
    epoch: u64,
    applied_seq: u64,
    vertex: VertexId,
    embedding: Vec<f32>,
}

/// A sharded reader observation: the shard stamp picks the replay sequence
/// the epoch indexes into.
struct ShardObservation {
    shard: PartitionId,
    epoch: u64,
    applied_seq: u64,
    vertex: VertexId,
    embedding: Vec<f32>,
}

fn bootstrap(seed: u64) -> (DynamicGraph, GnnModel, EmbeddingStore, Vec<GraphUpdate>) {
    let full = DatasetSpec::custom(150, 5.0, 6, 4).generate(seed).unwrap();
    let plan = build_stream(
        &full,
        &StreamConfig {
            total_updates: 60,
            seed: seed ^ 1,
            ..Default::default()
        },
    )
    .unwrap();
    let model = Workload::GcS.build_model(6, 8, 4, 2, seed ^ 2).unwrap();
    let store = full_inference(&plan.snapshot, &model).unwrap();
    let updates = plan
        .batches(1)
        .into_iter()
        .flat_map(UpdateBatch::into_updates)
        .collect();
    (plan.snapshot, model, store, updates)
}

/// Runs one serving session with `reader_threads` concurrent readers and
/// verifies every observation against the serial-engine prefix states.
fn linearizable_epoch_scenario(reader_threads: usize, seed: u64) {
    let (graph, model, store, updates) = bootstrap(seed);
    let engine = RippleEngine::new(
        graph.clone(),
        model.clone(),
        store.clone(),
        RippleConfig::default(),
    )
    .unwrap();
    let handle = ripple::serve::spawn(
        engine,
        ServeConfig::builder()
            .max_batch(5)
            .max_delay(Duration::from_millis(1))
            .record_batches(true)
            .build()
            .unwrap(),
    )
    .unwrap();
    let metrics = handle.metrics();
    let stop = Arc::new(AtomicBool::new(false));

    // Readers: hammer point-embedding reads against rotating vertices,
    // recording the stamp and the served bytes.
    let num_vertices = graph.num_vertices() as u32;
    let readers: Vec<_> = (0..reader_threads)
        .map(|r| {
            let mut queries = handle.query_service();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut observations: Vec<Observation> = Vec::new();
                let mut v = (r as u32 * 17) % num_vertices;
                while !stop.load(Ordering::Relaxed) {
                    let vertex = VertexId(v);
                    v = (v + 13) % num_vertices;
                    let stamped = queries.read_embedding(vertex).expect("vertex in range");
                    if observations.len() < 50_000 {
                        observations.push(Observation {
                            epoch: stamped.epoch,
                            applied_seq: stamped.applied_seq,
                            vertex,
                            embedding: stamped.value,
                        });
                    }
                }
                observations
            })
        })
        .collect();

    // Writer: stream the updates in small pulses so many windows flush
    // while the readers run.
    let client = handle.client();
    let offered = updates.len() as u64;
    for chunk in updates.chunks(5) {
        for update in chunk {
            assert!(matches!(
                client.submit(update.clone()),
                Submission::Enqueued { .. }
            ));
        }
        std::thread::sleep(Duration::from_micros(300));
    }
    handle.flush().expect("scheduler alive");
    let deadline = Instant::now() + Duration::from_secs(60);
    while metrics.applied() < offered {
        assert!(Instant::now() < deadline, "scheduler failed to drain");
        std::thread::sleep(Duration::from_millis(1));
    }
    stop.store(true, Ordering::Relaxed);
    let observations: Vec<Vec<Observation>> = readers
        .into_iter()
        .map(|t| t.join().expect("reader panicked"))
        .collect();

    let log = handle.flush_log().expect("recording enabled");
    let served = handle.shutdown().expect("session failed");
    let records = log.snapshot();

    // Ground truth: replay the recorded windows through a fresh serial
    // engine, cloning the store after each — states[e] is the exact store
    // of epoch e.
    let mut reference = RippleEngine::new(graph, model, store, RippleConfig::default()).unwrap();
    let mut states: Vec<EmbeddingStore> = vec![reference.store().clone()];
    for (i, record) in records.iter().enumerate() {
        assert_eq!(record.epoch, i as u64 + 1, "epochs are dense and ordered");
        if !record.batch.is_empty() {
            reference.process_batch(&record.batch).unwrap();
        }
        states.push(reference.store().clone());
    }
    let raw_total: u64 = records.iter().map(|r| r.raw).sum();
    assert_eq!(raw_total, offered, "every accepted update is covered");
    assert!(
        served.store() == reference.store(),
        "served engine must end bit-identical to the replayed windows"
    );

    // The property: every observation matches the state of its epoch,
    // bit for bit, and carries that epoch's applied_seq stamp.
    let num_layers = states[0].num_layers();
    let mut checked = 0u64;
    let mut epochs_seen: Vec<u64> = Vec::new();
    for reader in &observations {
        for obs in reader {
            let state = states.get(obs.epoch as usize).unwrap_or_else(|| {
                panic!(
                    "observed epoch {} beyond {} published",
                    obs.epoch,
                    records.len()
                )
            });
            assert_eq!(
                obs.embedding.as_slice(),
                state.embedding(num_layers, obs.vertex),
                "epoch {} vertex {}: observed embedding is not the serial prefix state",
                obs.epoch,
                obs.vertex
            );
            let expected_applied = if obs.epoch == 0 {
                0
            } else {
                records[obs.epoch as usize - 1].applied_seq
            };
            assert_eq!(obs.applied_seq, expected_applied, "epoch {}", obs.epoch);
            epochs_seen.push(obs.epoch);
            checked += 1;
        }
    }
    assert!(checked > 0, "readers must have observed something");
    epochs_seen.sort_unstable();
    epochs_seen.dedup();
    assert!(
        !records.is_empty() && metrics.epochs() as usize == records.len(),
        "every flush published exactly one epoch"
    );
    // Per-reader epochs are monotone because each handle caches at most the
    // latest snapshot; across the run readers should have caught the stream
    // in flight (more than one distinct epoch observed).
    assert!(
        epochs_seen.len() >= 2,
        "readers only saw epochs {epochs_seen:?} of {} published — no concurrency exercised",
        records.len()
    );
}

#[test]
fn readers_observe_only_serial_prefix_states_2_threads() {
    linearizable_epoch_scenario(2, 101);
}

#[test]
fn readers_observe_only_serial_prefix_states_4_threads() {
    linearizable_epoch_scenario(4, 103);
}

#[test]
fn readers_observe_only_serial_prefix_states_8_threads() {
    linearizable_epoch_scenario(8, 107);
}

/// The serving path must agree (within float tolerance — window boundaries
/// permute float accumulation order) with the raw stream replayed
/// update-by-update through a serial engine, coalescing included.
#[test]
fn served_endstate_matches_raw_stream_replay() {
    let (graph, model, store, updates) = bootstrap(211);
    let engine = RippleEngine::new(
        graph.clone(),
        model.clone(),
        store.clone(),
        RippleConfig::default(),
    )
    .unwrap();
    let handle =
        ripple::serve::spawn(engine, ServeConfig::builder().max_batch(7).build().unwrap()).unwrap();
    let client = handle.client();
    let (accepted, _) = client.submit_all(updates.clone());
    assert_eq!(accepted, updates.len());
    handle.flush().expect("alive");
    let served = handle.shutdown().expect("session failed");

    let mut reference = RippleEngine::new(graph, model, store, RippleConfig::default()).unwrap();
    for update in updates {
        reference
            .process_batch(&UpdateBatch::from_updates(vec![update]))
            .unwrap();
    }
    let diff = served
        .store()
        .max_diff_all_layers(reference.store())
        .unwrap();
    assert!(
        diff < 2e-3,
        "served endstate drifted from raw replay: {diff}"
    );
    assert_eq!(served.graph().num_edges(), reference.graph().num_edges());
}

/// Runs one sharded serving session and verifies every observation against
/// per-shard [`ShardEngine`] replays of the recorded flush windows.
///
/// The linearizable-epoch property, per shard: a point read stamped
/// `(shard, epoch)` must be bit-identical to replaying that shard's first
/// `epoch` recorded windows — each the coalesced owned batch plus the halo
/// deltas received from peers — through a fresh shard engine over the same
/// partitioning.
fn sharded_linearizable_epoch_scenario(shards: usize, reader_threads: usize, seed: u64) {
    let (graph, model, store, updates) = bootstrap(seed);
    let handle = ripple::serve::spawn_sharded(
        &graph,
        &model,
        &store,
        RippleConfig::default(),
        ServeConfig::builder()
            .max_batch(5)
            .max_delay(Duration::from_millis(1))
            .record_batches(true)
            .build()
            .unwrap(),
        shards,
    )
    .expect("sharded tier");
    let metrics = handle.metrics();
    let partitioning = Arc::clone(handle.partitioning());
    let stop = Arc::new(AtomicBool::new(false));

    let num_vertices = graph.num_vertices() as u32;
    let readers: Vec<_> = (0..reader_threads)
        .map(|r| {
            let mut queries = handle.query_service();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut observations: Vec<ShardObservation> = Vec::new();
                let mut v = (r as u32 * 17) % num_vertices;
                while !stop.load(Ordering::Relaxed) {
                    let vertex = VertexId(v);
                    v = (v + 13) % num_vertices;
                    let stamped = queries.read_embedding(vertex).expect("vertex in range");
                    if observations.len() < 50_000 {
                        observations.push(ShardObservation {
                            shard: stamped.shard.expect("sharded point reads carry a shard"),
                            epoch: stamped.epoch,
                            applied_seq: stamped.applied_seq,
                            vertex,
                            embedding: stamped.value,
                        });
                    }
                }
                observations
            })
        })
        .collect();

    // Writer: pulse the stream through the router so many windows flush —
    // and halo deltas cross shards — while the readers run.
    let client = handle.client();
    for chunk in updates.chunks(5) {
        for update in chunk {
            assert!(matches!(
                client.submit(update.clone()),
                Submission::Enqueued { .. }
            ));
        }
        std::thread::sleep(Duration::from_micros(300));
    }
    handle.quiesce().expect("tier alive");
    let deadline = Instant::now() + Duration::from_secs(60);
    while metrics.applied() < metrics.enqueued() {
        assert!(Instant::now() < deadline, "sharded tier failed to drain");
        std::thread::sleep(Duration::from_millis(1));
    }
    stop.store(true, Ordering::Relaxed);
    let observations: Vec<Vec<ShardObservation>> = readers
        .into_iter()
        .map(|t| t.join().expect("reader panicked"))
        .collect();

    let logs = handle.flush_logs();
    assert_eq!(logs.len(), shards, "one flush log per shard");
    let engines = handle.shutdown().expect("session failed");

    // Ground truth, shard by shard: states[s][e] is the exact store of
    // shard s at its epoch e.
    let mut per_shard_records = Vec::with_capacity(shards);
    let mut states: Vec<Vec<EmbeddingStore>> = Vec::with_capacity(shards);
    for (part, log) in logs.iter().enumerate() {
        let records = log.snapshot();
        let mut replay = ShardEngine::new(
            &graph,
            model.clone(),
            store.clone(),
            RippleConfig::default(),
            Arc::clone(&partitioning),
            PartitionId(part as u32),
        )
        .unwrap();
        let mut shard_states = vec![replay.store().clone()];
        for (i, record) in records.iter().enumerate() {
            assert_eq!(
                record.epoch,
                i as u64 + 1,
                "shard {part}: epochs are dense and ordered"
            );
            if !record.batch.is_empty() || !record.halos.is_empty() {
                replay.process_window(&record.batch, &record.halos).unwrap();
            }
            shard_states.push(replay.store().clone());
        }
        assert!(
            engines.engines()[part].store() == replay.store(),
            "shard {part}: served engine must end bit-identical to its replayed windows"
        );
        per_shard_records.push(records);
        states.push(shard_states);
    }
    let raw_total: u64 = per_shard_records
        .iter()
        .flat_map(|records| records.iter())
        .map(|record| record.raw)
        .sum();
    assert_eq!(
        raw_total,
        metrics.enqueued(),
        "the flush logs cover every routed update"
    );

    // The property: every observation matches its shard's prefix state at
    // its stamped epoch, bit for bit, with that epoch's applied_seq.
    let num_layers = store.num_layers();
    let mut checked = 0u64;
    let mut shards_seen: Vec<u32> = Vec::new();
    for reader in &observations {
        for obs in reader {
            assert_eq!(
                obs.shard,
                partitioning.part_of(obs.vertex),
                "stamp must name the owner of the read vertex"
            );
            let shard_states = &states[obs.shard.index()];
            let state = shard_states.get(obs.epoch as usize).unwrap_or_else(|| {
                panic!(
                    "shard {} observed epoch {} beyond {} published",
                    obs.shard,
                    obs.epoch,
                    shard_states.len() - 1
                )
            });
            assert_eq!(
                obs.embedding.as_slice(),
                state.embedding(num_layers, obs.vertex),
                "shard {} epoch {} vertex {}: observed embedding is not that \
                 shard's serial prefix state",
                obs.shard,
                obs.epoch,
                obs.vertex
            );
            let expected_applied = if obs.epoch == 0 {
                0
            } else {
                per_shard_records[obs.shard.index()][obs.epoch as usize - 1].applied_seq
            };
            assert_eq!(
                obs.applied_seq, expected_applied,
                "shard {} epoch {}",
                obs.shard, obs.epoch
            );
            shards_seen.push(obs.shard.0);
            checked += 1;
        }
    }
    assert!(checked > 0, "readers must have observed something");
    shards_seen.sort_unstable();
    shards_seen.dedup();
    assert!(
        shards_seen.len() >= 2,
        "reads only ever resolved to shards {shards_seen:?} of {shards} — \
         the scenario never exercised cross-shard stamps"
    );
}

#[test]
fn sharded_readers_observe_only_per_shard_prefix_states_2_shards() {
    sharded_linearizable_epoch_scenario(2, 4, 307);
}

#[test]
fn sharded_readers_observe_only_per_shard_prefix_states_4_shards() {
    sharded_linearizable_epoch_scenario(4, 4, 311);
}

/// Cross-shard edge-delta fanout parity: a stream holding edge updates that
/// span shards — each applied at both owners, with value deltas emitted only
/// by the source's owner and shipped as halo messages — must land the
/// gathered sharded stores where the unsharded serving path lands its store.
#[test]
fn cross_shard_edge_fanout_matches_the_unsharded_engine() {
    let (graph, model, store, updates) = bootstrap(223);
    let handle = ripple::serve::spawn_sharded(
        &graph,
        &model,
        &store,
        RippleConfig::default(),
        ServeConfig::builder().max_batch(6).build().unwrap(),
        2,
    )
    .expect("sharded tier");
    // The scenario is vacuous unless the fanout path actually runs: at
    // least one streamed edge update must span the two shards.
    let partitioning = Arc::clone(handle.partitioning());
    let crossing = updates
        .iter()
        .filter(|update| match update {
            GraphUpdate::AddEdge { src, dst, .. } | GraphUpdate::DeleteEdge { src, dst } => {
                partitioning.part_of(*src) != partitioning.part_of(*dst)
            }
            GraphUpdate::UpdateFeature { .. } => false,
        })
        .count();
    assert!(crossing > 0, "stream holds no cross-shard edge update");

    let client = handle.client();
    let (accepted, _) = client.submit_all(updates.clone());
    assert_eq!(accepted, updates.len());
    handle.quiesce().expect("tier alive");
    let metrics = handle.metrics();
    assert_eq!(
        metrics.enqueued(),
        updates.len() as u64 + crossing as u64,
        "every cross-shard edge update is routed to both owners"
    );
    assert_eq!(metrics.applied(), metrics.enqueued());
    let engines = handle.shutdown().expect("session failed");
    let gathered = engines.gather_store();

    let engine = RippleEngine::new(
        graph.clone(),
        model.clone(),
        store.clone(),
        RippleConfig::default(),
    )
    .unwrap();
    let single =
        ripple::serve::spawn(engine, ServeConfig::builder().max_batch(6).build().unwrap()).unwrap();
    let (accepted, _) = single.client().submit_all(updates);
    assert!(accepted > 0);
    single.flush().expect("alive");
    let served = single.shutdown().expect("session failed");

    let diff = gathered.max_diff_all_layers(served.store()).unwrap();
    assert!(
        diff < 2e-3,
        "sharded fanout endstate drifted from the unsharded engine: {diff}"
    );
}
