//! Snapshot-consistency property tests for the serving subsystem.
//!
//! The serving contract under test (the "linearizable epoch" property): a
//! reader hammering [`ripple::serve::QueryService`] while a randomized
//! update stream flows through the scheduler must only ever observe
//! embeddings **bit-identical to some serial-engine prefix of the stream**
//! of flushed windows — never a torn or half-propagated state — and every
//! response must be stamped with the epoch of exactly that prefix.
//!
//! The scheduler records each flushed window (`record_batches`); after the
//! run, a serial [`RippleEngine`] replays the recorded windows one by one,
//! cloning the store after each, which yields the ground-truth store for
//! every epoch. Every observation any reader made is then checked against
//! the store of its stamped epoch, bit for bit.

use ripple::prelude::*;
use ripple::serve::ServeConfig;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One reader observation: the stamp and the embedding bytes it was served.
struct Observation {
    epoch: u64,
    applied_seq: u64,
    vertex: VertexId,
    embedding: Vec<f32>,
}

fn bootstrap(seed: u64) -> (DynamicGraph, GnnModel, EmbeddingStore, Vec<GraphUpdate>) {
    let full = DatasetSpec::custom(150, 5.0, 6, 4).generate(seed).unwrap();
    let plan = build_stream(
        &full,
        &StreamConfig {
            total_updates: 60,
            seed: seed ^ 1,
            ..Default::default()
        },
    )
    .unwrap();
    let model = Workload::GcS.build_model(6, 8, 4, 2, seed ^ 2).unwrap();
    let store = full_inference(&plan.snapshot, &model).unwrap();
    let updates = plan
        .batches(1)
        .into_iter()
        .flat_map(UpdateBatch::into_updates)
        .collect();
    (plan.snapshot, model, store, updates)
}

/// Runs one serving session with `reader_threads` concurrent readers and
/// verifies every observation against the serial-engine prefix states.
fn linearizable_epoch_scenario(reader_threads: usize, seed: u64) {
    let (graph, model, store, updates) = bootstrap(seed);
    let engine = RippleEngine::new(
        graph.clone(),
        model.clone(),
        store.clone(),
        RippleConfig::default(),
    )
    .unwrap();
    let handle = ripple::serve::spawn(
        engine,
        ServeConfig {
            max_batch: 5,
            max_delay: Duration::from_millis(1),
            record_batches: true,
            ..Default::default()
        },
    );
    let metrics = handle.metrics();
    let stop = Arc::new(AtomicBool::new(false));

    // Readers: hammer point-embedding reads against rotating vertices,
    // recording the stamp and the served bytes.
    let num_vertices = graph.num_vertices() as u32;
    let readers: Vec<_> = (0..reader_threads)
        .map(|r| {
            let mut queries = handle.query_service();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut observations: Vec<Observation> = Vec::new();
                let mut v = (r as u32 * 17) % num_vertices;
                while !stop.load(Ordering::Relaxed) {
                    let vertex = VertexId(v);
                    v = (v + 13) % num_vertices;
                    let stamped = queries.embedding(vertex).expect("vertex in range");
                    if observations.len() < 50_000 {
                        observations.push(Observation {
                            epoch: stamped.epoch,
                            applied_seq: stamped.applied_seq,
                            vertex,
                            embedding: stamped.value,
                        });
                    }
                }
                observations
            })
        })
        .collect();

    // Writer: stream the updates in small pulses so many windows flush
    // while the readers run.
    let client = handle.client();
    let offered = updates.len() as u64;
    for chunk in updates.chunks(5) {
        for update in chunk {
            assert!(matches!(
                client.submit(update.clone()),
                Submission::Enqueued { .. }
            ));
        }
        std::thread::sleep(Duration::from_micros(300));
    }
    handle.flush().expect("scheduler alive");
    let deadline = Instant::now() + Duration::from_secs(60);
    while metrics.applied() < offered {
        assert!(Instant::now() < deadline, "scheduler failed to drain");
        std::thread::sleep(Duration::from_millis(1));
    }
    stop.store(true, Ordering::Relaxed);
    let observations: Vec<Vec<Observation>> = readers
        .into_iter()
        .map(|t| t.join().expect("reader panicked"))
        .collect();

    let log = handle.flush_log().expect("recording enabled");
    let served = handle.shutdown().expect("session failed");
    let records = Arc::try_unwrap(log)
        .expect("log uniquely held after shutdown")
        .into_inner()
        .unwrap();

    // Ground truth: replay the recorded windows through a fresh serial
    // engine, cloning the store after each — states[e] is the exact store
    // of epoch e.
    let mut reference = RippleEngine::new(graph, model, store, RippleConfig::default()).unwrap();
    let mut states: Vec<EmbeddingStore> = vec![reference.store().clone()];
    for (i, record) in records.iter().enumerate() {
        assert_eq!(record.epoch, i as u64 + 1, "epochs are dense and ordered");
        if !record.batch.is_empty() {
            reference.process_batch(&record.batch).unwrap();
        }
        states.push(reference.store().clone());
    }
    let raw_total: u64 = records.iter().map(|r| r.raw).sum();
    assert_eq!(raw_total, offered, "every accepted update is covered");
    assert!(
        served.store() == reference.store(),
        "served engine must end bit-identical to the replayed windows"
    );

    // The property: every observation matches the state of its epoch,
    // bit for bit, and carries that epoch's applied_seq stamp.
    let num_layers = states[0].num_layers();
    let mut checked = 0u64;
    let mut epochs_seen: Vec<u64> = Vec::new();
    for reader in &observations {
        for obs in reader {
            let state = states.get(obs.epoch as usize).unwrap_or_else(|| {
                panic!(
                    "observed epoch {} beyond {} published",
                    obs.epoch,
                    records.len()
                )
            });
            assert_eq!(
                obs.embedding.as_slice(),
                state.embedding(num_layers, obs.vertex),
                "epoch {} vertex {}: observed embedding is not the serial prefix state",
                obs.epoch,
                obs.vertex
            );
            let expected_applied = if obs.epoch == 0 {
                0
            } else {
                records[obs.epoch as usize - 1].applied_seq
            };
            assert_eq!(obs.applied_seq, expected_applied, "epoch {}", obs.epoch);
            epochs_seen.push(obs.epoch);
            checked += 1;
        }
    }
    assert!(checked > 0, "readers must have observed something");
    epochs_seen.sort_unstable();
    epochs_seen.dedup();
    assert!(
        !records.is_empty() && metrics.epochs() as usize == records.len(),
        "every flush published exactly one epoch"
    );
    // Per-reader epochs are monotone because each handle caches at most the
    // latest snapshot; across the run readers should have caught the stream
    // in flight (more than one distinct epoch observed).
    assert!(
        epochs_seen.len() >= 2,
        "readers only saw epochs {epochs_seen:?} of {} published — no concurrency exercised",
        records.len()
    );
}

#[test]
fn readers_observe_only_serial_prefix_states_2_threads() {
    linearizable_epoch_scenario(2, 101);
}

#[test]
fn readers_observe_only_serial_prefix_states_4_threads() {
    linearizable_epoch_scenario(4, 103);
}

#[test]
fn readers_observe_only_serial_prefix_states_8_threads() {
    linearizable_epoch_scenario(8, 107);
}

/// The serving path must agree (within float tolerance — window boundaries
/// permute float accumulation order) with the raw stream replayed
/// update-by-update through a serial engine, coalescing included.
#[test]
fn served_endstate_matches_raw_stream_replay() {
    let (graph, model, store, updates) = bootstrap(211);
    let engine = RippleEngine::new(
        graph.clone(),
        model.clone(),
        store.clone(),
        RippleConfig::default(),
    )
    .unwrap();
    let handle = ripple::serve::spawn(
        engine,
        ServeConfig {
            max_batch: 7,
            ..Default::default()
        },
    );
    let client = handle.client();
    let (accepted, _) = client.submit_all(updates.clone());
    assert_eq!(accepted, updates.len());
    handle.flush().expect("alive");
    let served = handle.shutdown().expect("session failed");

    let mut reference = RippleEngine::new(graph, model, store, RippleConfig::default()).unwrap();
    for update in updates {
        reference
            .process_batch(&UpdateBatch::from_updates(vec![update]))
            .unwrap();
    }
    let diff = served
        .store()
        .max_diff_all_layers(reference.store())
        .unwrap();
    assert!(
        diff < 2e-3,
        "served endstate drifted from raw replay: {diff}"
    );
    assert_eq!(served.graph().num_edges(), reference.graph().num_edges());
}
