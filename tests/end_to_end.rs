//! End-to-end integration tests spanning every crate in the workspace:
//! dataset generation → update-stream construction → bootstrap inference →
//! streaming through all single-machine strategies → distributed execution.

use ripple::prelude::*;
use ripple_core::batch::VertexWiseEngine;

fn pipeline(workload: Workload, layers: usize) -> (StreamPlan, GnnModel, EmbeddingStore) {
    let spec = DatasetSpec::arxiv_like()
        .scaled_to(600)
        .with_avg_in_degree(5.0)
        .with_feature_dim(12);
    let full = spec
        .generate_weighted(11, workload.needs_edge_weights())
        .unwrap();
    let plan = build_stream(
        &full,
        &StreamConfig {
            holdout_fraction: 0.1,
            total_updates: 120,
            seed: 5,
        },
    )
    .unwrap();
    let model = workload
        .build_model(12, 16, spec.num_classes, layers, 3)
        .unwrap();
    let store = full_inference(&plan.snapshot, &model).unwrap();
    (plan, model, store)
}

#[test]
fn every_strategy_yields_identical_predictions_end_to_end() {
    for workload in Workload::all() {
        let (plan, model, store) = pipeline(workload, 2);
        let batches = plan.batches(30);

        let mut ripple = RippleEngine::new(
            plan.snapshot.clone(),
            model.clone(),
            store.clone(),
            RippleConfig::default(),
        )
        .unwrap();
        let mut rc = RecomputeEngine::new(
            plan.snapshot.clone(),
            model.clone(),
            store.clone(),
            RecomputeConfig::rc(),
        )
        .unwrap();
        let mut drc = RecomputeEngine::new(
            plan.snapshot.clone(),
            model.clone(),
            store.clone(),
            RecomputeConfig::drc(),
        )
        .unwrap();
        let mut dnc = VertexWiseEngine::new(plan.snapshot.clone(), model.clone(), store.clone());

        for batch in &batches {
            ripple.process_batch(batch).unwrap();
            StreamingEngine::process_batch(&mut rc, batch).unwrap();
            StreamingEngine::process_batch(&mut drc, batch).unwrap();
            dnc.process_batch(batch).unwrap();
        }

        // Ground truth: full inference over the final graph.
        let mut final_graph = plan.snapshot.clone();
        for batch in &batches {
            final_graph.apply_batch(batch).unwrap();
        }
        let reference = full_inference(&final_graph, &model).unwrap();

        for (name, store) in [
            ("ripple", ripple.store()),
            ("rc", rc.store()),
            ("drc", drc.store()),
        ] {
            let diff = store.max_diff_all_layers(&reference).unwrap();
            assert!(diff < 2e-3, "{workload} {name}: diff {diff}");
        }
        // The vertex-wise strategy only refreshes final-layer embeddings.
        let dnc_diff = dnc.current_store().max_final_diff(&reference).unwrap();
        assert!(dnc_diff < 2e-3, "{workload} dnc: diff {dnc_diff}");

        // Predicted labels — what a serving application actually reads — must
        // agree exactly.
        assert_eq!(
            ripple.store().predicted_labels(),
            reference.predicted_labels()
        );
    }
}

#[test]
fn distributed_and_single_machine_agree_end_to_end() {
    let (plan, model, store) = pipeline(Workload::GcS, 3);
    let batches = plan.batches(40);

    let mut single = RippleEngine::new(
        plan.snapshot.clone(),
        model.clone(),
        store.clone(),
        RippleConfig::default(),
    )
    .unwrap();

    for partitioner in ["hash", "ldg", "bfs"] {
        let partitioning: Partitioning = match partitioner {
            "hash" => HashPartitioner::new().partition(&plan.snapshot, 4).unwrap(),
            "ldg" => LdgPartitioner::new().partition(&plan.snapshot, 4).unwrap(),
            _ => BfsPartitioner::new().partition(&plan.snapshot, 4).unwrap(),
        };
        let mut dist = DistRippleEngine::new(
            &plan.snapshot,
            model.clone(),
            &store,
            partitioning,
            NetworkModel::ten_gbe(),
        )
        .unwrap();
        for batch in &batches {
            dist.process_batch(batch).unwrap();
        }
        // Run the single-machine engine only once.
        if partitioner == "hash" {
            for batch in &batches {
                single.process_batch(batch).unwrap();
            }
        }
        let diff = dist
            .gather_store()
            .max_diff_all_layers(single.store())
            .unwrap();
        assert!(diff < 2e-3, "{partitioner}: diff {diff}");
    }
}

#[test]
fn partitioners_produce_valid_partitions_on_generated_datasets() {
    let graph = DatasetSpec::products_like()
        .scaled_to(800)
        .with_avg_in_degree(8.0)
        .with_feature_dim(8)
        .generate(3)
        .unwrap();
    for parts in [2usize, 4, 7] {
        for (name, partitioning) in [
            (
                "hash",
                HashPartitioner::new().partition(&graph, parts).unwrap(),
            ),
            (
                "ldg",
                LdgPartitioner::new().partition(&graph, parts).unwrap(),
            ),
            (
                "bfs",
                BfsPartitioner::new().partition(&graph, parts).unwrap(),
            ),
        ] {
            assert_eq!(partitioning.num_vertices(), graph.num_vertices(), "{name}");
            assert_eq!(partitioning.num_parts(), parts, "{name}");
            let sizes = partitioning.part_sizes();
            assert_eq!(sizes.iter().sum::<usize>(), graph.num_vertices(), "{name}");
            assert!(
                partitioning.balance_factor() < 1.5,
                "{name} with {parts} parts is unbalanced: {}",
                partitioning.balance_factor()
            );
            let halos = ripple::graph::partition::HaloInfo::compute(&graph, &partitioning);
            assert!(
                halos.total_halo_replicas() <= partitioning.edge_cut(&graph),
                "{name}"
            );
        }
    }
}

#[test]
fn pruning_ablation_is_exact_and_never_slower_in_ops() {
    let (plan, model, store) = pipeline(Workload::GcS, 2);
    let batches = plan.batches(30);
    let mut exact = RippleEngine::new(
        plan.snapshot.clone(),
        model.clone(),
        store.clone(),
        RippleConfig::exact(),
    )
    .unwrap();
    let mut pruning = RippleEngine::new(
        plan.snapshot.clone(),
        model.clone(),
        store,
        RippleConfig::pruning(1e-6),
    )
    .unwrap();
    let mut exact_ops = 0usize;
    let mut pruning_ops = 0usize;
    for batch in &batches {
        exact_ops += exact.process_batch(batch).unwrap().aggregate_ops;
        pruning_ops += pruning.process_batch(batch).unwrap().aggregate_ops;
    }
    let diff = exact.store().max_diff_all_layers(pruning.store()).unwrap();
    assert!(diff < 1e-3, "pruning changed the result: {diff}");
    assert!(pruning_ops <= exact_ops, "pruning must not add work");
}

#[test]
fn stream_summary_reports_consistent_totals() {
    let (plan, model, store) = pipeline(Workload::GsS, 2);
    let batches = plan.batches(25);
    let mut engine =
        RippleEngine::new(plan.snapshot.clone(), model, store, RippleConfig::default()).unwrap();
    let summary = StreamRunner::run_to_summary(&mut engine, &batches, "ripple").unwrap();
    assert_eq!(summary.total_updates, 120);
    assert_eq!(summary.num_batches, batches.len());
    assert!(summary.total_time >= summary.median_latency);
    assert!(summary.p95_latency >= summary.median_latency);
    assert!(summary.throughput > 0.0);
}
