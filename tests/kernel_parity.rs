//! Property suite for the batched compute kernels: the GEMM-based paths
//! (`GnnLayer::forward_batch`, `layer_wise::reevaluate_slice_into`, batched
//! `full_inference`) must be **bit-identical** — not merely within tolerance
//! — to the per-vertex reference path for every `LayerKind x Aggregator`
//! combination on random graphs. Every kernel accumulates each output
//! element over the shared dimension in the same ascending order, so batching
//! must never change a single output bit; these tests pin that contract.

use proptest::prelude::*;
use ripple::gnn::layer_wise::{
    full_inference, full_inference_per_vertex, full_inference_with_pool, reevaluate_slice_into,
};
use ripple::gnn::GnnLayer;
use ripple::prelude::*;
use ripple::tensor::Scratch;

/// Asserts two equal-length f32 slices are identical bit for bit.
fn assert_bits_eq(a: &[f32], b: &[f32], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: width mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{context}: element {i} differs ({x} vs {y})"
        );
    }
}

/// Asserts every embedding and raw-aggregate table of two stores is
/// bit-identical.
fn assert_stores_bits_eq(a: &EmbeddingStore, b: &EmbeddingStore, context: &str) {
    assert_eq!(a.num_layers(), b.num_layers());
    assert_eq!(a.num_vertices(), b.num_vertices());
    for l in 0..=a.num_layers() {
        assert_bits_eq(
            a.embeddings(l).as_slice(),
            b.embeddings(l).as_slice(),
            &format!("{context}: embeddings hop {l}"),
        );
    }
    for l in 1..=a.num_layers() {
        assert_bits_eq(
            a.aggregates(l).as_slice(),
            b.aggregates(l).as_slice(),
            &format!("{context}: aggregates hop {l}"),
        );
    }
}

fn kinds() -> [LayerKind; 3] {
    [LayerKind::GraphConv, LayerKind::Sage, LayerKind::Gin]
}

/// Exhaustive `LayerKind x Aggregator` sweep: the batched bootstrap path
/// (serial and pool-sharded) is bit-identical to the per-vertex reference.
#[test]
fn batched_full_inference_is_bit_identical_for_every_kind_and_aggregator() {
    for (gi, &kind) in kinds().iter().enumerate() {
        for (ai, &agg) in Aggregator::all().iter().enumerate() {
            let seed = 100 + (gi * 3 + ai) as u64;
            let graph = DatasetSpec::custom(70, 4.0, 6, 4)
                .generate_weighted(seed, agg == Aggregator::WeightedSum)
                .unwrap();
            let model = GnnModel::new(kind, agg, &[6, 16, 4], seed ^ 0xbeef).unwrap();
            let reference = full_inference_per_vertex(&graph, &model).unwrap();
            let batched = full_inference(&graph, &model).unwrap();
            assert_stores_bits_eq(&batched, &reference, &format!("{kind}/{agg} serial"));
            for threads in [2usize, 5] {
                let sharded =
                    full_inference_with_pool(&graph, &model, &WorkerPool::new(threads)).unwrap();
                assert_stores_bits_eq(
                    &sharded,
                    &reference,
                    &format!("{kind}/{agg} {threads} threads"),
                );
            }
        }
    }
}

/// Exhaustive `LayerKind x Aggregator` sweep: `reevaluate_slice_into`'s flat
/// output block is bit-identical to finalize+forward per vertex, including
/// on perturbed (mid-propagation-like) aggregates.
#[test]
fn reevaluate_slice_into_is_bit_identical_to_per_vertex_path() {
    for &kind in &kinds() {
        for &agg in &Aggregator::all() {
            let graph = DatasetSpec::custom(60, 4.0, 6, 4)
                .generate_weighted(7, agg == Aggregator::WeightedSum)
                .unwrap();
            let model = GnnModel::new(kind, agg, &[6, 10, 4], 31).unwrap();
            let mut store = full_inference(&graph, &model).unwrap();
            // Perturb aggregates so this is not a no-op replay of stored rows.
            for v in (0..60).step_by(4) {
                ripple::tensor::add_assign(store.aggregate_mut(1, VertexId(v)), &[0.125; 6]);
            }
            let vertices: Vec<VertexId> = (0..60).step_by(2).map(VertexId).collect();
            let mut scratch = Scratch::new();
            for hop in 1..=2 {
                reevaluate_slice_into(&graph, &model, &store, hop, &vertices, &mut scratch)
                    .unwrap();
                let layer = model.layer(hop).unwrap();
                for (i, &v) in vertices.iter().enumerate() {
                    let finalized = model
                        .aggregator()
                        .finalize(store.aggregate(hop, v), graph.in_degree(v));
                    let expected = layer
                        .forward(store.embedding(hop - 1, v), &finalized)
                        .unwrap();
                    assert_bits_eq(
                        scratch.out.row(i),
                        &expected,
                        &format!("{kind}/{agg} hop {hop} vertex {v}"),
                    );
                }
            }
        }
    }
}

/// `forward_batch` on hand-packed operands is bit-identical to `forward` on
/// each row, for every kind (direct unit-level check of the GEMM fusion).
#[test]
fn forward_batch_matches_forward_row_by_row() {
    use ripple::tensor::Matrix;
    for &kind in &kinds() {
        let layer =
            GnnLayer::new(kind, 5, 9, ripple::tensor::activation::Activation::Relu, 77).unwrap();
        let aggregates = ripple::tensor::init::uniform(13, 5, -1.5, 1.5, 3);
        let self_prev = ripple::tensor::init::uniform(13, 5, -1.5, 1.5, 4);
        let mut tmp = Matrix::default();
        let mut out = Matrix::default();
        layer
            .forward_batch(&self_prev, &aggregates, &mut tmp, &mut out)
            .unwrap();
        assert_eq!(out.shape(), (13, 9));
        for i in 0..13 {
            let expected = layer.forward(self_prev.row(i), aggregates.row(i)).unwrap();
            assert_bits_eq(out.row(i), &expected, &format!("{kind} row {i}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 18, ..ProptestConfig::default() })]

    /// Random graphs, dimensions, kinds and aggregators: batched bootstrap
    /// inference never diverges from the per-vertex reference by a single
    /// bit, and streaming a random batch through the (batched-kernel) engine
    /// matches the old tolerance-based exactness expectations.
    #[test]
    fn batched_kernels_are_bit_identical_on_random_graphs(
        seed in 0u64..400,
        kind_idx in 0usize..3,
        agg_idx in 0usize..3,
        num_vertices in 20usize..80,
        hidden in 4usize..24,
        num_layers in 1usize..4,
    ) {
        let kind = kinds()[kind_idx];
        let agg = Aggregator::all()[agg_idx];
        let graph = DatasetSpec::custom(num_vertices, 3.5, 5, 3)
            .generate_weighted(seed, agg == Aggregator::WeightedSum)
            .unwrap();
        let mut dims = vec![5usize];
        dims.extend(std::iter::repeat_n(hidden, num_layers.saturating_sub(1)));
        dims.push(3);
        let model = GnnModel::new(kind, agg, &dims, seed ^ 0xabc).unwrap();
        let reference = full_inference_per_vertex(&graph, &model).unwrap();
        let batched = full_inference_with_pool(&graph, &model, &WorkerPool::new(3)).unwrap();
        assert_stores_bits_eq(&batched, &reference, &format!("{kind}/{agg} random"));
    }
}
