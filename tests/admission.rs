//! Bit-identity of the footprint-based concurrent admission pipeline.
//!
//! The contract under test: turning on concurrent admission — at **any**
//! in-flight depth — changes only *when* windows execute, never *what* they
//! produce. Every published epoch, every per-window counter stamp and the
//! final engine spine (store, graph, topology epoch) must be bit-identical
//! to the serial one-window-at-a-time scheduler on the same update stream
//! with the same window boundaries.
//!
//! Three regimes are exercised:
//!
//! * random update streams (adds, deletes, feature rewrites) from the
//!   workspace's seeded stream generator, at depths 1, 2 and 4;
//! * a conflict-heavy **hub churn** stream where every window touches one
//!   hub vertex's cone, so the controller must serialize window after
//!   window — and still land bit-identical;
//! * a block-disjoint graph where consecutive windows touch disconnected
//!   components, so groups actually fill and the merged-pass machinery
//!   (one engine pass, per-window epoch reconstruction) is on the hook.

use proptest::prelude::*;
use ripple::prelude::*;
use ripple::serve::MetricsReport;
use std::time::Duration;

fn serve_config(max_batch: usize, inflight: Option<usize>) -> ServeConfig {
    let builder = ServeConfig::builder()
        .max_batch(max_batch)
        .max_delay(Duration::from_secs(60))
        .record_batches(true);
    let builder = match inflight {
        Some(depth) => builder.concurrent_admission(depth),
        None => builder,
    };
    builder.build().unwrap()
}

fn engine(graph: &DynamicGraph, model: &GnnModel, store: &EmbeddingStore) -> RippleEngine {
    RippleEngine::new(
        graph.clone(),
        model.clone(),
        store.clone(),
        RippleConfig::default(),
    )
    .unwrap()
}

fn bootstrap(seed: u64) -> (DynamicGraph, GnnModel, EmbeddingStore, Vec<GraphUpdate>) {
    let full = DatasetSpec::custom(120, 4.0, 6, 4).generate(seed).unwrap();
    let plan = build_stream(
        &full,
        &StreamConfig {
            total_updates: 48,
            seed: seed ^ 1,
            ..Default::default()
        },
    )
    .unwrap();
    let model = Workload::GcS.build_model(6, 8, 4, 2, seed ^ 2).unwrap();
    let store = full_inference(&plan.snapshot, &model).unwrap();
    let updates = plan
        .batches(1)
        .into_iter()
        .flat_map(UpdateBatch::into_updates)
        .collect();
    (plan.snapshot, model, store, updates)
}

/// Everything one serving run leaves behind that admission must not change.
struct RunOutcome {
    engine: RippleEngine,
    /// Per committed window: `(window_seq, raw, epoch, applied_seq,
    /// topology_epoch)` plus the coalesced batch itself.
    records: Vec<(u64, u64, u64, u64, u64, UpdateBatch)>,
    report: MetricsReport,
}

fn run_stream(
    graph: &DynamicGraph,
    model: &GnnModel,
    store: &EmbeddingStore,
    updates: &[GraphUpdate],
    config: ServeConfig,
) -> RunOutcome {
    let handle = spawn_serve(engine(graph, model, store), config).unwrap();
    let client = handle.client();
    for update in updates {
        client.submit(update.clone());
    }
    // The flush message queues behind every update, so it both absorbs the
    // stream tail and drains whatever the admission controller staged.
    handle.flush().expect("scheduler alive");
    let records = handle
        .flush_log()
        .expect("record_batches on")
        .snapshot()
        .into_iter()
        .map(|r| {
            (
                r.window_seq,
                r.raw,
                r.epoch,
                r.applied_seq,
                r.topology_epoch,
                r.batch,
            )
        })
        .collect();
    let report = handle.metrics().report();
    let engine = handle.shutdown().unwrap();
    RunOutcome {
        engine,
        records,
        report,
    }
}

fn assert_matches_serial(concurrent: &RunOutcome, serial: &RunOutcome, what: &str) {
    assert_eq!(
        concurrent.records, serial.records,
        "{what}: per-window commit stamps diverged from the serial pipeline"
    );
    assert_eq!(
        concurrent.report.epochs, serial.report.epochs,
        "{what}: epoch count diverged"
    );
    assert_eq!(
        concurrent.report.applied, serial.report.applied,
        "{what}: applied counter diverged"
    );
    assert!(
        concurrent.engine.store() == serial.engine.store(),
        "{what}: final store diverged from the serial pipeline"
    );
    assert!(
        concurrent.engine.graph() == serial.engine.graph(),
        "{what}: final graph diverged from the serial pipeline"
    );
    assert_eq!(
        concurrent.engine.topology_epoch(),
        serial.engine.topology_epoch(),
        "{what}: topology epoch diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    /// Random streams: admission at depths 1, 2 and 4 is bit-identical to
    /// the serial scheduler — same windows, same stamps, same spine.
    #[test]
    fn admission_is_bit_identical_on_random_streams(
        seed in 0u64..100,
        max_batch in 3usize..7,
    ) {
        let (graph, model, store, updates) = bootstrap(seed);
        let serial = run_stream(&graph, &model, &store, &updates, serve_config(max_batch, None));
        prop_assert!(serial.records.len() > 1, "stream must span several windows");
        for depth in [1usize, 2, 4] {
            let concurrent = run_stream(
                &graph,
                &model,
                &store,
                &updates,
                serve_config(max_batch, Some(depth)),
            );
            assert_matches_serial(&concurrent, &serial, &format!("depth {depth}"));
        }
    }

    /// Hub churn: every window rewrites the hub's feature (plus a random
    /// bystander), so every staged group conflicts with the next window.
    /// The controller must serialize — counted — and stay bit-identical.
    #[test]
    fn hub_churn_serializes_and_stays_bit_identical(seed in 0u64..100) {
        let (graph, model, store, _) = bootstrap(seed);
        let dim = graph.feature_dim();
        let n = graph.num_vertices() as u64;
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let updates: Vec<GraphUpdate> = (0..48)
            .map(|i| {
                let r = next();
                if i % 2 == 0 {
                    GraphUpdate::update_feature(
                        VertexId(0),
                        vec![(r % 16) as f32 * 0.0625; dim],
                    )
                } else {
                    GraphUpdate::update_feature(
                        VertexId((r % n) as u32),
                        vec![(r % 8) as f32 * 0.125; dim],
                    )
                }
            })
            .collect();

        let serial = run_stream(&graph, &model, &store, &updates, serve_config(4, None));
        for depth in [2usize, 4] {
            let concurrent =
                run_stream(&graph, &model, &store, &updates, serve_config(4, Some(depth)));
            prop_assert!(
                concurrent.report.conflicts > 0,
                "every window shares the hub cone: conflicts must be detected"
            );
            prop_assert_eq!(
                concurrent.report.conflicts,
                concurrent.report.serialized,
                "each conflict serializes exactly one window"
            );
            assert_matches_serial(&concurrent, &serial, &format!("hub churn depth {depth}"));
        }
    }
}

/// Disconnected blocks: consecutive windows touch different components, so
/// their footprints are disjoint and groups fill to the in-flight cap. The
/// merged pass must actually fire (admitted_concurrent > 0) and commit each
/// window's epoch bit-identical to the serial run.
#[test]
fn disjoint_blocks_fill_groups_and_stay_bit_identical() {
    const BLOCKS: usize = 8;
    const PER: usize = 8;
    const DIM: usize = 6;
    let mut edges = Vec::new();
    for b in 0..BLOCKS {
        for i in 0..PER {
            let src = (b * PER + i) as u32;
            let dst = (b * PER + (i + 1) % PER) as u32;
            edges.push((VertexId(src), VertexId(dst)));
        }
    }
    let graph = DynamicGraph::from_edges(BLOCKS * PER, DIM, &edges).unwrap();
    let model = Workload::GcS.build_model(DIM, 8, 4, 2, 17).unwrap();
    let store = full_inference(&graph, &model).unwrap();

    // Four feature rewrites per block visit = exactly one size-4 window per
    // block, cycling through all blocks twice.
    let mut updates = Vec::new();
    for round in 0..2 {
        for b in 0..BLOCKS {
            for j in 0..4 {
                updates.push(GraphUpdate::update_feature(
                    VertexId((b * PER + j) as u32),
                    vec![(round * BLOCKS + b + j) as f32 * 0.03125; DIM],
                ));
            }
        }
    }

    let serial = run_stream(&graph, &model, &store, &updates, serve_config(4, None));
    assert_eq!(
        serial.records.len(),
        2 * BLOCKS,
        "one window per block visit"
    );
    let concurrent = run_stream(&graph, &model, &store, &updates, serve_config(4, Some(4)));
    assert!(
        concurrent.report.admitted_concurrent > 0,
        "disjoint windows must actually group: {}",
        concurrent.report
    );
    assert!(
        concurrent.report.merged > 0,
        "groups of several windows must merge into one pass: {}",
        concurrent.report
    );
    assert_eq!(
        concurrent.report.conflicts, 0,
        "disconnected blocks can never conflict: {}",
        concurrent.report
    );
    assert_matches_serial(&concurrent, &serial, "disjoint blocks");
}
