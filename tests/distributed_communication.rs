//! Integration tests of the distributed runtime's communication accounting —
//! the measurements behind the paper's Fig 12c (compute vs communication
//! split) and its ~70x communication-reduction claim.

use ripple::prelude::*;

fn prepared(
    num_vertices: usize,
    batch_size: usize,
    layers: usize,
) -> (DynamicGraph, GnnModel, EmbeddingStore, Vec<UpdateBatch>) {
    let spec = DatasetSpec::papers_like()
        .scaled_to(num_vertices)
        .with_avg_in_degree(6.0)
        .with_feature_dim(16);
    let full = spec.generate(21).unwrap();
    let plan = build_stream(
        &full,
        &StreamConfig {
            holdout_fraction: 0.1,
            total_updates: batch_size * 3,
            seed: 8,
        },
    )
    .unwrap();
    let model = Workload::GcS.build_model(16, 16, 8, layers, 2).unwrap();
    let store = full_inference(&plan.snapshot, &model).unwrap();
    let batches = plan.batches(batch_size);
    (plan.snapshot, model, store, batches)
}

#[test]
fn ripple_communicates_less_than_rc_in_the_sparse_regime() {
    let (snapshot, model, store, batches) = prepared(2000, 5, 3);
    let partitioning = LdgPartitioner::new().partition(&snapshot, 4).unwrap();
    let network = NetworkModel::ten_gbe();
    let mut ripple = DistRippleEngine::new(
        &snapshot,
        model.clone(),
        &store,
        partitioning.clone(),
        network,
    )
    .unwrap();
    let mut rc = DistRecomputeEngine::new(&snapshot, model, &store, partitioning, network).unwrap();

    let mut ripple_bytes = 0usize;
    let mut rc_bytes = 0usize;
    for batch in &batches {
        ripple_bytes += ripple.process_batch(batch).unwrap().comm.bytes;
        rc_bytes += rc.process_batch(batch).unwrap().comm.bytes;
    }
    assert!(
        rc_bytes > ripple_bytes,
        "expected RC to move more bytes: rc={rc_bytes} ripple={ripple_bytes}"
    );
    // The two strategies still agree on the embeddings they own.
    let diff = ripple
        .gather_store()
        .max_final_diff(&rc.gather_store())
        .unwrap();
    assert!(diff < 2e-3);
}

#[test]
fn better_partitioning_reduces_halo_traffic() {
    let (snapshot, model, store, batches) = prepared(1500, 10, 2);
    let network = NetworkModel::ten_gbe();
    let mut bytes_per_partitioner = Vec::new();
    for (name, partitioning) in [
        (
            "hash",
            HashPartitioner::new().partition(&snapshot, 4).unwrap(),
        ),
        (
            "ldg",
            LdgPartitioner::new().partition(&snapshot, 4).unwrap(),
        ),
    ] {
        let cut = partitioning.edge_cut_fraction(&snapshot);
        let mut engine =
            DistRippleEngine::new(&snapshot, model.clone(), &store, partitioning, network).unwrap();
        let mut bytes = 0usize;
        for batch in &batches {
            bytes += engine.process_batch(batch).unwrap().comm.bytes;
        }
        bytes_per_partitioner.push((name, cut, bytes));
    }
    let (_, hash_cut, hash_bytes) = bytes_per_partitioner[0];
    let (_, ldg_cut, ldg_bytes) = bytes_per_partitioner[1];
    assert!(
        ldg_cut < hash_cut,
        "LDG should cut fewer edges than hashing"
    );
    assert!(
        ldg_bytes <= hash_bytes,
        "a lower edge cut should not increase halo traffic: ldg={ldg_bytes} hash={hash_bytes}"
    );
}

#[test]
fn more_partitions_increase_communication_but_not_results() {
    let (snapshot, model, store, batches) = prepared(1200, 10, 2);
    let network = NetworkModel::ten_gbe();
    let mut previous_store: Option<EmbeddingStore> = None;
    let mut bytes_by_parts = Vec::new();
    for parts in [2usize, 4, 8] {
        let partitioning = LdgPartitioner::new().partition(&snapshot, parts).unwrap();
        let mut engine =
            DistRippleEngine::new(&snapshot, model.clone(), &store, partitioning, network).unwrap();
        let mut bytes = 0usize;
        for batch in &batches {
            bytes += engine.process_batch(batch).unwrap().comm.bytes;
        }
        bytes_by_parts.push(bytes);
        let gathered = engine.gather_store();
        if let Some(prev) = &previous_store {
            assert!(gathered.max_diff_all_layers(prev).unwrap() < 2e-3);
        }
        previous_store = Some(gathered);
    }
    assert!(
        bytes_by_parts[0] <= bytes_by_parts[2],
        "more partitions should not reduce halo traffic: {bytes_by_parts:?}"
    );
}

#[test]
fn network_model_converts_bytes_to_time() {
    let (snapshot, model, store, batches) = prepared(800, 10, 2);
    let partitioning = LdgPartitioner::new().partition(&snapshot, 4).unwrap();
    // A deliberately slow network makes communication the dominant cost.
    let slow = NetworkModel {
        bandwidth_bytes_per_sec: 1e4,
        latency: std::time::Duration::from_millis(5),
    };
    let mut engine = DistRippleEngine::new(&snapshot, model, &store, partitioning, slow).unwrap();
    let stats = engine.process_batch(&batches[0]).unwrap();
    if stats.comm.bytes > 0 {
        assert!(stats.comm_time > stats.compute_time);
    }
    assert!(stats.total_time() >= stats.comm_time);
}
