//! Crash-recovery property tests for the durable serving tier.
//!
//! The durability contract under test: a serving session that crashes at
//! **any** point — before a WAL append, mid-append (torn frame), after the
//! append, after the epoch published, or mid-checkpoint — must recover to a
//! state **bit-identical** to a never-crashed engine replaying exactly the
//! windows that became durable. "State" here is the whole compute spine:
//! the embedding store, the dynamic graph, the CSR topology snapshot at the
//! resumed topology epoch, and the IVF top-k index rebuilt from the
//! recovered store.
//!
//! The crash sites are driven through the WAL's own fail-point hooks
//! ([`ripple::serve::FailPoints`]), so every test kills the scheduler
//! inside the real write path rather than simulating one. Torn writes are
//! additionally exercised byte by byte: the last frame of a healthy log is
//! truncated at **every** offset and recovery must drop exactly the torn
//! tail, never a valid prefix frame.

use proptest::prelude::*;
use ripple::core::{DeltaMessage, ShardEngine};
use ripple::prelude::*;
use ripple::serve::durability::{encode_frame, read_wal, recover};
use ripple::serve::index::IndexMaintainer;
use ripple::serve::{
    DurabilityConfig, FailPoints, FsyncPolicy, PartitionId, FP_AFTER_PUBLISH, FP_CKPT_MID,
    FP_WAL_AFTER_APPEND, FP_WAL_BEFORE_APPEND, FP_WAL_TORN_APPEND,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const SITES: [&str; 5] = [
    FP_WAL_BEFORE_APPEND,
    FP_WAL_TORN_APPEND,
    FP_WAL_AFTER_APPEND,
    FP_AFTER_PUBLISH,
    FP_CKPT_MID,
];

/// A fresh scratch directory, unique per test *and* per proptest case so
/// concurrently running tests never share WAL state.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ripple-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bootstrap(seed: u64) -> (DynamicGraph, GnnModel, EmbeddingStore, Vec<GraphUpdate>) {
    let full = DatasetSpec::custom(120, 4.0, 6, 4).generate(seed).unwrap();
    let plan = build_stream(
        &full,
        &StreamConfig {
            total_updates: 40,
            seed: seed ^ 1,
            ..Default::default()
        },
    )
    .unwrap();
    let model = Workload::GcS.build_model(6, 8, 4, 2, seed ^ 2).unwrap();
    let store = full_inference(&plan.snapshot, &model).unwrap();
    let updates = plan
        .batches(1)
        .into_iter()
        .flat_map(UpdateBatch::into_updates)
        .collect();
    (plan.snapshot, model, store, updates)
}

fn engine(graph: &DynamicGraph, model: &GnnModel, store: &EmbeddingStore) -> RippleEngine {
    RippleEngine::new(
        graph.clone(),
        model.clone(),
        store.clone(),
        RippleConfig::default(),
    )
    .unwrap()
}

/// A serve config with durability into `dir`, long time windows (flushes in
/// these tests are explicit) and `fail` consulted by the WAL paths.
fn durable_config(dir: &Path, checkpoint_every: u64, fail: &FailPoints) -> ServeConfig {
    durable_config_with(dir, checkpoint_every, fail, FsyncPolicy::Never, 0)
}

/// [`durable_config`] with an explicit fsync policy and, when `inflight`
/// is nonzero, concurrent admission at that depth — so the crash-site
/// proptest also drives the group-commit (`append_unsynced` + one `sync`)
/// WAL path and the group checkpoint boundary.
fn durable_config_with(
    dir: &Path,
    checkpoint_every: u64,
    fail: &FailPoints,
    fsync: FsyncPolicy,
    inflight: usize,
) -> ServeConfig {
    let builder = ServeConfig::builder()
        .max_batch(64)
        .max_delay(Duration::from_secs(60))
        .record_batches(true)
        .durability(
            DurabilityConfig::new(dir)
                .checkpoint_every(checkpoint_every)
                .fsync(fsync)
                .fail_points(fail.clone()),
        );
    let builder = if inflight > 0 {
        builder.concurrent_admission(inflight)
    } else {
        builder
    };
    builder.build().unwrap()
}

/// Replays the durable single-engine WAL from bootstrap: the uncrashed
/// ground truth every recovery must reproduce bit for bit.
fn reference_replay(
    graph: &DynamicGraph,
    model: &GnnModel,
    store: &EmbeddingStore,
    dir: &Path,
) -> RippleEngine {
    let mut reference = engine(graph, model, store);
    for frame in &read_wal(dir).unwrap().frames {
        if !frame.batch.is_empty() {
            reference.process_batch(&frame.batch).unwrap();
        }
    }
    reference
}

/// Asserts full-spine bit-identity: store, graph, topology epoch, the CSR
/// snapshot at that epoch, and the IVF index rebuilt from the store.
fn assert_bit_identical(recovered: &RippleEngine, reference: &RippleEngine, what: &str) {
    assert!(
        recovered.store() == reference.store(),
        "{what}: recovered store diverged from the uncrashed replay"
    );
    assert!(
        recovered.graph() == reference.graph(),
        "{what}: recovered graph diverged from the uncrashed replay"
    );
    assert_eq!(
        recovered.topology_epoch(),
        reference.topology_epoch(),
        "{what}: topology epoch diverged"
    );
    // CSR bit-parity is a read-level contract: the rebuilt snapshot must
    // serve every adjacency read identically at the same resumed epoch.
    let rec_snap = CsrSnapshot::from_dynamic_at(recovered.graph(), recovered.topology_epoch());
    let ref_snap = CsrSnapshot::from_dynamic_at(reference.graph(), reference.topology_epoch());
    assert_eq!(
        rec_snap.epoch(),
        ref_snap.epoch(),
        "{what}: CSR epoch diverged"
    );
    for v in 0..recovered.graph().num_vertices() as u32 {
        let v = VertexId(v);
        assert_eq!(
            rec_snap.out_neighbors(v),
            ref_snap.out_neighbors(v),
            "{what}: CSR out-adjacency of {v} diverged"
        );
        assert_eq!(
            rec_snap.in_neighbors(v),
            ref_snap.in_neighbors(v),
            "{what}: CSR in-adjacency of {v} diverged"
        );
    }
    let (_, mut recovered_idx) =
        IndexMaintainer::bootstrap(recovered.store(), None, IndexParams::default());
    let (_, mut reference_idx) =
        IndexMaintainer::bootstrap(reference.store(), None, IndexParams::default());
    assert!(
        recovered_idx.index().contents_eq(reference_idx.index()),
        "{what}: IVF index rebuilt from the recovered store diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    /// Random crash point × random update stream: recovery lands the whole
    /// compute spine bit-identical to a never-crashed replay of the durable
    /// windows, and the resumed session continues the epoch sequence.
    #[test]
    fn random_crash_recovers_bit_identically(
        seed in 0u64..200,
        site in 0usize..5,
        after_hits in 0u64..3,
        arm_at in 1usize..4,
        always_fsync in 0u8..2,
        inflight in 0usize..3,
    ) {
        let (graph, model, store, updates) = bootstrap(seed);
        let dir = scratch_dir(&format!("prop-{seed}-{site}-{after_hits}-{arm_at}"));
        let fail = FailPoints::new();
        let fsync = if always_fsync == 1 { FsyncPolicy::Always } else { FsyncPolicy::Never };
        let config = durable_config_with(&dir, 2, &fail, fsync, inflight * 2);

        // Crashed run: flush explicit windows; arm the fail point partway
        // through, then keep driving until it kills the scheduler.
        let handle = spawn_serve(engine(&graph, &model, &store), config.clone()).unwrap();
        let client = handle.client();
        for (i, chunk) in updates.chunks(5).enumerate() {
            if i == arm_at {
                fail.arm(SITES[site], after_hits);
            }
            for update in chunk {
                client.submit(update.clone());
            }
            if handle.flush().is_none() {
                break;
            }
        }
        // The stream may end before the armed site fired (e.g. a checkpoint
        // site with a cadence the run never reached): push always-valid
        // feature rewrites until the crash lands.
        let mut extra = 0u32;
        while handle.failure().is_none() && extra < 64 {
            client.submit(GraphUpdate::update_feature(
                VertexId(extra % graph.num_vertices() as u32),
                vec![0.25; graph.feature_dim()],
            ));
            if handle.flush().is_none() {
                break;
            }
            extra += 1;
        }
        // `shutdown` joins the scheduler thread, so it observes the typed
        // failure race-free (a mid-flush death can surface to `flush()`
        // before the failure slot is written).
        prop_assert!(
            handle.shutdown().is_err(),
            "armed fail point never fired: the crash run shut down cleanly"
        );
        fail.disarm_all();

        // Ground truth and the read-only view of what recovery will replay.
        let reference = reference_replay(&graph, &model, &store, &dir);
        let durable = recover(&dir).unwrap();
        let last_epoch = read_wal(&dir).unwrap().frames.last().map_or(0, |f| f.epoch);

        // Recovery run: spawn from the original bootstrap state against the
        // same directory; its engine must be bit-identical to the reference.
        let handle = spawn_serve(engine(&graph, &model, &store), config.clone()).unwrap();
        let report = handle.recovery_report().expect("durable session reports recovery");
        prop_assert_eq!(report.resumed_window_seq, durable.resumed_window_seq());
        prop_assert_eq!(report.replayed_windows, durable.frames.len() as u64);
        let recovered = handle.shutdown().unwrap();
        assert_bit_identical(&recovered, &reference, "single-engine crash");

        // Continuation: a resumed session extends the epoch sequence rather
        // than restarting it. Resumption starts from bootstrap state — the
        // recovery contract restores a checkpoint (when one exists) and
        // replays the WAL tail on top, so handing it an engine that already
        // contains replayed windows would double-apply any tail not covered
        // by a checkpoint.
        let handle = spawn_serve(engine(&graph, &model, &store), config).unwrap();
        client_submit_one(&handle, &graph);
        prop_assert_eq!(handle.flush(), Some(last_epoch + 1));
        handle.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}

fn client_submit_one(handle: &ripple::serve::ServeHandle<RippleEngine>, graph: &DynamicGraph) {
    handle.client().submit(GraphUpdate::update_feature(
        VertexId(1),
        vec![0.5; graph.feature_dim()],
    ));
}

/// A window whose updates fully cancel (add then delete of a new edge) is
/// still *logged*: it consumes a `window_seq`, publishes an epoch, and
/// recovery reproduces its counters — distinguishing it from a skipped
/// flush, which consumes nothing.
#[test]
fn fully_cancelled_window_is_logged_not_skipped() {
    let (graph, model, store, _) = bootstrap(7);
    let dir = scratch_dir("cancelled-window");
    let fail = FailPoints::new();
    let config = durable_config(&dir, 0, &fail);

    // An edge guaranteed absent from the bootstrap graph, so its add+delete
    // coalesces to nothing.
    let (a, b) = (0..graph.num_vertices() as u32)
        .flat_map(|a| (0..graph.num_vertices() as u32).map(move |b| (a, b)))
        .find(|&(a, b)| a != b && !graph.out_neighbors(VertexId(a)).contains(&VertexId(b)))
        .expect("a sparse graph has a missing edge");

    let handle = spawn_serve(engine(&graph, &model, &store), config.clone()).unwrap();
    let client = handle.client();
    client.submit(GraphUpdate::add_edge(VertexId(a), VertexId(b)));
    client.submit(GraphUpdate::delete_edge(VertexId(a), VertexId(b)));
    assert_eq!(handle.flush(), Some(1), "empty window still publishes");
    // A skipped flush by contrast: nothing pending, no sequence consumed.
    assert_eq!(handle.flush(), Some(1));
    let log = handle.flush_log().expect("record_batches on");
    let records = log.snapshot();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].window_seq, 1);
    assert_eq!(records[0].raw, 2);
    assert!(records[0].batch.is_empty());
    handle.shutdown().unwrap();

    let scan = read_wal(&dir).unwrap();
    assert_eq!(scan.frames.len(), 1);
    assert_eq!(scan.frames[0].window_seq, 1);
    assert_eq!(scan.frames[0].raw, 2);
    assert!(scan.frames[0].batch.is_empty());
    assert_eq!(scan.frames[0].applied_seq, 2);

    // Recovery adopts the logged counters even though no engine work runs.
    let handle = spawn_serve(engine(&graph, &model, &store), config).unwrap();
    let report = handle.recovery_report().unwrap();
    assert_eq!(report.resumed_window_seq, 1);
    assert_eq!(report.resumed_epoch, 1);
    assert_eq!(report.replayed_windows, 1);
    let recovered = handle.shutdown().unwrap();
    assert!(
        recovered.store() == &store,
        "cancelled window must be a no-op"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Truncates the WAL at every byte offset of the last frame: recovery must
/// drop exactly the torn tail and keep every preceding frame.
#[test]
fn torn_tail_is_dropped_at_every_byte_offset() {
    let (graph, model, store, updates) = bootstrap(13);
    let dir = scratch_dir("torn-tail");
    let fail = FailPoints::new();
    let config = durable_config(&dir, 0, &fail);

    let handle = spawn_serve(engine(&graph, &model, &store), config).unwrap();
    let client = handle.client();
    for chunk in updates.chunks(8).take(3) {
        for update in chunk {
            client.submit(update.clone());
        }
        handle.flush().unwrap();
    }
    handle.shutdown().unwrap();

    let scan = read_wal(&dir).unwrap();
    assert_eq!(scan.frames.len(), 3);
    let segment = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|x| x == "log"))
        .expect("one WAL segment");
    let bytes = std::fs::read(&segment).unwrap();
    let last_len = encode_frame(&scan.frames[2]).len();
    assert!(bytes.len() >= last_len);
    let boundary = bytes.len() - last_len;

    let torn_dir = scratch_dir("torn-tail-cut");
    std::fs::create_dir_all(&torn_dir).unwrap();
    let torn_segment = torn_dir.join(segment.file_name().unwrap());
    for cut in boundary..bytes.len() {
        std::fs::write(&torn_segment, &bytes[..cut]).unwrap();
        let recovered = recover(&torn_dir).unwrap();
        assert_eq!(
            recovered.frames.len(),
            2,
            "cut at {cut} (frame byte {}) must keep exactly the intact frames",
            cut - boundary
        );
        assert_eq!(recovered.frames[1].window_seq, 2);
        assert_eq!(recovered.dropped_tail_bytes, (cut - boundary) as u64);
    }
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&torn_dir);
}

/// Two-shard crash: each shard recovers from its own `shard-{p}/` stream
/// and lands bit-identical to a fresh [`ShardEngine`] replaying that
/// shard's durable windows (coalesced batches plus logged received halos).
///
/// Recovery additionally **re-ships** the outgoing halo deltas regenerated
/// while replaying each durable window, repairing deltas that were in
/// flight between shards when the crash hit; receivers drop the re-shipped
/// copies they already logged (watermark dedup) and absorb the rest as
/// ordinary logged windows. The ground truth is therefore taken from each
/// shard's WAL *after* the recovered tier quiesces and shuts down: every
/// window the shard committed — pre-crash and repaired — is in that log,
/// and replaying it from bootstrap must reproduce the recovered state bit
/// for bit.
#[test]
fn two_shard_crash_recovers_bit_identically_per_shard() {
    for seed in [3u64, 11] {
        let (graph, model, store, updates) = bootstrap(seed);
        let dir = scratch_dir(&format!("sharded-{seed}"));
        let fail = FailPoints::new();
        let config = durable_config(&dir, 2, &fail);
        let durability = config.durability.clone().unwrap();

        let handle = spawn_sharded(
            &graph,
            &model,
            &store,
            RippleConfig::default(),
            config.clone(),
            2,
        )
        .unwrap();
        let router = handle.client();
        for (i, chunk) in updates.chunks(6).enumerate() {
            if i == 2 {
                fail.arm(FP_WAL_AFTER_APPEND, 1);
            }
            for update in chunk {
                router.submit(update.clone());
            }
            if handle.flush().is_none() {
                break;
            }
        }
        let mut extra = 0u32;
        while handle.flush().is_some() && extra < 64 {
            router.submit(GraphUpdate::update_feature(
                VertexId(extra % graph.num_vertices() as u32),
                vec![0.75; graph.feature_dim()],
            ));
            extra += 1;
        }
        let crash = handle.shutdown();
        assert!(crash.is_err(), "the armed shard must fail the tier");
        fail.disarm_all();

        // Recovery: respawn the tier on the same directory and gather the
        // recovered shard engines. Shutdown quiesces re-shipped in-flight
        // halos first, so any repaired delta is applied — and logged — by
        // the time the engines come back.
        let handle =
            spawn_sharded(&graph, &model, &store, RippleConfig::default(), config, 2).unwrap();
        let reports = handle.recovery_reports();
        assert_eq!(reports.len(), 2);
        let recovered = handle.shutdown().unwrap().into_engines();

        // Ground truth per shard: replay its own (post-recovery) WAL through
        // a fresh shard engine built exactly like the tier builds them.
        let partitioning = Arc::new(HashPartitioner::new().partition(&graph, 2).unwrap());
        let mut references = Vec::new();
        for p in 0..2usize {
            let mut shard_ref = ShardEngine::new(
                &graph,
                model.clone(),
                store.clone(),
                RippleConfig::default(),
                Arc::clone(&partitioning),
                PartitionId(p as u32),
            )
            .unwrap();
            for frame in &read_wal(&durability.shard_dir(p)).unwrap().frames {
                let halos: &[DeltaMessage] = &frame.halos;
                if !frame.batch.is_empty() || !halos.is_empty() {
                    shard_ref.process_window(&frame.batch, halos).unwrap();
                }
            }
            references.push(shard_ref);
        }
        for (p, (rec, reference)) in recovered.iter().zip(&references).enumerate() {
            assert!(
                rec.store() == reference.store(),
                "shard {p} store diverged from its durable replay"
            );
            assert!(
                rec.graph() == reference.graph(),
                "shard {p} graph diverged from its durable replay"
            );
            assert_eq!(
                rec.topology_epoch(),
                reference.topology_epoch(),
                "shard {p} topology epoch diverged"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Exactly-once halo re-delivery: restarting a cleanly shut down tier
/// makes recovery re-ship every replayed window's regenerated outgoing
/// deltas — all of which the receiving shards already logged before the
/// shutdown. The `(sender, window_seq)` watermarks must drop every
/// re-shipped copy: no new windows commit, no WAL frames appear, and the
/// restarted engines are bit-identical to the ones that shut down.
#[test]
fn reshipped_halos_after_clean_shutdown_apply_exactly_once() {
    let (graph, model, store, updates) = bootstrap(17);
    let dir = scratch_dir("halo-dedup");
    let fail = FailPoints::new();
    let config = durable_config(&dir, 2, &fail);
    let durability = config.durability.clone().unwrap();

    let handle = spawn_sharded(
        &graph,
        &model,
        &store,
        RippleConfig::default(),
        config.clone(),
        2,
    )
    .unwrap();
    let router = handle.client();
    for chunk in updates.chunks(6) {
        for update in chunk {
            router.submit(update.clone());
        }
        handle.flush().expect("healthy tier");
    }
    let first = handle.shutdown().unwrap().into_engines();

    let frame_counts = |durability: &DurabilityConfig| -> Vec<usize> {
        (0..2)
            .map(|p| read_wal(&durability.shard_dir(p)).unwrap().frames.len())
            .collect()
    };
    let frames_before = frame_counts(&durability);
    let logged_halo_batches: usize = (0..2)
        .map(|p| {
            read_wal(&durability.shard_dir(p))
                .unwrap()
                .frames
                .iter()
                .map(|f| f.halo_sources.len())
                .sum::<usize>()
        })
        .sum();
    assert!(
        logged_halo_batches > 0,
        "the stream must exercise cross-shard halo traffic for dedup to matter"
    );

    // Restart on the same directory. Recovery replays each shard's windows
    // and re-ships their outgoing deltas; the clean shutdown means every
    // single one is a duplicate of a logged batch.
    let handle = spawn_sharded(&graph, &model, &store, RippleConfig::default(), config, 2).unwrap();
    let second = handle.shutdown().unwrap().into_engines();

    assert_eq!(
        frames_before,
        frame_counts(&durability),
        "deduped re-ships must not commit new windows"
    );
    for (p, (a, b)) in first.iter().zip(&second).enumerate() {
        assert!(
            a.store() == b.store(),
            "shard {p} store changed across a clean restart"
        );
        assert!(
            a.graph() == b.graph(),
            "shard {p} graph changed across a clean restart"
        );
        assert_eq!(
            a.topology_epoch(),
            b.topology_epoch(),
            "shard {p} topology epoch changed across a clean restart"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Checkpoints bound replay: after enough windows, recovery restores the
/// newest checkpoint and replays only the WAL tail beyond it — and still
/// lands bit-identical to the full-history replay.
#[test]
fn checkpointed_recovery_replays_only_the_tail() {
    let (graph, model, store, updates) = bootstrap(29);
    let dir = scratch_dir("checkpointed");
    let fail = FailPoints::new();
    let config = durable_config(&dir, 3, &fail);

    let handle = spawn_serve(engine(&graph, &model, &store), config.clone()).unwrap();
    let client = handle.client();
    for chunk in updates.chunks(4) {
        for update in chunk {
            client.submit(update.clone());
        }
        handle.flush().unwrap();
    }
    handle.shutdown().unwrap();

    let windows = read_wal(&dir).unwrap().frames.len() as u64;
    assert!(windows >= 6, "stream too short to cross a checkpoint");
    let durable = recover(&dir).unwrap();
    let checkpoint = durable.checkpoint.as_ref().expect("cadence crossed");
    assert_eq!(checkpoint.window_seq, (windows / 3) * 3);
    assert_eq!(durable.frames.len() as u64, windows - checkpoint.window_seq);

    let reference = reference_replay(&graph, &model, &store, &dir);
    let handle = spawn_serve(engine(&graph, &model, &store), config).unwrap();
    let report = handle.recovery_report().unwrap();
    assert!(report.from_checkpoint);
    assert_eq!(report.checkpoint_seq, checkpoint.window_seq);
    assert_eq!(report.replayed_windows, windows - checkpoint.window_seq);
    let recovered = handle.shutdown().unwrap();
    assert_bit_identical(&recovered, &reference, "checkpointed recovery");
    let _ = std::fs::remove_dir_all(&dir);
}
