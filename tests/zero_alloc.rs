//! Counting-allocator proof of the scratch-arena contract: once the arenas
//! are warm, the **compute phase** of steady-state batch propagation — the
//! exact `reevaluate_slice_into` call `RippleEngine::propagate_batch` makes
//! per hop, and the per-worker closure of the parallel/distributed engines —
//! performs **zero heap allocations**, as do the underlying `_into` kernels.
//!
//! The counting allocator is process-global, so the tests in this file
//! serialise themselves on [`MEASURE_LOCK`] and bracket each measured region
//! tightly.

use ripple::gnn::layer_wise::{full_inference, reevaluate_slice_into};
use ripple::prelude::*;
use ripple::tensor::{ops, Matrix, Scratch};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Held for the duration of every test so measured regions never interleave.
static MEASURE_LOCK: Mutex<()> = Mutex::new(());

/// Wraps the system allocator, counting every `alloc`/`realloc` while armed.
struct CountingAllocator;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` with the counter armed and returns how many heap allocations it
/// performed.
fn count_allocations<T>(f: impl FnOnce() -> T) -> (usize, T) {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let value = f();
    ARMED.store(false, Ordering::SeqCst);
    (ALLOCATIONS.load(Ordering::SeqCst), value)
}

#[test]
fn steady_state_compute_phase_performs_zero_allocations() {
    let _guard = MEASURE_LOCK.lock().unwrap();
    // One self-dependent and one aggregate-only model family, over every
    // aggregator, so the SAGE dual-GEMM, the GIN combine and the GraphConv
    // single-GEMM paths are all covered.
    for (kind, agg) in [
        (LayerKind::GraphConv, Aggregator::Sum),
        (LayerKind::GraphConv, Aggregator::Mean),
        (LayerKind::Sage, Aggregator::Mean),
        (LayerKind::Gin, Aggregator::Sum),
        (LayerKind::GraphConv, Aggregator::WeightedSum),
    ] {
        let graph = DatasetSpec::custom(160, 5.0, 8, 4)
            .generate_weighted(5, agg == Aggregator::WeightedSum)
            .unwrap();
        let model = GnnModel::new(kind, agg, &[8, 24, 4], 9).unwrap();
        let store = full_inference(&graph, &model).unwrap();
        let affected: Vec<VertexId> = (0..120).map(VertexId).collect();
        let mut scratch = Scratch::new();

        for hop in 1..=2 {
            // Warm-up: let every scratch buffer grow to steady-state size.
            reevaluate_slice_into(&graph, &model, &store, hop, &affected, &mut scratch).unwrap();
            // Steady state: the compute phase of `propagate_batch` is
            // exactly this call against warm scratch.
            let (allocs, result) = count_allocations(|| {
                reevaluate_slice_into(&graph, &model, &store, hop, &affected, &mut scratch)
            });
            result.unwrap();
            assert_eq!(
                allocs, 0,
                "{kind}/{agg} hop {hop}: compute phase allocated {allocs} times"
            );
            // Shrinking to a sub-frontier must also stay allocation-free.
            let (allocs, result) = count_allocations(|| {
                reevaluate_slice_into(&graph, &model, &store, hop, &affected[..40], &mut scratch)
            });
            result.unwrap();
            assert_eq!(
                allocs, 0,
                "{kind}/{agg} hop {hop}: shrunk frontier allocated"
            );
        }
    }
}

#[test]
fn warm_into_kernels_perform_zero_allocations() {
    let _guard = MEASURE_LOCK.lock().unwrap();
    let a = ripple::tensor::init::uniform(48, 24, -1.0, 1.0, 1);
    let b = ripple::tensor::init::uniform(24, 40, -1.0, 1.0, 2);
    let mut out = Matrix::default();
    ops::gemm_into(&a, &b, &mut out).unwrap();
    let (allocs, result) = count_allocations(|| ops::gemm_into(&a, &b, &mut out));
    result.unwrap();
    assert_eq!(allocs, 0, "warm gemm_into allocated");

    let mut row_out = vec![0.0f32; 40];
    let (allocs, result) = count_allocations(|| ops::row_matmul_into(a.row(3), &b, &mut row_out));
    result.unwrap();
    assert_eq!(allocs, 0, "row_matmul_into allocated");

    let indices: Vec<usize> = (0..20).collect();
    let mut gathered = Matrix::default();
    ops::gather_rows_into(&a, &indices, &mut gathered).unwrap();
    let (allocs, result) = count_allocations(|| ops::gather_rows_into(&a, &indices, &mut gathered));
    result.unwrap();
    assert_eq!(allocs, 0, "warm gather_rows_into allocated");

    let mut raw = vec![0.0f32; 24];
    let mut finalized = vec![0.0f32; 24];
    let neighbors: Vec<VertexId> = (0..10).map(VertexId).collect();
    let weights = vec![1.0f32; 10];
    let (allocs, ()) = count_allocations(|| {
        Aggregator::Mean.raw_aggregate_into(&a, &neighbors, &weights, &mut raw);
        Aggregator::Mean.finalize_into(&raw, neighbors.len(), &mut finalized);
    });
    assert_eq!(allocs, 0, "aggregation _into kernels allocated");
}
