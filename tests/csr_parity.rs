//! Property tests of the CSR-snapshot spine's bit-parity contract.
//!
//! The engines stream topology through [`CsrSnapshot`] (CSR base + delta
//! overlay, incrementally compacted) instead of walking [`DynamicGraph`]'s
//! per-vertex `Vec` lists. That swap is only sound because the snapshot
//! preserves every vertex's neighbour/weight **order** exactly — neighbour
//! order fixes the float accumulation order of the aggregation kernels.
//! These tests drive random add/delete edge streams into both structures and
//! assert, at every compaction boundary, that the snapshot's view output
//! (neighbours, weights, raw aggregates) is bit-identical to the dynamic
//! lists — and that the engine spine built on it stays bit-identical across
//! 1/2/4/8 threads.

use proptest::prelude::*;
use ripple::graph::{CompactionPolicy, CsrSnapshot, GraphView};
use ripple::prelude::*;
use ripple::tensor::init;

/// Asserts every vertex's four adjacency slices match bit for bit, then
/// cross-checks the aggregation kernels: raw aggregates computed from the
/// snapshot's slices must equal those from the dynamic lists exactly.
fn assert_view_parity(snap: &CsrSnapshot, graph: &DynamicGraph, table: &ripple::tensor::Matrix) {
    assert_eq!(snap.num_vertices(), graph.num_vertices());
    assert_eq!(GraphView::num_edges(snap), graph.num_edges());
    let mut from_dynamic = vec![0.0f32; table.cols()];
    let mut from_snapshot = vec![0.0f32; table.cols()];
    for v in 0..graph.num_vertices() as u32 {
        let vid = VertexId(v);
        assert_eq!(snap.in_neighbors(vid), graph.in_neighbors(vid), "in {vid}");
        assert_eq!(snap.in_weights(vid), graph.in_weights(vid), "in-w {vid}");
        assert_eq!(
            snap.out_neighbors(vid),
            graph.out_neighbors(vid),
            "out {vid}"
        );
        assert_eq!(snap.out_weights(vid), graph.out_weights(vid), "out-w {vid}");
        for aggregator in Aggregator::all() {
            aggregator.raw_aggregate_into(
                table,
                graph.in_neighbors(vid),
                graph.in_weights(vid),
                &mut from_dynamic,
            );
            aggregator.raw_aggregate_into(
                table,
                snap.in_neighbors(vid),
                snap.in_weights(vid),
                &mut from_snapshot,
            );
            assert_eq!(
                from_dynamic, from_snapshot,
                "{aggregator} aggregate of {vid} diverged"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// A random add/delete stream applied to both structures keeps the
    /// snapshot's view bit-identical to the dynamic lists at every
    /// compaction boundary (compactions forced every `churn` changes).
    #[test]
    fn snapshot_view_is_bit_identical_across_compactions(
        seed in 0u64..1000,
        churn in 1usize..12,
        intents in prop::collection::vec((0u32..64, 0u32..64, 0u32..7), 1..120),
    ) {
        let graph0 = DatasetSpec::custom(64, 4.0, 5, 3).generate_weighted(seed, true).unwrap();
        let mut graph = graph0.clone();
        let mut snap = CsrSnapshot::with_policy(&graph0, CompactionPolicy::every_churn(churn));
        let table = init::uniform(64, 5, -1.0, 1.0, seed ^ 0x7ab1e);
        let mut boundaries = 0;
        for (a, b, w) in intents {
            let (src, dst) = (VertexId(a), VertexId(b));
            if src == dst {
                continue;
            }
            if graph.has_edge(src, dst) {
                graph.remove_edge(src, dst).unwrap();
                snap.remove_edge(src, dst).unwrap();
            } else {
                let weight = w as f32 * 0.5 + 0.25;
                graph.add_edge(src, dst, weight).unwrap();
                snap.add_edge(src, dst, weight).unwrap();
            }
            if snap.maybe_compact() {
                boundaries += 1;
                // The compaction boundary is where splice bugs would show.
                assert_view_parity(&snap, &graph, &table);
                prop_assert_eq!(snap.overlay_rows(), 0);
            }
        }
        // Final state, whatever the overlay holds.
        assert_view_parity(&snap, &graph, &table);
        snap.compact();
        assert_view_parity(&snap, &graph, &table);
        prop_assert!(boundaries as u64 <= snap.compaction_stats().compactions);
    }

    /// The engine spine on the snapshot: streaming a random update stream
    /// through the serial engine and the parallel engine at 1/2/4/8 threads
    /// yields bit-identical stores, and every engine's internal snapshot
    /// stays in lockstep with its graph at each batch boundary.
    #[test]
    fn engine_spine_is_bit_identical_at_1_2_4_8_threads(
        seed in 0u64..500,
        intents in prop::collection::vec((0u32..72, 0u32..72), 4..48),
    ) {
        let graph = DatasetSpec::custom(72, 5.0, 4, 3).generate(seed).unwrap();
        // Realise a valid add/delete stream against a shadow copy.
        let mut shadow = graph.clone();
        let mut updates = Vec::new();
        for (a, b) in intents {
            let (src, dst) = (VertexId(a), VertexId(b));
            if src == dst {
                continue;
            }
            if shadow.has_edge(src, dst) {
                shadow.remove_edge(src, dst).unwrap();
                updates.push(GraphUpdate::delete_edge(src, dst));
            } else {
                shadow.add_edge(src, dst, 1.0).unwrap();
                updates.push(GraphUpdate::add_edge(src, dst));
            }
        }
        prop_assume!(!updates.is_empty());
        let model = Workload::GcS.build_model(4, 6, 3, 2, seed ^ 0xc5a).unwrap();
        let store = full_inference(&graph, &model).unwrap();
        let batches: Vec<UpdateBatch> = updates
            .chunks(7)
            .map(|c| UpdateBatch::from_updates(c.to_vec()))
            .collect();

        let mut serial = RippleEngine::new(
            graph.clone(),
            model.clone(),
            store.clone(),
            RippleConfig::default(),
        )
        .unwrap();
        for batch in &batches {
            serial.process_batch(batch).unwrap();
            // Lockstep invariant at every batch boundary.
            let topo = serial.topology();
            prop_assert_eq!(GraphView::num_edges(topo), serial.graph().num_edges());
        }
        for threads in [1usize, 2, 4, 8] {
            let mut parallel = ParallelRippleEngine::new(
                graph.clone(),
                model.clone(),
                store.clone(),
                RippleConfig::default(),
                threads,
            )
            .unwrap();
            for batch in &batches {
                parallel.process_batch(batch).unwrap();
            }
            prop_assert!(
                parallel.store() == serial.store(),
                "{} threads diverged from serial on the CSR spine",
                threads
            );
            prop_assert_eq!(parallel.topology_epoch(), batches.len() as u64);
            // The engine's snapshot mirrors its graph bit for bit.
            for v in 0..parallel.graph().num_vertices() as u32 {
                let vid = VertexId(v);
                prop_assert_eq!(
                    parallel.topology().in_neighbors(vid),
                    parallel.graph().in_neighbors(vid)
                );
                prop_assert_eq!(
                    parallel.topology().in_weights(vid),
                    parallel.graph().in_weights(vid)
                );
            }
        }
    }
}

/// Deterministic end-to-end: a long churn stream with a tiny compaction
/// bound (so dozens of compactions run mid-stream) stays exact against full
/// re-inference, with the engine's own policy swapped for frequent
/// compaction via direct snapshot churn.
#[test]
fn snapshot_compaction_mid_stream_preserves_engine_exactness() {
    let graph = DatasetSpec::custom(120, 5.0, 6, 4).generate(91).unwrap();
    let model = Workload::GsS.build_model(6, 8, 4, 2, 93).unwrap();
    let plan = build_stream(
        &graph,
        &StreamConfig {
            total_updates: 80,
            seed: 97,
            ..Default::default()
        },
    )
    .unwrap();
    let bootstrap = full_inference(&plan.snapshot, &model).unwrap();
    let batches = plan.batches(8);

    let mut engine = RippleEngine::new(
        plan.snapshot.clone(),
        model.clone(),
        bootstrap,
        RippleConfig::default(),
    )
    .unwrap();
    let mut reference_graph = plan.snapshot.clone();
    for batch in &batches {
        engine.process_batch(batch).unwrap();
        reference_graph.apply_batch(batch).unwrap();
    }
    let reference = full_inference(&reference_graph, &model).unwrap();
    let diff = engine.store().max_diff_all_layers(&reference).unwrap();
    assert!(diff < 2e-3, "CSR-spine engine drifted: {diff}");

    // An independently maintained snapshot with an every-change compaction
    // policy converges to the same topology as the engine's.
    let mut churny = CsrSnapshot::with_policy(&plan.snapshot, CompactionPolicy::every_churn(1));
    for batch in &batches {
        for update in batch {
            churny.apply(update).unwrap();
            churny.maybe_compact();
        }
    }
    assert!(churny.compaction_stats().compactions > 10);
    for v in 0..reference_graph.num_vertices() as u32 {
        let vid = VertexId(v);
        assert_eq!(
            churny.in_neighbors(vid),
            engine.topology().in_neighbors(vid)
        );
        assert_eq!(
            churny.out_neighbors(vid),
            engine.topology().out_neighbors(vid)
        );
    }
}
