//! SIMD/scalar parity suite: every runtime-dispatched micro-kernel must be
//! **bit-identical** — not merely within tolerance — to its scalar reference
//! on every supported tier, for arbitrary shapes including the awkward tails
//! (`m % 4 != 0`, `n % 8 != 0`, odd `k`) and 32-byte-misaligned row offsets.
//! The SIMD paths vectorise across independent output elements and keep each
//! element's ascending-`k` mul-then-add rounding sequence (no FMA), so the
//! exactness contract that `tests/kernel_parity.rs` and
//! `tests/exactness_property.rs` pin for the batched kernels extends
//! unchanged to the vectorised ones; these tests pin that extension, plus a
//! forced-scalar vs `auto` end-to-end engine run.
//!
//! The tier override (`simd::force_tier`) is process-global, so every test
//! that flips it holds [`TIER_LOCK`] for its whole body.

use proptest::prelude::*;
use ripple::prelude::*;
use ripple::tensor::{init, ops, simd, vector, Matrix, SimdTier};
use std::sync::Mutex;

/// Serialises tests that flip the process-global tier override.
static TIER_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` under each tier in turn (forced scalar first, then each
/// supported non-scalar tier), holding [`TIER_LOCK`] throughout, and always
/// clears the override afterwards — even if `f` panics.
fn with_tiers(mut f: impl FnMut(SimdTier)) {
    let _guard = TIER_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            simd::force_tier(None);
        }
    }
    let _reset = Reset;
    for tier in tiers_to_test() {
        simd::force_tier(Some(tier));
        f(tier);
    }
    simd::force_tier(None);
}

/// Scalar plus every tier the host supports. On a scalar-only host this is
/// just `[Scalar]` — the parity tests then compare scalar with itself, which
/// is honest (there is nothing else to compare) and keeps the suite green on
/// any runner.
fn tiers_to_test() -> Vec<SimdTier> {
    SimdTier::all()
        .iter()
        .copied()
        .filter(|t| t.is_supported())
        .collect()
}

/// Asserts two equal-length f32 slices are identical bit for bit.
fn assert_bits_eq(a: &[f32], b: &[f32], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{context}: element {i} differs ({x} vs {y})"
        );
    }
}

/// The CI canary: on an AVX2-capable x86-64 host with `RIPPLE_SIMD` unset
/// (or set to `auto`), automatic resolution must pick the AVX2 tier — a CI
/// runner with the hardware must never silently fall back to scalar.
#[test]
fn auto_resolution_uses_simd_on_capable_hosts() {
    let env = std::env::var("RIPPLE_SIMD").unwrap_or_default();
    if !(env.is_empty() || env.eq_ignore_ascii_case("auto")) {
        return; // The operator forced a tier; resolution honours it.
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        assert_eq!(simd::detected_tier(), SimdTier::Avx2);
        let _guard = TIER_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        simd::force_tier(None);
        assert_eq!(simd::active_tier(), SimdTier::Avx2);
    }
    #[cfg(target_arch = "aarch64")]
    {
        assert_eq!(simd::detected_tier(), SimdTier::Neon);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// GEMM parity at random shapes, deliberately spanning the register-tile
    /// tails: `m % 4 != 0` (row tail), `n % 8 != 0` (column tail), odd `k`.
    #[test]
    fn gemm_is_bit_identical_across_tiers(
        m in 1usize..18,
        k in 1usize..17,
        n in 1usize..21,
        seed in 0u64..1000,
    ) {
        let a = init::uniform(m, k, -2.0, 2.0, seed);
        let b = init::uniform(k, n, -2.0, 2.0, seed ^ 0x5ca1ab1e);
        let mut reference = Matrix::default();
        let mut out = Matrix::default();
        with_tiers(|tier| {
            if tier == SimdTier::Scalar {
                ops::gemm_into(&a, &b, &mut reference).unwrap();
            } else {
                ops::gemm_into(&a, &b, &mut out).unwrap();
                assert_bits_eq(
                    reference.as_slice(),
                    out.as_slice(),
                    &format!("gemm {m}x{k}x{n} on {tier}"),
                );
            }
        });
    }

    /// Single-row matmul parity (the per-vertex projection kernel),
    /// including widths that leave 1..7-lane column tails.
    #[test]
    fn row_matmul_is_bit_identical_across_tiers(
        k in 1usize..23,
        n in 1usize..27,
        seed in 0u64..1000,
    ) {
        let x = init::uniform(1, k, -2.0, 2.0, seed);
        let w = init::uniform(k, n, -2.0, 2.0, seed ^ 0xfeed);
        let mut reference = vec![0.0f32; n];
        let mut out = vec![0.0f32; n];
        with_tiers(|tier| {
            if tier == SimdTier::Scalar {
                ops::row_matmul_into(x.row(0), &w, &mut reference).unwrap();
            } else {
                ops::row_matmul_into(x.row(0), &w, &mut out).unwrap();
                assert_bits_eq(&reference, &out, &format!("row_matmul {k}x{n} on {tier}"));
            }
        });
    }

    /// Element-wise vector kernel parity (`add_assign` / `sub_assign` /
    /// `axpy` / `scale` / `scaled_copy`) at lengths spanning sub-lane,
    /// one-lane and multi-lane-plus-tail sizes.
    #[test]
    fn vector_kernels_are_bit_identical_across_tiers(
        len in 1usize..70,
        alpha in -3.0f32..3.0,
        seed in 0u64..1000,
    ) {
        let base = init::uniform(1, len, -5.0, 5.0, seed);
        let src = init::uniform(1, len, -5.0, 5.0, seed ^ 0xd00d);
        let mut reference: Vec<Vec<f32>> = Vec::new();
        with_tiers(|tier| {
            let mut add = base.row(0).to_vec();
            vector::add_assign(&mut add, src.row(0));
            let mut sub = base.row(0).to_vec();
            vector::sub_assign(&mut sub, src.row(0));
            let mut ax = base.row(0).to_vec();
            vector::axpy(&mut ax, alpha, src.row(0));
            let mut sc = base.row(0).to_vec();
            vector::scale(&mut sc, alpha);
            let mut cp = vec![0.0f32; len];
            vector::scaled_copy(&mut cp, src.row(0), alpha);
            let results = vec![add, sub, ax, sc, cp];
            if tier == SimdTier::Scalar {
                reference = results;
            } else {
                for (name, (got, want)) in ["add_assign", "sub_assign", "axpy", "scale", "scaled_copy"]
                    .iter()
                    .zip(results.iter().zip(reference.iter()))
                {
                    assert_bits_eq(want, got, &format!("{name} len {len} on {tier}"));
                }
            }
        });
    }

    /// `gather_rows_into` parity: the software-prefetch path must gather
    /// exactly the same rows as the plain path, including repeated and
    /// boundary indices.
    #[test]
    fn gather_rows_is_bit_identical_across_tiers(
        rows in 1usize..40,
        cols in 1usize..24,
        seed in 0u64..1000,
        indices in prop::collection::vec(0usize..40, 1..50),
    ) {
        let table = init::uniform(rows, cols, -3.0, 3.0, seed);
        let indices: Vec<usize> = indices.into_iter().map(|i| i % rows).collect();
        let mut reference = Matrix::default();
        let mut out = Matrix::default();
        with_tiers(|tier| {
            if tier == SimdTier::Scalar {
                ops::gather_rows_into(&table, &indices, &mut reference).unwrap();
            } else {
                ops::gather_rows_into(&table, &indices, &mut out).unwrap();
                assert_bits_eq(
                    reference.as_slice(),
                    out.as_slice(),
                    &format!("gather {}x{cols} on {tier}", indices.len()),
                );
            }
        });
    }

    /// Aggregator accumulate + finalize parity across tiers: the prefetching
    /// SIMD `axpy` walk and the scalar walk must produce bit-identical raw
    /// aggregates and finalised embeddings for every aggregator.
    #[test]
    fn aggregator_paths_are_bit_identical_across_tiers(
        vertices in 8usize..60,
        dim in 1usize..24,
        degree in 1usize..24,
        seed in 0u64..1000,
    ) {
        let table = init::uniform(vertices, dim, -2.0, 2.0, seed);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let neighbors: Vec<VertexId> = (0..degree)
            .map(|_| VertexId((next() % vertices as u64) as u32))
            .collect();
        let weights: Vec<f32> = (0..degree).map(|_| (next() % 7) as f32 * 0.25 + 0.25).collect();
        for agg in Aggregator::all() {
            let mut reference = vec![0.0f32; dim];
            let mut fin_reference = vec![0.0f32; dim];
            let mut out = vec![0.0f32; dim];
            let mut fin = vec![0.0f32; dim];
            with_tiers(|tier| {
                if tier == SimdTier::Scalar {
                    agg.raw_aggregate_into(&table, &neighbors, &weights, &mut reference);
                    agg.finalize_into(&reference, degree, &mut fin_reference);
                } else {
                    agg.raw_aggregate_into(&table, &neighbors, &weights, &mut out);
                    assert_bits_eq(&reference, &out, &format!("{agg} aggregate on {tier}"));
                    agg.finalize_into(&out, degree, &mut fin);
                    assert_bits_eq(&fin_reference, &fin, &format!("{agg} finalize on {tier}"));
                }
            });
        }
    }
}

/// Alignment audit regression: `gemm_block_into` takes raw `&[f32]` operand
/// and output slices, so callers can (and do) hand it sub-slices at offsets
/// that are 4-byte- but not 32-byte-aligned. The AVX2/NEON kernels use
/// unaligned load/store intrinsics throughout; this pins that contract by
/// running the same multiply from every misalignment 0..8 floats.
#[test]
fn gemm_block_handles_misaligned_row_slices() {
    let (m, k, n) = (7, 11, 13);
    let b = init::uniform(k, n, -2.0, 2.0, 21);
    let a_vals = init::uniform(1, m * k, -2.0, 2.0, 22);
    with_tiers(|tier| {
        let mut reference: Option<Vec<f32>> = None;
        for offset in 0..8usize {
            // The same A values, staged `offset` floats into a backing
            // buffer: 32-byte aligned only when offset % 8 == 0 (and the
            // allocator plays along); the kernel must not care.
            let mut a_backing = vec![0.0f32; 8 + m * k];
            a_backing[offset..offset + m * k].copy_from_slice(a_vals.row(0));
            let a_rows = &a_backing[offset..offset + m * k];
            let mut out_backing = vec![0.0f32; 8 + m * n];
            let out = &mut out_backing[offset..offset + m * n];
            ops::gemm_block_into(a_rows, m, &b, out).unwrap();
            match &reference {
                None => reference = Some(out.to_vec()),
                Some(want) => {
                    assert_bits_eq(want, out, &format!("gemm_block offset {offset} on {tier}"))
                }
            }
        }
    });
}

/// The end-to-end pin: a full streaming run (bootstrap inference + update
/// batches through the incremental engine) under `RIPPLE_SIMD=scalar`
/// semantics is bit-identical to the same run under automatic tier
/// resolution. SIMD is an implementation detail — no observable state, from
/// embeddings to raw aggregates, may shift by a single bit.
#[test]
fn forced_scalar_and_auto_engine_runs_are_bit_identical() {
    let _guard = TIER_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            simd::force_tier(None);
        }
    }
    let _reset = Reset;

    let run = |tier: Option<SimdTier>| -> EmbeddingStore {
        simd::force_tier(tier);
        let spec = DatasetSpec::arxiv_like()
            .scaled_to(300)
            .with_avg_in_degree(5.0)
            .with_feature_dim(12);
        let full = spec.generate_weighted(11, true).unwrap();
        let plan = build_stream(
            &full,
            &StreamConfig {
                holdout_fraction: 0.1,
                total_updates: 80,
                seed: 5,
            },
        )
        .unwrap();
        let model = Workload::GcW
            .build_model(12, 16, spec.num_classes, 2, 3)
            .unwrap();
        let store = full_inference(&plan.snapshot, &model).unwrap();
        let batches = plan.batches(20);
        let mut engine =
            RippleEngine::new(plan.snapshot, model, store, RippleConfig::default()).unwrap();
        for batch in batches {
            engine.process_batch(&batch).unwrap();
        }
        engine.store().clone()
    };

    let scalar = run(Some(SimdTier::Scalar));
    let auto = run(None);
    simd::force_tier(None);

    assert_eq!(scalar.num_layers(), auto.num_layers());
    for l in 0..=scalar.num_layers() {
        assert_bits_eq(
            scalar.embeddings(l).as_slice(),
            auto.embeddings(l).as_slice(),
            &format!("engine embeddings hop {l}"),
        );
    }
    for l in 1..=scalar.num_layers() {
        assert_bits_eq(
            scalar.aggregates(l).as_slice(),
            auto.aggregates(l).as_slice(),
            &format!("engine aggregates hop {l}"),
        );
    }
}
