//! Regenerates Fig 2b: fraction of affected vertices and per-batch latency
//! for RC and Ripple as the update batch size grows (Arxiv vs Products,
//! 3-layer model).

use ripple::experiments::{prepare_stream, print_header, run_strategy_per_batch, Scale, Strategy};
use ripple::graph::synth::DatasetKind;
use ripple::prelude::*;

fn main() {
    let scale = Scale::from_env();
    print_header(
        "Fig 2b: % affected vertices and batch latency vs batch size (3-layer GC-S)",
        scale,
    );
    for kind in [DatasetKind::Arxiv, DatasetKind::Products] {
        let spec = scale.dataset(kind);
        println!("--- {} (|V| = {}) ---", spec.name, spec.num_vertices);
        println!(
            "{:<12} {:>16} {:>18} {:>18}",
            "batch size", "% affected", "RC latency (ms)", "Ripple latency (ms)"
        );
        for batch_size in [1usize, 10, 100] {
            let prepared = prepare_stream(
                &spec,
                Workload::GcS,
                3,
                batch_size,
                scale.batches_per_cell(),
                5,
            );
            let rc = run_strategy_per_batch(&prepared, Strategy::Rc);
            let ripple = run_strategy_per_batch(&prepared, Strategy::Ripple);
            let pct_affected = mean(rc.iter().map(|s| {
                100.0 * s.affected_final as f64 / prepared.snapshot.num_vertices() as f64
            }));
            let rc_latency = median_ms(&rc);
            let rp_latency = median_ms(&ripple);
            println!("{batch_size:<12} {pct_affected:>16.2} {rc_latency:>18.3} {rp_latency:>18.3}");
        }
    }
    println!();
    println!("Expected shape (paper): the affected fraction grows with batch size and is far");
    println!("larger for the denser Products graph; RC latency grows with it, Ripple stays lower.");
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn median_ms(stats: &[BatchStats]) -> f64 {
    let mut l: Vec<f64> = stats
        .iter()
        .map(|s| s.total_time().as_secs_f64() * 1e3)
        .collect();
    l.sort_by(f64::total_cmp);
    l.get(l.len() / 2).copied().unwrap_or(0.0)
}
