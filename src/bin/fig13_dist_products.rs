//! Regenerates Fig 13: distributed scaling of GC-S-3L on the Products-like
//! graph — throughput/latency on 8 partitions and the compute/communication
//! split for 2, 4 and 8 partitions — plus the single-machine Ripple
//! throughput for the paper's "graphs that fit on one machine should stay
//! there" observation.

use ripple::experiments::{
    prepare_stream, print_header, run_distributed, run_strategy, DistStrategy, Scale, Strategy,
};
use ripple::graph::synth::DatasetKind;
use ripple::prelude::*;

fn main() {
    let scale = Scale::from_env();
    print_header("Fig 13: distributed GC-S-3L on Products-like", scale);
    let spec = scale.dataset(DatasetKind::Products);

    println!("--- (a) throughput & latency on 8 partitions ---");
    println!(
        "{:<8} {:>8} {:>14} {:>18}",
        "strategy", "batch", "thpt (up/s)", "median lat (ms)"
    );
    for batch_size in [10usize, 100, 1000] {
        let num_batches = if batch_size >= 1000 { 2 } else { 3 };
        let prepared = prepare_stream(&spec, Workload::GcS, 3, batch_size, num_batches, 41);
        for strategy in [DistStrategy::Rc, DistStrategy::Ripple] {
            let summary = run_distributed(&prepared, strategy, 8);
            println!(
                "{:<8} {:>8} {:>14.1} {:>18.3}",
                strategy.name(),
                batch_size,
                summary.throughput,
                summary.median_latency.as_secs_f64() * 1e3
            );
        }
    }

    println!();
    println!("--- (b) compute & communication vs #partitions (batch 1000) ---");
    println!(
        "{:<8} {:>8} {:>14} {:>14} {:>14} {:>16}",
        "strategy", "parts", "thpt (up/s)", "compute (s)", "comm (s)", "bytes"
    );
    let prepared = prepare_stream(&spec, Workload::GcS, 3, 1000, 2, 43);
    for parts in [2usize, 4, 8] {
        for strategy in [DistStrategy::Rc, DistStrategy::Ripple] {
            let summary = run_distributed(&prepared, strategy, parts);
            println!(
                "{:<8} {:>8} {:>14.1} {:>14.3} {:>14.3} {:>16}",
                strategy.name(),
                parts,
                summary.throughput,
                summary.total_compute_time.as_secs_f64(),
                summary.total_comm_time.as_secs_f64(),
                summary.total_bytes
            );
        }
    }

    // The paper's closing observation: the single-machine throughput is
    // competitive with the distributed deployment for graphs that fit in RAM.
    let single = run_strategy(&prepared, Strategy::Ripple);
    println!();
    println!(
        "single-machine Ripple on the same stream: {:.1} up/s (median {:.3} ms)",
        single.throughput,
        single.median_latency.as_secs_f64() * 1e3
    );
    println!();
    println!("Expected shape (paper): Ripple outperforms RC and scales modestly with partitions,");
    println!("but the single-machine engine remains competitive for graphs that fit in memory.");
}
