//! Kill-and-recover chaos soak for the durable serving tier.
//!
//! Drives [`ripple::serve::run_soak`]: an adversarial update stream (hub
//! churn, delete-heavy phases, burst/quiescent alternation) against a
//! durable single-engine session, with crashes injected at the WAL,
//! checkpoint and publish fail points. After every kill the durability
//! directory is recovered into a fresh engine and verified bit-identical
//! against a reference replay of the durable windows.
//!
//! Flags:
//!
//! * `--short` — the CI smoke shape: small graph, ~6 s budget.
//! * `--kill-every <dur>` — session lifetime before a kill is armed
//!   (`2s`, `500ms`, ...).
//! * `--json <path>` — writes the report artifact (`BENCH_soak.json` in CI).
//!
//! Environment knobs: `RIPPLE_SERVE_WAL_DIR` (durability directory),
//! `RIPPLE_SERVE_CKPT_EVERY` (checkpoint cadence in windows),
//! `RIPPLE_SERVE_FSYNC` (`always` / `never`).
//!
//! Exits non-zero unless at least two kill-and-recover cycles ran with
//! zero bit-identity verification failures.

use ripple::experiments::{print_header, Scale};
use ripple::serve::{run_soak, SoakConfig};
use std::time::Duration;

fn parse_duration(value: &str) -> Duration {
    let parsed = if let Some(ms) = value.strip_suffix("ms") {
        ms.parse::<u64>().ok().map(Duration::from_millis)
    } else if let Some(s) = value.strip_suffix('s') {
        s.parse::<f64>().ok().map(Duration::from_secs_f64)
    } else {
        value.parse::<f64>().ok().map(Duration::from_secs_f64)
    };
    parsed.unwrap_or_else(|| panic!("expected a duration like 2s or 500ms, got {value}"))
}

fn main() {
    let mut config = SoakConfig::default();
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--short" => config = SoakConfig::short(),
            "--kill-every" => {
                let value = args.next().expect("--kill-every requires a duration");
                config.kill_every = parse_duration(&value);
            }
            "--json" => {
                json_path = Some(args.next().expect("--json requires a file path"));
            }
            other => panic!(
                "unknown flag {other} (expected --short, --kill-every <dur> or --json <path>)"
            ),
        }
    }
    let config = config.with_env();

    print_header(
        "Durability soak: kill-and-recover chaos with bit-identity verification",
        Scale::from_env(),
    );
    println!(
        "graph: {} vertices, avg degree {:.1}; kill every {:?}; checkpoint every {} windows; \
         fsync {:?}; budget {:?} / >= {} cycles; wal dir {}",
        config.vertices,
        config.avg_degree,
        config.kill_every,
        config.checkpoint_every,
        config.fsync,
        config.total_duration,
        config.min_cycles,
        config.dir.display(),
    );
    println!();

    let report = run_soak(&config);
    println!("{report}");
    println!();
    println!("Expected shape: every cycle recovers from the latest checkpoint plus a WAL");
    println!("tail replay and lands bit-identical to the uncrashed reference; torn tail");
    println!("frames are dropped by checksum, never replayed.");

    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json()).expect("writing soak JSON");
        println!("wrote soak report to {path}");
    }

    assert!(
        report.cycles >= 2,
        "soak must complete at least two kill-and-recover cycles, ran {}",
        report.cycles
    );
    assert_eq!(
        report.verification_failures, 0,
        "recovered state diverged from the uncrashed reference: {report}"
    );
}
