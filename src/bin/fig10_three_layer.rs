//! Regenerates Fig 10: single-machine comparative performance of the five
//! GNN workloads with 3 layers on the Products-like graph.

use ripple::experiments::{print_header, single_machine_sweep, HarnessConfig};
use ripple::graph::synth::DatasetKind;

fn main() {
    let config = HarnessConfig::from_env();
    print_header(
        "Fig 10: single-machine throughput/latency, 3-layer workloads (Products)",
        config.scale,
    );
    single_machine_sweep(config, 3, &[DatasetKind::Products]);
}
