//! Regenerates Table 3: the datasets used in the experiments.
//!
//! Prints, for each of the paper's four datasets, the paper-scale statistics
//! and the statistics of the synthetic stand-in generated at the current
//! `RIPPLE_SCALE`.

use ripple::experiments::{print_header, Scale};
use ripple::graph::degree::DegreeStats;
use ripple::graph::synth::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    print_header(
        "Table 3: graph datasets (paper vs. generated stand-ins)",
        scale,
    );
    for kind in [
        DatasetKind::Arxiv,
        DatasetKind::Reddit,
        DatasetKind::Products,
        DatasetKind::Papers,
    ] {
        let spec = scale.dataset(kind);
        let graph = spec.generate(42).expect("dataset generation");
        let stats = DegreeStats::compute(&graph);
        println!("{}", spec.table3_row(Some(&graph)));
        println!("    degree distribution: {stats}");
    }
}
