//! Regenerates Fig 11: batch latency versus the number of vertices in the
//! propagation tree, for single-update batches on the Products-like graph
//! (GC-S, 2 and 3 layers), comparing RC and Ripple.
//!
//! The paper plots a per-batch scatter; this harness buckets the propagation
//! tree sizes and prints the median latency per bucket for both strategies,
//! which shows the same correlation and the order-of-magnitude gap.

use ripple::experiments::{prepare_stream, print_header, run_strategy_per_batch, Scale, Strategy};
use ripple::graph::synth::DatasetKind;
use ripple::prelude::*;

fn main() {
    let scale = Scale::from_env();
    print_header(
        "Fig 11: batch latency vs propagation-tree size (Products-like, GC-S, batch=1)",
        scale,
    );
    let spec = scale.dataset(DatasetKind::Products);
    let num_batches = match scale {
        Scale::Tiny => 20,
        Scale::Small => 60,
        Scale::Medium => 120,
    };
    for layers in [2usize, 3] {
        println!("--- {layers}-layer model ---");
        let prepared = prepare_stream(&spec, Workload::GcS, layers, 1, num_batches, 23);
        let rc = run_strategy_per_batch(&prepared, Strategy::Rc);
        let ripple = run_strategy_per_batch(&prepared, Strategy::Ripple);

        // Bucket by propagation-tree size (using RC's tree, which equals
        // Ripple's by construction) and report median latency per bucket.
        let max_tree = rc
            .iter()
            .map(|s| s.propagation_tree_size)
            .max()
            .unwrap_or(1)
            .max(1);
        let buckets = 6usize;
        println!(
            "{:>22} {:>10} {:>18} {:>18}",
            "tree-size bucket", "batches", "RC median (ms)", "Ripple median (ms)"
        );
        for b in 0..buckets {
            let lo = b * max_tree / buckets;
            let hi = (b + 1) * max_tree / buckets;
            let in_bucket: Vec<usize> = rc
                .iter()
                .enumerate()
                .filter(|(_, s)| s.propagation_tree_size > lo && s.propagation_tree_size <= hi)
                .map(|(i, _)| i)
                .collect();
            if in_bucket.is_empty() {
                continue;
            }
            let rc_med = median(
                in_bucket
                    .iter()
                    .map(|&i| rc[i].total_time().as_secs_f64() * 1e3),
            );
            let rp_med = median(
                in_bucket
                    .iter()
                    .map(|&i| ripple[i].total_time().as_secs_f64() * 1e3),
            );
            println!(
                "{:>12} - {:>7} {:>10} {:>18.3} {:>18.3}",
                lo,
                hi,
                in_bucket.len(),
                rc_med,
                rp_med
            );
        }
    }
    println!();
    println!("Expected shape (paper): latency correlates strongly with the propagation-tree size");
    println!("for both strategies, and Ripple sits roughly an order of magnitude below RC.");
}

fn median(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.collect();
    v.sort_by(f64::total_cmp);
    v.get(v.len() / 2).copied().unwrap_or(0.0)
}
