//! Closed-loop serving load generator: one writer streams graph updates
//! through the coalescing scheduler while `N` reader threads issue point
//! lookups, label reads and top-k similarity queries against versioned
//! snapshots. Reports p50/p95/p99 read latency, update-visibility lag
//! (enqueue → published epoch) and epochs/sec, plus the serving-contract
//! counters (epoch monotonicity per reader per shard, stamped responses).
//!
//! Configuration comes from `RIPPLE_SCALE`, `RIPPLE_THREADS` and the
//! `RIPPLE_SERVE_*` environment knobs (see the README's "Serving" section);
//! `RIPPLE_SERVE_SHARDS` (or `--shards`) switches the run onto the
//! hash-partitioned sharded tier.
//!
//! Flags:
//!
//! * `--json <path>` — additionally writes the report as a JSON artifact
//!   (`BENCH_serve.json` in CI).
//! * `--shards <n>` — overrides the shard count (`>1` drives the sharded
//!   tier behind the same `ServeFrontend` surface).
//! * `--shard-bench <path>` — runs the same workload unsharded and with two
//!   shards, then writes a combined comparison artifact
//!   (`BENCH_shard.json` in CI) with epochs/sec and p99 read latency per
//!   topology.
//! * `--read-mode exact|approx` — how the loadgen's top-k reads execute
//!   (approx probes the epoch-repaired IVF index; also settable via
//!   `RIPPLE_SERVE_READ_MODE`).
//! * `--topk-bench <path>` — benchmarks exact-scan vs approximate top-k at
//!   |V| ∈ {10k, 50k} and writes the comparison artifact
//!   (`BENCH_topk.json` in CI) with per-mode p50/p99, recall@10 against the
//!   exact oracle and the index repair/rebuild counters.
//! * `--nprobe-sweep <path>` — sweeps the IVF probe width and writes a
//!   recall@10-vs-speedup table against the exact oracle, tracing the
//!   accuracy/latency trade-off curve the `DEFAULT_NPROBE` choice sits on.
//! * `--admission-bench <path>` — benchmarks footprint-based concurrent
//!   window admission against the serial pipeline (best-case disjoint
//!   blocks, worst-case hub churn; in-flight depths 1/2/4) and writes
//!   `BENCH_admission.json` with the group/conflict counters. Every depth
//!   is bit-compared against the serial baseline: any parity violation
//!   aborts the run.

use ripple::experiments::{print_header, Scale};
use ripple::serve::{
    run_admission_bench, run_loadgen, run_nprobe_sweep, run_topk_bench, LoadgenConfig,
    LoadgenReport, ReadMode, DEFAULT_NPROBE,
};

fn main() {
    let mut json_path: Option<String> = None;
    let mut shard_bench_path: Option<String> = None;
    let mut topk_bench_path: Option<String> = None;
    let mut nprobe_sweep_path: Option<String> = None;
    let mut admission_bench_path: Option<String> = None;
    let mut shards_override: Option<usize> = None;
    let mut read_mode_override: Option<ReadMode> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                json_path = Some(args.next().expect("--json requires a file path"));
            }
            "--shards" => {
                let value = args.next().expect("--shards requires a count");
                shards_override = Some(
                    value
                        .parse::<usize>()
                        .ok()
                        .filter(|&s| s >= 1)
                        .unwrap_or_else(|| {
                            panic!("--shards expects a positive integer, got {value}")
                        }),
                );
            }
            "--shard-bench" => {
                shard_bench_path = Some(args.next().expect("--shard-bench requires a file path"));
            }
            "--topk-bench" => {
                topk_bench_path = Some(args.next().expect("--topk-bench requires a file path"));
            }
            "--nprobe-sweep" => {
                nprobe_sweep_path = Some(args.next().expect("--nprobe-sweep requires a file path"));
            }
            "--admission-bench" => {
                admission_bench_path =
                    Some(args.next().expect("--admission-bench requires a file path"));
            }
            "--read-mode" => {
                let value = args.next().expect("--read-mode requires exact|approx");
                read_mode_override = Some(match value.as_str() {
                    "exact" => ReadMode::Exact,
                    "approx" => ReadMode::Approx {
                        nprobe: DEFAULT_NPROBE,
                    },
                    other => panic!("--read-mode expects exact or approx, got {other}"),
                });
            }
            other => panic!(
                "unknown flag {other} (expected --json <path>, --shards <n>, \
                 --shard-bench <path>, --topk-bench <path>, --nprobe-sweep <path>, \
                 --admission-bench <path> or --read-mode exact|approx)"
            ),
        }
    }

    if let Some(path) = topk_bench_path {
        run_topk_bench_cli(&path);
        return;
    }
    if let Some(path) = nprobe_sweep_path {
        run_nprobe_sweep_cli(&path);
        return;
    }
    if let Some(path) = admission_bench_path {
        run_admission_bench_cli(&path);
        return;
    }

    let mut config = LoadgenConfig::from_env();
    if let Some(shards) = shards_override {
        config.shards = shards;
    }
    if let Some(mode) = read_mode_override {
        config.read_mode = mode;
    }
    print_header(
        "Serving load generator: concurrent reads during incremental propagation",
        Scale::from_env(),
    );
    println!(
        "graph: {} vertices, avg degree {:.1}; stream: {} updates; \
         {} readers, {} engine thread(s), {} shard(s); window: {} updates / {:?}; queue {} ({:?}); \
         admission: {}",
        config.vertices,
        config.avg_degree,
        config.updates,
        config.readers,
        config.engine_threads,
        config.shards,
        config.serve.max_batch,
        config.serve.max_delay,
        config.serve.queue_capacity,
        config.serve.policy,
        if config.serve.admission.enabled {
            format!(
                "concurrent (inflight {})",
                config.serve.admission.max_inflight
            )
        } else {
            "serial".to_string()
        },
    );
    println!();

    if let Some(path) = shard_bench_path {
        run_shard_bench(&config, &path);
        return;
    }

    let report = run_loadgen(&config);
    println!("{report}");
    println!();
    println!("Expected shape: readers never block on the engine (reads flow while updates");
    println!("propagate), every response stamped with its epoch + staleness, zero epoch");
    println!("monotonicity violations.");

    assert!(
        report.contract_upheld(),
        "serving contract violated: {report}"
    );

    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json()).expect("writing serve JSON");
        println!("wrote serving report to {path}");
    }
}

/// Benchmarks exact vs approximate top-k (see
/// [`ripple::serve::run_topk_bench`]) and writes `BENCH_topk.json`. Sizes
/// follow `RIPPLE_SCALE`: the CI smoke sizes are 10k and 50k vertices.
fn run_topk_bench_cli(path: &str) {
    print_header(
        "Top-k read modes: exact scan vs epoch-repaired IVF index",
        Scale::from_env(),
    );
    let sizes: &[usize] = match std::env::var("RIPPLE_SCALE").unwrap_or_default().as_str() {
        "tiny" => &[1_000],
        _ => &[10_000, 50_000],
    };
    let report = run_topk_bench(sizes, 42);
    println!("{report}");
    println!();
    println!("Expected shape: approx p50 well under exact p50 and widening with |V|");
    println!("(the scan is O(|V|), the probe is O(sqrt(|V|))); recall@10 >= 0.95 with");
    println!("bit-identical scores; zero index rebuilds after the bootstrap build.");
    std::fs::write(path, report.to_json()).expect("writing topk bench JSON");
    println!("wrote top-k comparison to {path}");
}

/// Benchmarks footprint-based concurrent window admission (see
/// [`ripple::serve::run_admission_bench`]) and writes
/// `BENCH_admission.json`. Bit-parity against the serial pipeline is
/// asserted inside the bench: a nonzero violation count aborts the run.
fn run_admission_bench_cli(path: &str) {
    print_header(
        "Concurrent window admission: footprint groups vs the serial pipeline",
        Scale::from_env(),
    );
    let report = run_admission_bench(42);
    println!("{report}");
    println!();
    println!("Expected shape: disjoint-blocks fills groups (admitted > 0, conflicts = 0),");
    println!("hub-churn serializes (conflicts > 0, admitted ~ 0); every depth commits the");
    println!("exact serial window stamps and final store — zero parity violations.");
    assert_eq!(
        report.parity_violations(),
        0,
        "admission diverged from the serial pipeline"
    );
    assert!(
        report.admitted_concurrent() > 0,
        "admission bench formed no concurrent groups"
    );
    std::fs::write(path, report.to_json()).expect("writing admission bench JSON");
    println!("wrote admission comparison to {path}");
}

/// Sweeps the IVF probe width and tabulates recall@k vs speedup over the
/// exact scan (see [`ripple::serve::run_nprobe_sweep`]), then writes the
/// artifact. Sizes follow `RIPPLE_SCALE`.
fn run_nprobe_sweep_cli(path: &str) {
    print_header(
        "IVF probe-width sweep: recall@10 vs speedup over the exact scan",
        Scale::from_env(),
    );
    let vertices = match std::env::var("RIPPLE_SCALE").unwrap_or_default().as_str() {
        "tiny" => 1_000,
        _ => 20_000,
    };
    let report = run_nprobe_sweep(vertices, 10, &[1, 2, 4, 8, 16, 32, 64], 42);
    println!("{report}");
    println!();
    println!("Expected shape: recall climbs monotonically with nprobe toward 1.0 while");
    println!("the speedup over the exact scan shrinks; the knee of the curve is the");
    println!("operating point the serving tier's DEFAULT_NPROBE should sit near.");
    std::fs::write(path, report.to_json()).expect("writing nprobe sweep JSON");
    println!("wrote nprobe sweep to {path}");
}

/// Runs the identical workload against one engine and against a two-shard
/// tier, prints both reports, and writes the combined comparison artifact.
fn run_shard_bench(base: &LoadgenConfig, path: &str) {
    let mut unsharded = base.clone();
    unsharded.shards = 1;
    let mut sharded = base.clone();
    sharded.shards = sharded.shards.max(2);

    println!("== unsharded (1 engine) ==");
    let single = run_loadgen(&unsharded);
    println!("{single}");
    println!();
    println!("== sharded ({} engines) ==", sharded.shards);
    let tiered = run_loadgen(&sharded);
    println!("{tiered}");
    println!();

    assert!(
        single.contract_upheld(),
        "unsharded contract violated: {single}"
    );
    assert!(
        tiered.contract_upheld(),
        "sharded contract violated: {tiered}"
    );

    let json = shard_bench_json(&single, &tiered);
    std::fs::write(path, json).expect("writing shard bench JSON");
    println!("wrote shard comparison to {path}");
}

/// The `BENCH_shard.json` artifact (hand-rolled: the offline serde shim has
/// no serialiser).
fn shard_bench_json(single: &LoadgenReport, tiered: &LoadgenReport) -> String {
    fn topology(out: &mut String, label: &str, report: &LoadgenReport, trailing_comma: bool) {
        out.push_str(&format!("  \"{label}\": {{\n"));
        out.push_str(&format!("    \"shards\": {},\n", report.shards));
        out.push_str(&format!("    \"epochs\": {},\n", report.epochs));
        out.push_str(&format!(
            "    \"epochs_per_sec\": {:.3},\n",
            report.epochs_per_sec
        ));
        out.push_str(&format!(
            "    \"reads_per_sec\": {:.1},\n",
            report.reads_per_sec
        ));
        out.push_str(&format!(
            "    \"read_p50_us\": {:.3},\n",
            report.read_p50.as_secs_f64() * 1e6
        ));
        out.push_str(&format!(
            "    \"read_p99_us\": {:.3},\n",
            report.read_p99.as_secs_f64() * 1e6
        ));
        out.push_str(&format!(
            "    \"updates_offered\": {},\n",
            report.updates_offered
        ));
        out.push_str(&format!("    \"applied\": {},\n", report.metrics.applied));
        out.push_str(&format!(
            "    \"contract_upheld\": {}\n",
            report.contract_upheld()
        ));
        out.push_str(if trailing_comma { "  },\n" } else { "  }\n" });
    }
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"serve_shard_bench\",\n");
    out.push_str(&format!("  {},\n", ripple_tensor::simd::env_json_fields()));
    out.push_str(&format!("  \"readers\": {},\n", single.readers));
    topology(&mut out, "unsharded", single, true);
    topology(&mut out, "sharded", tiered, false);
    out.push('}');
    out.push('\n');
    out
}
