//! Closed-loop serving load generator: one writer streams graph updates
//! through the coalescing scheduler while `N` reader threads issue point
//! lookups, label reads and top-k similarity queries against versioned
//! snapshots. Reports p50/p95/p99 read latency, update-visibility lag
//! (enqueue → published epoch) and epochs/sec, plus the serving-contract
//! counters (epoch monotonicity per reader, stamped responses).
//!
//! Configuration comes from `RIPPLE_SCALE`, `RIPPLE_THREADS` and the
//! `RIPPLE_SERVE_*` environment knobs (see the README's "Serving" section).
//!
//! Flags:
//!
//! * `--json <path>` — additionally writes the report as a JSON artifact
//!   (`BENCH_serve.json` in CI).

use ripple::experiments::{print_header, Scale};
use ripple::serve::{run_loadgen, LoadgenConfig};

fn main() {
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                json_path = Some(args.next().expect("--json requires a file path"));
            }
            other => panic!("unknown flag {other} (expected --json <path>)"),
        }
    }

    let config = LoadgenConfig::from_env();
    print_header(
        "Serving load generator: concurrent reads during incremental propagation",
        Scale::from_env(),
    );
    println!(
        "graph: {} vertices, avg degree {:.1}; stream: {} updates; \
         {} readers, {} engine thread(s); window: {} updates / {:?}; queue {} ({:?})",
        config.vertices,
        config.avg_degree,
        config.updates,
        config.readers,
        config.engine_threads,
        config.serve.max_batch,
        config.serve.max_delay,
        config.serve.queue_capacity,
        config.serve.policy,
    );
    println!();

    let report = run_loadgen(&config);
    println!("{report}");
    println!();
    println!("Expected shape: readers never block on the engine (reads flow while updates");
    println!("propagate), every response stamped with its epoch + staleness, zero epoch");
    println!("monotonicity violations.");

    assert!(
        report.contract_upheld(),
        "serving contract violated: {report}"
    );

    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json()).expect("writing serve JSON");
        println!("wrote serving report to {path}");
    }
}
