//! Regenerates Fig 12: distributed scaling of Ripple vs distributed RC on the
//! Papers-like graph.
//!
//! * (a) throughput and median latency on 8 partitions for the 3-layer GC-S
//!   and GC-M workloads across batch sizes;
//! * (b) strong scaling of GC-S-3L with 4–16 partitions for three batch
//!   sizes;
//! * (c) the compute vs communication split for GC-S-3L, batch 1000, across
//!   partition counts.

use ripple::experiments::{prepare_stream, print_header, run_distributed, DistStrategy, Scale};
use ripple::graph::synth::DatasetKind;
use ripple::prelude::*;

fn main() {
    let scale = Scale::from_env();
    print_header("Fig 12: distributed Ripple vs RC on Papers-like", scale);
    let spec = scale.dataset(DatasetKind::Papers);

    // (a) 8 partitions, GC-S and GC-M, 3 layers, batch sizes 10/100/1000.
    println!("--- (a) throughput & latency on 8 partitions (3-layer) ---");
    println!(
        "{:<10} {:<8} {:>8} {:>14} {:>18}",
        "workload", "strategy", "batch", "thpt (up/s)", "median lat (ms)"
    );
    for workload in [Workload::GcS, Workload::GcM] {
        for batch_size in [10usize, 100, 1000] {
            let num_batches = if batch_size >= 1000 { 2 } else { 3 };
            let prepared = prepare_stream(&spec, workload, 3, batch_size, num_batches, 31);
            for strategy in [DistStrategy::Rc, DistStrategy::Ripple] {
                let summary = run_distributed(&prepared, strategy, 8);
                println!(
                    "{:<10} {:<8} {:>8} {:>14.1} {:>18.3}",
                    workload.name(),
                    strategy.name(),
                    batch_size,
                    summary.throughput,
                    summary.median_latency.as_secs_f64() * 1e3
                );
            }
        }
    }

    // (b) + (c): strong scaling of GC-S-3L across partition counts.
    println!();
    println!("--- (b)/(c) strong scaling of GC-S-3L (batch 1000): throughput, compute & comm ---");
    println!(
        "{:<8} {:>8} {:>14} {:>14} {:>14} {:>16} {:>14}",
        "strategy", "parts", "thpt (up/s)", "compute (s)", "comm (s)", "bytes", "messages"
    );
    let prepared = prepare_stream(&spec, Workload::GcS, 3, 1000, 2, 37);
    let part_counts: &[usize] = match scale {
        Scale::Tiny => &[2, 4],
        _ => &[4, 6, 8, 10, 12, 16],
    };
    for &parts in part_counts {
        for strategy in [DistStrategy::Rc, DistStrategy::Ripple] {
            let summary = run_distributed(&prepared, strategy, parts);
            println!(
                "{:<8} {:>8} {:>14.1} {:>14.3} {:>14.3} {:>16} {:>14}",
                strategy.name(),
                parts,
                summary.throughput,
                summary.total_compute_time.as_secs_f64(),
                summary.total_comm_time.as_secs_f64(),
                summary.total_bytes,
                summary.total_messages
            );
        }
    }
    println!();
    println!("Expected shape (paper): Ripple's throughput scales with partitions while RC's");
    println!("stays flat because it communicates orders of magnitude more bytes per batch.");
}
