//! Regenerates Fig 2a: the effect of neighbourhood-sampling fanout on
//! vertex-wise inference accuracy and latency (Reddit graph, 3-layer
//! GraphSAGE).
//!
//! "Accuracy" is measured as agreement with the deterministic
//! full-neighbourhood prediction (the quantity the paper's determinism
//! argument is about); latency is the mean per-vertex inference time.

use ripple::experiments::{print_header, Scale, HIDDEN_DIM};
use ripple::gnn::sampling::label_agreement;
use ripple::gnn::vertex_wise::{infer_vertex, VertexWiseOptions};
use ripple::graph::synth::DatasetKind;
use ripple::prelude::*;
use ripple::tensor::vector::argmax;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    print_header(
        "Fig 2a: fanout vs. inference agreement and per-vertex latency (Reddit-like, 3-layer GS-S)",
        scale,
    );
    let spec = scale.dataset(DatasetKind::Reddit);
    let graph = spec.generate(7).expect("dataset generation");
    let model = Workload::GsS
        .build_model(spec.feature_dim, HIDDEN_DIM, spec.num_classes, 3, 11)
        .expect("model");

    // Reference: deterministic full-neighbourhood predictions.
    let num_targets = match scale {
        Scale::Tiny => 20,
        Scale::Small => 40,
        Scale::Medium => 100,
    };
    let targets: Vec<VertexId> = (0..graph.num_vertices())
        .step_by((graph.num_vertices() / num_targets).max(1))
        .take(num_targets)
        .map(|v| VertexId(v as u32))
        .collect();

    let mut reference_labels = Vec::with_capacity(targets.len());
    let full_start = Instant::now();
    for &t in &targets {
        let (emb, _) =
            infer_vertex(&graph, &model, t, &VertexWiseOptions::default()).expect("inference");
        reference_labels.push(argmax(&emb).unwrap_or(0));
    }
    let full_latency = full_start.elapsed().as_secs_f64() * 1e3 / targets.len() as f64;

    println!(
        "{:<10} {:>14} {:>22}",
        "fanout", "agreement (%)", "avg latency (ms/vertex)"
    );
    for fanout in [4usize, 8, 16, 32] {
        let mut labels = Vec::with_capacity(targets.len());
        let start = Instant::now();
        for &t in &targets {
            let opts = VertexWiseOptions {
                fanout: Some(fanout),
                seed: 99,
            };
            let (emb, _) = infer_vertex(&graph, &model, t, &opts).expect("inference");
            labels.push(argmax(&emb).unwrap_or(0));
        }
        let latency = start.elapsed().as_secs_f64() * 1e3 / targets.len() as f64;
        let agreement = label_agreement(&reference_labels, &labels) * 100.0;
        println!("{fanout:<10} {agreement:>14.1} {latency:>22.3}");
    }
    println!("{:<10} {:>14.1} {:>22.3}", "full", 100.0, full_latency);
    println!();
    println!(
        "Expected shape (paper): agreement rises towards the deterministic full-neighbourhood"
    );
    println!("prediction as fanout grows, while per-vertex latency grows with fanout.");
}
