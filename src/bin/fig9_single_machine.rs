//! Regenerates Fig 9: single-machine throughput and median batch latency of
//! DRC, RC and Ripple for the five 2-layer GNN workloads over the Arxiv-,
//! Reddit- and Products-like graphs, across batch sizes 1/10/100/1000 —
//! followed by the thread-scaling sweep of the parallel engine (1/2/4/8
//! workers on the medium synthetic workload).
//!
//! Flags:
//!
//! * `--json <path>` — additionally writes the thread-scaling rows as a JSON
//!   artifact (`BENCH_parallel.json` in CI).
//! * `--scaling-only` — skips the strategy sweep and runs only the
//!   thread-scaling part (CI runs the full binary; the flag is for quick
//!   local scaling checks).

use ripple::experiments::{
    parallel_scaling_sweep, print_header, print_scaling_rows, scaling_rows_to_json,
    single_machine_sweep, HarnessConfig,
};
use ripple::graph::synth::DatasetKind;

/// Thread counts swept by the Fig 9 scaling experiment.
const SWEEP_THREADS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let mut json_path: Option<String> = None;
    let mut scaling_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                json_path = Some(args.next().expect("--json requires a file path"));
            }
            "--scaling-only" => scaling_only = true,
            other => panic!("unknown flag {other} (expected --json <path> or --scaling-only)"),
        }
    }

    let config = HarnessConfig::from_env();
    print_header(
        "Fig 9: single-machine throughput/latency, 2-layer workloads",
        config.scale,
    );
    if !scaling_only {
        single_machine_sweep(
            config,
            2,
            &[
                DatasetKind::Arxiv,
                DatasetKind::Products,
                DatasetKind::Reddit,
            ],
        );
    }

    println!("=== parallel engine thread scaling (GC-S, medium synthetic graph) ===");
    let rows = parallel_scaling_sweep(config.scale, &SWEEP_THREADS);
    print_scaling_rows(&rows);
    println!();
    println!("Expected shape: near-linear batches/sec scaling while the per-hop frontier");
    println!("is large compared to the worker count; embeddings stay bit-identical.");

    if let Some(path) = json_path {
        let json = scaling_rows_to_json(config.scale, &rows);
        std::fs::write(&path, json).expect("writing scaling JSON");
        println!("wrote thread-scaling rows to {path}");
    }
}
