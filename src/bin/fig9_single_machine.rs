//! Regenerates Fig 9: single-machine throughput and median batch latency of
//! DRC, RC and Ripple for the five 2-layer GNN workloads over the Arxiv-,
//! Reddit- and Products-like graphs, across batch sizes 1/10/100/1000.

use ripple::experiments::{print_header, single_machine_sweep, Scale};
use ripple::graph::synth::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    print_header(
        "Fig 9: single-machine throughput/latency, 2-layer workloads",
        scale,
    );
    single_machine_sweep(
        scale,
        2,
        &[
            DatasetKind::Arxiv,
            DatasetKind::Products,
            DatasetKind::Reddit,
        ],
    );
}
