//! Regenerates Fig 8: comparison of inference strategies on a batch of 10
//! updates (3-layer GC-S, Arxiv and Products), with the per-batch latency
//! split into the update and propagate phases.
//!
//! The paper compares DGL vertex-wise and layer-wise recompute on CPU and
//! CPU+GPU (DNC/DNG/DRC/DRG) against its own RC and Ripple. No GPU is
//! available to this reproduction, so the GPU variants are reported as N/A;
//! DNC stands in for DGL vertex-wise (full-neighbourhood, per-target
//! recompute) and DRC for DGL layer-wise recompute (with per-batch graph
//! rebuild overhead).

use ripple::experiments::{prepare_stream, print_header, run_strategy_per_batch, Scale, Strategy};
use ripple::graph::synth::DatasetKind;
use ripple::prelude::*;

fn main() {
    let scale = Scale::from_env();
    print_header(
        "Fig 8: strategy comparison, batch size 10, 3-layer GC-S",
        scale,
    );
    for kind in [DatasetKind::Arxiv, DatasetKind::Products] {
        // Vertex-wise inference (DNC) re-expands the full L-hop neighbourhood
        // of every affected vertex, so its cost explodes with graph size —
        // which is exactly the paper's point. Clamp the graph so the DNC bar
        // finishes in reasonable time while the ordering stays visible.
        let spec = scale.dataset(kind);
        let clamped_degree = spec.avg_in_degree.min(20.0);
        let spec = if spec.num_vertices > 3000 {
            spec.scaled_to(3000).with_avg_in_degree(clamped_degree)
        } else {
            spec
        };
        println!("--- {} ---", spec.name);
        println!(
            "{:<8} {:>20} {:>20} {:>20}",
            "strategy", "update (ms)", "propagate (ms)", "total (ms)"
        );
        let prepared = prepare_stream(&spec, Workload::GcS, 3, 10, scale.batches_per_cell(), 21);
        for strategy in [
            Strategy::VertexWise,
            Strategy::Drc,
            Strategy::Rc,
            Strategy::Ripple,
        ] {
            let stats = run_strategy_per_batch(&prepared, strategy);
            let update = median(stats.iter().map(|s| s.update_time.as_secs_f64() * 1e3));
            let propagate = median(stats.iter().map(|s| s.propagate_time.as_secs_f64() * 1e3));
            let total = median(stats.iter().map(|s| s.total_time().as_secs_f64() * 1e3));
            println!(
                "{:<8} {update:>20.3} {propagate:>20.3} {total:>20.3}",
                strategy.name()
            );
        }
        println!(
            "{:<8} {:>20} {:>20} {:>20}",
            "DNG", "n/a (no GPU)", "n/a", "n/a"
        );
        println!(
            "{:<8} {:>20} {:>20} {:>20}",
            "DRG", "n/a (no GPU)", "n/a", "n/a"
        );
    }
    println!();
    println!("Expected shape (paper): DNC slowest, DRC pays a large update cost, RC cuts the");
    println!("update cost with lightweight edge lists, Ripple is fastest overall.");
}

fn median(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.collect();
    v.sort_by(f64::total_cmp);
    v.get(v.len() / 2).copied().unwrap_or(0.0)
}
