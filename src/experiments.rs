//! Shared plumbing for the experiment harness binaries (`src/bin/fig*.rs`,
//! `src/bin/table3_datasets.rs`).
//!
//! Every binary regenerates one table or figure of the paper at a reduced,
//! configurable scale. The scale is controlled by the `RIPPLE_SCALE`
//! environment variable (`tiny`, `small`, `medium`); `small` is the default
//! and keeps the full Fig 9 sweep under a few minutes on a laptop while
//! preserving every qualitative trend. `EXPERIMENTS.md` records the output of
//! a `small` run next to the paper's numbers.

use crate::prelude::*;
use ripple_graph::synth::DatasetKind;
use std::time::Duration;

/// Experiment scale, mapped from the `RIPPLE_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// A few hundred vertices — used by integration tests of the binaries.
    Tiny,
    /// Thousands of vertices (default) — minutes per figure.
    Small,
    /// Tens of thousands of vertices — closer to the paper's trends, tens of
    /// minutes for the full sweep.
    Medium,
}

impl Scale {
    /// Reads the scale from `RIPPLE_SCALE` (defaults to [`Scale::Small`]).
    pub fn from_env() -> Self {
        match std::env::var("RIPPLE_SCALE")
            .unwrap_or_default()
            .to_lowercase()
            .as_str()
        {
            "tiny" => Scale::Tiny,
            "medium" => Scale::Medium,
            _ => Scale::Small,
        }
    }

    /// Scaled vertex count and average in-degree for one of the paper's
    /// datasets. Dense graphs (Reddit) have their in-degree reduced along
    /// with the vertex count so that the affected-fraction behaviour is
    /// preserved without hundreds of millions of edges.
    pub fn dataset(self, kind: DatasetKind) -> DatasetSpec {
        let base = match kind {
            DatasetKind::Arxiv => DatasetSpec::arxiv_like(),
            DatasetKind::Reddit => DatasetSpec::reddit_like(),
            DatasetKind::Products => DatasetSpec::products_like(),
            DatasetKind::Papers => DatasetSpec::papers_like(),
            DatasetKind::Custom => DatasetSpec::custom(1000, 5.0, 32, 8),
        };
        match self {
            Scale::Tiny => {
                let (n, deg) = match kind {
                    DatasetKind::Arxiv => (400, 6.9),
                    DatasetKind::Reddit => (200, 20.0),
                    DatasetKind::Products => (300, 12.0),
                    DatasetKind::Papers => (500, 6.0),
                    DatasetKind::Custom => (200, 4.0),
                };
                base.scaled_to(n)
                    .with_avg_in_degree(deg)
                    .with_feature_dim(16)
            }
            Scale::Small => {
                // Vertex counts are chosen so that the L-hop neighbourhood of a
                // small batch stays well below the whole graph (the paper's
                // sparse-propagation regime); degrees of the two densest
                // graphs are reduced along with their vertex counts.
                let (n, deg, feats) = match kind {
                    DatasetKind::Arxiv => (20_000, 6.9, 64),
                    DatasetKind::Reddit => (3_000, 100.0, 64),
                    DatasetKind::Products => (12_000, 20.0, 64),
                    DatasetKind::Papers => (15_000, 10.0, 64),
                    DatasetKind::Custom => (1000, 5.0, 32),
                };
                base.scaled_to(n)
                    .with_avg_in_degree(deg)
                    .with_feature_dim(feats)
            }
            Scale::Medium => {
                let (n, deg) = match kind {
                    DatasetKind::Arxiv => (20_000, 6.9),
                    DatasetKind::Reddit => (2_000, 200.0),
                    DatasetKind::Products => (10_000, 50.5),
                    DatasetKind::Papers => (40_000, 14.5),
                    DatasetKind::Custom => (5000, 6.0),
                };
                base.scaled_to(n).with_avg_in_degree(deg)
            }
        }
    }

    /// Number of update batches replayed per experiment cell.
    pub fn batches_per_cell(self) -> usize {
        match self {
            Scale::Tiny => 3,
            Scale::Small => 5,
            Scale::Medium => 10,
        }
    }
}

/// Worker-thread count for the incremental engines, read from
/// `RIPPLE_THREADS`: a number, or `auto` for the host's available
/// parallelism (defaults to 1 = the serial engine).
pub fn threads_from_env() -> usize {
    match std::env::var("RIPPLE_THREADS").as_deref() {
        Ok("auto") => ripple_core::WorkerPool::host_sized().threads(),
        Ok(value) => value.parse::<usize>().ok().filter(|&t| t >= 1).unwrap_or(1),
        Err(_) => 1,
    }
}

/// Full harness configuration: the experiment scale plus the engine thread
/// count used for the Ripple rows of the single-machine sweeps (Figs 9/10;
/// the remaining figures run single-threaded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarnessConfig {
    /// Experiment scale (`RIPPLE_SCALE`).
    pub scale: Scale,
    /// Ripple engine worker threads (`RIPPLE_THREADS`, default 1).
    pub threads: usize,
}

impl HarnessConfig {
    /// Reads scale and thread count from the environment.
    pub fn from_env() -> Self {
        HarnessConfig {
            scale: Scale::from_env(),
            threads: threads_from_env(),
        }
    }
}

/// Hidden width used by every harness model (the paper does not report its
/// hidden width; 32 keeps the arithmetic light without changing any trend).
pub const HIDDEN_DIM: usize = 32;

/// One prepared experiment cell: a bootstrapped snapshot plus its update
/// stream, ready to be replayed by any strategy.
pub struct PreparedStream {
    /// The dataset specification used.
    pub spec: DatasetSpec,
    /// The initial snapshot graph.
    pub snapshot: DynamicGraph,
    /// The trained (deterministically initialised) model.
    pub model: GnnModel,
    /// Bootstrap embeddings of the snapshot.
    pub store: EmbeddingStore,
    /// The update stream batched at the requested size.
    pub batches: Vec<UpdateBatch>,
}

/// Prepares a snapshot + update stream + bootstrap embeddings for one
/// (dataset, workload, layers, batch size) cell.
///
/// # Panics
///
/// Panics on generation or inference errors — the harness binaries treat any
/// setup failure as fatal.
pub fn prepare_stream(
    spec: &DatasetSpec,
    workload: Workload,
    num_layers: usize,
    batch_size: usize,
    num_batches: usize,
    seed: u64,
) -> PreparedStream {
    let full = spec
        .generate_weighted(seed, workload.needs_edge_weights())
        .expect("dataset generation");
    let plan = build_stream(
        &full,
        &StreamConfig {
            holdout_fraction: 0.10,
            total_updates: batch_size * num_batches,
            seed: seed ^ 0xabcd,
        },
    )
    .expect("update stream");
    let model = workload
        .build_model(
            spec.feature_dim,
            HIDDEN_DIM,
            spec.num_classes,
            num_layers,
            seed ^ 0x77,
        )
        .expect("model construction");
    let store = full_inference(&plan.snapshot, &model).expect("bootstrap inference");
    let batches = plan.batches(batch_size);
    PreparedStream {
        spec: spec.clone(),
        snapshot: plan.snapshot,
        model,
        store,
        batches,
    }
}

/// The single-machine strategies compared throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// DGL-style layer-wise recompute (per-batch graph rebuild overhead).
    Drc,
    /// The paper's lightweight layer-wise recompute baseline.
    Rc,
    /// The Ripple incremental engine.
    Ripple,
    /// Vertex-wise recompute (DNC-style), only used by Fig 8.
    VertexWise,
}

impl Strategy {
    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Drc => "DRC",
            Strategy::Rc => "RC",
            Strategy::Ripple => "Ripple",
            Strategy::VertexWise => "DNC",
        }
    }
}

/// Replays a prepared stream through one strategy and returns its summary.
///
/// # Panics
///
/// Panics on engine errors — harness cells are expected to be valid.
pub fn run_strategy(prepared: &PreparedStream, strategy: Strategy) -> StreamSummary {
    run_strategy_with_threads(prepared, strategy, 1)
}

/// Like [`run_strategy`], but the Ripple strategy runs on
/// [`ParallelRippleEngine`] when `threads > 1` (the other strategies have no
/// parallel variant and ignore the knob).
///
/// # Panics
///
/// Panics on engine errors — harness cells are expected to be valid.
pub fn run_strategy_with_threads(
    prepared: &PreparedStream,
    strategy: Strategy,
    threads: usize,
) -> StreamSummary {
    let graph = prepared.snapshot.clone();
    let model = prepared.model.clone();
    let store = prepared.store.clone();
    let mut engine: Box<dyn StreamingEngine> = match strategy {
        Strategy::Drc => Box::new(
            RecomputeEngine::new(graph, model, store, RecomputeConfig::drc()).expect("drc engine"),
        ),
        Strategy::Rc => Box::new(
            RecomputeEngine::new(graph, model, store, RecomputeConfig::rc()).expect("rc engine"),
        ),
        Strategy::Ripple if threads > 1 => Box::new(
            ParallelRippleEngine::new(graph, model, store, RippleConfig::default(), threads)
                .expect("parallel ripple engine"),
        ),
        Strategy::Ripple => Box::new(
            RippleEngine::new(graph, model, store, RippleConfig::default()).expect("ripple engine"),
        ),
        Strategy::VertexWise => Box::new(ripple_core::batch::VertexWiseEngine::new(
            graph, model, store,
        )),
    };
    StreamRunner::run_to_summary(engine.as_mut(), &prepared.batches, strategy.name())
        .expect("stream processing")
}

/// Per-batch statistics for one strategy over a prepared stream (used by the
/// figures that need per-batch scatter rather than summaries, e.g. Fig 11).
///
/// # Panics
///
/// Panics on engine errors.
pub fn run_strategy_per_batch(prepared: &PreparedStream, strategy: Strategy) -> Vec<BatchStats> {
    let graph = prepared.snapshot.clone();
    let model = prepared.model.clone();
    let store = prepared.store.clone();
    let mut runner = StreamRunner::new();
    match strategy {
        Strategy::Ripple => {
            let mut e =
                RippleEngine::new(graph, model, store, RippleConfig::default()).expect("engine");
            runner.run(&mut e, &prepared.batches).expect("stream");
        }
        Strategy::Rc => {
            let mut e =
                RecomputeEngine::new(graph, model, store, RecomputeConfig::rc()).expect("engine");
            runner.run(&mut e, &prepared.batches).expect("stream");
        }
        Strategy::Drc => {
            let mut e =
                RecomputeEngine::new(graph, model, store, RecomputeConfig::drc()).expect("engine");
            runner.run(&mut e, &prepared.batches).expect("stream");
        }
        Strategy::VertexWise => {
            let mut e = ripple_core::batch::VertexWiseEngine::new(graph, model, store);
            runner.run(&mut e, &prepared.batches).expect("stream");
        }
    }
    runner.batch_stats().to_vec()
}

/// Formats a duration as milliseconds with three decimals.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// The shared sweep behind Fig 9 (2-layer, three graphs) and Fig 10 (3-layer,
/// Products): for every workload, graph and batch size, replay the same
/// stream through DRC, RC and Ripple and print throughput, median latency and
/// Ripple's speed-up over RC. The Ripple rows use `config.threads` workers.
pub fn single_machine_sweep(
    config: HarnessConfig,
    num_layers: usize,
    kinds: &[ripple_graph::synth::DatasetKind],
) {
    let scale = config.scale;
    let batch_sizes = [1usize, 10, 100, 1000];
    for &kind in kinds {
        let spec = scale.dataset(kind);
        println!("=== {} ({}-layer) ===", spec.name, num_layers);
        for workload in Workload::all() {
            println!("--- workload {workload} ---");
            println!(
                "{:<8} {:>10} {:>16} {:>18} {:>14}",
                "strategy", "batch", "thpt (up/s)", "median lat (ms)", "speedup vs RC"
            );
            for &batch_size in &batch_sizes {
                // Large batches are replayed over fewer batches to bound runtime.
                let num_batches = if batch_size >= 1000 {
                    2
                } else {
                    scale.batches_per_cell()
                };
                let prepared =
                    prepare_stream(&spec, workload, num_layers, batch_size, num_batches, 17);
                let mut rc_throughput = 0.0;
                for strategy in [Strategy::Drc, Strategy::Rc, Strategy::Ripple] {
                    let summary = run_strategy_with_threads(&prepared, strategy, config.threads);
                    if strategy == Strategy::Rc {
                        rc_throughput = summary.throughput;
                    }
                    let speedup = if strategy == Strategy::Ripple && rc_throughput > 0.0 {
                        format!("{:.1}x", summary.throughput / rc_throughput)
                    } else {
                        "-".to_string()
                    };
                    println!(
                        "{:<8} {:>10} {:>16.1} {:>18.3} {:>14}",
                        strategy.name(),
                        batch_size,
                        summary.throughput,
                        summary.median_latency.as_secs_f64() * 1e3,
                        speedup
                    );
                }
            }
        }
    }
    println!();
    println!("Expected shape (paper): Ripple > RC > DRC in throughput for every workload and");
    println!("batch size; the gap is largest on the denser graphs and larger batches.");
}

/// One row of the Fig 9 thread-scaling sweep: the parallel engine's
/// throughput at one thread count, normalised against the serial engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingRow {
    /// Worker threads used by [`ParallelRippleEngine`].
    pub threads: usize,
    /// Batches processed per second.
    pub batches_per_sec: f64,
    /// Updates processed per second.
    pub updates_per_sec: f64,
    /// Throughput relative to the serial [`RippleEngine`] on the same stream.
    pub speedup_vs_serial: f64,
}

/// The medium synthetic workload cell used by the thread-scaling sweep and
/// the `parallel_scaling` Criterion bench: a power-law graph large enough
/// that per-hop frontiers dwarf the pool's spawn cost.
pub fn scaling_cell(scale: Scale) -> PreparedStream {
    let (n, deg, feats, batch, num_batches) = match scale {
        Scale::Tiny => (400, 5.0, 16, 50, 2),
        Scale::Small => (5_000, 8.0, 32, 200, 4),
        Scale::Medium => (20_000, 10.0, 32, 500, 5),
    };
    let spec = DatasetSpec::custom(n, deg, feats, 8);
    prepare_stream(&spec, Workload::GcS, 2, batch, num_batches, 29)
}

/// Replays the scaling cell through the serial engine once (the baseline)
/// and then through [`ParallelRippleEngine`] at every requested thread
/// count, returning one row per count.
///
/// # Panics
///
/// Panics on engine errors.
pub fn parallel_scaling_sweep(scale: Scale, thread_counts: &[usize]) -> Vec<ScalingRow> {
    let prepared = scaling_cell(scale);
    let num_batches = prepared.batches.len() as f64;
    let serial = run_strategy(&prepared, Strategy::Ripple);
    thread_counts
        .iter()
        .map(|&threads| {
            // The serial baseline doubles as the 1-thread row, so that row's
            // speedup is exactly 1.0 rather than run-to-run timing jitter.
            let summary = if threads <= 1 {
                serial.clone()
            } else {
                run_strategy_with_threads(&prepared, Strategy::Ripple, threads)
            };
            ScalingRow {
                threads,
                batches_per_sec: num_batches / summary.total_time.as_secs_f64(),
                updates_per_sec: summary.throughput,
                speedup_vs_serial: summary.throughput / serial.throughput,
            }
        })
        .collect()
}

/// Prints the thread-scaling table in the harness format.
pub fn print_scaling_rows(rows: &[ScalingRow]) {
    println!(
        "{:<8} {:>16} {:>16} {:>18}",
        "threads", "batches/s", "thpt (up/s)", "speedup vs serial"
    );
    for row in rows {
        println!(
            "{:<8} {:>16.2} {:>16.1} {:>17.2}x",
            row.threads, row.batches_per_sec, row.updates_per_sec, row.speedup_vs_serial
        );
    }
}

/// Serialises the thread-scaling rows as the `BENCH_parallel.json` artifact
/// consumed by CI (hand-rolled: the offline serde shim has no serialiser).
pub fn scaling_rows_to_json(scale: Scale, rows: &[ScalingRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"experiment\": \"fig9_parallel_scaling\",\n");
    out.push_str(&format!("  {},\n", ripple_tensor::simd::env_json_fields()));
    out.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    out.push_str("  \"workload\": \"GC-S\",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"batches_per_sec\": {:.3}, \"updates_per_sec\": {:.3}, \"speedup_vs_serial\": {:.4}}}{}\n",
            row.threads,
            row.batches_per_sec,
            row.updates_per_sec,
            row.speedup_vs_serial,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Prints a standard experiment header with the scale in use, plus the
/// SIMD tier and core count the run will actually execute with — the two
/// facts without which its throughput numbers cannot be compared to anyone
/// else's.
pub fn print_header(title: &str, scale: Scale) {
    use ripple_tensor::simd;
    println!("==============================================================================");
    println!("{title}");
    println!("scale: {scale:?} (set RIPPLE_SCALE=tiny|small|medium to change)");
    println!(
        "simd: {} (detected {}; set RIPPLE_SIMD=scalar|avx2|neon|auto to change), cores: {}",
        simd::active_tier(),
        simd::detected_tier(),
        simd::detected_cores()
    );
    println!("==============================================================================");
}

/// The distributed strategies compared in Figs 12 and 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistStrategy {
    /// Distributed layer-wise recompute.
    Rc,
    /// Distributed Ripple.
    Ripple,
}

impl DistStrategy {
    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            DistStrategy::Rc => "RC",
            DistStrategy::Ripple => "Ripple",
        }
    }
}

/// Replays a prepared stream through a distributed strategy on
/// `num_parts` partitions (LDG partitioning, 10 GbE network model) and
/// returns the per-stream summary.
///
/// # Panics
///
/// Panics on partitioning or engine errors.
pub fn run_distributed(
    prepared: &PreparedStream,
    strategy: DistStrategy,
    num_parts: usize,
) -> DistSummary {
    let partitioning = LdgPartitioner::new()
        .partition(&prepared.snapshot, num_parts)
        .expect("partitioning");
    let network = NetworkModel::ten_gbe();
    let mut stats = Vec::with_capacity(prepared.batches.len());
    match strategy {
        DistStrategy::Ripple => {
            let mut engine = DistRippleEngine::new(
                &prepared.snapshot,
                prepared.model.clone(),
                &prepared.store,
                partitioning,
                network,
            )
            .expect("dist ripple engine");
            for batch in &prepared.batches {
                stats.push(engine.process_batch(batch).expect("batch"));
            }
        }
        DistStrategy::Rc => {
            let mut engine = DistRecomputeEngine::new(
                &prepared.snapshot,
                prepared.model.clone(),
                &prepared.store,
                partitioning,
                network,
            )
            .expect("dist rc engine");
            for batch in &prepared.batches {
                stats.push(engine.process_batch(batch).expect("batch"));
            }
        }
    }
    DistSummary::from_stats(
        format!("dist-{}", strategy.name().to_lowercase()),
        num_parts,
        &stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_graph::synth::DatasetKind;

    #[test]
    fn distributed_helper_runs_both_strategies() {
        let spec = Scale::Tiny.dataset(DatasetKind::Papers);
        let prepared = prepare_stream(&spec, Workload::GcS, 2, 5, 2, 9);
        let ripple = run_distributed(&prepared, DistStrategy::Ripple, 3);
        let rc = run_distributed(&prepared, DistStrategy::Rc, 3);
        assert_eq!(ripple.total_updates, rc.total_updates);
        assert_eq!(ripple.num_parts, 3);
        assert!(ripple.throughput > 0.0);
        assert_eq!(DistStrategy::Rc.name(), "RC");
        assert_eq!(DistStrategy::Ripple.name(), "Ripple");
    }

    #[test]
    fn scale_from_env_defaults_to_small() {
        // The test environment does not set RIPPLE_SCALE.
        assert_eq!(Scale::from_env(), Scale::Small);
    }

    #[test]
    fn tiny_datasets_are_tiny() {
        let spec = Scale::Tiny.dataset(DatasetKind::Products);
        assert!(spec.num_vertices <= 500);
        assert!(spec.feature_dim <= 16);
        assert_eq!(spec.kind, DatasetKind::Products);
    }

    #[test]
    fn prepared_stream_is_consistent() {
        let spec = Scale::Tiny.dataset(DatasetKind::Arxiv);
        let prepared = prepare_stream(&spec, Workload::GcS, 2, 5, 2, 1);
        assert_eq!(prepared.batches.len(), 2);
        assert_eq!(prepared.model.num_layers(), 2);
        assert_eq!(
            prepared.store.num_vertices(),
            prepared.snapshot.num_vertices()
        );
    }

    #[test]
    fn strategies_run_and_agree() {
        let spec = Scale::Tiny.dataset(DatasetKind::Custom);
        let prepared = prepare_stream(&spec, Workload::GcS, 2, 5, 2, 3);
        let ripple = run_strategy(&prepared, Strategy::Ripple);
        let rc = run_strategy(&prepared, Strategy::Rc);
        assert_eq!(ripple.total_updates, rc.total_updates);
        assert!(ripple.throughput > 0.0);
        let per_batch = run_strategy_per_batch(&prepared, Strategy::Ripple);
        assert_eq!(per_batch.len(), 2);
    }

    #[test]
    fn parallel_ripple_strategy_agrees_with_serial() {
        let spec = Scale::Tiny.dataset(DatasetKind::Custom);
        let prepared = prepare_stream(&spec, Workload::GcS, 2, 5, 2, 3);
        let serial = run_strategy(&prepared, Strategy::Ripple);
        let parallel = run_strategy_with_threads(&prepared, Strategy::Ripple, 4);
        assert_eq!(serial.total_updates, parallel.total_updates);
        assert_eq!(serial.mean_affected_final, parallel.mean_affected_final);
        assert_eq!(serial.total_aggregate_ops, parallel.total_aggregate_ops);
    }

    #[test]
    fn scaling_sweep_produces_one_row_per_thread_count() {
        let rows = parallel_scaling_sweep(Scale::Tiny, &[1, 2]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].threads, 1);
        assert_eq!(rows[1].threads, 2);
        for row in &rows {
            assert!(row.batches_per_sec > 0.0);
            assert!(row.updates_per_sec > 0.0);
            assert!(row.speedup_vs_serial > 0.0);
        }
        let json = scaling_rows_to_json(Scale::Tiny, &rows);
        assert!(json.contains("\"experiment\": \"fig9_parallel_scaling\""));
        assert!(json.contains("\"scale\": \"Tiny\""));
        assert!(json.contains("\"threads\": 2"));
        print_scaling_rows(&rows);
    }

    #[test]
    fn harness_config_mirrors_env_readers() {
        let config = HarnessConfig::from_env();
        assert_eq!(config.scale, Scale::from_env());
        assert_eq!(config.threads, threads_from_env());
        // Only assert the default when the knob is genuinely unset, so the
        // suite stays green under `RIPPLE_THREADS=n cargo test`.
        if std::env::var("RIPPLE_THREADS").is_err() {
            assert_eq!(config.threads, 1);
        }
    }

    #[test]
    fn strategy_names_match_paper() {
        assert_eq!(Strategy::Drc.name(), "DRC");
        assert_eq!(Strategy::Rc.name(), "RC");
        assert_eq!(Strategy::Ripple.name(), "Ripple");
        assert_eq!(Strategy::VertexWise.name(), "DNC");
    }
}
