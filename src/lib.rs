//! Facade crate for the Ripple reproduction.
//!
//! Re-exports the public API of the workspace crates under one roof and
//! provides the [`experiments`] module used by the `fig*`/`table*` harness
//! binaries (one per table/figure of the paper's evaluation) and by the
//! runnable examples.
//!
//! # Crate map
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`tensor`] | `ripple-tensor` | dense matrices, vector ops, initialisers |
//! | [`graph`] | `ripple-graph` | dynamic graphs, synthetic datasets, update streams, partitioners |
//! | [`gnn`] | `ripple-gnn` | GNN models, aggregators, layer-wise/vertex-wise inference, RC baselines |
//! | [`core`] | `ripple-core` | the Ripple incremental engine, mailboxes, metrics |
//! | [`dist`] | `ripple-dist` | distributed (BSP, simulated-network) Ripple and RC |
//! | [`serve`] | `ripple-serve` | online serving: versioned snapshots, update-coalescing scheduler, sharded tier |
//!
//! # Quickstart
//!
//! ```
//! use ripple::prelude::*;
//!
//! // 1. Generate a small synthetic graph and bootstrap all embeddings.
//! let graph = DatasetSpec::custom(300, 5.0, 16, 4).generate(7).unwrap();
//! let model = Workload::GcS.build_model(16, 32, 4, 2, 1).unwrap();
//! let store = full_inference(&graph, &model).unwrap();
//!
//! // 2. Stream updates through the incremental engine.
//! let mut engine = RippleEngine::new(graph, model, store, RippleConfig::default()).unwrap();
//! let batch = UpdateBatch::from_updates(vec![
//!     GraphUpdate::add_edge(VertexId(1), VertexId(2)),
//! ]);
//! let stats = engine.process_batch(&batch).unwrap();
//! println!("refreshed {} vertices", stats.affected_final);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use ripple_core as core;
pub use ripple_dist as dist;
pub use ripple_gnn as gnn;
pub use ripple_graph as graph;
pub use ripple_serve as serve;
pub use ripple_tensor as tensor;

pub mod experiments;

/// The most commonly used items, re-exported for `use ripple::prelude::*`.
pub mod prelude {
    pub use ripple_core::{
        BatchStats, ParallelRippleEngine, RippleConfig, RippleEngine, StreamRunner, StreamSummary,
        StreamingEngine, WorkerPool,
    };
    pub use ripple_dist::{
        DistBatchStats, DistRecomputeEngine, DistRippleEngine, DistSummary, NetworkModel,
    };
    pub use ripple_gnn::layer_wise::full_inference;
    pub use ripple_gnn::recompute::{RecomputeConfig, RecomputeEngine};
    pub use ripple_gnn::{Aggregator, EmbeddingStore, GnnModel, LayerKind, Workload};
    pub use ripple_graph::partition::{
        BfsPartitioner, HashPartitioner, LdgPartitioner, Partitioner, Partitioning,
    };
    pub use ripple_graph::stream::{build_stream, StreamConfig, StreamPlan};
    pub use ripple_graph::synth::DatasetSpec;
    pub use ripple_graph::{
        CsrGraph, CsrSnapshot, DynamicGraph, GraphUpdate, GraphView, UpdateBatch, VertexId,
    };
    pub use ripple_serve::{
        spawn as spawn_serve, spawn_sharded, BackpressurePolicy, FlushLog, IndexParams, IndexStats,
        QueryService, ReadMode, ServeClient, ServeConfig, ServeError, ServeFrontend, ServeHandle,
        ServeMetrics, ShardRouter, ShardedServeHandle, Stamped, Submission, TopKRequest,
        UpdateClient,
    };
}
