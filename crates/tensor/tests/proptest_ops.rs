//! Property-based tests of the dense linear-algebra substrate: the algebraic
//! identities the incremental engine relies on (linearity, distributivity,
//! inverse operations) must hold for arbitrary matrices within float
//! tolerance.

use proptest::prelude::*;
use ripple_tensor::{ops, Matrix};

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_flat(rows, cols, data).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// `A·(B + C) == A·B + A·C` — the distributivity that makes delta
    /// propagation through the (linear) Update function exact.
    #[test]
    fn matmul_distributes_over_addition(
        a in matrix_strategy(4, 3),
        b in matrix_strategy(3, 5),
        c in matrix_strategy(3, 5),
    ) {
        let lhs = ops::matmul(&a, &ops::add(&b, &c).unwrap()).unwrap();
        let rhs = ops::add(&ops::matmul(&a, &b).unwrap(), &ops::matmul(&a, &c).unwrap()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-3);
    }

    /// Adding and then subtracting the same matrix is the identity.
    #[test]
    fn add_then_sub_round_trips(
        a in matrix_strategy(5, 4),
        b in matrix_strategy(5, 4),
    ) {
        let back = ops::sub(&ops::add(&a, &b).unwrap(), &b).unwrap();
        prop_assert!(back.max_abs_diff(&a).unwrap() < 1e-4);
    }

    /// Transposition is an involution.
    #[test]
    fn transpose_is_involutive(a in matrix_strategy(6, 3)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    /// `row_matmul` agrees with the full matrix product row by row.
    #[test]
    fn row_matmul_matches_matmul(
        a in matrix_strategy(4, 3),
        w in matrix_strategy(3, 4),
    ) {
        let full = ops::matmul(&a, &w).unwrap();
        for r in 0..a.rows() {
            let single = ops::row_matmul(a.row(r), &w).unwrap();
            let diff = ripple_tensor::max_abs_diff(&single, full.row(r));
            prop_assert!(diff < 1e-4);
        }
    }

    /// Summing rows one by one equals summing them all at once (the mailbox
    /// accumulation property at the matrix level).
    #[test]
    fn sum_rows_is_order_independent(
        m in matrix_strategy(8, 4),
        mut indices in prop::collection::vec(0usize..8, 1..8),
    ) {
        let forward = ops::sum_rows(&m, &indices).unwrap();
        indices.reverse();
        let backward = ops::sum_rows(&m, &indices).unwrap();
        prop_assert!(ripple_tensor::max_abs_diff(&forward, &backward) < 1e-4);
    }

    /// `axpy` with alpha and then with -alpha restores the original vector.
    #[test]
    fn axpy_is_invertible(
        base in prop::collection::vec(-5.0f32..5.0, 16),
        delta in prop::collection::vec(-5.0f32..5.0, 16),
        alpha in -3.0f32..3.0,
    ) {
        let mut v = base.clone();
        ripple_tensor::axpy(&mut v, alpha, &delta);
        ripple_tensor::axpy(&mut v, -alpha, &delta);
        prop_assert!(ripple_tensor::max_abs_diff(&v, &base) < 1e-3);
    }
}
