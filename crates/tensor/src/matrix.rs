//! Row-major dense `f32` matrix.
//!
//! [`Matrix`] is the workhorse container of the workspace: vertex feature
//! tables (`|V| x F`), per-layer embedding tables (`|V| x D_l`) and GNN weight
//! matrices (`D_{l-1} x D_l`) are all stored as `Matrix` values. Rows are the
//! unit of access almost everywhere (a row is one vertex's feature or
//! embedding vector), so the API is row-oriented.

use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f32` values.
///
/// # Example
///
/// ```
/// use ripple_tensor::Matrix;
///
/// let mut m = Matrix::zeros(3, 2);
/// m.row_mut(1).copy_from_slice(&[1.0, 2.0]);
/// assert_eq!(m.row(1), &[1.0, 2.0]);
/// assert_eq!(m.shape(), (3, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates an identity-like matrix: ones on the main diagonal, zeros
    /// elsewhere. The matrix need not be square; the diagonal runs over
    /// `min(rows, cols)` entries.
    pub fn eye(rows: usize, cols: usize) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows.min(cols) {
            m.data[i * cols + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RaggedRows`] if the rows do not all have the
    /// same length, and [`TensorError::Empty`] if `rows` is empty.
    ///
    /// # Example
    ///
    /// ```
    /// # use ripple_tensor::Matrix;
    /// # fn main() -> Result<(), ripple_tensor::TensorError> {
    /// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
    /// assert_eq!(m.get(1, 0)?, 3.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self> {
        let first = rows.first().ok_or(TensorError::Empty)?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(TensorError::RaggedRows {
                    expected: cols,
                    found: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::ShapeMismatch {
                op: "from_flat",
                left: (rows, cols),
                right: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`. Use [`Matrix::try_row`] for a fallible
    /// variant.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(
            r < self.rows,
            "row index {r} out of bounds ({} rows)",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(
            r < self.rows,
            "row index {r} out of bounds ({} rows)",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Fallible borrow of row `r`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `r >= self.rows()`.
    pub fn try_row(&self, r: usize) -> Result<&[f32]> {
        if r >= self.rows {
            return Err(TensorError::IndexOutOfBounds {
                index: r,
                bound: self.rows,
            });
        }
        Ok(self.row(r))
    }

    /// Element accessor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if either index is out of
    /// range.
    pub fn get(&self, r: usize, c: usize) -> Result<f32> {
        if r >= self.rows {
            return Err(TensorError::IndexOutOfBounds {
                index: r,
                bound: self.rows,
            });
        }
        if c >= self.cols {
            return Err(TensorError::IndexOutOfBounds {
                index: c,
                bound: self.cols,
            });
        }
        Ok(self.data[r * self.cols + c])
    }

    /// Element setter.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if either index is out of
    /// range.
    pub fn set(&mut self, r: usize, c: usize, value: f32) -> Result<()> {
        if r >= self.rows {
            return Err(TensorError::IndexOutOfBounds {
                index: r,
                bound: self.rows,
            });
        }
        if c >= self.cols {
            return Err(TensorError::IndexOutOfBounds {
                index: c,
                bound: self.cols,
            });
        }
        self.data[r * self.cols + c] = value;
        Ok(())
    }

    /// Copies `values` into row `r`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `r` is out of range and
    /// [`TensorError::ShapeMismatch`] if `values.len() != self.cols()`.
    pub fn set_row(&mut self, r: usize, values: &[f32]) -> Result<()> {
        if r >= self.rows {
            return Err(TensorError::IndexOutOfBounds {
                index: r,
                bound: self.rows,
            });
        }
        if values.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "set_row",
                left: (1, self.cols),
                right: (1, values.len()),
            });
        }
        self.row_mut(r).copy_from_slice(values);
        Ok(())
    }

    /// Flat row-major view of the whole matrix.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the whole matrix.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the flat row-major buffer.
    pub fn into_flat(self) -> Vec<f32> {
        self.data
    }

    /// Iterator over rows as slices. A zero-width matrix still yields one
    /// (empty) slice per row, so `iter_rows().count() == rows()` for every
    /// shape.
    ///
    /// ```
    /// # use ripple_tensor::Matrix;
    /// let m = Matrix::eye(2, 2);
    /// let sums: Vec<f32> = m.iter_rows().map(|r| r.iter().sum()).collect();
    /// assert_eq!(sums, vec![1.0, 1.0]);
    /// ```
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> + '_ {
        (0..self.rows).map(move |r| &self.data[r * self.cols..(r + 1) * self.cols])
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Appends `extra` zero rows, growing the matrix in place. Used when new
    /// vertices are appended to a growing graph.
    pub fn grow_rows(&mut self, extra: usize) {
        self.data
            .extend(std::iter::repeat_n(0.0, extra * self.cols));
        self.rows += extra;
    }

    /// Fills the whole matrix with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Reshapes the matrix to `rows x cols`, zero-filled, **reusing the
    /// existing buffer capacity**. Once the buffer has grown to the largest
    /// shape a call site needs, subsequent calls perform no heap allocation —
    /// this is the primitive behind the `_into` kernels' scratch reuse.
    pub fn resize_reuse(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Overwrites this matrix with the shape and contents of `other`,
    /// **reusing the existing buffer capacity**. Once the buffer has grown to
    /// `other`'s size, repeated refreshes perform no heap allocation — the
    /// primitive behind epoch-snapshot double buffering in the serving layer.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Frobenius norm of the matrix (square root of the sum of squares).
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Largest absolute element-wise difference between two matrices of the
    /// same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f32> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "max_abs_diff",
                left: self.shape(),
                right: other.shape(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max))
    }

    /// Returns `true` if every element of the two matrices differs by at most
    /// `tol`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> Result<bool> {
        Ok(self.max_abs_diff(other)? <= tol)
    }

    /// Heap memory retained by the matrix's buffer, in bytes. Reports the
    /// buffer **capacity**, not its current length, so scratch arenas that
    /// shrank via [`Matrix::resize_reuse`] still account for the memory they
    /// hold on to.
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f32>()
    }

    /// Total memory attributable to the matrix, in bytes: the inline struct
    /// (shape fields + `Vec` header) plus [`Matrix::heap_bytes`]. As with
    /// `heap_bytes`, buffer **capacity** (not length) is what is counted.
    /// Used by the experiment harness to report memory overheads (the paper
    /// reports a ~4 GiB overhead for Ripple's extra per-layer state on
    /// Products).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.heap_bytes()
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        assert!(!m.is_empty());
    }

    #[test]
    fn empty_matrix_is_empty() {
        let m = Matrix::zeros(0, 4);
        assert!(m.is_empty());
    }

    #[test]
    fn filled_sets_every_element() {
        let m = Matrix::filled(2, 2, 7.5);
        assert!(m.as_slice().iter().all(|&x| x == 7.5));
    }

    #[test]
    fn eye_rectangular() {
        let m = Matrix::eye(2, 3);
        assert_eq!(m.row(0), &[1.0, 0.0, 0.0]);
        assert_eq!(m.row(1), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn from_rows_round_trips() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(
            err,
            TensorError::RaggedRows {
                expected: 2,
                found: 1
            }
        ));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(matches!(Matrix::from_rows(&[]), Err(TensorError::Empty)));
    }

    #[test]
    fn from_flat_validates_length() {
        assert!(Matrix::from_flat(2, 2, vec![1.0; 4]).is_ok());
        assert!(Matrix::from_flat(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn get_set_round_trip() {
        let mut m = Matrix::zeros(2, 2);
        m.set(1, 1, 9.0).unwrap();
        assert_eq!(m.get(1, 1).unwrap(), 9.0);
        assert!(m.get(2, 0).is_err());
        assert!(m.get(0, 2).is_err());
        assert!(m.set(2, 0, 1.0).is_err());
        assert!(m.set(0, 2, 1.0).is_err());
    }

    #[test]
    fn set_row_validates() {
        let mut m = Matrix::zeros(2, 3);
        m.set_row(0, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert!(m.set_row(5, &[1.0, 2.0, 3.0]).is_err());
        assert!(m.set_row(0, &[1.0]).is_err());
    }

    #[test]
    fn try_row_out_of_bounds() {
        let m = Matrix::zeros(1, 1);
        assert!(m.try_row(0).is_ok());
        assert!(m.try_row(1).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_panics_out_of_bounds() {
        let m = Matrix::zeros(1, 1);
        let _ = m.row(3);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.row(0), &[1.0, 4.0]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn grow_rows_appends_zeros() {
        let mut m = Matrix::filled(1, 2, 3.0);
        m.grow_rows(2);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.row(1), &[0.0, 0.0]);
        assert_eq!(m.row(0), &[3.0, 3.0]);
    }

    #[test]
    fn frobenius_norm_matches_hand_computation() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn max_abs_diff_and_approx_eq() {
        let a = Matrix::filled(2, 2, 1.0);
        let mut b = a.clone();
        b.set(0, 1, 1.5).unwrap();
        assert!((a.max_abs_diff(&b).unwrap() - 0.5).abs() < 1e-6);
        assert!(a.approx_eq(&b, 0.6).unwrap());
        assert!(!a.approx_eq(&b, 0.4).unwrap());
        let c = Matrix::zeros(3, 3);
        assert!(a.max_abs_diff(&c).is_err());
    }

    #[test]
    fn iter_rows_covers_all_rows() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let collected: Vec<f32> = m.iter_rows().map(|r| r[0]).collect();
        assert_eq!(collected, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn iter_rows_zero_width_yields_one_empty_slice_per_row() {
        // Regression: the old `chunks_exact(cols.max(1))` hack made a (3, 0)
        // matrix yield 0 rows instead of 3 empty ones.
        let m = Matrix::zeros(3, 0);
        let rows: Vec<&[f32]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.is_empty()));
        // And a zero-row matrix yields no rows regardless of width.
        assert_eq!(Matrix::zeros(0, 4).iter_rows().count(), 0);
        assert_eq!(Matrix::zeros(0, 0).iter_rows().count(), 0);
    }

    #[test]
    fn resize_reuse_reshapes_and_zeroes_without_growing_needlessly() {
        let mut m = Matrix::filled(4, 4, 7.0);
        let capacity_before = m.heap_bytes();
        m.resize_reuse(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(
            m.heap_bytes(),
            capacity_before,
            "shrinking must keep the buffer"
        );
        m.resize_reuse(4, 4);
        assert_eq!(m.shape(), (4, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn copy_from_matches_source_and_reuses_capacity() {
        let src = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let mut dst = Matrix::filled(8, 8, 9.0);
        let capacity_before = dst.heap_bytes();
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert_eq!(
            dst.heap_bytes(),
            capacity_before,
            "refresh into a larger buffer must not reallocate"
        );
        // Growing past the capacity still produces an exact copy.
        let big = Matrix::filled(16, 16, 0.5);
        dst.copy_from(&big);
        assert_eq!(dst, big);
    }

    #[test]
    fn fill_overwrites() {
        let mut m = Matrix::eye(2, 2);
        m.fill(2.0);
        assert!(m.as_slice().iter().all(|&x| x == 2.0));
    }

    #[test]
    fn memory_bytes_is_positive_for_nonempty() {
        let m = Matrix::zeros(10, 10);
        assert!(m.memory_bytes() >= 400);
    }

    /// Pins the accounting contract: `memory_bytes` = inline struct +
    /// capacity-sized heap buffer, so scratch arenas stay visible in memory
    /// reports even after shrinking.
    #[test]
    fn memory_accounting_counts_struct_and_capacity() {
        let mut m = Matrix::zeros(10, 10);
        assert_eq!(m.heap_bytes(), 400);
        assert_eq!(
            m.memory_bytes(),
            std::mem::size_of::<Matrix>() + m.heap_bytes()
        );
        m.resize_reuse(1, 1);
        assert_eq!(m.heap_bytes(), 400, "capacity, not len, is reported");
        let empty = Matrix::default();
        assert_eq!(empty.memory_bytes(), std::mem::size_of::<Matrix>());
    }

    #[test]
    fn default_is_empty() {
        assert!(Matrix::default().is_empty());
    }
}
