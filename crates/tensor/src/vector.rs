//! Free functions on `f32` slices used as embedding vectors.
//!
//! The incremental engine spends most of its time adding and subtracting
//! embedding-sized vectors (applying delta messages to mailboxes and
//! embeddings), so these helpers are the hottest code in the workspace. They
//! operate on plain slices to avoid committing callers to a particular
//! container.
//!
//! The element-wise mutators ([`add_assign`], [`sub_assign`], [`axpy`],
//! [`scale`], [`scaled_copy`]) dispatch on [`crate::simd::active_tier`] to
//! explicit AVX2/NEON lane loops. Each lane performs the identical
//! `mul`/`add` rounding sequence as the scalar element it replaces (no FMA
//! contraction), so every tier is bit-identical — `tests/simd_parity.rs`
//! pins it. The *reductions* ([`dot`], [`l2_norm`]) stay scalar on every
//! tier: a lane-parallel reduction would reassociate the sum and break
//! bit-parity with the serial accumulation order.

use crate::simd::{self, SimdTier};

/// Element-wise `dst += src`.
///
/// # Panics
///
/// Panics if the slices have different lengths; callers always pass
/// embedding vectors of a fixed, model-determined width.
///
/// ```
/// let mut dst = vec![1.0, 2.0];
/// ripple_tensor::add_assign(&mut dst, &[0.5, 0.5]);
/// assert_eq!(dst, vec![1.5, 2.5]);
/// ```
pub fn add_assign(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "add_assign length mismatch");
    match simd::active_tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 only dispatched when detected; lengths checked above.
        SimdTier::Avx2 => unsafe { simd::x86::add_assign(dst, src) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64; lengths checked above.
        SimdTier::Neon => unsafe { simd::neon::add_assign(dst, src) },
        _ => {
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d += *s;
            }
        }
    }
}

/// Element-wise `dst -= src`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub_assign(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "sub_assign length mismatch");
    match simd::active_tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 only dispatched when detected; lengths checked above.
        SimdTier::Avx2 => unsafe { simd::x86::sub_assign(dst, src) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64; lengths checked above.
        SimdTier::Neon => unsafe { simd::neon::sub_assign(dst, src) },
        _ => {
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d -= *s;
            }
        }
    }
}

/// Element-wise `dst += alpha * src` (the BLAS "axpy" primitive).
///
/// This is the single operation behind Ripple's delta messages for the
/// `weighted sum` and `mean` aggregators: a message `m = alpha*(h_new - h_old)`
/// is applied to a mailbox with one axpy.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(dst: &mut [f32], alpha: f32, src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "axpy length mismatch");
    match simd::active_tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 only dispatched when detected; lengths checked above.
        SimdTier::Avx2 => unsafe { simd::x86::axpy(dst, alpha, src) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64; lengths checked above.
        SimdTier::Neon => unsafe { simd::neon::axpy(dst, alpha, src) },
        _ => {
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d += alpha * *s;
            }
        }
    }
}

/// Element-wise `dst *= alpha`.
pub fn scale(dst: &mut [f32], alpha: f32) {
    match simd::active_tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 only dispatched when detected.
        SimdTier::Avx2 => unsafe { simd::x86::scale(dst, alpha) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64.
        SimdTier::Neon => unsafe { simd::neon::scale(dst, alpha) },
        _ => {
            for d in dst.iter_mut() {
                *d *= alpha;
            }
        }
    }
}

/// Element-wise `dst = alpha * src` — the out-of-place form of [`scale`]
/// the `Mean` aggregator's finalize loop uses to normalise a raw aggregate
/// into its output row without a copy-then-scale round trip.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn scaled_copy(dst: &mut [f32], src: &[f32], alpha: f32) {
    assert_eq!(dst.len(), src.len(), "scaled_copy length mismatch");
    match simd::active_tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 only dispatched when detected; lengths checked above.
        SimdTier::Avx2 => unsafe { simd::x86::scaled_copy(dst, src, alpha) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64; lengths checked above.
        SimdTier::Neon => unsafe { simd::neon::scaled_copy(dst, src, alpha) },
        _ => {
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d = alpha * *s;
            }
        }
    }
}

/// Euclidean (L2) norm of a vector.
pub fn l2_norm(v: &[f32]) -> f32 {
    v.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Largest absolute element-wise difference between two equal-length vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "max_abs_diff length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Returns the index of the largest element (argmax). Ties resolve to the
/// first maximal index; returns `None` for an empty slice.
///
/// Used to turn a final-layer embedding (class logits) into a predicted label.
pub fn argmax(v: &[f32]) -> Option<usize> {
    if v.is_empty() {
        return None;
    }
    let mut best = 0usize;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sub_round_trip() {
        let mut v = vec![1.0, 2.0, 3.0];
        add_assign(&mut v, &[1.0, 1.0, 1.0]);
        assert_eq!(v, vec![2.0, 3.0, 4.0]);
        sub_assign(&mut v, &[1.0, 1.0, 1.0]);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn axpy_matches_manual() {
        let mut v = vec![1.0, 2.0];
        axpy(&mut v, 0.5, &[4.0, 8.0]);
        assert_eq!(v, vec![3.0, 6.0]);
    }

    #[test]
    fn axpy_with_zero_alpha_is_noop() {
        let mut v = vec![1.0, 2.0];
        axpy(&mut v, 0.0, &[100.0, 100.0]);
        assert_eq!(v, vec![1.0, 2.0]);
    }

    #[test]
    fn scale_multiplies_every_element() {
        let mut v = vec![1.0, -2.0, 3.0];
        scale(&mut v, 2.0);
        assert_eq!(v, vec![2.0, -4.0, 6.0]);
    }

    #[test]
    fn scaled_copy_matches_copy_then_scale() {
        let src = vec![1.0, -2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let mut out = vec![9.9f32; src.len()];
        scaled_copy(&mut out, &src, 0.5);
        let mut reference = src.clone();
        scale(&mut reference, 0.5);
        assert_eq!(out, reference);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn scaled_copy_length_mismatch_panics() {
        let mut out = vec![0.0f32; 2];
        scaled_copy(&mut out, &[1.0], 2.0);
    }

    #[test]
    fn l2_norm_of_3_4_is_5() {
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn l2_norm_of_empty_is_zero() {
        assert_eq!(l2_norm(&[]), 0.0);
    }

    #[test]
    fn max_abs_diff_finds_largest_gap() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[1.5, 4.0]), 1.0);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn argmax_behaviour() {
        assert_eq!(argmax(&[1.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[2.0, 2.0]), Some(0), "ties resolve to first index");
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn add_assign_length_mismatch_panics() {
        let mut v = vec![1.0];
        add_assign(&mut v, &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
