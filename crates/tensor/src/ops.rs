//! Matrix-level operations: GEMM, row projections and reductions.
//!
//! The GNN `Update` step (Eqn. 2 of the paper) is a dense multiply of an
//! aggregated embedding by a learned weight matrix; this module provides both
//! the full-table variant used by layer-wise inference ([`gemm_into`] /
//! [`matmul`]) and the single-row variant used when recomputing or
//! incrementally updating one vertex ([`row_matmul_into`] / [`row_matmul`]).
//!
//! # The `_into` convention
//!
//! Every hot kernel has an `_into` form that writes into caller-provided
//! storage and performs **no heap allocation** once that storage has grown to
//! its steady-state capacity; the allocating forms are thin wrappers kept for
//! convenience and tests. All kernels accumulate each output element over the
//! shared dimension in ascending index order from a zero accumulator, with no
//! zero-skip branches, so the batched and row-at-a-time paths produce
//! **bit-identical** results — the property the engines' parity tests pin.
//!
//! # SIMD dispatch
//!
//! [`gemm_block_into`] and [`row_matmul_into`] dispatch once per call on
//! [`crate::simd::active_tier`] to explicit AVX2/NEON micro-kernels that
//! reproduce the scalar tiling and per-element accumulation order exactly
//! (see [`crate::simd`] for why the tiers stay bit-identical);
//! [`gather_rows_into`] additionally software-prefetches upcoming source
//! rows, whose indices are visible ahead of time. `tests/simd_parity.rs`
//! pins every tier against the scalar reference bit for bit.

use crate::simd::{self, SimdTier};
use crate::{Matrix, Result, TensorError};

/// Columns per register tile of the GEMM micro-kernel. Eight `f32`
/// accumulators per output row fit comfortably in two SSE (or one AVX)
/// register without spilling.
const GEMM_NR: usize = 8;

/// Rows per register tile of the GEMM micro-kernel: each loaded `B` tile row
/// is reused across this many rows of `A`, quartering traffic on the shared
/// operand.
const GEMM_MR: usize = 4;

/// Dense matrix multiplication over **borrowed row blocks**: multiplies the
/// `m x B.rows()` row-major block `a_rows` by `B`, writing the `m x B.cols()`
/// row-major block `out`. This is the zero-copy core of the batched compute
/// path — callers GEMM directly from (and into) sub-blocks of larger tables
/// without materialising `Matrix` operands. Performs no heap allocation.
///
/// The kernel is register-blocked: output is produced in `4 x 8` tiles held
/// in local accumulators, with scalar edge loops for the row/column tails.
/// Every output element accumulates `A[i][p] * B[p][j]` for `p` ascending
/// from a zero accumulator — the exact float-operation sequence of
/// [`row_matmul_into`] — so full-table and row-at-a-time evaluation are
/// bit-identical.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `a_rows.len() != m * B.rows()`
/// or `out.len() != m * B.cols()`.
pub fn gemm_block_into(a_rows: &[f32], m: usize, b: &Matrix, out: &mut [f32]) -> Result<()> {
    let k = b.rows();
    let n = b.cols();
    if a_rows.len() != m * k {
        return Err(TensorError::ShapeMismatch {
            op: "gemm_block_into",
            left: (m, a_rows.len() / m.max(1)),
            right: b.shape(),
        });
    }
    if out.len() != m * n {
        return Err(TensorError::ShapeMismatch {
            op: "gemm_block_into",
            left: (m, out.len() / m.max(1)),
            right: (m, n),
        });
    }
    match simd::active_tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the dispatcher only returns Avx2 when the CPU supports it,
        // and the shape checks above establish the kernel's slice contract.
        SimdTier::Avx2 => unsafe { simd::x86::gemm_block(a_rows, m, k, n, b.as_slice(), out) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64; shapes checked above.
        SimdTier::Neon => unsafe { simd::neon::gemm_block(a_rows, m, k, n, b.as_slice(), out) },
        _ => gemm_block_scalar(a_rows, m, k, n, b.as_slice(), out),
    }
    Ok(())
}

/// The scalar reference implementation of [`gemm_block_into`] — the
/// accumulation-order contract every SIMD tier must reproduce bit for bit.
fn gemm_block_scalar(
    a_rows: &[f32],
    m: usize,
    k: usize,
    n: usize,
    b_data: &[f32],
    out: &mut [f32],
) {
    let a_data = a_rows;
    let out_data = out;

    let mut i0 = 0;
    while i0 + GEMM_MR <= m {
        let mut j0 = 0;
        while j0 + GEMM_NR <= n {
            let mut acc = [[0.0f32; GEMM_NR]; GEMM_MR];
            for p in 0..k {
                let b_tile = &b_data[p * n + j0..p * n + j0 + GEMM_NR];
                for (di, acc_row) in acc.iter_mut().enumerate() {
                    let a_ip = a_data[(i0 + di) * k + p];
                    for (jj, acc_cell) in acc_row.iter_mut().enumerate() {
                        *acc_cell += a_ip * b_tile[jj];
                    }
                }
            }
            for (di, acc_row) in acc.iter().enumerate() {
                out_data[(i0 + di) * n + j0..(i0 + di) * n + j0 + GEMM_NR].copy_from_slice(acc_row);
            }
            j0 += GEMM_NR;
        }
        for di in 0..GEMM_MR {
            let i = i0 + di;
            gemm_row_tail(
                &a_data[i * k..(i + 1) * k],
                b_data,
                n,
                j0,
                &mut out_data[i * n..(i + 1) * n],
            );
        }
        i0 += GEMM_MR;
    }
    for i in i0..m {
        row_matmul_scalar(
            &a_data[i * k..(i + 1) * k],
            b_data,
            n,
            &mut out_data[i * n..(i + 1) * n],
        );
    }
}

/// Dense matrix multiplication `A (m x k) * B (k x n)` written into `out`,
/// which is resized (reusing its capacity) to `m x n`. Steady-state calls
/// perform no heap allocation. Thin wrapper over [`gemm_block_into`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `A.cols() != B.rows()`.
pub fn gemm_into(a: &Matrix, b: &Matrix, out: &mut Matrix) -> Result<()> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "gemm_into",
            left: a.shape(),
            right: b.shape(),
        });
    }
    out.resize_reuse(a.rows(), b.cols());
    gemm_block_into(a.as_slice(), a.rows(), b, out.as_mut_slice())
}

/// Scalar column tail of one GEMM output row: columns `j0..n`. Shared by the
/// scalar kernels and the SIMD tiers (whose sub-8-column tails stay scalar,
/// exactly like the scalar kernel's own tail loop).
#[inline]
pub(crate) fn gemm_row_tail(
    a_row: &[f32],
    b_data: &[f32],
    n: usize,
    j0: usize,
    out_row: &mut [f32],
) {
    for (j, out_cell) in out_row.iter_mut().enumerate().skip(j0).take(n - j0) {
        let mut acc = 0.0f32;
        for (p, &a_ip) in a_row.iter().enumerate() {
            acc += a_ip * b_data[p * n + j];
        }
        *out_cell = acc;
    }
}

/// One full output row, register-tiled over columns (the `m < 4` tail of
/// [`gemm_into`] and the scalar body of [`row_matmul_into`]).
#[inline]
fn row_matmul_scalar(x: &[f32], w_data: &[f32], n: usize, out: &mut [f32]) {
    let mut j0 = 0;
    while j0 + GEMM_NR <= n {
        let mut acc = [0.0f32; GEMM_NR];
        for (p, &xp) in x.iter().enumerate() {
            let w_tile = &w_data[p * n + j0..p * n + j0 + GEMM_NR];
            for (jj, acc_cell) in acc.iter_mut().enumerate() {
                *acc_cell += xp * w_tile[jj];
            }
        }
        out[j0..j0 + GEMM_NR].copy_from_slice(&acc);
        j0 += GEMM_NR;
    }
    gemm_row_tail(x, w_data, n, j0, out);
}

/// Dense matrix multiplication `A (m x k) * B (k x n) -> (m x n)`, allocating
/// the result. Thin wrapper over [`gemm_into`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `A.cols() != B.rows()`.
///
/// # Example
///
/// ```
/// # use ripple_tensor::{Matrix, ops};
/// # fn main() -> Result<(), ripple_tensor::TensorError> {
/// let a = Matrix::eye(2, 2);
/// let b = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// assert_eq!(ops::matmul(&a, &b)?, b);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    let mut out = Matrix::default();
    gemm_into(a, b, &mut out)?;
    Ok(out)
}

/// Multiplies a single row vector `x (1 x k)` by a matrix `W (k x n)`,
/// **overwriting** `out` (length `n`). Performs no heap allocation.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `x.len() != w.rows()` or
/// `out.len() != w.cols()`.
pub fn row_matmul_into(x: &[f32], w: &Matrix, out: &mut [f32]) -> Result<()> {
    if x.len() != w.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "row_matmul_into",
            left: (1, x.len()),
            right: w.shape(),
        });
    }
    if out.len() != w.cols() {
        return Err(TensorError::ShapeMismatch {
            op: "row_matmul_into",
            left: (1, out.len()),
            right: (1, w.cols()),
        });
    }
    let n = w.cols();
    match simd::active_tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 is only dispatched when detected; shapes checked above.
        SimdTier::Avx2 => unsafe { simd::x86::row_matmul(x, w.as_slice(), n, out) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64; shapes checked above.
        SimdTier::Neon => unsafe { simd::neon::row_matmul(x, w.as_slice(), n, out) },
        _ => row_matmul_scalar(x, w.as_slice(), n, out),
    }
    Ok(())
}

/// Multiplies a single row vector `x (1 x k)` by a matrix `W (k x n)`,
/// returning a freshly allocated vector of length `n`. Thin wrapper over
/// [`row_matmul_into`].
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `x.len() != w.rows()`.
pub fn row_matmul(x: &[f32], w: &Matrix) -> Result<Vec<f32>> {
    let mut out = vec![0.0f32; w.cols()];
    row_matmul_into(x, w, &mut out)?;
    Ok(out)
}

/// Packs the selected rows of `m` into `out` (resized, capacity-reusing, to
/// `indices.len() x m.cols()`). This is the gather that batched frontier
/// evaluation uses to build contiguous GEMM operands from scattered vertex
/// rows; steady-state calls perform no heap allocation.
///
/// The index list makes upcoming source rows visible before they are copied,
/// so on non-scalar tiers the loop issues a software prefetch
/// [`simd::PREFETCH_AHEAD`] slots ahead — the scattered-row analogue of the
/// CSR neighbour-stream prefetch in the aggregation phase. Prefetching never
/// changes the gathered bytes.
///
/// # Errors
///
/// Returns [`TensorError::IndexOutOfBounds`] if any index is out of range.
pub fn gather_rows_into(m: &Matrix, indices: &[usize], out: &mut Matrix) -> Result<()> {
    out.resize_reuse(indices.len(), m.cols());
    if simd::prefetch_enabled() {
        for &i in indices.iter().take(simd::PREFETCH_AHEAD) {
            if let Ok(row) = m.try_row(i) {
                simd::prefetch_slice(row);
            }
        }
        for (slot, &i) in indices.iter().enumerate() {
            if let Some(&ahead) = indices.get(slot + simd::PREFETCH_AHEAD) {
                if let Ok(row) = m.try_row(ahead) {
                    simd::prefetch_slice(row);
                }
            }
            let row = m.try_row(i)?;
            out.row_mut(slot).copy_from_slice(row);
        }
    } else {
        for (slot, &i) in indices.iter().enumerate() {
            let row = m.try_row(i)?;
            out.row_mut(slot).copy_from_slice(row);
        }
    }
    Ok(())
}

/// Element-wise sum of two matrices of equal shape.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn add(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "add",
            left: a.shape(),
            right: b.shape(),
        });
    }
    let mut out = a.clone();
    crate::vector::add_assign(out.as_mut_slice(), b.as_slice());
    Ok(out)
}

/// Element-wise difference `a - b` of two matrices of equal shape.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn sub(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "sub",
            left: a.shape(),
            right: b.shape(),
        });
    }
    let mut out = a.clone();
    crate::vector::sub_assign(out.as_mut_slice(), b.as_slice());
    Ok(out)
}

/// Scales every element of the matrix by `alpha`, returning a new matrix.
pub fn scale(a: &Matrix, alpha: f32) -> Matrix {
    let mut out = a.clone();
    crate::vector::scale(out.as_mut_slice(), alpha);
    out
}

/// Sums a set of rows of `m` (selected by `indices`), returning a vector of
/// width `m.cols()`. This is the `sum` aggregation over a neighbourhood.
///
/// # Errors
///
/// Returns [`TensorError::IndexOutOfBounds`] if any index is out of range.
pub fn sum_rows(m: &Matrix, indices: &[usize]) -> Result<Vec<f32>> {
    let mut acc = vec![0.0f32; m.cols()];
    for &i in indices {
        let row = m.try_row(i)?;
        crate::vector::add_assign(&mut acc, row);
    }
    Ok(acc)
}

/// Mean of a set of rows of `m`. An empty index set yields the zero vector,
/// mirroring the convention that a vertex with no in-neighbours aggregates to
/// zero.
///
/// # Errors
///
/// Returns [`TensorError::IndexOutOfBounds`] if any index is out of range.
pub fn mean_rows(m: &Matrix, indices: &[usize]) -> Result<Vec<f32>> {
    let mut acc = sum_rows(m, indices)?;
    if !indices.is_empty() {
        crate::vector::scale(&mut acc, 1.0 / indices.len() as f32);
    }
    Ok(acc)
}

/// Weighted sum of a set of rows of `m`: `sum_i w_i * m[row_i]`.
///
/// # Errors
///
/// Returns [`TensorError::IndexOutOfBounds`] if any index is out of range and
/// [`TensorError::ShapeMismatch`] if `indices.len() != weights.len()`.
pub fn weighted_sum_rows(m: &Matrix, indices: &[usize], weights: &[f32]) -> Result<Vec<f32>> {
    if indices.len() != weights.len() {
        return Err(TensorError::ShapeMismatch {
            op: "weighted_sum_rows",
            left: (indices.len(), 1),
            right: (weights.len(), 1),
        });
    }
    let mut acc = vec![0.0f32; m.cols()];
    for (&i, &w) in indices.iter().zip(weights.iter()) {
        let row = m.try_row(i)?;
        crate::vector::axpy(&mut acc, w, row);
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap()
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = sample();
        let id = Matrix::eye(2, 2);
        assert_eq!(matmul(&m, &id).unwrap(), m);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn row_matmul_matches_matmul() {
        let m = sample();
        let w = Matrix::from_rows(&[vec![1.0, 0.0, 1.0], vec![0.0, 2.0, 1.0]]).unwrap();
        let full = matmul(&m, &w).unwrap();
        for r in 0..m.rows() {
            let single = row_matmul(m.row(r), &w).unwrap();
            assert_eq!(single.as_slice(), full.row(r));
        }
    }

    #[test]
    fn row_matmul_shape_mismatch() {
        let w = Matrix::zeros(3, 2);
        assert!(row_matmul(&[1.0, 2.0], &w).is_err());
        let mut out = vec![0.0; 5];
        assert!(row_matmul_into(&[1.0, 2.0, 3.0], &w, &mut out).is_err());
    }

    /// The register-tiled GEMM and the row kernel must be *bit*-identical for
    /// every shape, including the `< 4` row and `< 8` column tails.
    #[test]
    fn gemm_into_bitwise_matches_row_matmul_for_all_tails() {
        for (m, k, n) in [(1, 3, 2), (4, 5, 8), (7, 9, 11), (5, 16, 8), (9, 2, 19)] {
            let a = crate::init::uniform(m, k, -2.0, 2.0, 11 + (m * n) as u64);
            let b = crate::init::uniform(k, n, -2.0, 2.0, 23 + (k * n) as u64);
            let mut out = Matrix::default();
            gemm_into(&a, &b, &mut out).unwrap();
            assert_eq!(out.shape(), (m, n));
            let mut row_out = vec![0.0f32; n];
            for i in 0..m {
                row_matmul_into(a.row(i), &b, &mut row_out).unwrap();
                for (x, y) in out.row(i).iter().zip(row_out.iter()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "({m},{k},{n}) row {i}");
                }
            }
        }
    }

    #[test]
    fn gemm_into_reuses_capacity_across_shapes() {
        let a = Matrix::filled(6, 4, 1.0);
        let b = Matrix::filled(4, 6, 2.0);
        let mut out = Matrix::default();
        gemm_into(&a, &b, &mut out).unwrap();
        assert_eq!(out.row(0), &[8.0; 6]);
        // Shrinking re-uses the buffer and yields correct values.
        let small_a = Matrix::filled(2, 4, 1.0);
        gemm_into(&small_a, &b, &mut out).unwrap();
        assert_eq!(out.shape(), (2, 6));
        assert_eq!(out.row(1), &[8.0; 6]);
    }

    #[test]
    fn gemm_into_shape_mismatch() {
        let mut out = Matrix::default();
        assert!(gemm_into(&Matrix::zeros(2, 3), &Matrix::zeros(2, 3), &mut out).is_err());
    }

    #[test]
    fn row_matmul_into_matches_allocating_form() {
        let w = Matrix::from_rows(&[vec![1.0, 0.0, 1.0], vec![0.0, 2.0, 1.0]]).unwrap();
        let x = [0.0f32, 3.0];
        let alloc = row_matmul(&x, &w).unwrap();
        let mut out = vec![9.0f32; 3];
        row_matmul_into(&x, &w, &mut out).unwrap();
        assert_eq!(alloc, out);
        assert_eq!(out, vec![0.0, 6.0, 3.0]);
    }

    #[test]
    fn gather_rows_into_packs_selected_rows() {
        let m = sample();
        let mut out = Matrix::default();
        gather_rows_into(&m, &[2, 0, 2], &mut out).unwrap();
        assert_eq!(out.shape(), (3, 2));
        assert_eq!(out.row(0), &[5.0, 6.0]);
        assert_eq!(out.row(1), &[1.0, 2.0]);
        assert_eq!(out.row(2), &[5.0, 6.0]);
        gather_rows_into(&m, &[], &mut out).unwrap();
        assert_eq!(out.shape(), (0, 2));
        assert!(gather_rows_into(&m, &[7], &mut out).is_err());
    }

    #[test]
    fn add_sub_round_trip() {
        let a = sample();
        let b = Matrix::filled(3, 2, 1.0);
        let s = add(&a, &b).unwrap();
        assert_eq!(s.row(0), &[2.0, 3.0]);
        let d = sub(&s, &b).unwrap();
        assert_eq!(d, a);
        assert!(add(&a, &Matrix::zeros(1, 1)).is_err());
        assert!(sub(&a, &Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn scale_matrix() {
        let a = sample();
        let s = scale(&a, 2.0);
        assert_eq!(s.row(2), &[10.0, 12.0]);
    }

    #[test]
    fn sum_rows_over_subset() {
        let m = sample();
        let s = sum_rows(&m, &[0, 2]).unwrap();
        assert_eq!(s, vec![6.0, 8.0]);
        assert_eq!(sum_rows(&m, &[]).unwrap(), vec![0.0, 0.0]);
        assert!(sum_rows(&m, &[9]).is_err());
    }

    #[test]
    fn mean_rows_over_subset() {
        let m = sample();
        let s = mean_rows(&m, &[0, 1]).unwrap();
        assert_eq!(s, vec![2.0, 3.0]);
        assert_eq!(mean_rows(&m, &[]).unwrap(), vec![0.0, 0.0]);
    }

    #[test]
    fn weighted_sum_rows_with_weights() {
        let m = sample();
        let s = weighted_sum_rows(&m, &[0, 1], &[2.0, 0.5]).unwrap();
        assert_eq!(s, vec![3.5, 6.0]);
        assert!(weighted_sum_rows(&m, &[0], &[1.0, 2.0]).is_err());
        assert!(weighted_sum_rows(&m, &[9], &[1.0]).is_err());
    }
}
