//! Matrix-level operations: GEMM, row projections and reductions.
//!
//! The GNN `Update` step (Eqn. 2 of the paper) is a dense multiply of an
//! aggregated embedding by a learned weight matrix; this module provides both
//! the full-table variant used by layer-wise inference (`matmul`) and the
//! single-row variant used when recomputing or incrementally updating one
//! vertex (`row_matmul`).

use crate::{Matrix, Result, TensorError};

/// Dense matrix multiplication `A (m x k) * B (k x n) -> (m x n)`.
///
/// Uses a cache-friendly i-k-j loop order; good enough for the modest hidden
/// dimensions (16–602 columns) used by the experiments.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `A.cols() != B.rows()`.
///
/// # Example
///
/// ```
/// # use ripple_tensor::{Matrix, ops};
/// # fn main() -> Result<(), ripple_tensor::TensorError> {
/// let a = Matrix::eye(2, 2);
/// let b = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// assert_eq!(ops::matmul(&a, &b)?, b);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            left: a.shape(),
            right: b.shape(),
        });
    }
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Matrix::zeros(m, n);
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let out_data = out.as_mut_slice();
    for i in 0..m {
        for p in 0..k {
            let a_ip = a_data[i * k + p];
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b_data[p * n..(p + 1) * n];
            let out_row = &mut out_data[i * n..(i + 1) * n];
            for j in 0..n {
                out_row[j] += a_ip * b_row[j];
            }
        }
    }
    Ok(out)
}

/// Multiplies a single row vector `x (1 x k)` by a matrix `W (k x n)`,
/// returning a freshly allocated vector of length `n`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `x.len() != w.rows()`.
pub fn row_matmul(x: &[f32], w: &Matrix) -> Result<Vec<f32>> {
    if x.len() != w.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "row_matmul",
            left: (1, x.len()),
            right: w.shape(),
        });
    }
    let n = w.cols();
    let mut out = vec![0.0f32; n];
    let w_data = w.as_slice();
    for (p, &xp) in x.iter().enumerate() {
        if xp == 0.0 {
            continue;
        }
        let w_row = &w_data[p * n..(p + 1) * n];
        for j in 0..n {
            out[j] += xp * w_row[j];
        }
    }
    Ok(out)
}

/// Element-wise sum of two matrices of equal shape.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn add(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "add",
            left: a.shape(),
            right: b.shape(),
        });
    }
    let mut out = a.clone();
    crate::vector::add_assign(out.as_mut_slice(), b.as_slice());
    Ok(out)
}

/// Element-wise difference `a - b` of two matrices of equal shape.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
pub fn sub(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "sub",
            left: a.shape(),
            right: b.shape(),
        });
    }
    let mut out = a.clone();
    crate::vector::sub_assign(out.as_mut_slice(), b.as_slice());
    Ok(out)
}

/// Scales every element of the matrix by `alpha`, returning a new matrix.
pub fn scale(a: &Matrix, alpha: f32) -> Matrix {
    let mut out = a.clone();
    crate::vector::scale(out.as_mut_slice(), alpha);
    out
}

/// Sums a set of rows of `m` (selected by `indices`), returning a vector of
/// width `m.cols()`. This is the `sum` aggregation over a neighbourhood.
///
/// # Errors
///
/// Returns [`TensorError::IndexOutOfBounds`] if any index is out of range.
pub fn sum_rows(m: &Matrix, indices: &[usize]) -> Result<Vec<f32>> {
    let mut acc = vec![0.0f32; m.cols()];
    for &i in indices {
        let row = m.try_row(i)?;
        crate::vector::add_assign(&mut acc, row);
    }
    Ok(acc)
}

/// Mean of a set of rows of `m`. An empty index set yields the zero vector,
/// mirroring the convention that a vertex with no in-neighbours aggregates to
/// zero.
///
/// # Errors
///
/// Returns [`TensorError::IndexOutOfBounds`] if any index is out of range.
pub fn mean_rows(m: &Matrix, indices: &[usize]) -> Result<Vec<f32>> {
    let mut acc = sum_rows(m, indices)?;
    if !indices.is_empty() {
        crate::vector::scale(&mut acc, 1.0 / indices.len() as f32);
    }
    Ok(acc)
}

/// Weighted sum of a set of rows of `m`: `sum_i w_i * m[row_i]`.
///
/// # Errors
///
/// Returns [`TensorError::IndexOutOfBounds`] if any index is out of range and
/// [`TensorError::ShapeMismatch`] if `indices.len() != weights.len()`.
pub fn weighted_sum_rows(m: &Matrix, indices: &[usize], weights: &[f32]) -> Result<Vec<f32>> {
    if indices.len() != weights.len() {
        return Err(TensorError::ShapeMismatch {
            op: "weighted_sum_rows",
            left: (indices.len(), 1),
            right: (weights.len(), 1),
        });
    }
    let mut acc = vec![0.0f32; m.cols()];
    for (&i, &w) in indices.iter().zip(weights.iter()) {
        let row = m.try_row(i)?;
        crate::vector::axpy(&mut acc, w, row);
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap()
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = sample();
        let id = Matrix::eye(2, 2);
        assert_eq!(matmul(&m, &id).unwrap(), m);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn row_matmul_matches_matmul() {
        let m = sample();
        let w = Matrix::from_rows(&[vec![1.0, 0.0, 1.0], vec![0.0, 2.0, 1.0]]).unwrap();
        let full = matmul(&m, &w).unwrap();
        for r in 0..m.rows() {
            let single = row_matmul(m.row(r), &w).unwrap();
            assert_eq!(single.as_slice(), full.row(r));
        }
    }

    #[test]
    fn row_matmul_shape_mismatch() {
        let w = Matrix::zeros(3, 2);
        assert!(row_matmul(&[1.0, 2.0], &w).is_err());
    }

    #[test]
    fn add_sub_round_trip() {
        let a = sample();
        let b = Matrix::filled(3, 2, 1.0);
        let s = add(&a, &b).unwrap();
        assert_eq!(s.row(0), &[2.0, 3.0]);
        let d = sub(&s, &b).unwrap();
        assert_eq!(d, a);
        assert!(add(&a, &Matrix::zeros(1, 1)).is_err());
        assert!(sub(&a, &Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn scale_matrix() {
        let a = sample();
        let s = scale(&a, 2.0);
        assert_eq!(s.row(2), &[10.0, 12.0]);
    }

    #[test]
    fn sum_rows_over_subset() {
        let m = sample();
        let s = sum_rows(&m, &[0, 2]).unwrap();
        assert_eq!(s, vec![6.0, 8.0]);
        assert_eq!(sum_rows(&m, &[]).unwrap(), vec![0.0, 0.0]);
        assert!(sum_rows(&m, &[9]).is_err());
    }

    #[test]
    fn mean_rows_over_subset() {
        let m = sample();
        let s = mean_rows(&m, &[0, 1]).unwrap();
        assert_eq!(s, vec![2.0, 3.0]);
        assert_eq!(mean_rows(&m, &[]).unwrap(), vec![0.0, 0.0]);
    }

    #[test]
    fn weighted_sum_rows_with_weights() {
        let m = sample();
        let s = weighted_sum_rows(&m, &[0, 1], &[2.0, 0.5]).unwrap();
        assert_eq!(s, vec![3.5, 6.0]);
        assert!(weighted_sum_rows(&m, &[0], &[1.0, 2.0]).is_err());
        assert!(weighted_sum_rows(&m, &[9], &[1.0]).is_err());
    }
}
