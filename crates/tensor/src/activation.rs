//! Element-wise non-linearities applied after the GNN `Update` step.
//!
//! The paper's incremental model applies deltas *before* the non-linearity of
//! the next layer (the mailbox stores pre-activation aggregate changes), so
//! the engine only ever needs forward application of these functions — no
//! gradients.

use serde::{Deserialize, Serialize};

/// The non-linearity applied to a layer's output (`sigma` in Eqn. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit, the default for all paper workloads.
    #[default]
    Relu,
    /// Identity (no non-linearity); used for final layers that emit logits
    /// and in tests where linearity end-to-end makes exactness easy to verify.
    Identity,
    /// Leaky ReLU with slope 0.01 for negative inputs.
    LeakyRelu,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation to a single scalar.
    #[inline]
    pub fn apply_scalar(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Identity => x,
            Activation::LeakyRelu => {
                if x >= 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            Activation::Tanh => x.tanh(),
        }
    }

    /// Applies the activation element-wise, in place.
    pub fn apply(self, values: &mut [f32]) {
        if self == Activation::Identity {
            return;
        }
        for v in values.iter_mut() {
            *v = self.apply_scalar(*v);
        }
    }

    /// Applies the activation to a borrowed slice, returning a new vector.
    pub fn applied(self, values: &[f32]) -> Vec<f32> {
        let mut out = values.to_vec();
        self.apply(&mut out);
        out
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Activation::Relu => "relu",
            Activation::Identity => "identity",
            Activation::LeakyRelu => "leaky_relu",
            Activation::Tanh => "tanh",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut v = vec![-1.0, 0.0, 2.0];
        Activation::Relu.apply(&mut v);
        assert_eq!(v, vec![0.0, 0.0, 2.0]);
    }

    #[test]
    fn identity_is_noop() {
        let v = vec![-1.0, 3.0];
        assert_eq!(Activation::Identity.applied(&v), v);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        assert_eq!(Activation::LeakyRelu.apply_scalar(-100.0), -1.0);
        assert_eq!(Activation::LeakyRelu.apply_scalar(5.0), 5.0);
    }

    #[test]
    fn tanh_saturates() {
        assert!(Activation::Tanh.apply_scalar(100.0) <= 1.0);
        assert!(Activation::Tanh.apply_scalar(-100.0) >= -1.0);
    }

    #[test]
    fn default_is_relu() {
        assert_eq!(Activation::default(), Activation::Relu);
    }

    #[test]
    fn display_names() {
        assert_eq!(Activation::Relu.to_string(), "relu");
        assert_eq!(Activation::Identity.to_string(), "identity");
        assert_eq!(Activation::LeakyRelu.to_string(), "leaky_relu");
        assert_eq!(Activation::Tanh.to_string(), "tanh");
    }
}
