//! Reusable workspaces for the allocation-free batched kernels.
//!
//! The batched compute path (`gemm_into`, `gather_rows_into`,
//! `forward_batch` in the GNN crate) needs a handful of intermediate
//! matrices per evaluation: packed input rows, a secondary operand, a
//! temporary product and the output block. [`Scratch`] bundles them so an
//! engine can keep **one arena per worker** and re-evaluate arbitrarily many
//! frontiers without touching the allocator once each buffer has grown to
//! its steady-state capacity (see [`crate::Matrix::resize_reuse`]).
//!
//! The fields are deliberately plain `pub` matrices: kernels borrow the
//! slots they need disjointly (e.g. `&scratch.lhs` together with
//! `&mut scratch.out`), which the borrow checker permits at field
//! granularity.

use crate::Matrix;

/// A reusable workspace of scratch matrices for batched `_into` kernels.
///
/// What each slot holds is a convention between the kernels that share the
/// arena; the GNN frontier evaluators use:
///
/// * [`Scratch::lhs`] — packed finalized aggregates (frontier × input dim);
/// * [`Scratch::lhs2`] — packed self embeddings for self-dependent layers;
/// * [`Scratch::tmp`] — the secondary GEMM product / combined GIN operand;
/// * [`Scratch::out`] — the evaluated embeddings (frontier × output dim).
///
/// All buffers start empty and grow on first use; steady-state reuse is
/// allocation-free.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    /// Primary packed left-hand operand.
    pub lhs: Matrix,
    /// Secondary packed left-hand operand.
    pub lhs2: Matrix,
    /// Intermediate product / combination buffer.
    pub tmp: Matrix,
    /// Output block of the batched evaluation.
    pub out: Matrix,
}

impl Scratch {
    /// A fresh, empty workspace.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Total memory retained by the workspace (inline fields plus the
    /// capacity of every buffer), so scratch arenas show up in the
    /// harness's memory-overhead reports alongside the embedding tables.
    pub fn memory_bytes(&self) -> usize {
        self.lhs.memory_bytes()
            + self.lhs2.memory_bytes()
            + self.tmp.memory_bytes()
            + self.out.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty_and_tracks_memory() {
        let mut s = Scratch::new();
        let baseline = s.memory_bytes();
        assert_eq!(baseline, 4 * std::mem::size_of::<Matrix>());
        s.out.resize_reuse(8, 8);
        assert!(s.memory_bytes() >= baseline + 8 * 8 * 4);
    }

    #[test]
    fn slots_borrow_disjointly() {
        let mut s = Scratch::new();
        s.lhs.resize_reuse(2, 2);
        s.lhs.fill(1.0);
        let w = Matrix::eye(2, 2);
        crate::ops::gemm_into(&s.lhs, &w, &mut s.out).unwrap();
        assert_eq!(s.out.row(0), &[1.0, 1.0]);
    }
}
