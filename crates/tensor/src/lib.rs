//! Dense linear-algebra substrate for the Ripple streaming-GNN reproduction.
//!
//! The paper's single-machine implementation is built on NumPy; the Rust
//! ecosystem has no comparably ubiquitous GNN-oriented tensor library, so this
//! crate hand-rolls the small set of dense operations the rest of the
//! workspace needs:
//!
//! * [`Matrix`] — a row-major `f32` matrix used for vertex feature tables,
//!   per-layer embedding tables and GNN weight matrices.
//! * [`ops`] — register-blocked GEMM and row-projection kernels in both
//!   allocating and allocation-free `_into` forms, plus the reductions used
//!   by the aggregation and update steps of a GNN layer.
//! * [`Scratch`] — a reusable workspace so batched kernels run without
//!   touching the allocator in steady state.
//! * [`WorkerPool`] — scoped-thread sharding for chunked/ranged parallel
//!   loops (the engines and batched inference build on it).
//! * [`init`] — deterministic (seeded) Xavier/uniform initialisers so that
//!   experiments are reproducible without trained weights.
//! * [`activation`] — the element-wise non-linearities used by the models.
//! * [`simd`] — runtime-dispatched AVX2/NEON micro-kernels (bit-identical
//!   to the scalar references) plus software-prefetch helpers, selected via
//!   one-time feature detection and the `RIPPLE_SIMD` knob.
//!
//! The paper's performance story lives in *how little* work the incremental
//! engine does; this crate's job is to make the work that remains
//! hardware-shaped — batched, allocation-free and bit-reproducible across
//! the serial, parallel and batched execution paths.
//!
//! # Example
//!
//! ```
//! use ripple_tensor::{Matrix, ops};
//!
//! // A 2x3 feature matrix times a 3x2 weight matrix.
//! let x = Matrix::from_rows(&[vec![1.0, 0.0, 2.0], vec![0.0, 1.0, 1.0]]).unwrap();
//! let w = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
//! let y = ops::matmul(&x, &w).unwrap();
//! assert_eq!(y.shape(), (2, 2));
//! assert_eq!(y.row(0), &[11.0, 14.0]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod activation;
pub mod error;
pub mod init;
pub mod matrix;
pub mod ops;
pub mod pool;
pub mod scratch;
pub mod simd;
pub mod vector;

pub use error::TensorError;
pub use matrix::Matrix;
pub use pool::WorkerPool;
pub use scratch::Scratch;
pub use simd::SimdTier;
pub use vector::{add_assign, axpy, l2_norm, max_abs_diff, scale, scaled_copy, sub_assign};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Default tolerance used when comparing embeddings produced by different
/// execution strategies (incremental vs. full recompute).
///
/// The paper claims exactness "within the limits of floating-point precision";
/// repeated add/subtract of deltas accumulates rounding error proportional to
/// the number of updates applied, so equality checks across the workspace use
/// this slightly loose tolerance rather than bitwise equality.
pub const DEFAULT_TOLERANCE: f32 = 1e-3;
