//! Deterministic weight and feature initialisers.
//!
//! The reproduction has no trained models (the paper's inference cost does
//! not depend on the numeric values of the weights), so every experiment uses
//! deterministically seeded initialisers. The same seed always produces the
//! same matrices, which keeps the exactness property tests and the experiment
//! harness reproducible.

use crate::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Xavier/Glorot uniform initialisation: entries are drawn uniformly from
/// `[-b, b]` where `b = sqrt(6 / (fan_in + fan_out))`.
///
/// This is the standard initialisation for GNN weight matrices and keeps
/// layer outputs in a numerically pleasant range across many layers.
///
/// # Example
///
/// ```
/// let w = ripple_tensor::init::xavier_uniform(4, 8, 42);
/// assert_eq!(w.shape(), (4, 8));
/// // deterministic: same seed gives the same matrix
/// assert_eq!(w, ripple_tensor::init::xavier_uniform(4, 8, 42));
/// ```
pub fn xavier_uniform(fan_in: usize, fan_out: usize, seed: u64) -> Matrix {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(fan_in, fan_out, -bound, bound, seed)
}

/// Matrix with entries drawn uniformly from `[low, high)` using a seeded RNG.
pub fn uniform(rows: usize, cols: usize, low: f32, high: f32, seed: u64) -> Matrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut m = Matrix::zeros(rows, cols);
    for x in m.as_mut_slice() {
        *x = rng.gen_range(low..high);
    }
    m
}

/// Matrix with approximately standard-normal entries (sum of uniforms), used
/// for synthetic vertex features.
pub fn normal_like(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut m = Matrix::zeros(rows, cols);
    for x in m.as_mut_slice() {
        // Irwin-Hall approximation to a Gaussian: 12 uniforms, centred.
        let s: f32 = (0..12).map(|_| rng.gen_range(0.0f32..1.0)).sum();
        *x = s - 6.0;
    }
    m
}

/// A fresh feature vector for a single vertex, used when a streamed update
/// replaces the features of an existing vertex.
pub fn feature_vector(width: usize, seed: u64) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..width).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_is_deterministic_and_bounded() {
        let a = xavier_uniform(16, 32, 7);
        let b = xavier_uniform(16, 32, 7);
        assert_eq!(a, b);
        let bound = (6.0 / 48.0f32).sqrt();
        assert!(a.as_slice().iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn different_seeds_differ() {
        let a = xavier_uniform(8, 8, 1);
        let b = xavier_uniform(8, 8, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_respects_range() {
        let m = uniform(10, 10, 2.0, 3.0, 99);
        assert!(m.as_slice().iter().all(|&x| (2.0..3.0).contains(&x)));
    }

    #[test]
    fn normal_like_has_roughly_zero_mean() {
        let m = normal_like(50, 50, 3);
        let mean: f32 = m.as_slice().iter().sum::<f32>() / 2500.0;
        assert!(mean.abs() < 0.2, "mean {mean} too far from zero");
    }

    #[test]
    fn feature_vector_is_deterministic() {
        assert_eq!(feature_vector(5, 11), feature_vector(5, 11));
        assert_eq!(feature_vector(5, 11).len(), 5);
        assert_ne!(feature_vector(5, 11), feature_vector(5, 12));
    }
}
