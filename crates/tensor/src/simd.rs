//! Runtime-dispatched SIMD micro-kernels and software-prefetch helpers.
//!
//! The scalar kernels in [`crate::ops`] and [`crate::vector`] rely on
//! autovectorisation; this module adds explicit `std::arch` paths — AVX2 on
//! `x86_64`, NEON on `aarch64` — selected **once** at runtime and cached in a
//! [`OnceLock`]. Every SIMD kernel preserves the exact ascending-k,
//! zero-initialised accumulation order of its scalar reference, so all tiers
//! produce **bit-identical** results (pinned by `tests/simd_parity.rs`):
//!
//! * The GEMM/row-matmul kernels vectorise across *output columns* — the 8
//!   accumulator lanes of a `4 x 8` register tile are 8 independent output
//!   elements, each still summing `A[i][p] * B[p][j]` for `p` ascending.
//! * Fused multiply-add (`fmadd`/`fmla`) is **deliberately not used** in any
//!   accumulation: an FMA rounds once where `mul` + `add` round twice, which
//!   would break bit-parity with the scalar kernels. The SIMD win here is
//!   lane-parallelism and operand reuse, not contraction.
//! * The element-wise kernels (`axpy`, `add_assign`, …) compute each lane
//!   with the same two-rounding `mul`/`add` sequence as the scalar loop.
//!
//! # Tier selection
//!
//! [`active_tier`] resolves as: the `RIPPLE_SIMD` environment variable
//! (`scalar|avx2|neon|auto`, default `auto`) filtered by what the hardware
//! actually supports — forcing a tier the CPU (or target arch) lacks falls
//! back to [`SimdTier::Scalar`] rather than faulting. `auto` picks
//! [`detected_tier`], the best supported tier. Benches and parity tests can
//! bypass the cache with [`force_tier`].
//!
//! # Software prefetch
//!
//! The sparse aggregation phase walks CSR adjacency slices whose upcoming
//! neighbour ids are visible *before* their embedding rows are needed;
//! [`prefetch_slice`] lets those loops issue `prefetcht0`/`prfm` hints a few
//! neighbours ahead (see `Aggregator::raw_aggregate_into`). Prefetching never
//! changes results; it is gated on [`prefetch_enabled`] (any non-scalar tier)
//! so that `RIPPLE_SIMD=scalar` still measures the pure pre-SIMD baseline.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// A runtime-selectable kernel tier. All tiers are bit-identical; they differ
/// only in throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdTier {
    /// Portable scalar kernels (the reference implementation).
    Scalar,
    /// 256-bit AVX2 kernels (`x86_64` with the `avx2` feature).
    Avx2,
    /// 128-bit NEON kernels (`aarch64`; baseline feature there).
    Neon,
}

impl SimdTier {
    /// The lowercase name used by `RIPPLE_SIMD` and the bench artifacts.
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Avx2 => "avx2",
            SimdTier::Neon => "neon",
        }
    }

    /// Whether this binary, on this CPU, can execute the tier's kernels.
    pub fn is_supported(self) -> bool {
        match self {
            SimdTier::Scalar => true,
            SimdTier::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            SimdTier::Neon => cfg!(target_arch = "aarch64"),
        }
    }

    /// Every tier, for exhaustive parity sweeps. Filter with
    /// [`SimdTier::is_supported`] to get the force-selectable set on the
    /// current machine.
    pub fn all() -> [SimdTier; 3] {
        [SimdTier::Scalar, SimdTier::Avx2, SimdTier::Neon]
    }
}

impl std::fmt::Display for SimdTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The best tier the current hardware supports, ignoring `RIPPLE_SIMD` and
/// any [`force_tier`] override.
pub fn detected_tier() -> SimdTier {
    if SimdTier::Avx2.is_supported() {
        SimdTier::Avx2
    } else if SimdTier::Neon.is_supported() {
        SimdTier::Neon
    } else {
        SimdTier::Scalar
    }
}

/// Number of logical cores the runtime reports — recorded next to the tier
/// in every bench artifact so perf numbers are attributable to the
/// environment that produced them.
pub fn detected_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// `RIPPLE_SIMD` + hardware detection, resolved once per process.
static RESOLVED: OnceLock<SimdTier> = OnceLock::new();

/// Test/bench override slot: `TIER_UNSET` defers to [`RESOLVED`].
static OVERRIDE: AtomicU8 = AtomicU8::new(TIER_UNSET);

const TIER_UNSET: u8 = u8::MAX;

fn tier_from_u8(v: u8) -> SimdTier {
    match v {
        1 => SimdTier::Avx2,
        2 => SimdTier::Neon,
        _ => SimdTier::Scalar,
    }
}

fn tier_to_u8(t: SimdTier) -> u8 {
    match t {
        SimdTier::Scalar => 0,
        SimdTier::Avx2 => 1,
        SimdTier::Neon => 2,
    }
}

fn resolve_from_env() -> SimdTier {
    let requested = std::env::var("RIPPLE_SIMD").unwrap_or_default();
    let tier = match requested.trim().to_ascii_lowercase().as_str() {
        "scalar" => SimdTier::Scalar,
        "avx2" => SimdTier::Avx2,
        "neon" => SimdTier::Neon,
        _ => detected_tier(), // "auto", unset, or unrecognised
    };
    if tier.is_supported() {
        tier
    } else {
        SimdTier::Scalar
    }
}

/// The tier every dispatching kernel in the workspace currently runs —
/// `RIPPLE_SIMD` filtered by hardware support, resolved once and cached
/// (unless overridden by [`force_tier`]).
pub fn active_tier() -> SimdTier {
    match OVERRIDE.load(Ordering::Relaxed) {
        TIER_UNSET => *RESOLVED.get_or_init(resolve_from_env),
        v => tier_from_u8(v),
    }
}

/// Overrides (or with `None`, restores) the dispatched tier at runtime —
/// the hook `tests/simd_parity.rs` and the kernel benches use to compare
/// tiers within one process. Forcing an unsupported tier resolves to
/// [`SimdTier::Scalar`]. Because all tiers are bit-identical, flipping the
/// override while other threads compute is benign: each kernel call reads
/// the tier once at entry.
pub fn force_tier(tier: Option<SimdTier>) {
    let v = match tier {
        Some(t) if t.is_supported() => tier_to_u8(t),
        Some(_) => tier_to_u8(SimdTier::Scalar),
        None => TIER_UNSET,
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

/// Whether the hot loops should issue software prefetches: any non-scalar
/// tier. Kept out of the scalar tier so `RIPPLE_SIMD=scalar` reproduces the
/// pre-SIMD baseline exactly (prefetching never changes *results*, only
/// timings).
#[inline]
pub fn prefetch_enabled() -> bool {
    active_tier() != SimdTier::Scalar
}

/// The environment fingerprint every `BENCH_*.json` artifact embeds, as a
/// brace-less JSON fragment: active tier, detected tier and core count.
/// Performance numbers without these fields are not comparable across
/// machines — a scalar 1-core runner and an AVX2 16-core box both upload
/// artifacts, and consumers must be able to tell them apart.
pub fn env_json_fields() -> String {
    format!(
        "\"simd_tier\": \"{}\", \"detected_tier\": \"{}\", \"cores\": {}",
        active_tier(),
        detected_tier(),
        detected_cores()
    )
}

/// Issues a read prefetch hint for the cache line holding `ptr`. Compiles to
/// `prefetcht0` on `x86_64`, `prfm pldl1keep` on `aarch64`, and nothing
/// elsewhere. Safe for any pointer value: prefetch instructions do not fault.
#[inline(always)]
pub fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(ptr as *const i8);
    }
    #[cfg(target_arch = "aarch64")]
    unsafe {
        core::arch::asm!(
            "prfm pldl1keep, [{0}]",
            in(reg) ptr,
            options(nostack, preserves_flags, readonly)
        );
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        let _ = ptr;
    }
}

/// Cache lines prefetched per row by [`prefetch_slice`]: enough to cover an
/// embedding row up to 64 `f32` wide without flooding the load queue for the
/// very wide dims.
const PREFETCH_LINES: usize = 4;

/// Prefetches the leading cache lines of a row (up to `PREFETCH_LINES`
/// 64-byte lines). The sparse aggregation loops call this for the embedding
/// rows of neighbours a few positions ahead in the CSR index stream.
#[inline]
pub fn prefetch_slice(s: &[f32]) {
    let bytes = std::mem::size_of_val(s);
    let ptr = s.as_ptr().cast::<u8>();
    let mut off = 0usize;
    while off < bytes && off < PREFETCH_LINES * 64 {
        prefetch_read(ptr.wrapping_add(off));
        off += 64;
    }
}

/// How many neighbours ahead of the current accumulate the sparse loops
/// prefetch. Far enough to cover DRAM latency at the accumulate cost of a
/// typical embedding row, near enough that the lines are still resident when
/// reached.
pub const PREFETCH_AHEAD: usize = 4;

// ---------------------------------------------------------------------------
// AVX2 kernels (x86_64)
// ---------------------------------------------------------------------------

/// AVX2 implementations of the dispatching kernels. Each function mirrors the
/// scalar kernel's loop structure exactly — same tiling, same ascending-k
/// accumulation from zero, `mul` + `add` (never `fmadd`) — so the results are
/// bit-identical lane for lane.
#[cfg(target_arch = "x86_64")]
pub(crate) mod x86 {
    use core::arch::x86_64::*;

    /// Lanes per AVX2 register (`f32`).
    const LANES: usize = 8;

    /// # Safety
    ///
    /// Requires AVX2 (guaranteed by the dispatcher) and the same slice-shape
    /// contract as the scalar kernel: `a.len() == m*k`, `b.len() == k*n`,
    /// `out.len() == m*n`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_block(a: &[f32], m: usize, k: usize, n: usize, b: &[f32], out: &mut [f32]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(out.len(), m * n);
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        let mut i0 = 0;
        while i0 + 4 <= m {
            let mut j0 = 0;
            while j0 + LANES <= n {
                let mut acc0 = _mm256_setzero_ps();
                let mut acc1 = _mm256_setzero_ps();
                let mut acc2 = _mm256_setzero_ps();
                let mut acc3 = _mm256_setzero_ps();
                for p in 0..k {
                    // One unaligned B-tile load reused across 4 rows of A —
                    // the same operand reuse as the scalar register tile.
                    let bt = _mm256_loadu_ps(bp.add(p * n + j0));
                    let a0 = _mm256_set1_ps(*ap.add(i0 * k + p));
                    let a1 = _mm256_set1_ps(*ap.add((i0 + 1) * k + p));
                    let a2 = _mm256_set1_ps(*ap.add((i0 + 2) * k + p));
                    let a3 = _mm256_set1_ps(*ap.add((i0 + 3) * k + p));
                    acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(a0, bt));
                    acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(a1, bt));
                    acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(a2, bt));
                    acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(a3, bt));
                }
                _mm256_storeu_ps(op.add(i0 * n + j0), acc0);
                _mm256_storeu_ps(op.add((i0 + 1) * n + j0), acc1);
                _mm256_storeu_ps(op.add((i0 + 2) * n + j0), acc2);
                _mm256_storeu_ps(op.add((i0 + 3) * n + j0), acc3);
                j0 += LANES;
            }
            if j0 < n {
                for di in 0..4 {
                    let i = i0 + di;
                    crate::ops::gemm_row_tail(
                        &a[i * k..(i + 1) * k],
                        b,
                        n,
                        j0,
                        &mut out[i * n..(i + 1) * n],
                    );
                }
            }
            i0 += 4;
        }
        for i in i0..m {
            row_matmul(&a[i * k..(i + 1) * k], b, n, &mut out[i * n..(i + 1) * n]);
        }
    }

    /// # Safety
    ///
    /// Requires AVX2 and `w.len() == x.len() * n`, `out.len() == n`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn row_matmul(x: &[f32], w: &[f32], n: usize, out: &mut [f32]) {
        debug_assert_eq!(w.len(), x.len() * n);
        debug_assert_eq!(out.len(), n);
        let wp = w.as_ptr();
        let op = out.as_mut_ptr();
        let mut j0 = 0;
        while j0 + LANES <= n {
            let mut acc = _mm256_setzero_ps();
            for (p, &xp) in x.iter().enumerate() {
                let wt = _mm256_loadu_ps(wp.add(p * n + j0));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(xp), wt));
            }
            _mm256_storeu_ps(op.add(j0), acc);
            j0 += LANES;
        }
        crate::ops::gemm_row_tail(x, w, n, j0, out);
    }

    /// # Safety
    ///
    /// Requires AVX2 and `dst.len() == src.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn add_assign(dst: &mut [f32], src: &[f32]) {
        let n = dst.len();
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let mut i = 0;
        while i + LANES <= n {
            let d = _mm256_loadu_ps(dp.add(i));
            let s = _mm256_loadu_ps(sp.add(i));
            _mm256_storeu_ps(dp.add(i), _mm256_add_ps(d, s));
            i += LANES;
        }
        while i < n {
            *dp.add(i) += *sp.add(i);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Requires AVX2 and `dst.len() == src.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sub_assign(dst: &mut [f32], src: &[f32]) {
        let n = dst.len();
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let mut i = 0;
        while i + LANES <= n {
            let d = _mm256_loadu_ps(dp.add(i));
            let s = _mm256_loadu_ps(sp.add(i));
            _mm256_storeu_ps(dp.add(i), _mm256_sub_ps(d, s));
            i += LANES;
        }
        while i < n {
            *dp.add(i) -= *sp.add(i);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Requires AVX2 and `dst.len() == src.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(dst: &mut [f32], alpha: f32, src: &[f32]) {
        let n = dst.len();
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let va = _mm256_set1_ps(alpha);
        let mut i = 0;
        while i + LANES <= n {
            let d = _mm256_loadu_ps(dp.add(i));
            let s = _mm256_loadu_ps(sp.add(i));
            // mul + add, not fmadd: each lane rounds exactly like the scalar
            // `*d += alpha * *s`.
            _mm256_storeu_ps(dp.add(i), _mm256_add_ps(d, _mm256_mul_ps(va, s)));
            i += LANES;
        }
        while i < n {
            *dp.add(i) += alpha * *sp.add(i);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scale(dst: &mut [f32], alpha: f32) {
        let n = dst.len();
        let dp = dst.as_mut_ptr();
        let va = _mm256_set1_ps(alpha);
        let mut i = 0;
        while i + LANES <= n {
            let d = _mm256_loadu_ps(dp.add(i));
            _mm256_storeu_ps(dp.add(i), _mm256_mul_ps(d, va));
            i += LANES;
        }
        while i < n {
            *dp.add(i) *= alpha;
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Requires AVX2 and `dst.len() == src.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scaled_copy(dst: &mut [f32], src: &[f32], alpha: f32) {
        let n = dst.len();
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let va = _mm256_set1_ps(alpha);
        let mut i = 0;
        while i + LANES <= n {
            let s = _mm256_loadu_ps(sp.add(i));
            _mm256_storeu_ps(dp.add(i), _mm256_mul_ps(s, va));
            i += LANES;
        }
        while i < n {
            *dp.add(i) = *sp.add(i) * alpha;
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// NEON kernels (aarch64)
// ---------------------------------------------------------------------------

/// NEON implementations of the dispatching kernels, mirroring the scalar
/// loop structure (and the AVX2 module) exactly. An 8-wide column tile is two
/// `float32x4_t` registers; `vfma`/`vmla` are avoided for the same
/// bit-parity reason as `fmadd` on x86.
#[cfg(target_arch = "aarch64")]
pub(crate) mod neon {
    use core::arch::aarch64::*;

    /// Lanes per NEON register (`f32`).
    const LANES: usize = 4;

    /// # Safety
    ///
    /// NEON is a baseline `aarch64` feature; same shape contract as the
    /// scalar kernel.
    #[target_feature(enable = "neon")]
    pub unsafe fn gemm_block(a: &[f32], m: usize, k: usize, n: usize, b: &[f32], out: &mut [f32]) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(out.len(), m * n);
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        let mut i0 = 0;
        while i0 + 4 <= m {
            let mut j0 = 0;
            // The scalar kernel's 8-wide column tile = two 4-lane registers
            // per output row.
            while j0 + 2 * LANES <= n {
                let mut acc0a = vdupq_n_f32(0.0);
                let mut acc0b = vdupq_n_f32(0.0);
                let mut acc1a = vdupq_n_f32(0.0);
                let mut acc1b = vdupq_n_f32(0.0);
                let mut acc2a = vdupq_n_f32(0.0);
                let mut acc2b = vdupq_n_f32(0.0);
                let mut acc3a = vdupq_n_f32(0.0);
                let mut acc3b = vdupq_n_f32(0.0);
                for p in 0..k {
                    let bta = vld1q_f32(bp.add(p * n + j0));
                    let btb = vld1q_f32(bp.add(p * n + j0 + LANES));
                    let a0 = vdupq_n_f32(*ap.add(i0 * k + p));
                    let a1 = vdupq_n_f32(*ap.add((i0 + 1) * k + p));
                    let a2 = vdupq_n_f32(*ap.add((i0 + 2) * k + p));
                    let a3 = vdupq_n_f32(*ap.add((i0 + 3) * k + p));
                    acc0a = vaddq_f32(acc0a, vmulq_f32(a0, bta));
                    acc0b = vaddq_f32(acc0b, vmulq_f32(a0, btb));
                    acc1a = vaddq_f32(acc1a, vmulq_f32(a1, bta));
                    acc1b = vaddq_f32(acc1b, vmulq_f32(a1, btb));
                    acc2a = vaddq_f32(acc2a, vmulq_f32(a2, bta));
                    acc2b = vaddq_f32(acc2b, vmulq_f32(a2, btb));
                    acc3a = vaddq_f32(acc3a, vmulq_f32(a3, bta));
                    acc3b = vaddq_f32(acc3b, vmulq_f32(a3, btb));
                }
                vst1q_f32(op.add(i0 * n + j0), acc0a);
                vst1q_f32(op.add(i0 * n + j0 + LANES), acc0b);
                vst1q_f32(op.add((i0 + 1) * n + j0), acc1a);
                vst1q_f32(op.add((i0 + 1) * n + j0 + LANES), acc1b);
                vst1q_f32(op.add((i0 + 2) * n + j0), acc2a);
                vst1q_f32(op.add((i0 + 2) * n + j0 + LANES), acc2b);
                vst1q_f32(op.add((i0 + 3) * n + j0), acc3a);
                vst1q_f32(op.add((i0 + 3) * n + j0 + LANES), acc3b);
                j0 += 2 * LANES;
            }
            if j0 < n {
                for di in 0..4 {
                    let i = i0 + di;
                    crate::ops::gemm_row_tail(
                        &a[i * k..(i + 1) * k],
                        b,
                        n,
                        j0,
                        &mut out[i * n..(i + 1) * n],
                    );
                }
            }
            i0 += 4;
        }
        for i in i0..m {
            row_matmul(&a[i * k..(i + 1) * k], b, n, &mut out[i * n..(i + 1) * n]);
        }
    }

    /// # Safety
    ///
    /// Same shape contract as the scalar kernel.
    #[target_feature(enable = "neon")]
    pub unsafe fn row_matmul(x: &[f32], w: &[f32], n: usize, out: &mut [f32]) {
        debug_assert_eq!(w.len(), x.len() * n);
        debug_assert_eq!(out.len(), n);
        let wp = w.as_ptr();
        let op = out.as_mut_ptr();
        let mut j0 = 0;
        while j0 + 2 * LANES <= n {
            let mut acca = vdupq_n_f32(0.0);
            let mut accb = vdupq_n_f32(0.0);
            for (p, &xp) in x.iter().enumerate() {
                let va = vdupq_n_f32(xp);
                acca = vaddq_f32(acca, vmulq_f32(va, vld1q_f32(wp.add(p * n + j0))));
                accb = vaddq_f32(accb, vmulq_f32(va, vld1q_f32(wp.add(p * n + j0 + LANES))));
            }
            vst1q_f32(op.add(j0), acca);
            vst1q_f32(op.add(j0 + LANES), accb);
            j0 += 2 * LANES;
        }
        crate::ops::gemm_row_tail(x, w, n, j0, out);
    }

    /// # Safety
    ///
    /// Requires `dst.len() == src.len()`.
    #[target_feature(enable = "neon")]
    pub unsafe fn add_assign(dst: &mut [f32], src: &[f32]) {
        let n = dst.len();
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let mut i = 0;
        while i + LANES <= n {
            let d = vld1q_f32(dp.add(i));
            let s = vld1q_f32(sp.add(i));
            vst1q_f32(dp.add(i), vaddq_f32(d, s));
            i += LANES;
        }
        while i < n {
            *dp.add(i) += *sp.add(i);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Requires `dst.len() == src.len()`.
    #[target_feature(enable = "neon")]
    pub unsafe fn sub_assign(dst: &mut [f32], src: &[f32]) {
        let n = dst.len();
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let mut i = 0;
        while i + LANES <= n {
            let d = vld1q_f32(dp.add(i));
            let s = vld1q_f32(sp.add(i));
            vst1q_f32(dp.add(i), vsubq_f32(d, s));
            i += LANES;
        }
        while i < n {
            *dp.add(i) -= *sp.add(i);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Requires `dst.len() == src.len()`.
    #[target_feature(enable = "neon")]
    pub unsafe fn axpy(dst: &mut [f32], alpha: f32, src: &[f32]) {
        let n = dst.len();
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let va = vdupq_n_f32(alpha);
        let mut i = 0;
        while i + LANES <= n {
            let d = vld1q_f32(dp.add(i));
            let s = vld1q_f32(sp.add(i));
            // mul + add, not vfma: matches the scalar two-rounding sequence.
            vst1q_f32(dp.add(i), vaddq_f32(d, vmulq_f32(va, s)));
            i += LANES;
        }
        while i < n {
            *dp.add(i) += alpha * *sp.add(i);
            i += 1;
        }
    }

    /// # Safety
    ///
    /// None beyond NEON availability.
    #[target_feature(enable = "neon")]
    pub unsafe fn scale(dst: &mut [f32], alpha: f32) {
        let n = dst.len();
        let dp = dst.as_mut_ptr();
        let va = vdupq_n_f32(alpha);
        let mut i = 0;
        while i + LANES <= n {
            let d = vld1q_f32(dp.add(i));
            vst1q_f32(dp.add(i), vmulq_f32(d, va));
            i += LANES;
        }
        while i < n {
            *dp.add(i) *= alpha;
            i += 1;
        }
    }

    /// # Safety
    ///
    /// Requires `dst.len() == src.len()`.
    #[target_feature(enable = "neon")]
    pub unsafe fn scaled_copy(dst: &mut [f32], src: &[f32], alpha: f32) {
        let n = dst.len();
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let va = vdupq_n_f32(alpha);
        let mut i = 0;
        while i + LANES <= n {
            let s = vld1q_f32(sp.add(i));
            vst1q_f32(dp.add(i), vmulq_f32(s, va));
            i += LANES;
        }
        while i < n {
            *dp.add(i) = *sp.add(i) * alpha;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_supported_and_detection_is_sane() {
        assert!(SimdTier::Scalar.is_supported());
        assert!(detected_tier().is_supported());
        assert!(detected_cores() >= 1);
    }

    #[test]
    fn force_tier_round_trip() {
        let baseline = active_tier();
        force_tier(Some(SimdTier::Scalar));
        assert_eq!(active_tier(), SimdTier::Scalar);
        assert!(!prefetch_enabled());
        // Forcing an unsupported tier must degrade to scalar, not fault.
        for t in SimdTier::all() {
            if !t.is_supported() {
                force_tier(Some(t));
                assert_eq!(active_tier(), SimdTier::Scalar);
            }
        }
        force_tier(None);
        assert_eq!(active_tier(), baseline);
    }

    #[test]
    fn prefetch_never_faults() {
        // Prefetch is a hint: empty, short and unaligned slices are all fine.
        prefetch_slice(&[]);
        let v = vec![1.0f32; 1000];
        prefetch_slice(&v);
        prefetch_slice(&v[3..17]);
        prefetch_read(std::ptr::null::<f32>());
    }

    #[test]
    fn tier_names_round_trip_with_display() {
        for t in SimdTier::all() {
            assert_eq!(t.to_string(), t.name());
        }
    }
}
