//! Error type for tensor operations.

use std::fmt;

/// Errors produced by dense tensor operations.
///
/// All errors are shape or bounds violations: the operations themselves are
/// total once their inputs are well-formed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Shape of the left/first operand (rows, cols).
        left: (usize, usize),
        /// Shape of the right/second operand (rows, cols).
        right: (usize, usize),
    },
    /// A row or element index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound the index must be below.
        bound: usize,
    },
    /// A matrix was constructed from rows of inconsistent length.
    RaggedRows {
        /// Length of the first row, which sets the expected width.
        expected: usize,
        /// Length of the first row that disagreed.
        found: usize,
    },
    /// An operation that requires a non-empty matrix received an empty one.
    Empty,
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, left, right } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(
                    f,
                    "index {index} out of bounds for dimension of size {bound}"
                )
            }
            TensorError::RaggedRows { expected, found } => {
                write!(f, "ragged rows: expected width {expected}, found {found}")
            }
            TensorError::Empty => write!(f, "operation requires a non-empty matrix"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            op: "matmul",
            left: (2, 3),
            right: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn display_index_out_of_bounds() {
        let e = TensorError::IndexOutOfBounds { index: 7, bound: 5 };
        assert_eq!(
            e.to_string(),
            "index 7 out of bounds for dimension of size 5"
        );
    }

    #[test]
    fn display_ragged_rows() {
        let e = TensorError::RaggedRows {
            expected: 3,
            found: 2,
        };
        assert!(e.to_string().contains("expected width 3"));
    }

    #[test]
    fn display_empty() {
        assert!(TensorError::Empty.to_string().contains("non-empty"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
