//! A fixed-size worker pool with channel-free range stealing.
//!
//! Callers shard a contiguous index range (a hop's affected frontier, a full
//! vertex table) into chunks and let a fixed set of [`std::thread::scope`]
//! workers steal chunks off one shared atomic cursor — no channels, no
//! locks, no work queues. Each chunk's result is tagged with its chunk
//! index, so the caller gets results back **in chunk order** regardless of
//! which worker processed which chunk. That ordered reduction is what lets
//! the parallel engines commit results in exactly the serial engine's vertex
//! order and stay bit-identical to it.
//!
//! Scoped threads let the work closure borrow the caller's graph, model and
//! embedding store directly; the per-call spawn cost (a few tens of
//! microseconds per worker) is amortised over whole-hop frontiers, which is
//! why the engines fall back to inline execution for small frontiers.
//!
//! The pool lives in the tensor crate — the bottom of the compute stack —
//! so that both the GNN inference kernels and the engines above them can
//! shard work over it.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-size worker pool executing chunked parallel-for loops over scoped
/// threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl Default for WorkerPool {
    /// A single-threaded pool (runs everything inline on the caller).
    fn default() -> Self {
        WorkerPool::new(1)
    }
}

impl WorkerPool {
    /// Creates a pool of `threads` workers. A count of zero is clamped to 1.
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// Creates a pool sized to the host's available parallelism (1 if that
    /// cannot be determined).
    pub fn host_sized() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        WorkerPool::new(threads)
    }

    /// Number of workers in the pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Splits `0..num_items` into chunks of `chunk_size` and maps `work` over
    /// every chunk, returning the per-chunk results **in chunk order** (the
    /// order the chunks appear in the input range, not completion order).
    ///
    /// Workers steal the next chunk index from a shared atomic cursor until
    /// the range is exhausted. With one worker (or a single chunk) the loop
    /// runs inline on the caller thread — same results, no spawn cost.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero, or propagates a panic from `work`.
    pub fn map_chunks<T, F>(&self, num_items: usize, chunk_size: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Range<usize>) -> T + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        if num_items == 0 {
            return Vec::new();
        }
        let num_chunks = num_items.div_ceil(chunk_size);
        let chunk_range = |c: usize| {
            let start = c * chunk_size;
            start..(start + chunk_size).min(num_items)
        };
        if self.threads == 1 || num_chunks == 1 {
            return (0..num_chunks).map(|c| work(chunk_range(c))).collect();
        }

        let cursor = AtomicUsize::new(0);
        let workers = self.threads.min(num_chunks);
        let mut tagged: Vec<(usize, T)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut produced = Vec::new();
                        loop {
                            let c = cursor.fetch_add(1, Ordering::Relaxed);
                            if c >= num_chunks {
                                break;
                            }
                            produced.push((c, work(chunk_range(c))));
                        }
                        produced
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("pool worker panicked"))
                .collect()
        });
        // Ordered reduction: restore chunk order so callers can merge
        // deterministically.
        tagged.sort_unstable_by_key(|&(c, _)| c);
        tagged.into_iter().map(|(_, t)| t).collect()
    }

    /// Splits `0..num_items` into **one contiguous range per state** (near
    /// equal sizes, earlier ranges at most one item longer) and runs
    /// `work(state, range)` for each pair, returning the per-state results
    /// index-aligned with `states`.
    ///
    /// This is the statically partitioned sibling of
    /// [`WorkerPool::map_chunks`] for workloads whose per-item cost is
    /// uniform (e.g. dense layer evaluation): each worker owns a mutable
    /// per-worker state — a scratch arena — for its whole range, so the work
    /// closure can be allocation-free. With a single state (or a 1-thread
    /// pool) everything runs inline on the caller; empty ranges also run
    /// inline, so results always align with `states`.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty, or propagates a panic from `work`.
    pub fn map_ranges<S, T, F>(&self, states: &mut [S], num_items: usize, work: F) -> Vec<T>
    where
        S: Send,
        T: Send,
        F: Fn(&mut S, Range<usize>) -> T + Sync,
    {
        assert!(!states.is_empty(), "map_ranges needs at least one state");
        let ranges = split_ranges(num_items, states.len());
        if self.threads == 1 || states.len() == 1 || num_items == 0 {
            return states
                .iter_mut()
                .zip(&ranges)
                .map(|(state, range)| work(state, range.clone()))
                .collect();
        }
        let work = &work;
        std::thread::scope(|scope| {
            let handles: Vec<_> = states
                .iter_mut()
                .zip(&ranges)
                .map(|(state, range)| {
                    let range = range.clone();
                    scope.spawn(move || work(state, range))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool worker panicked"))
                .collect()
        })
    }

    /// A chunk size that splits `num_items` into a few chunks per worker
    /// (bounded below so tiny chunks never dominate on large frontiers).
    pub fn suggested_chunk_size(&self, num_items: usize) -> usize {
        num_items.div_ceil(self.threads * 4).max(16)
    }
}

/// `parts` contiguous, in-order, near-equal ranges covering `0..num_items`
/// (the first `num_items % parts` ranges are one longer; trailing ranges may
/// be empty when `parts > num_items`). Public because callers of
/// [`WorkerPool::map_ranges`] that pre-split an output buffer into per-state
/// blocks must partition with exactly the same arithmetic.
pub fn split_ranges(num_items: usize, parts: usize) -> Vec<Range<usize>> {
    let base = num_items / parts;
    let extra = num_items % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).threads(), 1);
        assert_eq!(WorkerPool::default().threads(), 1);
        assert!(WorkerPool::host_sized().threads() >= 1);
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        let pool = WorkerPool::new(4);
        let out: Vec<usize> = pool.map_chunks(0, 8, |r| r.len());
        assert!(out.is_empty());
    }

    #[test]
    fn chunks_cover_range_in_order() {
        for threads in [1, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let ranges: Vec<Range<usize>> = pool.map_chunks(103, 10, |r| r);
            assert_eq!(ranges.len(), 11);
            assert_eq!(ranges[0], 0..10);
            assert_eq!(ranges[10], 100..103);
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "chunks must be contiguous");
            }
        }
    }

    #[test]
    fn parallel_map_matches_serial_map() {
        let items: Vec<u64> = (0..500).collect();
        let serial: Vec<u64> =
            WorkerPool::new(1).map_chunks(items.len(), 7, |r| items[r].iter().map(|x| x * x).sum());
        let parallel: Vec<u64> =
            WorkerPool::new(8).map_chunks(items.len(), 7, |r| items[r].iter().map(|x| x * x).sum());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn more_workers_than_chunks_is_fine() {
        let pool = WorkerPool::new(16);
        let out: Vec<usize> = pool.map_chunks(5, 2, |r| r.start);
        assert_eq!(out, vec![0, 2, 4]);
    }

    #[test]
    fn suggested_chunk_size_has_floor_and_scales() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.suggested_chunk_size(10), 16);
        assert_eq!(pool.suggested_chunk_size(16_000), 1000);
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_size_panics() {
        WorkerPool::new(2).map_chunks::<(), _>(10, 0, |_| ());
    }

    #[test]
    fn map_ranges_covers_items_and_aligns_with_states() {
        for threads in [1, 2, 4] {
            let pool = WorkerPool::new(threads);
            let mut states = vec![0usize; 3];
            let ranges: Vec<Range<usize>> = pool.map_ranges(&mut states, 10, |state, range| {
                *state += range.len();
                range
            });
            assert_eq!(ranges, vec![0..4, 4..7, 7..10]);
            assert_eq!(states, vec![4, 3, 3], "each state saw its own range");
        }
    }

    #[test]
    fn map_ranges_with_more_states_than_items_gets_empty_tails() {
        let pool = WorkerPool::new(4);
        let mut states = vec![(); 5];
        let ranges: Vec<Range<usize>> = pool.map_ranges(&mut states, 3, |_, r| r);
        assert_eq!(ranges, vec![0..1, 1..2, 2..3, 3..3, 3..3]);
    }

    #[test]
    fn map_ranges_zero_items_runs_inline() {
        let pool = WorkerPool::new(4);
        let mut states = vec![0u32; 2];
        let lens: Vec<usize> = pool.map_ranges(&mut states, 0, |_, r| r.len());
        assert_eq!(lens, vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn map_ranges_empty_states_panics() {
        WorkerPool::new(2).map_ranges::<(), (), _>(&mut [], 4, |_, _| ());
    }
}
