//! Vertex-wise ("node-wise") inference: the DNC baseline.
//!
//! For each target vertex, the full `L`-hop in-neighbourhood computation
//! graph is materialised and evaluated bottom-up (Fig 1, centre). Within one
//! target the computation is memoised per layer (as DGL's message-flow-graph
//! blocks do), but *across* targets everything is recomputed — which is the
//! redundant work layer-wise inference avoids and the reason the paper
//! rejects this strategy for streaming updates.

use crate::model::GnnModel;
use crate::sampling::sample_neighbors;
use crate::{GnnError, Result};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use ripple_graph::{DynamicGraph, VertexId};
use std::collections::HashMap;

/// Cost counters for a vertex-wise inference call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VertexWiseStats {
    /// Number of per-vertex layer evaluations performed (memoised within the
    /// target's computation graph).
    pub vertex_computations: usize,
    /// Number of neighbour-accumulate operations performed while aggregating.
    pub aggregate_ops: usize,
}

impl VertexWiseStats {
    fn merge(&mut self, other: VertexWiseStats) {
        self.vertex_computations += other.vertex_computations;
        self.aggregate_ops += other.aggregate_ops;
    }
}

/// Options for vertex-wise inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VertexWiseOptions {
    /// Cap on the number of in-neighbours aggregated per vertex per layer
    /// (`None` = use the full neighbourhood, which is what serving requires
    /// for deterministic predictions).
    pub fanout: Option<usize>,
    /// RNG seed used when `fanout` is set.
    pub seed: u64,
}

/// Computes the final-layer embedding of a single target vertex by expanding
/// its `L`-hop in-neighbourhood.
///
/// # Errors
///
/// Returns [`GnnError::FeatureDimMismatch`] if the graph features do not
/// match the model input width, and propagates tensor errors from the layer
/// forward passes.
pub fn infer_vertex(
    graph: &DynamicGraph,
    model: &GnnModel,
    target: VertexId,
    options: &VertexWiseOptions,
) -> Result<(Vec<f32>, VertexWiseStats)> {
    if graph.feature_dim() != model.input_dim() {
        return Err(GnnError::FeatureDimMismatch {
            model: model.input_dim(),
            graph: graph.feature_dim(),
        });
    }
    let mut stats = VertexWiseStats::default();
    // memo[l] maps vertex -> hop-l embedding within this target's computation
    // graph only.
    let mut memo: Vec<HashMap<VertexId, Vec<f32>>> = vec![HashMap::new(); model.num_layers() + 1];
    let mut rng = SmallRng::seed_from_u64(options.seed ^ (u64::from(target.0) << 17));
    let emb = compute(
        graph,
        model,
        target,
        model.num_layers(),
        options,
        &mut memo,
        &mut stats,
        &mut rng,
    )?;
    Ok((emb, stats))
}

#[allow(clippy::too_many_arguments)]
fn compute(
    graph: &DynamicGraph,
    model: &GnnModel,
    v: VertexId,
    layer: usize,
    options: &VertexWiseOptions,
    memo: &mut Vec<HashMap<VertexId, Vec<f32>>>,
    stats: &mut VertexWiseStats,
    rng: &mut SmallRng,
) -> Result<Vec<f32>> {
    if layer == 0 {
        return Ok(graph.feature(v).to_vec());
    }
    if let Some(hit) = memo[layer].get(&v) {
        return Ok(hit.clone());
    }
    let aggregator = model.aggregator();
    let gnn_layer = model.layer(layer)?;

    let all_neighbors = graph.in_neighbors(v);
    let all_weights = graph.in_weights(v);
    let (neighbors, weights) = match options.fanout {
        Some(f) => sample_neighbors(all_neighbors, all_weights, f, rng),
        None => (all_neighbors.to_vec(), all_weights.to_vec()),
    };

    let width = if layer == 1 {
        model.input_dim()
    } else {
        model.layer(layer - 1)?.output_dim()
    };
    let mut raw = vec![0.0f32; width];
    for (&u, &w) in neighbors.iter().zip(weights.iter()) {
        let h_u = compute(graph, model, u, layer - 1, options, memo, stats, rng)?;
        ripple_tensor::axpy(&mut raw, aggregator.edge_coefficient(w), &h_u);
    }
    stats.aggregate_ops += aggregator.ops_for_neighbors(neighbors.len());
    let finalized = aggregator.finalize(&raw, neighbors.len());
    let self_prev = compute(graph, model, v, layer - 1, options, memo, stats, rng)?;
    let out = gnn_layer.forward(&self_prev, &finalized)?;
    stats.vertex_computations += 1;
    memo[layer].insert(v, out.clone());
    Ok(out)
}

/// Runs vertex-wise inference over a set of targets, returning the per-target
/// embeddings and merged statistics. This is the unit of work the DNC
/// baseline performs per update batch (one call per affected final-hop
/// vertex).
///
/// # Errors
///
/// Propagates errors from [`infer_vertex`].
pub fn infer_vertices(
    graph: &DynamicGraph,
    model: &GnnModel,
    targets: &[VertexId],
    options: &VertexWiseOptions,
) -> Result<(Vec<Vec<f32>>, VertexWiseStats)> {
    let mut stats = VertexWiseStats::default();
    let mut embeddings = Vec::with_capacity(targets.len());
    for &t in targets {
        let (emb, s) = infer_vertex(graph, model, t, options)?;
        stats.merge(s);
        embeddings.push(emb);
    }
    Ok((embeddings, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer_wise::full_inference;
    use crate::{Aggregator, LayerKind, Workload};
    use ripple_graph::synth::DatasetSpec;
    use ripple_tensor::vector::max_abs_diff;

    fn graph() -> DynamicGraph {
        DatasetSpec::custom(80, 4.0, 6, 4).generate(5).unwrap()
    }

    #[test]
    fn matches_layer_wise_inference_without_sampling() {
        let g = graph();
        for workload in Workload::all() {
            let model = workload.build_model(6, 8, 4, 2, 3).unwrap();
            let reference = full_inference(&g, &model).unwrap();
            for v in [0u32, 7, 33, 79] {
                let (emb, _) =
                    infer_vertex(&g, &model, VertexId(v), &VertexWiseOptions::default()).unwrap();
                let diff = max_abs_diff(&emb, reference.embedding(2, VertexId(v)));
                assert!(
                    diff < 1e-4,
                    "workload {workload}: vertex {v} differs by {diff}"
                );
            }
        }
    }

    #[test]
    fn three_layer_model_also_matches() {
        let g = DatasetSpec::custom(50, 3.0, 5, 3).generate(8).unwrap();
        let model = GnnModel::new(LayerKind::Sage, Aggregator::Mean, &[5, 8, 8, 3], 2).unwrap();
        let reference = full_inference(&g, &model).unwrap();
        let (emb, stats) =
            infer_vertex(&g, &model, VertexId(10), &VertexWiseOptions::default()).unwrap();
        assert!(max_abs_diff(&emb, reference.embedding(3, VertexId(10))) < 1e-4);
        assert!(stats.vertex_computations > 0);
    }

    #[test]
    fn sampling_reduces_work() {
        let g = DatasetSpec::custom(300, 20.0, 6, 4).generate(2).unwrap();
        let model = Workload::GcS.build_model(6, 16, 4, 2, 0).unwrap();
        let full_opts = VertexWiseOptions::default();
        let sampled_opts = VertexWiseOptions {
            fanout: Some(4),
            seed: 1,
        };
        // Pick a reasonably high-in-degree target.
        let target = (0..300u32)
            .map(VertexId)
            .max_by_key(|&v| g.in_degree(v))
            .unwrap();
        let (_, full_stats) = infer_vertex(&g, &model, target, &full_opts).unwrap();
        let (_, sampled_stats) = infer_vertex(&g, &model, target, &sampled_opts).unwrap();
        assert!(
            sampled_stats.aggregate_ops < full_stats.aggregate_ops,
            "sampled {} vs full {}",
            sampled_stats.aggregate_ops,
            full_stats.aggregate_ops
        );
    }

    #[test]
    fn sampled_inference_is_seed_deterministic() {
        let g = graph();
        let model = Workload::GcS.build_model(6, 8, 4, 2, 0).unwrap();
        let opts = VertexWiseOptions {
            fanout: Some(2),
            seed: 9,
        };
        let (a, _) = infer_vertex(&g, &model, VertexId(3), &opts).unwrap();
        let (b, _) = infer_vertex(&g, &model, VertexId(3), &opts).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn batch_inference_merges_stats() {
        let g = graph();
        let model = Workload::GcS.build_model(6, 8, 4, 2, 0).unwrap();
        let targets = vec![VertexId(0), VertexId(1), VertexId(2)];
        let (embs, stats) =
            infer_vertices(&g, &model, &targets, &VertexWiseOptions::default()).unwrap();
        assert_eq!(embs.len(), 3);
        assert!(stats.vertex_computations >= 3);
    }

    #[test]
    fn feature_mismatch_rejected() {
        let g = graph();
        let model = Workload::GcS.build_model(9, 8, 4, 2, 0).unwrap();
        assert!(infer_vertex(&g, &model, VertexId(0), &VertexWiseOptions::default()).is_err());
    }
}
