//! Error type for GNN model construction and inference.

use std::fmt;

/// Errors produced by model construction and inference.
#[derive(Debug, Clone, PartialEq)]
pub enum GnnError {
    /// A model was configured with fewer than two dimensions (input and at
    /// least one layer output are required).
    InvalidModelShape(String),
    /// The graph's feature width does not match the model's input dimension.
    FeatureDimMismatch {
        /// Model input width.
        model: usize,
        /// Graph feature width.
        graph: usize,
    },
    /// A layer index was out of range for the model.
    LayerOutOfRange {
        /// Requested layer.
        layer: usize,
        /// Number of layers in the model.
        num_layers: usize,
    },
    /// An embedding store does not match the model or graph it is used with.
    StoreMismatch(String),
    /// An underlying tensor operation failed (shape or bounds violation).
    Tensor(ripple_tensor::TensorError),
    /// An underlying graph operation failed.
    Graph(ripple_graph::GraphError),
}

impl fmt::Display for GnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GnnError::InvalidModelShape(msg) => write!(f, "invalid model shape: {msg}"),
            GnnError::FeatureDimMismatch { model, graph } => write!(
                f,
                "feature dimension mismatch: model expects {model}, graph provides {graph}"
            ),
            GnnError::LayerOutOfRange { layer, num_layers } => {
                write!(
                    f,
                    "layer {layer} out of range for a {num_layers}-layer model"
                )
            }
            GnnError::StoreMismatch(msg) => write!(f, "embedding store mismatch: {msg}"),
            GnnError::Tensor(e) => write!(f, "tensor error: {e}"),
            GnnError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for GnnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GnnError::Tensor(e) => Some(e),
            GnnError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ripple_tensor::TensorError> for GnnError {
    fn from(e: ripple_tensor::TensorError) -> Self {
        GnnError::Tensor(e)
    }
}

impl From<ripple_graph::GraphError> for GnnError {
    fn from(e: ripple_graph::GraphError) -> Self {
        GnnError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(GnnError::InvalidModelShape("too short".into())
            .to_string()
            .contains("too short"));
        assert!(GnnError::FeatureDimMismatch { model: 8, graph: 4 }
            .to_string()
            .contains("expects 8"));
        assert!(GnnError::LayerOutOfRange {
            layer: 5,
            num_layers: 2
        }
        .to_string()
        .contains("5"));
        assert!(GnnError::StoreMismatch("x".into())
            .to_string()
            .contains("store"));
    }

    #[test]
    fn conversions_from_substrate_errors() {
        let te: GnnError = ripple_tensor::TensorError::Empty.into();
        assert!(matches!(te, GnnError::Tensor(_)));
        assert!(te.to_string().contains("tensor"));
        let ge: GnnError = ripple_graph::GraphError::InvalidSpec("bad".into()).into();
        assert!(matches!(ge, GnnError::Graph(_)));
        use std::error::Error;
        assert!(ge.source().is_some());
        assert!(GnnError::StoreMismatch("x".into()).source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GnnError>();
    }
}
