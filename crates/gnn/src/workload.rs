//! The five named GNN workloads of the paper's evaluation (§7.1.1).
//!
//! Each workload pairs a model family with a linear aggregation function:
//! GraphConv+Sum (GC-S), GraphSAGE+Sum (GS-S), GraphConv+Mean (GC-M),
//! GINConv+Sum (GI-S) and GraphConv+WeightedSum (GC-W).

use crate::aggregator::Aggregator;
use crate::layer::LayerKind;
use crate::model::GnnModel;
use crate::Result;
use serde::{Deserialize, Serialize};

/// One of the paper's five evaluation workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// GraphConv with Sum aggregation.
    GcS,
    /// GraphSAGE with Sum aggregation.
    GsS,
    /// GraphConv with Mean aggregation.
    GcM,
    /// GINConv with Sum aggregation.
    GiS,
    /// GraphConv with Weighted Sum aggregation.
    GcW,
}

impl Workload {
    /// All five workloads in the order the paper's figures list them.
    pub fn all() -> [Workload; 5] {
        [
            Workload::GcS,
            Workload::GsS,
            Workload::GcM,
            Workload::GiS,
            Workload::GcW,
        ]
    }

    /// The short name used in the paper's figures (e.g. `GC-S`).
    pub fn name(self) -> &'static str {
        match self {
            Workload::GcS => "GC-S",
            Workload::GsS => "GS-S",
            Workload::GcM => "GC-M",
            Workload::GiS => "GI-S",
            Workload::GcW => "GC-W",
        }
    }

    /// The model family of the workload.
    pub fn layer_kind(self) -> LayerKind {
        match self {
            Workload::GcS | Workload::GcM | Workload::GcW => LayerKind::GraphConv,
            Workload::GsS => LayerKind::Sage,
            Workload::GiS => LayerKind::Gin,
        }
    }

    /// The aggregation function of the workload.
    pub fn aggregator(self) -> Aggregator {
        match self {
            Workload::GcS | Workload::GsS | Workload::GiS => Aggregator::Sum,
            Workload::GcM => Aggregator::Mean,
            Workload::GcW => Aggregator::WeightedSum,
        }
    }

    /// Whether the workload needs per-edge weights on the graph.
    pub fn needs_edge_weights(self) -> bool {
        self.aggregator() == Aggregator::WeightedSum
    }

    /// Builds the workload's model for a graph with `feature_dim` input
    /// features and `num_classes` output classes, using `num_layers` layers
    /// and a fixed hidden width.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::GnnError::InvalidModelShape`] for degenerate
    /// dimensions.
    pub fn build_model(
        self,
        feature_dim: usize,
        hidden_dim: usize,
        num_classes: usize,
        num_layers: usize,
        seed: u64,
    ) -> Result<GnnModel> {
        let mut dims = Vec::with_capacity(num_layers + 1);
        dims.push(feature_dim);
        for _ in 0..num_layers.saturating_sub(1) {
            dims.push(hidden_dim);
        }
        dims.push(num_classes);
        GnnModel::new(self.layer_kind(), self.aggregator(), &dims, seed)
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_five_distinct_workloads() {
        let all = Workload::all();
        assert_eq!(all.len(), 5);
        let names: std::collections::HashSet<_> = all.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn kinds_and_aggregators_match_paper() {
        assert_eq!(Workload::GcS.layer_kind(), LayerKind::GraphConv);
        assert_eq!(Workload::GcS.aggregator(), Aggregator::Sum);
        assert_eq!(Workload::GsS.layer_kind(), LayerKind::Sage);
        assert_eq!(Workload::GcM.aggregator(), Aggregator::Mean);
        assert_eq!(Workload::GiS.layer_kind(), LayerKind::Gin);
        assert_eq!(Workload::GcW.aggregator(), Aggregator::WeightedSum);
        assert!(Workload::GcW.needs_edge_weights());
        assert!(!Workload::GcS.needs_edge_weights());
    }

    #[test]
    fn build_model_produces_requested_layers() {
        let m = Workload::GsS.build_model(32, 64, 10, 3, 0).unwrap();
        assert_eq!(m.num_layers(), 3);
        assert_eq!(m.dims(), vec![32, 64, 64, 10]);
        assert_eq!(m.kind(), LayerKind::Sage);

        let two = Workload::GcS.build_model(16, 64, 7, 2, 0).unwrap();
        assert_eq!(two.dims(), vec![16, 64, 7]);

        let one = Workload::GcS.build_model(16, 64, 7, 1, 0).unwrap();
        assert_eq!(one.dims(), vec![16, 7]);
    }

    #[test]
    fn display_uses_paper_names() {
        assert_eq!(Workload::GcS.to_string(), "GC-S");
        assert_eq!(Workload::GcW.to_string(), "GC-W");
    }
}
