//! Layer-wise recompute-on-update baselines (RC and DRC-style).
//!
//! When a batch of updates arrives, the recompute strategy refreshes the
//! embeddings of every vertex in the forward `L`-hop neighbourhood of the
//! updates, layer by layer, by **pulling all in-neighbours** of each affected
//! vertex (§4.2). This is exact and scoped to the affected region, but the
//! aggregation cost of a vertex is proportional to its full in-degree `k`
//! rather than the number of changed in-neighbours `k'` — which is the
//! wasted work Ripple removes.
//!
//! Two flavours are provided through [`RecomputeConfig`]:
//!
//! * **RC** — the paper's own lightweight baseline: adjacency lists are
//!   updated in place, nothing else.
//! * **DRC-style** — models DGL's behaviour of rebuilding its immutable graph
//!   structure (CSR) on every batch of topology changes, which the paper
//!   identifies as the dominant cost of the DGL baselines (Fig 8's "Update"
//!   stack).

use crate::embeddings::EmbeddingStore;
use crate::layer_wise::recompute_vertices_at_hop;
use crate::model::GnnModel;
use crate::vertex_wise::{infer_vertices, VertexWiseOptions};
use crate::{GnnError, Result};
use ripple_graph::{DynamicGraph, GraphUpdate, UpdateBatch, VertexId};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Configuration of the recompute engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecomputeConfig {
    /// Rebuild a CSR snapshot of the whole graph on every batch, modelling
    /// the graph-update overhead of DGL-style frameworks (the DRC baseline).
    pub rebuild_csr_per_batch: bool,
}

impl RecomputeConfig {
    /// The paper's lightweight RC baseline.
    pub fn rc() -> Self {
        RecomputeConfig {
            rebuild_csr_per_batch: false,
        }
    }

    /// The DRC-style baseline with per-batch graph rebuild overhead.
    pub fn drc() -> Self {
        RecomputeConfig {
            rebuild_csr_per_batch: true,
        }
    }
}

/// Per-batch cost and coverage statistics, shared by the recompute baselines
/// and (via the same field meanings) the incremental engine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchStats {
    /// Wall-clock time spent applying the updates to the graph structure
    /// (the "Update" stack of Fig 8).
    pub update_time: Duration,
    /// Wall-clock time spent recomputing/propagating embeddings (the
    /// "Propagate" stack of Fig 8).
    pub propagate_time: Duration,
    /// Number of vertices touched at each hop `1..=L`.
    pub affected_per_hop: Vec<usize>,
    /// Total number of (vertex, hop) evaluations — the propagation-tree size
    /// of Fig 11.
    pub propagation_tree_size: usize,
    /// Number of *distinct* vertices whose final-layer embedding was
    /// refreshed.
    pub affected_final: usize,
    /// Neighbour-accumulate operations performed during aggregation.
    pub aggregate_ops: usize,
    /// Number of updates in the batch.
    pub batch_size: usize,
}

impl BatchStats {
    /// Total batch latency (update + propagate).
    pub fn total_time(&self) -> Duration {
        self.update_time + self.propagate_time
    }

    /// Updates processed per second of total batch latency.
    pub fn throughput(&self) -> f64 {
        let secs = self.total_time().as_secs_f64();
        if secs == 0.0 {
            return f64::INFINITY;
        }
        self.batch_size as f64 / secs
    }
}

/// The per-hop affected vertex sets for a batch of updates, computed on the
/// **post-update** topology (paper §4.2):
///
/// * hop 1 — sinks of edge additions/deletions, out-neighbours of
///   feature-updated vertices, and (for models whose update function uses the
///   vertex's own embedding) the feature-updated vertices themselves;
/// * hop `l` — out-neighbours of hop `l-1`, plus edge-update sinks again
///   (a new/deleted edge changes the sink's aggregate at *every* layer), plus
///   hop `l-1` itself for self-dependent models.
pub fn affected_hops<G: ripple_graph::GraphView + ?Sized>(
    graph: &G,
    model: &GnnModel,
    batch: &UpdateBatch,
) -> Vec<HashSet<VertexId>> {
    let depends_on_self = model.depends_on_self();
    let mut edge_sinks: HashSet<VertexId> = HashSet::new();
    let mut feature_sources: HashSet<VertexId> = HashSet::new();
    for update in batch {
        match update {
            GraphUpdate::AddEdge { dst, .. } | GraphUpdate::DeleteEdge { dst, .. } => {
                edge_sinks.insert(*dst);
            }
            GraphUpdate::UpdateFeature { vertex, .. } => {
                feature_sources.insert(*vertex);
            }
        }
    }

    let mut hops: Vec<HashSet<VertexId>> = Vec::with_capacity(model.num_layers());
    for l in 1..=model.num_layers() {
        let mut current: HashSet<VertexId> = edge_sinks.clone();
        let previous: &HashSet<VertexId> = if l == 1 {
            &feature_sources
        } else {
            &hops[l - 2]
        };
        for &u in previous {
            if !graph.contains_vertex(u) {
                continue;
            }
            for &w in graph.out_neighbors(u) {
                current.insert(w);
            }
        }
        if depends_on_self {
            current.extend(previous.iter().copied());
        }
        hops.push(current);
    }
    hops
}

/// The layer-wise recompute engine (RC / DRC-style baseline).
///
/// Owns the evolving graph and embedding store; each call to
/// [`RecomputeEngine::process_batch`] applies a batch of updates and brings
/// every affected embedding back in sync by full re-aggregation.
#[derive(Debug, Clone)]
pub struct RecomputeEngine {
    graph: DynamicGraph,
    model: GnnModel,
    store: EmbeddingStore,
    config: RecomputeConfig,
}

impl RecomputeEngine {
    /// Creates an engine from a bootstrapped graph + store pair.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::StoreMismatch`] if the store does not cover the
    /// graph's vertices or the model's layers.
    pub fn new(
        graph: DynamicGraph,
        model: GnnModel,
        store: EmbeddingStore,
        config: RecomputeConfig,
    ) -> Result<Self> {
        if store.num_vertices() != graph.num_vertices() {
            return Err(GnnError::StoreMismatch(format!(
                "store covers {} vertices, graph has {}",
                store.num_vertices(),
                graph.num_vertices()
            )));
        }
        if store.num_layers() != model.num_layers() {
            return Err(GnnError::StoreMismatch(format!(
                "store has {} layers, model has {}",
                store.num_layers(),
                model.num_layers()
            )));
        }
        Ok(RecomputeEngine {
            graph,
            model,
            store,
            config,
        })
    }

    /// The current graph (post all applied batches).
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// The current embedding store.
    pub fn store(&self) -> &EmbeddingStore {
        &self.store
    }

    /// The model used for inference.
    pub fn model(&self) -> &GnnModel {
        &self.model
    }

    /// Consumes the engine, returning the graph and store.
    pub fn into_parts(self) -> (DynamicGraph, EmbeddingStore) {
        (self.graph, self.store)
    }

    /// Applies a batch of updates and recomputes all affected embeddings.
    ///
    /// # Errors
    ///
    /// Propagates graph errors (e.g. deleting a non-existent edge) and tensor
    /// errors; the engine should be considered poisoned after an error.
    pub fn process_batch(&mut self, batch: &UpdateBatch) -> Result<BatchStats> {
        let update_start = Instant::now();
        // Phase 1: apply topology/feature changes.
        for update in batch {
            self.graph.apply(update)?;
            if let GraphUpdate::UpdateFeature { vertex, features } = update {
                self.store.set_embedding(0, *vertex, features)?;
            }
        }
        if self.config.rebuild_csr_per_batch {
            // DRC-style overhead: frameworks with immutable graph structures
            // pay a full rebuild on every batch of topology changes.
            let _csr = self.graph.to_csr();
        }
        let update_time = update_start.elapsed();

        // Phase 2: recompute affected embeddings hop by hop.
        let propagate_start = Instant::now();
        let hops = affected_hops(&self.graph, &self.model, batch);
        let mut stats = BatchStats {
            batch_size: batch.len(),
            affected_per_hop: hops.iter().map(HashSet::len).collect(),
            propagation_tree_size: hops.iter().map(HashSet::len).sum(),
            affected_final: hops.last().map(HashSet::len).unwrap_or(0),
            ..BatchStats::default()
        };
        for (hop, affected) in hops.iter().enumerate() {
            let vertices: Vec<VertexId> = affected.iter().copied().collect();
            stats.aggregate_ops += recompute_vertices_at_hop(
                &self.graph,
                &self.model,
                &mut self.store,
                hop + 1,
                &vertices,
            )?;
        }
        stats.update_time = update_time;
        stats.propagate_time = propagate_start.elapsed();
        Ok(stats)
    }
}

/// The vertex-wise recompute baseline (DNC-style): applies the batch, then
/// re-infers every affected final-hop vertex with full `L`-hop vertex-wise
/// inference. Far more expensive than layer-wise recompute because the
/// computation graphs of nearby targets overlap (Fig 8).
///
/// Returns the updated graph is *not* returned — the caller's graph is
/// mutated in place — along with per-batch statistics.
///
/// # Errors
///
/// Propagates graph and tensor errors.
pub fn vertex_wise_recompute_batch(
    graph: &mut DynamicGraph,
    model: &GnnModel,
    store: &mut EmbeddingStore,
    batch: &UpdateBatch,
) -> Result<BatchStats> {
    let update_start = Instant::now();
    for update in batch {
        graph.apply(update)?;
        if let GraphUpdate::UpdateFeature { vertex, features } = update {
            store.set_embedding(0, *vertex, features)?;
        }
    }
    let update_time = update_start.elapsed();

    let propagate_start = Instant::now();
    let hops = affected_hops(graph, model, batch);
    let final_affected: Vec<VertexId> = hops
        .last()
        .map(|s| s.iter().copied().collect())
        .unwrap_or_default();
    let (embeddings, vw_stats) =
        infer_vertices(graph, model, &final_affected, &VertexWiseOptions::default())?;
    for (v, emb) in final_affected.iter().zip(embeddings.iter()) {
        store.set_embedding(model.num_layers(), *v, emb)?;
    }
    Ok(BatchStats {
        update_time,
        propagate_time: propagate_start.elapsed(),
        affected_per_hop: hops.iter().map(HashSet::len).collect(),
        propagation_tree_size: hops.iter().map(HashSet::len).sum(),
        affected_final: final_affected.len(),
        aggregate_ops: vw_stats.aggregate_ops,
        batch_size: batch.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer_wise::full_inference;
    use crate::Workload;
    use ripple_graph::stream::{build_stream, StreamConfig};
    use ripple_graph::synth::DatasetSpec;

    fn setup(workload: Workload, layers: usize) -> (DynamicGraph, GnnModel, Vec<UpdateBatch>) {
        let spec = DatasetSpec::custom(120, 5.0, 6, 4);
        let full = spec
            .generate_weighted(3, workload.needs_edge_weights())
            .unwrap();
        let plan = build_stream(
            &full,
            &StreamConfig {
                total_updates: 60,
                seed: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let model = workload.build_model(6, 8, 4, layers, 5).unwrap();
        let batches = plan.batches(10);
        (plan.snapshot, model, batches)
    }

    #[test]
    fn recompute_matches_full_reinference_for_all_workloads() {
        for workload in Workload::all() {
            let (snapshot, model, batches) = setup(workload, 2);
            let store = full_inference(&snapshot, &model).unwrap();
            let mut engine = RecomputeEngine::new(
                snapshot.clone(),
                model.clone(),
                store,
                RecomputeConfig::rc(),
            )
            .unwrap();
            let mut reference_graph = snapshot;
            for batch in &batches {
                engine.process_batch(batch).unwrap();
                reference_graph.apply_batch(batch).unwrap();
            }
            let reference = full_inference(&reference_graph, &model).unwrap();
            let diff = engine.store().max_final_diff(&reference).unwrap();
            assert!(diff < 1e-3, "workload {workload}: final diff {diff}");
        }
    }

    #[test]
    fn recompute_is_exact_for_three_layer_models() {
        let (snapshot, model, batches) = setup(Workload::GsS, 3);
        let store = full_inference(&snapshot, &model).unwrap();
        let mut engine = RecomputeEngine::new(
            snapshot.clone(),
            model.clone(),
            store,
            RecomputeConfig::rc(),
        )
        .unwrap();
        let mut reference_graph = snapshot;
        for batch in &batches {
            engine.process_batch(batch).unwrap();
            reference_graph.apply_batch(batch).unwrap();
        }
        let reference = full_inference(&reference_graph, &model).unwrap();
        assert!(engine.store().max_final_diff(&reference).unwrap() < 1e-3);
    }

    #[test]
    fn stats_are_populated() {
        let (snapshot, model, batches) = setup(Workload::GcS, 2);
        let store = full_inference(&snapshot, &model).unwrap();
        let mut engine =
            RecomputeEngine::new(snapshot, model, store, RecomputeConfig::rc()).unwrap();
        let stats = engine.process_batch(&batches[0]).unwrap();
        assert_eq!(stats.batch_size, 10);
        assert_eq!(stats.affected_per_hop.len(), 2);
        assert!(stats.propagation_tree_size >= stats.affected_final);
        assert!(stats.aggregate_ops > 0);
        assert!(stats.throughput() > 0.0);
        assert!(stats.total_time() >= stats.update_time);
    }

    #[test]
    fn drc_config_spends_more_update_time() {
        let (snapshot, model, batches) = setup(Workload::GcS, 2);
        let store = full_inference(&snapshot, &model).unwrap();
        let mut rc = RecomputeEngine::new(
            snapshot.clone(),
            model.clone(),
            store.clone(),
            RecomputeConfig::rc(),
        )
        .unwrap();
        let mut drc = RecomputeEngine::new(snapshot, model, store, RecomputeConfig::drc()).unwrap();
        let mut rc_update = Duration::ZERO;
        let mut drc_update = Duration::ZERO;
        for batch in &batches {
            rc_update += rc.process_batch(batch).unwrap().update_time;
            drc_update += drc.process_batch(batch).unwrap().update_time;
        }
        assert!(
            drc_update > rc_update,
            "drc {drc_update:?} vs rc {rc_update:?}"
        );
        // Both remain exact.
        assert!(rc.store().max_final_diff(drc.store()).unwrap() < 1e-4);
    }

    #[test]
    fn affected_hops_edge_update_hits_sink_every_layer() {
        let mut g = DynamicGraph::new(4, 2);
        g.add_edge(VertexId(0), VertexId(1), 1.0).unwrap();
        g.add_edge(VertexId(1), VertexId(2), 1.0).unwrap();
        let model = Workload::GcS.build_model(2, 4, 2, 3, 0).unwrap();
        // A new edge 3 -> 1 is being added.
        g.add_edge(VertexId(3), VertexId(1), 1.0).unwrap();
        let batch =
            UpdateBatch::from_updates(vec![GraphUpdate::add_edge(VertexId(3), VertexId(1))]);
        let hops = affected_hops(&g, &model, &batch);
        assert!(hops[0].contains(&VertexId(1)));
        assert!(
            hops[1].contains(&VertexId(1)),
            "sink re-affected at every hop"
        );
        assert!(hops[1].contains(&VertexId(2)));
        assert!(hops[2].contains(&VertexId(1)));
    }

    #[test]
    fn affected_hops_feature_update_respects_self_dependency() {
        let mut g = DynamicGraph::new(3, 2);
        g.add_edge(VertexId(0), VertexId(1), 1.0).unwrap();
        let batch = UpdateBatch::from_updates(vec![GraphUpdate::update_feature(
            VertexId(0),
            vec![1.0, 1.0],
        )]);
        let gc = Workload::GcS.build_model(2, 4, 2, 2, 0).unwrap();
        let sage = Workload::GsS.build_model(2, 4, 2, 2, 0).unwrap();
        let gc_hops = affected_hops(&g, &gc, &batch);
        let sage_hops = affected_hops(&g, &sage, &batch);
        assert!(
            !gc_hops[0].contains(&VertexId(0)),
            "GraphConv has no self dependency"
        );
        assert!(
            sage_hops[0].contains(&VertexId(0)),
            "SAGE re-embeds the updated vertex itself"
        );
        assert!(gc_hops[0].contains(&VertexId(1)));
    }

    #[test]
    fn vertex_wise_recompute_is_exact_on_final_layer() {
        let (snapshot, model, batches) = setup(Workload::GcS, 2);
        let mut graph = snapshot.clone();
        let mut store = full_inference(&graph, &model).unwrap();
        let mut reference_graph = snapshot;
        for batch in batches.iter().take(2) {
            vertex_wise_recompute_batch(&mut graph, &model, &mut store, batch).unwrap();
            reference_graph.apply_batch(batch).unwrap();
        }
        let reference = full_inference(&reference_graph, &model).unwrap();
        assert!(store.max_final_diff(&reference).unwrap() < 1e-3);
    }

    #[test]
    fn constructor_validates_store_shape() {
        let (snapshot, model, _) = setup(Workload::GcS, 2);
        let wrong_model = Workload::GcS.build_model(6, 8, 4, 3, 0).unwrap();
        let store = full_inference(&snapshot, &model).unwrap();
        assert!(RecomputeEngine::new(
            snapshot.clone(),
            wrong_model,
            store.clone(),
            RecomputeConfig::rc()
        )
        .is_err());
        let small_store = EmbeddingStore::zeroed(&model, 5);
        assert!(RecomputeEngine::new(snapshot, model, small_store, RecomputeConfig::rc()).is_err());
    }
}
