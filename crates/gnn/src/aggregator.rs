//! Linear neighbourhood aggregation functions (paper Table 1).
//!
//! Ripple's incremental model only works for *linear* aggregators, because a
//! change to one in-neighbour's embedding can then be folded into the stored
//! aggregate with a single scaled add — without touching the other
//! neighbours. The three functions here are the ones the paper's workloads
//! use.
//!
//! Throughout the workspace an "aggregate" is stored in **raw** form:
//!
//! * `Sum` — the plain sum of in-neighbour embeddings;
//! * `Mean` — the *unnormalised* sum (division by the in-degree happens at
//!   [`Aggregator::finalize`] time, so that degree changes caused by edge
//!   updates re-normalise automatically without touching the stored sum);
//! * `WeightedSum` — the sum of `edge_weight * embedding`.

use serde::{Deserialize, Serialize};

/// A linear aggregation function over in-neighbour embeddings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Aggregator {
    /// `x_v = Σ_{u ∈ N(v)} h_u` — used by GraphSAGE, GIN and GCN variants.
    #[default]
    Sum,
    /// `x_v = (1/|N(v)|) Σ_{u ∈ N(v)} h_u`.
    Mean,
    /// `x_v = Σ_{u ∈ N(v)} α_uv · h_u` with static per-edge weights.
    WeightedSum,
}

impl Aggregator {
    /// The coefficient applied to an in-neighbour's embedding (or embedding
    /// delta) when accumulating it into the **raw** aggregate of an edge with
    /// weight `edge_weight`.
    ///
    /// For `Sum` and `Mean` this is 1 (mean normalisation happens later); for
    /// `WeightedSum` it is the edge weight. This single method is what makes
    /// the incremental message of the paper (`m = α·h_new − α·h_old`) uniform
    /// across aggregators.
    #[inline]
    pub fn edge_coefficient(self, edge_weight: f32) -> f32 {
        match self {
            Aggregator::Sum | Aggregator::Mean => 1.0,
            Aggregator::WeightedSum => edge_weight,
        }
    }

    /// Whether [`Aggregator::finalize_into`] is the identity copy
    /// (`Sum`/`WeightedSum`). Batched evaluators use this to feed raw
    /// aggregate blocks to the layer directly, skipping the copy.
    #[inline]
    pub fn finalize_is_identity(self) -> bool {
        matches!(self, Aggregator::Sum | Aggregator::WeightedSum)
    }

    /// Converts a raw aggregate into the final aggregate fed to the layer's
    /// `Update` function, **writing** into `out` (same length as `raw`).
    /// Performs no heap allocation — the batched frontier evaluators call
    /// this once per packed row of their scratch arena.
    ///
    /// # Panics
    ///
    /// Panics if `raw` and `out` have different lengths.
    pub fn finalize_into(self, raw: &[f32], in_degree: usize, out: &mut [f32]) {
        assert_eq!(raw.len(), out.len(), "finalize_into length mismatch");
        match self {
            Aggregator::Sum | Aggregator::WeightedSum => out.copy_from_slice(raw),
            Aggregator::Mean => {
                if in_degree == 0 {
                    out.fill(0.0);
                    return;
                }
                ripple_tensor::scaled_copy(out, raw, 1.0 / in_degree as f32);
            }
        }
    }

    /// Converts a raw aggregate into the final aggregate fed to the layer's
    /// `Update` function, given the sink vertex's current in-degree. Thin
    /// allocating wrapper over [`Aggregator::finalize_into`].
    pub fn finalize(self, raw: &[f32], in_degree: usize) -> Vec<f32> {
        let mut out = vec![0.0; raw.len()];
        self.finalize_into(raw, in_degree, &mut out);
        out
    }

    /// Computes the raw aggregate of a set of in-neighbour rows taken from an
    /// embedding table, **overwriting** `out` (width `table.cols()`).
    /// Performs no heap allocation.
    ///
    /// `neighbors` and `weights` must be parallel slices (weights are ignored
    /// for `Sum`/`Mean`).
    ///
    /// This is the CSR sparse phase's inner loop: the neighbour slice makes
    /// upcoming embedding-row addresses visible *before* they are
    /// accumulated, so on non-scalar SIMD tiers the loop issues a software
    /// prefetch [`ripple_tensor::simd::PREFETCH_AHEAD`] neighbours ahead —
    /// hiding the gather latency that stalls this loop at mean degree ≥ 16.
    /// Prefetching never changes the accumulated values; the two loop bodies
    /// below perform the identical `axpy` sequence.
    ///
    /// # Panics
    ///
    /// Panics if `neighbors` and `weights` have different lengths, if `out`
    /// is not `table.cols()` wide, or if a neighbour index is out of bounds
    /// for `table`.
    pub fn raw_aggregate_into(
        self,
        table: &ripple_tensor::Matrix,
        neighbors: &[ripple_graph::VertexId],
        weights: &[f32],
        out: &mut [f32],
    ) {
        use ripple_tensor::simd;
        assert_eq!(
            neighbors.len(),
            weights.len(),
            "neighbour/weight length mismatch"
        );
        assert_eq!(out.len(), table.cols(), "raw_aggregate_into width mismatch");
        out.fill(0.0);
        if simd::prefetch_enabled() && neighbors.len() > simd::PREFETCH_AHEAD {
            for &u in neighbors.iter().take(simd::PREFETCH_AHEAD) {
                simd::prefetch_slice(table.row(u.index()));
            }
            for (i, (&u, &w)) in neighbors.iter().zip(weights.iter()).enumerate() {
                if let Some(ahead) = neighbors.get(i + simd::PREFETCH_AHEAD) {
                    simd::prefetch_slice(table.row(ahead.index()));
                }
                let coeff = self.edge_coefficient(w);
                ripple_tensor::axpy(out, coeff, table.row(u.index()));
            }
        } else {
            for (&u, &w) in neighbors.iter().zip(weights.iter()) {
                let coeff = self.edge_coefficient(w);
                ripple_tensor::axpy(out, coeff, table.row(u.index()));
            }
        }
    }

    /// Computes the raw aggregate of a set of in-neighbour rows taken from an
    /// embedding table. Thin allocating wrapper over
    /// [`Aggregator::raw_aggregate_into`].
    ///
    /// # Panics
    ///
    /// Panics if `neighbors` and `weights` have different lengths or if a
    /// neighbour index is out of bounds for `table`.
    pub fn raw_aggregate(
        self,
        table: &ripple_tensor::Matrix,
        neighbors: &[ripple_graph::VertexId],
        weights: &[f32],
    ) -> Vec<f32> {
        let mut acc = vec![0.0f32; table.cols()];
        self.raw_aggregate_into(table, neighbors, weights, &mut acc);
        acc
    }

    /// Convenience: raw aggregate followed by [`Self::finalize`].
    pub fn aggregate(
        self,
        table: &ripple_tensor::Matrix,
        neighbors: &[ripple_graph::VertexId],
        weights: &[f32],
    ) -> Vec<f32> {
        let raw = self.raw_aggregate(table, neighbors, weights);
        self.finalize(&raw, neighbors.len())
    }

    /// Number of floating-point accumulate operations performed when
    /// aggregating `k` neighbours — used by the experiment harness to report
    /// the operation-count advantage of incremental computation (§4.3.3).
    pub fn ops_for_neighbors(self, k: usize) -> usize {
        match self {
            Aggregator::Sum => k,
            Aggregator::Mean => k + 1,
            Aggregator::WeightedSum => 2 * k,
        }
    }

    /// All aggregators, for exhaustive property tests.
    pub fn all() -> [Aggregator; 3] {
        [Aggregator::Sum, Aggregator::Mean, Aggregator::WeightedSum]
    }
}

impl std::fmt::Display for Aggregator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Aggregator::Sum => "sum",
            Aggregator::Mean => "mean",
            Aggregator::WeightedSum => "weighted-sum",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_graph::VertexId;
    use ripple_tensor::Matrix;

    fn table() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap()
    }

    #[test]
    fn sum_aggregation() {
        let t = table();
        let agg = Aggregator::Sum.aggregate(&t, &[VertexId(0), VertexId(2)], &[1.0, 1.0]);
        assert_eq!(agg, vec![6.0, 8.0]);
    }

    #[test]
    fn mean_aggregation_normalises_by_degree() {
        let t = table();
        let agg = Aggregator::Mean.aggregate(&t, &[VertexId(0), VertexId(1)], &[1.0, 1.0]);
        assert_eq!(agg, vec![2.0, 3.0]);
        // Raw form is unnormalised.
        let raw = Aggregator::Mean.raw_aggregate(&t, &[VertexId(0), VertexId(1)], &[1.0, 1.0]);
        assert_eq!(raw, vec![4.0, 6.0]);
    }

    #[test]
    fn weighted_sum_uses_edge_weights() {
        let t = table();
        let agg = Aggregator::WeightedSum.aggregate(&t, &[VertexId(0), VertexId(1)], &[2.0, 0.5]);
        assert_eq!(agg, vec![3.5, 6.0]);
    }

    #[test]
    fn empty_neighbourhood_gives_zero() {
        let t = table();
        for agg in Aggregator::all() {
            assert_eq!(agg.aggregate(&t, &[], &[]), vec![0.0, 0.0]);
        }
        assert_eq!(Aggregator::Mean.finalize(&[4.0], 0), vec![0.0]);
    }

    #[test]
    fn edge_coefficients() {
        assert_eq!(Aggregator::Sum.edge_coefficient(3.0), 1.0);
        assert_eq!(Aggregator::Mean.edge_coefficient(3.0), 1.0);
        assert_eq!(Aggregator::WeightedSum.edge_coefficient(3.0), 3.0);
    }

    #[test]
    fn finalize_only_rescales_mean() {
        let raw = vec![4.0, 8.0];
        assert_eq!(Aggregator::Sum.finalize(&raw, 4), raw);
        assert_eq!(Aggregator::WeightedSum.finalize(&raw, 4), raw);
        assert_eq!(Aggregator::Mean.finalize(&raw, 4), vec![1.0, 2.0]);
    }

    #[test]
    fn ops_counts() {
        assert_eq!(Aggregator::Sum.ops_for_neighbors(10), 10);
        assert_eq!(Aggregator::Mean.ops_for_neighbors(10), 11);
        assert_eq!(Aggregator::WeightedSum.ops_for_neighbors(10), 20);
    }

    #[test]
    fn display_names() {
        assert_eq!(Aggregator::Sum.to_string(), "sum");
        assert_eq!(Aggregator::Mean.to_string(), "mean");
        assert_eq!(Aggregator::WeightedSum.to_string(), "weighted-sum");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_weights_panic() {
        let t = table();
        let _ = Aggregator::Sum.raw_aggregate(&t, &[VertexId(0)], &[1.0, 2.0]);
    }

    #[test]
    fn into_variants_overwrite_stale_contents() {
        let t = table();
        let mut out = vec![9.0f32; 2];
        Aggregator::WeightedSum.raw_aggregate_into(
            &t,
            &[VertexId(0), VertexId(1)],
            &[2.0, 0.5],
            &mut out,
        );
        assert_eq!(out, vec![3.5, 6.0]);
        let mut finalized = vec![9.0f32; 2];
        Aggregator::Mean.finalize_into(&[4.0, 6.0], 2, &mut finalized);
        assert_eq!(finalized, vec![2.0, 3.0]);
        Aggregator::Mean.finalize_into(&[4.0, 6.0], 0, &mut finalized);
        assert_eq!(finalized, vec![0.0, 0.0]);
        Aggregator::Sum.finalize_into(&[1.0, 2.0], 7, &mut finalized);
        assert_eq!(finalized, vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn raw_aggregate_into_rejects_wrong_width() {
        let t = table();
        let mut out = vec![0.0f32; 3];
        Aggregator::Sum.raw_aggregate_into(&t, &[VertexId(0)], &[1.0], &mut out);
    }
}
