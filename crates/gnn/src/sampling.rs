//! Neighbourhood fanout sampling (used only by vertex-wise inference).
//!
//! Training-style GNN systems cap the number of in-neighbours aggregated per
//! vertex ("fanout") to keep computation graphs small. The paper's Fig 2a
//! shows why that is unacceptable for serving: sampled inference is faster
//! but non-deterministic and less accurate than full-neighbourhood inference.
//! This module provides the sampler and the agreement metric used to
//! reproduce that figure.

use rand::rngs::SmallRng;
use rand::seq::index::sample;
use rand::SeedableRng;
use ripple_graph::VertexId;

/// Selects at most `fanout` in-neighbours (and their parallel weights)
/// uniformly at random without replacement. If the neighbourhood is already
/// within the fanout it is returned unchanged.
///
/// # Panics
///
/// Panics if `neighbors` and `weights` have different lengths.
pub fn sample_neighbors(
    neighbors: &[VertexId],
    weights: &[f32],
    fanout: usize,
    rng: &mut SmallRng,
) -> (Vec<VertexId>, Vec<f32>) {
    assert_eq!(
        neighbors.len(),
        weights.len(),
        "neighbour/weight length mismatch"
    );
    if neighbors.len() <= fanout {
        return (neighbors.to_vec(), weights.to_vec());
    }
    let chosen = sample(rng, neighbors.len(), fanout);
    let mut ns = Vec::with_capacity(fanout);
    let mut ws = Vec::with_capacity(fanout);
    for idx in chosen.iter() {
        ns.push(neighbors[idx]);
        ws.push(weights[idx]);
    }
    (ns, ws)
}

/// A deterministic seeded RNG for sampling experiments.
pub fn sampling_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Fraction of entries on which two label vectors agree. Used as the
/// "inference accuracy" of sampled vertex-wise inference relative to the
/// deterministic full-neighbourhood prediction (Fig 2a): with no trained
/// model, agreement with the exact computation is the quantity that isolates
/// the *sampling* error the paper talks about.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn label_agreement(reference: &[usize], predicted: &[usize]) -> f64 {
    assert_eq!(
        reference.len(),
        predicted.len(),
        "label vector length mismatch"
    );
    if reference.is_empty() {
        return 1.0;
    }
    let matches = reference
        .iter()
        .zip(predicted.iter())
        .filter(|(a, b)| a == b)
        .count();
    matches as f64 / reference.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_neighbourhoods_are_untouched() {
        let ns = vec![VertexId(1), VertexId(2)];
        let ws = vec![1.0, 2.0];
        let mut rng = sampling_rng(0);
        let (sn, sw) = sample_neighbors(&ns, &ws, 5, &mut rng);
        assert_eq!(sn, ns);
        assert_eq!(sw, ws);
    }

    #[test]
    fn sampling_respects_fanout_and_keeps_pairs() {
        let ns: Vec<VertexId> = (0..100).map(VertexId).collect();
        let ws: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let mut rng = sampling_rng(7);
        let (sn, sw) = sample_neighbors(&ns, &ws, 10, &mut rng);
        assert_eq!(sn.len(), 10);
        assert_eq!(sw.len(), 10);
        for (n, w) in sn.iter().zip(sw.iter()) {
            assert_eq!(
                n.0 as f32, *w,
                "weights must stay parallel to their neighbours"
            );
        }
        // No duplicates.
        let unique: std::collections::HashSet<_> = sn.iter().collect();
        assert_eq!(unique.len(), 10);
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let ns: Vec<VertexId> = (0..50).map(VertexId).collect();
        let ws = vec![1.0; 50];
        let a = sample_neighbors(&ns, &ws, 5, &mut sampling_rng(3));
        let b = sample_neighbors(&ns, &ws, 5, &mut sampling_rng(3));
        assert_eq!(a, b);
    }

    #[test]
    fn agreement_metric() {
        assert_eq!(label_agreement(&[1, 2, 3, 4], &[1, 2, 3, 4]), 1.0);
        assert_eq!(label_agreement(&[1, 2, 3, 4], &[1, 2, 0, 0]), 0.5);
        assert_eq!(label_agreement(&[], &[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn agreement_length_mismatch_panics() {
        let _ = label_agreement(&[1], &[1, 2]);
    }
}
