//! Per-layer embedding and aggregate storage.
//!
//! The paper's bootstrap step (§4.1) pre-computes and keeps **all** layer
//! embeddings `H^0..H^L` in memory so that streamed updates can be applied
//! incrementally. This reproduction additionally keeps the **raw neighbourhood
//! aggregates** `X^1..X^L` (the input to each layer's `Update` function): that
//! is what allows a delta message to be folded in with one add and the layer
//! output to be recomputed exactly even under a non-linear activation, and it
//! is the memory overhead the paper attributes to Ripple over the recompute
//! baseline.

use crate::model::GnnModel;
use crate::{GnnError, Result};
use ripple_graph::VertexId;
use ripple_tensor::{vector, Matrix};
use serde::{Deserialize, Serialize};

/// Embeddings (`H^0..H^L`) and raw aggregates (`X^1..X^L`) for every vertex.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingStore {
    /// `embeddings[l]` is the `|V| x dims[l]` table of hop-`l` embeddings;
    /// index 0 holds the input features.
    embeddings: Vec<Matrix>,
    /// `aggregates[l-1]` is the `|V| x dims[l-1]` table of **raw** (see
    /// [`crate::Aggregator`]) neighbourhood aggregates feeding layer `l`.
    aggregates: Vec<Matrix>,
}

impl EmbeddingStore {
    /// Creates a zero-initialised store shaped for `model` over `num_vertices`
    /// vertices.
    pub fn zeroed(model: &GnnModel, num_vertices: usize) -> Self {
        let dims = model.dims();
        let embeddings = dims
            .iter()
            .map(|&d| Matrix::zeros(num_vertices, d))
            .collect();
        let aggregates = dims[..dims.len() - 1]
            .iter()
            .map(|&d| Matrix::zeros(num_vertices, d))
            .collect();
        EmbeddingStore {
            embeddings,
            aggregates,
        }
    }

    /// Reassembles a store from its layer tables — the checkpoint-restore
    /// constructor. `embeddings` holds `H^0..H^L`, `aggregates` holds
    /// `X^1..X^L`.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::StoreMismatch`] if the table counts disagree
    /// (`L + 1` embeddings vs `L` aggregates), the row counts are not all
    /// equal, or an aggregate's width differs from the embedding layer that
    /// feeds it.
    pub fn from_parts(embeddings: Vec<Matrix>, aggregates: Vec<Matrix>) -> Result<Self> {
        if embeddings.len() != aggregates.len() + 1 {
            return Err(GnnError::StoreMismatch(format!(
                "{} embedding tables need {} aggregate tables, found {}",
                embeddings.len(),
                embeddings.len().saturating_sub(1),
                aggregates.len()
            )));
        }
        let rows = embeddings[0].rows();
        for (l, m) in embeddings.iter().chain(aggregates.iter()).enumerate() {
            if m.rows() != rows {
                return Err(GnnError::StoreMismatch(format!(
                    "table {l} covers {} vertices, expected {rows}",
                    m.rows()
                )));
            }
        }
        for (l, agg) in aggregates.iter().enumerate() {
            // X^{l+1} aggregates hop-l embeddings, so widths must match.
            if agg.cols() != embeddings[l].cols() {
                return Err(GnnError::StoreMismatch(format!(
                    "aggregate {} is {} wide but layer {l} embeddings are {} wide",
                    l + 1,
                    agg.cols(),
                    embeddings[l].cols()
                )));
            }
        }
        Ok(EmbeddingStore {
            embeddings,
            aggregates,
        })
    }

    /// Number of GNN layers covered by the store.
    pub fn num_layers(&self) -> usize {
        self.aggregates.len()
    }

    /// Number of vertices covered by the store.
    pub fn num_vertices(&self) -> usize {
        self.embeddings[0].rows()
    }

    /// Immutable borrow of the hop-`l` embedding table (`l` from 0 to `L`).
    ///
    /// # Panics
    ///
    /// Panics if `l > L`.
    pub fn embeddings(&self, l: usize) -> &Matrix {
        &self.embeddings[l]
    }

    /// Mutable borrow of the hop-`l` embedding table.
    ///
    /// # Panics
    ///
    /// Panics if `l > L`.
    pub fn embeddings_mut(&mut self, l: usize) -> &mut Matrix {
        &mut self.embeddings[l]
    }

    /// The hop-`l` embedding of one vertex.
    ///
    /// # Panics
    ///
    /// Panics if `l > L` or the vertex is out of range.
    pub fn embedding(&self, l: usize, v: VertexId) -> &[f32] {
        self.embeddings[l].row(v.index())
    }

    /// Overwrites the hop-`l` embedding of one vertex.
    ///
    /// # Errors
    ///
    /// Returns a tensor error if the width or vertex index is invalid.
    pub fn set_embedding(&mut self, l: usize, v: VertexId, values: &[f32]) -> Result<()> {
        self.embeddings[l]
            .set_row(v.index(), values)
            .map_err(GnnError::from)
    }

    /// Immutable borrow of the raw aggregate table feeding layer `l`
    /// (`l` from 1 to `L`).
    ///
    /// # Panics
    ///
    /// Panics if `l` is 0 or greater than `L`.
    pub fn aggregates(&self, l: usize) -> &Matrix {
        &self.aggregates[l - 1]
    }

    /// The raw aggregate feeding layer `l` for one vertex.
    ///
    /// # Panics
    ///
    /// Panics if `l` is 0, greater than `L`, or the vertex is out of range.
    pub fn aggregate(&self, l: usize, v: VertexId) -> &[f32] {
        self.aggregates[l - 1].row(v.index())
    }

    /// Mutable access to the raw aggregate feeding layer `l` for one vertex,
    /// used by the incremental engine to fold in delta messages.
    ///
    /// # Panics
    ///
    /// Panics if `l` is 0, greater than `L`, or the vertex is out of range.
    pub fn aggregate_mut(&mut self, l: usize, v: VertexId) -> &mut [f32] {
        self.aggregates[l - 1].row_mut(v.index())
    }

    /// Overwrites the raw aggregate feeding layer `l` for one vertex.
    ///
    /// # Errors
    ///
    /// Returns a tensor error if the width or vertex index is invalid.
    pub fn set_aggregate(&mut self, l: usize, v: VertexId, values: &[f32]) -> Result<()> {
        self.aggregates[l - 1]
            .set_row(v.index(), values)
            .map_err(GnnError::from)
    }

    /// Disjoint borrows of the three tables one propagation hop touches:
    /// the hop-`l-1` embeddings (read), the hop-`l` embeddings (written) and
    /// the raw aggregates feeding layer `l` (written). Splitting the borrow
    /// here is what lets the inference kernels read a vertex's own
    /// previous-layer row while writing its current-layer rows **without
    /// copying it out first**.
    ///
    /// # Panics
    ///
    /// Panics if `l` is 0 or greater than `L`.
    pub fn propagation_views_mut(&mut self, l: usize) -> (&Matrix, &mut Matrix, &mut Matrix) {
        assert!(l >= 1 && l <= self.num_layers(), "hop {l} out of range");
        let (prev, rest) = self.embeddings.split_at_mut(l);
        (&prev[l - 1], &mut rest[0], &mut self.aggregates[l - 1])
    }

    /// Overwrites this store with the shape and contents of `other`,
    /// **reusing every table's buffer capacity** (see [`Matrix::copy_from`]).
    /// This is the resize-free refresh behind the serving layer's epoch
    /// snapshots: once a double buffer has been through one refresh, later
    /// refreshes of an unchanged-shape store perform no heap allocation.
    pub fn copy_from(&mut self, other: &EmbeddingStore) {
        self.embeddings
            .resize_with(other.embeddings.len(), Matrix::default);
        for (dst, src) in self.embeddings.iter_mut().zip(other.embeddings.iter()) {
            dst.copy_from(src);
        }
        self.aggregates
            .resize_with(other.aggregates.len(), Matrix::default);
        for (dst, src) in self.aggregates.iter_mut().zip(other.aggregates.iter()) {
            dst.copy_from(src);
        }
    }

    /// Refreshes only the given vertices' rows (every embedding layer and
    /// every aggregate table) from `other`, leaving all other rows untouched.
    /// This is the O(affected) epoch refresh behind the serving layer's
    /// dirty-row snapshot publication: when the caller knows which rows
    /// changed between two stores of identical shape, copying just those
    /// rows replaces the full-table memcpy of [`EmbeddingStore::copy_from`].
    ///
    /// Returns `false` without touching anything if the two stores have
    /// different shapes (the caller should fall back to a full copy).
    ///
    /// # Panics
    ///
    /// Panics if a vertex id is out of range for the stores.
    pub fn copy_rows_from(&mut self, other: &EmbeddingStore, rows: &[VertexId]) -> bool {
        let same_shape = self.embeddings.len() == other.embeddings.len()
            && self.aggregates.len() == other.aggregates.len()
            && self
                .embeddings
                .iter()
                .zip(other.embeddings.iter())
                .all(|(a, b)| a.shape() == b.shape())
            && self
                .aggregates
                .iter()
                .zip(other.aggregates.iter())
                .all(|(a, b)| a.shape() == b.shape());
        if !same_shape {
            return false;
        }
        for (dst, src) in self
            .embeddings
            .iter_mut()
            .zip(other.embeddings.iter())
            .chain(self.aggregates.iter_mut().zip(other.aggregates.iter()))
        {
            for &v in rows {
                dst.row_mut(v.index()).copy_from_slice(src.row(v.index()));
            }
        }
        true
    }

    /// The predicted class label of a vertex: the argmax of its final-layer
    /// embedding.
    ///
    /// # Panics
    ///
    /// Panics if the vertex is out of range.
    pub fn predicted_label(&self, v: VertexId) -> usize {
        vector::argmax(self.embedding(self.num_layers(), v)).unwrap_or(0)
    }

    /// Predicted labels for every vertex.
    pub fn predicted_labels(&self) -> Vec<usize> {
        (0..self.num_vertices())
            .map(|v| self.predicted_label(VertexId(v as u32)))
            .collect()
    }

    /// Largest absolute difference between the final-layer embeddings of two
    /// stores — the exactness metric used to compare incremental computation
    /// against full recomputation.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::StoreMismatch`] if the stores have different
    /// shapes.
    pub fn max_final_diff(&self, other: &EmbeddingStore) -> Result<f32> {
        if self.num_layers() != other.num_layers() || self.num_vertices() != other.num_vertices() {
            return Err(GnnError::StoreMismatch(format!(
                "layers {}x{} vs {}x{}",
                self.num_layers(),
                self.num_vertices(),
                other.num_layers(),
                other.num_vertices()
            )));
        }
        let l = self.num_layers();
        self.embeddings[l]
            .max_abs_diff(&other.embeddings[l])
            .map_err(GnnError::from)
    }

    /// Largest absolute difference across **all** layers' embeddings.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::StoreMismatch`] if the stores have different
    /// shapes.
    pub fn max_diff_all_layers(&self, other: &EmbeddingStore) -> Result<f32> {
        if self.num_layers() != other.num_layers() || self.num_vertices() != other.num_vertices() {
            return Err(GnnError::StoreMismatch("shape mismatch".to_string()));
        }
        let mut worst = 0.0f32;
        for (a, b) in self.embeddings.iter().zip(other.embeddings.iter()) {
            worst = worst.max(a.max_abs_diff(b)?);
        }
        Ok(worst)
    }

    /// Approximate heap memory of the store in bytes (embeddings +
    /// aggregates), used to report Ripple's memory overhead over RC.
    pub fn memory_bytes(&self) -> usize {
        self.embeddings
            .iter()
            .chain(self.aggregates.iter())
            .map(Matrix::memory_bytes)
            .sum()
    }

    /// Memory of the aggregate tables alone — the part RC does not need.
    pub fn aggregate_memory_bytes(&self) -> usize {
        self.aggregates.iter().map(Matrix::memory_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Aggregator, LayerKind};

    fn model() -> GnnModel {
        GnnModel::new(LayerKind::GraphConv, Aggregator::Sum, &[4, 8, 3], 0).unwrap()
    }

    #[test]
    fn zeroed_store_has_model_shape() {
        let store = EmbeddingStore::zeroed(&model(), 10);
        assert_eq!(store.num_layers(), 2);
        assert_eq!(store.num_vertices(), 10);
        assert_eq!(store.embeddings(0).shape(), (10, 4));
        assert_eq!(store.embeddings(1).shape(), (10, 8));
        assert_eq!(store.embeddings(2).shape(), (10, 3));
        assert_eq!(store.aggregates(1).shape(), (10, 4));
        assert_eq!(store.aggregates(2).shape(), (10, 8));
    }

    #[test]
    fn set_and_get_embeddings_and_aggregates() {
        let mut store = EmbeddingStore::zeroed(&model(), 3);
        store.set_embedding(1, VertexId(2), &[1.0; 8]).unwrap();
        assert_eq!(store.embedding(1, VertexId(2)), &[1.0; 8]);
        store.set_aggregate(1, VertexId(0), &[2.0; 4]).unwrap();
        assert_eq!(store.aggregate(1, VertexId(0)), &[2.0; 4]);
        store.aggregate_mut(1, VertexId(0))[0] = 5.0;
        assert_eq!(store.aggregate(1, VertexId(0))[0], 5.0);
        assert!(store.set_embedding(1, VertexId(2), &[1.0; 3]).is_err());
    }

    #[test]
    fn predicted_label_is_argmax_of_final_layer() {
        let mut store = EmbeddingStore::zeroed(&model(), 2);
        store
            .set_embedding(2, VertexId(0), &[0.1, 0.9, 0.2])
            .unwrap();
        store
            .set_embedding(2, VertexId(1), &[1.5, 0.9, 0.2])
            .unwrap();
        assert_eq!(store.predicted_label(VertexId(0)), 1);
        assert_eq!(store.predicted_labels(), vec![1, 0]);
    }

    #[test]
    fn diff_metrics() {
        let m = model();
        let a = EmbeddingStore::zeroed(&m, 4);
        let mut b = EmbeddingStore::zeroed(&m, 4);
        assert_eq!(a.max_final_diff(&b).unwrap(), 0.0);
        b.set_embedding(2, VertexId(1), &[0.0, 0.5, 0.0]).unwrap();
        assert!((a.max_final_diff(&b).unwrap() - 0.5).abs() < 1e-6);
        b.set_embedding(1, VertexId(1), &[2.0; 8]).unwrap();
        assert!((a.max_diff_all_layers(&b).unwrap() - 2.0).abs() < 1e-6);

        let c = EmbeddingStore::zeroed(&m, 5);
        assert!(a.max_final_diff(&c).is_err());
        assert!(a.max_diff_all_layers(&c).is_err());
    }

    #[test]
    fn copy_from_matches_source_exactly() {
        let m = model();
        let mut src = EmbeddingStore::zeroed(&m, 5);
        src.set_embedding(1, VertexId(3), &[0.25; 8]).unwrap();
        src.set_aggregate(2, VertexId(1), &[1.5; 8]).unwrap();
        // Refresh a differently-shaped store: it must converge to `src`.
        let mut dst = EmbeddingStore::zeroed(&m, 9);
        dst.copy_from(&src);
        assert!(dst == src, "copy_from must produce a bit-identical store");
        // Steady state: refreshing again after a mutation tracks the source.
        src.set_embedding(0, VertexId(0), &[7.0; 4]).unwrap();
        dst.copy_from(&src);
        assert!(dst == src);
    }

    #[test]
    fn copy_rows_from_refreshes_only_the_given_rows() {
        let m = model();
        let mut src = EmbeddingStore::zeroed(&m, 6);
        src.set_embedding(2, VertexId(1), &[1.0; 3]).unwrap();
        src.set_embedding(2, VertexId(4), &[2.0; 3]).unwrap();
        src.set_aggregate(1, VertexId(1), &[3.0; 4]).unwrap();
        let mut dst = EmbeddingStore::zeroed(&m, 6);
        assert!(dst.copy_rows_from(&src, &[VertexId(1)]));
        assert_eq!(dst.embedding(2, VertexId(1)), &[1.0; 3]);
        assert_eq!(dst.aggregate(1, VertexId(1)), &[3.0; 4]);
        // Row 4 was not in the dirty set: untouched.
        assert_eq!(dst.embedding(2, VertexId(4)), &[0.0; 3]);
        // After copying the remaining dirty row the stores converge.
        assert!(dst.copy_rows_from(&src, &[VertexId(4)]));
        assert!(dst == src);
        // Shape mismatch is refused, not half-applied.
        let mut small = EmbeddingStore::zeroed(&m, 3);
        assert!(!small.copy_rows_from(&src, &[VertexId(1)]));
        assert_eq!(small.embedding(2, VertexId(1)), &[0.0; 3]);
    }

    #[test]
    fn memory_accounting() {
        let store = EmbeddingStore::zeroed(&model(), 100);
        assert!(store.memory_bytes() > store.aggregate_memory_bytes());
        assert!(store.aggregate_memory_bytes() > 0);
    }

    #[test]
    #[should_panic]
    fn aggregate_layer_zero_panics() {
        let store = EmbeddingStore::zeroed(&model(), 2);
        let _ = store.aggregate(0, VertexId(0));
    }

    #[test]
    fn propagation_views_split_read_and_write_tables() {
        let mut store = EmbeddingStore::zeroed(&model(), 3);
        store.set_embedding(0, VertexId(1), &[1.0; 4]).unwrap();
        let (prev, cur, agg) = store.propagation_views_mut(1);
        assert_eq!(prev.shape(), (3, 4));
        assert_eq!(cur.shape(), (3, 8));
        assert_eq!(agg.shape(), (3, 4));
        // Read prev while writing cur/agg — the borrow shape the kernels use.
        let self_row = prev.row(1);
        cur.row_mut(1)[0] = self_row[0] + 1.0;
        agg.row_mut(1).copy_from_slice(self_row);
        assert_eq!(store.embedding(1, VertexId(1))[0], 2.0);
        assert_eq!(store.aggregate(1, VertexId(1)), &[1.0; 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn propagation_views_reject_hop_zero() {
        let mut store = EmbeddingStore::zeroed(&model(), 2);
        let _ = store.propagation_views_mut(0);
    }
}
