//! Full-graph layer-wise inference and frontier re-evaluation.
//!
//! This is the paper's basic (and bootstrap) inference strategy: compute the
//! hop-1 embeddings for **all** vertices, then hop-2 from hop-1, and so on
//! (Fig 1, right). It avoids the neighbourhood-explosion and redundant
//! recomputation of vertex-wise inference, and it produces the
//! [`EmbeddingStore`] that both the recompute baseline and the Ripple engine
//! start from when updates begin streaming.
//!
//! # Execution model
//!
//! Each hop is evaluated **batched**: the per-vertex neighbourhood
//! aggregation (inherently sparse) fills packed scratch matrices, and the
//! dense `Update` step then runs as 1–2 register-blocked GEMMs over the whole
//! block ([`crate::GnnLayer::forward_batch`]) instead of `|V|` independent
//! matvecs. [`full_inference_with_pool`] additionally shards the vertex range
//! over a [`WorkerPool`]. The batched path is **bit-identical** to the
//! per-vertex reference ([`full_inference_per_vertex`]) because every kernel
//! accumulates in the same per-element order — `tests/kernel_parity.rs` pins
//! this for every `LayerKind x Aggregator` combination.
//!
//! # Topology access
//!
//! Every evaluator reads adjacency through the [`GraphView`] trait, so the
//! same kernels run against [`DynamicGraph`]'s `Vec` lists, an immutable
//! [`ripple_graph::CsrGraph`], or the engines' incrementally maintained
//! [`ripple_graph::CsrSnapshot`]. The bootstrap pass
//! ([`full_inference_with_pool`]) snapshots the graph into CSR form once and
//! streams one contiguous index/weight slice per vertex — the sparse phase
//! walks two flat arrays instead of chasing per-vertex heap allocations.
//! Because a CSR snapshot preserves the dynamic lists' per-vertex neighbour
//! order, the streamed result is bit-identical to the dynamic-list walk.

use crate::embeddings::EmbeddingStore;
use crate::model::GnnModel;
use crate::{GnnError, Result};
use ripple_graph::{DynamicGraph, GraphView, VertexId};
use ripple_tensor::{Matrix, Scratch, WorkerPool};

/// Checks that a feature width matches the model input width.
fn validate_feature_dim(feature_dim: usize, model: &GnnModel) -> Result<()> {
    if feature_dim != model.input_dim() {
        return Err(GnnError::FeatureDimMismatch {
            model: model.input_dim(),
            graph: feature_dim,
        });
    }
    Ok(())
}

/// Runs full layer-wise inference over every vertex of the graph, returning a
/// store with all layer embeddings and raw aggregates populated. Each hop is
/// evaluated as batched GEMM blocks on the calling thread; use
/// [`full_inference_with_pool`] to shard hops across workers.
///
/// # Errors
///
/// Returns [`GnnError::FeatureDimMismatch`] if the graph's feature width does
/// not match the model's input dimension.
pub fn full_inference(graph: &DynamicGraph, model: &GnnModel) -> Result<EmbeddingStore> {
    full_inference_with_pool(graph, model, &WorkerPool::new(1))
}

/// Runs full layer-wise inference with each hop's vertex range sharded over
/// `pool`. The graph is snapshotted into CSR form once and every hop streams
/// contiguous index/weight slices from it; see [`full_inference_on`] for the
/// view-generic evaluator underneath.
///
/// # Errors
///
/// Returns [`GnnError::FeatureDimMismatch`] if the graph's feature width does
/// not match the model's input dimension.
pub fn full_inference_with_pool(
    graph: &DynamicGraph,
    model: &GnnModel,
    pool: &WorkerPool,
) -> Result<EmbeddingStore> {
    validate_feature_dim(graph.feature_dim(), model)?;
    let csr = graph.to_csr();
    full_inference_on(&csr, graph.features(), model, pool)
}

/// Runs full layer-wise inference against any [`GraphView`], taking the
/// layer-0 embeddings from `features` (one row per vertex): the hop's
/// aggregate and embedding tables are pre-split into one contiguous row
/// block per worker (via [`pool::split_ranges`], the same arithmetic
/// [`WorkerPool::map_ranges`] shards with), and every worker aggregates and
/// GEMM-evaluates its block **in place** — no chunk-local result buffers, no
/// copy-back. The result is bit-identical for any thread count and for any
/// view presenting the same per-vertex neighbour order.
///
/// [`pool::split_ranges`]: ripple_tensor::pool::split_ranges
///
/// # Errors
///
/// Returns [`GnnError::FeatureDimMismatch`] if the feature width does not
/// match the model's input dimension, or [`GnnError::StoreMismatch`] if
/// `features` does not cover the view's vertices.
pub fn full_inference_on<G: GraphView + Sync>(
    view: &G,
    features: &Matrix,
    model: &GnnModel,
    pool: &WorkerPool,
) -> Result<EmbeddingStore> {
    validate_feature_dim(features.cols(), model)?;
    let n = view.num_vertices();
    if features.rows() != n {
        return Err(GnnError::StoreMismatch(format!(
            "feature table covers {} vertices, view has {n}",
            features.rows()
        )));
    }
    let mut store = EmbeddingStore::zeroed(model, n);

    // Layer 0 embeddings are the input features.
    *store.embeddings_mut(0) = features.clone();

    let aggregator = model.aggregator();
    for (hop, layer) in model.iter_layers() {
        let (prev, cur_emb, cur_agg) = store.propagation_views_mut(hop);
        let in_dim = layer.input_dim();
        let out_dim = layer.output_dim();

        // One contiguous vertex range — and the matching row blocks of the
        // hop's tables — per worker.
        let parts = pool.threads();
        let ranges = ripple_tensor::pool::split_ranges(n, parts);
        let mut states: Vec<(&mut [f32], &mut [f32], Scratch)> = Vec::with_capacity(parts);
        {
            let mut agg_rest = cur_agg.as_mut_slice();
            let mut emb_rest = cur_emb.as_mut_slice();
            for range in &ranges {
                let (agg_block, agg_tail) = agg_rest.split_at_mut(range.len() * in_dim);
                let (emb_block, emb_tail) = emb_rest.split_at_mut(range.len() * out_dim);
                agg_rest = agg_tail;
                emb_rest = emb_tail;
                states.push((agg_block, emb_block, Scratch::new()));
            }
        }

        let prefetch = ripple_tensor::simd::prefetch_enabled();
        let results = pool.map_ranges(&mut states, n, |state, range| -> Result<()> {
            let (agg_block, emb_block, scratch) = state;
            let m = range.len();
            // Sparse phase: raw aggregates straight into the store block,
            // streaming one contiguous index/weight slice per vertex. The
            // CSR stream makes the *next* vertex's neighbour ids visible
            // while the current vertex accumulates, so on non-scalar tiers
            // its first embedding rows are prefetched one vertex early —
            // by the time the accumulate loop reaches them the lines are in
            // flight (the in-row lookahead inside `raw_aggregate_into`
            // covers the rest of the row).
            for (i, v) in range.clone().enumerate() {
                let vid = VertexId(v as u32);
                let (neighbors, weights) = view.in_adjacency(vid);
                if prefetch && v + 1 < range.end {
                    let (next_neighbors, _) = view.in_adjacency(VertexId(v as u32 + 1));
                    for u in next_neighbors
                        .iter()
                        .take(ripple_tensor::simd::PREFETCH_AHEAD)
                    {
                        ripple_tensor::simd::prefetch_slice(prev.row(u.index()));
                    }
                }
                aggregator.raw_aggregate_into(
                    prev,
                    neighbors,
                    weights,
                    &mut agg_block[i * in_dim..(i + 1) * in_dim],
                );
            }
            // Dense phase: finalize (a no-op view for sum/weighted-sum) and
            // evaluate the whole block as 1–2 GEMMs, writing embeddings
            // straight into the store block.
            let agg_rows: &[f32] = if aggregator.finalize_is_identity() {
                agg_block
            } else {
                scratch.lhs.resize_reuse(m, in_dim);
                for (i, v) in range.clone().enumerate() {
                    let vid = VertexId(v as u32);
                    aggregator.finalize_into(
                        &agg_block[i * in_dim..(i + 1) * in_dim],
                        view.in_degree(vid),
                        scratch.lhs.row_mut(i),
                    );
                }
                scratch.lhs.as_slice()
            };
            // A contiguous vertex range means the self operand is simply the
            // matching block of the previous hop's table — zero-copy.
            let self_rows: &[f32] = if layer.depends_on_self() {
                &prev.as_slice()[range.start * in_dim..range.end * in_dim]
            } else {
                &[]
            };
            layer.forward_block(self_rows, agg_rows, m, &mut scratch.tmp, emb_block)
        });
        for result in results {
            result?;
        }
    }
    Ok(store)
}

/// The row-at-a-time reference implementation of [`full_inference`]: one
/// matvec per vertex per hop, no batching, no sharding. Kept as the parity
/// baseline (`tests/kernel_parity.rs` asserts the batched path is
/// bit-identical to it) and as the "before" side of the kernel-throughput
/// benchmark.
///
/// # Errors
///
/// Returns [`GnnError::FeatureDimMismatch`] if the graph's feature width does
/// not match the model's input dimension.
pub fn full_inference_per_vertex(graph: &DynamicGraph, model: &GnnModel) -> Result<EmbeddingStore> {
    validate_feature_dim(graph.feature_dim(), model)?;
    let n = graph.num_vertices();
    let mut store = EmbeddingStore::zeroed(model, n);
    *store.embeddings_mut(0) = graph.features().clone();

    let aggregator = model.aggregator();
    let mut tmp = Vec::new();
    for (hop, layer) in model.iter_layers() {
        // Reading hop-1 while writing hop through split views avoids the
        // row copy the old implementation paid per vertex.
        let (prev, cur_emb, cur_agg) = store.propagation_views_mut(hop);
        let mut finalized = vec![0.0f32; layer.input_dim()];
        for v in 0..n {
            let vid = VertexId(v as u32);
            aggregator.raw_aggregate_into(
                prev,
                graph.in_neighbors(vid),
                graph.in_weights(vid),
                cur_agg.row_mut(v),
            );
            aggregator.finalize_into(cur_agg.row(v), graph.in_degree(vid), &mut finalized);
            layer.forward_into(prev.row(v), &finalized, &mut tmp, cur_emb.row_mut(v))?;
        }
    }
    Ok(store)
}

/// Recomputes (from scratch) the embeddings of a *subset* of vertices at one
/// hop, reading the previous hop's embeddings from `store` and writing both
/// the raw aggregate and the embedding back. Returns the number of
/// neighbour-accumulate operations performed, which is the cost metric the
/// paper contrasts with Ripple's `2·k'` (§4.3.3).
///
/// This is the building block of the layer-wise *recompute-on-update*
/// baseline (RC): for each affected vertex it pulls **all** in-neighbours,
/// regardless of how many of them actually changed. The previous hop is read
/// through a split borrow of the store, so no row is copied.
///
/// # Errors
///
/// Propagates tensor shape errors if the store does not match the model.
pub fn recompute_vertices_at_hop<G: GraphView + ?Sized>(
    graph: &G,
    model: &GnnModel,
    store: &mut EmbeddingStore,
    hop: usize,
    vertices: &[VertexId],
) -> Result<usize> {
    let layer = model.layer(hop)?;
    let aggregator = model.aggregator();
    let (prev, cur_emb, cur_agg) = store.propagation_views_mut(hop);
    let mut finalized = vec![0.0f32; layer.input_dim()];
    let mut tmp = Vec::new();
    let mut ops = 0usize;
    for &vid in vertices {
        let neighbors = graph.in_neighbors(vid);
        aggregator.raw_aggregate_into(
            prev,
            neighbors,
            graph.in_weights(vid),
            cur_agg.row_mut(vid.index()),
        );
        ops += aggregator.ops_for_neighbors(neighbors.len());
        aggregator.finalize_into(cur_agg.row(vid.index()), neighbors.len(), &mut finalized);
        layer.forward_into(
            prev.row(vid.index()),
            &finalized,
            &mut tmp,
            cur_emb.row_mut(vid.index()),
        )?;
    }
    Ok(ops)
}

/// Re-evaluates hop `hop` for a slice of vertices against an **immutable**
/// store, leaving the new embeddings as the rows of `scratch.out` (a flat
/// row-major `vertices.len() x output_dim` block, in input order). Nothing in
/// the store is written, so worker threads can evaluate disjoint slices of an
/// affected frontier concurrently without locking — the incremental engines
/// fold all pending mailbox deltas into the stored aggregates *before*
/// calling this, then commit the returned rows in a deterministic order
/// afterwards.
///
/// The whole slice is evaluated as one batched block: stored raw aggregates
/// are finalized into `scratch.lhs`, self embeddings (for self-dependent
/// layers) are gathered into `scratch.lhs2`, and the layer runs as 1–2 GEMMs
/// plus a fused bias/activation pass. Per vertex, the float operations are
/// identical to the serial per-vertex path, which is what keeps parallel
/// propagation bit-identical to serial propagation for linear aggregators.
/// Once the scratch buffers have reached steady-state capacity the call
/// performs **zero heap allocations**.
///
/// # Errors
///
/// Propagates layer lookup and tensor shape errors.
pub fn reevaluate_slice_into<G: GraphView + ?Sized>(
    graph: &G,
    model: &GnnModel,
    store: &EmbeddingStore,
    hop: usize,
    vertices: &[VertexId],
    scratch: &mut Scratch,
) -> Result<()> {
    let layer = model.layer(hop)?;
    let aggregator = model.aggregator();
    let in_dim = layer.input_dim();

    // The vertex slice makes upcoming aggregate/embedding row addresses
    // visible ahead of the copy loops — same prefetch discipline as the
    // sparse aggregation phase (no effect on values).
    let prefetch = ripple_tensor::simd::prefetch_enabled();
    let ahead = ripple_tensor::simd::PREFETCH_AHEAD;
    scratch.lhs.resize_reuse(vertices.len(), in_dim);
    for (i, &v) in vertices.iter().enumerate() {
        if prefetch {
            if let Some(a) = vertices.get(i + ahead) {
                ripple_tensor::simd::prefetch_slice(store.aggregate(hop, *a));
            }
        }
        aggregator.finalize_into(
            store.aggregate(hop, v),
            graph.in_degree(v),
            scratch.lhs.row_mut(i),
        );
    }
    if layer.depends_on_self() {
        let prev = store.embeddings(hop - 1);
        scratch.lhs2.resize_reuse(vertices.len(), in_dim);
        for (i, &v) in vertices.iter().enumerate() {
            if prefetch {
                if let Some(a) = vertices.get(i + ahead) {
                    ripple_tensor::simd::prefetch_slice(prev.row(a.index()));
                }
            }
            scratch.lhs2.row_mut(i).copy_from_slice(prev.row(v.index()));
        }
    } else {
        scratch.lhs2.resize_reuse(0, in_dim);
    }
    layer.forward_batch(
        &scratch.lhs2,
        &scratch.lhs,
        &mut scratch.tmp,
        &mut scratch.out,
    )
}

/// Re-evaluates hop `hop` for a slice of vertices against an **immutable**
/// store, returning one freshly allocated embedding per vertex in input
/// order. Thin wrapper over [`reevaluate_slice_into`], kept for tests and
/// callers outside the steady-state hot path.
///
/// # Errors
///
/// Propagates layer lookup and tensor shape errors.
pub fn reevaluate_slice<G: GraphView + ?Sized>(
    graph: &G,
    model: &GnnModel,
    store: &EmbeddingStore,
    hop: usize,
    vertices: &[VertexId],
) -> Result<Vec<Vec<f32>>> {
    let mut scratch = Scratch::new();
    reevaluate_slice_into(graph, model, store, hop, vertices, &mut scratch)?;
    Ok(scratch.out.iter_rows().map(<[f32]>::to_vec).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Aggregator, LayerKind, Workload};
    use ripple_graph::synth::DatasetSpec;

    fn small_graph() -> DynamicGraph {
        DatasetSpec::custom(60, 4.0, 6, 4).generate(3).unwrap()
    }

    #[test]
    fn full_inference_populates_every_layer() {
        let g = small_graph();
        let model = GnnModel::new(LayerKind::GraphConv, Aggregator::Sum, &[6, 8, 4], 1).unwrap();
        let store = full_inference(&g, &model).unwrap();
        assert_eq!(store.embeddings(0), g.features());
        // Some vertex must have a non-zero hop-2 embedding.
        let nonzero = (0..60).any(|v| {
            store
                .embedding(2, VertexId(v))
                .iter()
                .any(|&x| x.abs() > 1e-6)
        });
        assert!(nonzero);
    }

    #[test]
    fn feature_dim_mismatch_rejected() {
        let g = small_graph();
        let model = GnnModel::new(LayerKind::GraphConv, Aggregator::Sum, &[9, 8, 4], 1).unwrap();
        assert!(matches!(
            full_inference(&g, &model),
            Err(GnnError::FeatureDimMismatch { .. })
        ));
        assert!(matches!(
            full_inference_per_vertex(&g, &model),
            Err(GnnError::FeatureDimMismatch { .. })
        ));
    }

    #[test]
    fn hop1_embedding_matches_manual_computation() {
        // Graph: 0 -> 2, 1 -> 2 with sum aggregation and identity-activation
        // final layer; hop-1 aggregate of 2 is feature(0) + feature(1).
        let mut g = DynamicGraph::new(3, 2);
        g.add_edge(VertexId(0), VertexId(2), 1.0).unwrap();
        g.add_edge(VertexId(1), VertexId(2), 1.0).unwrap();
        let mut feats = ripple_tensor::Matrix::zeros(3, 2);
        feats.set_row(0, &[1.0, 2.0]).unwrap();
        feats.set_row(1, &[3.0, 4.0]).unwrap();
        g.set_features(feats).unwrap();

        let model = GnnModel::new(LayerKind::GraphConv, Aggregator::Sum, &[2, 2], 5).unwrap();
        let store = full_inference(&g, &model).unwrap();
        assert_eq!(store.aggregate(1, VertexId(2)), &[4.0, 6.0]);
        let manual = model
            .layer(1)
            .unwrap()
            .forward(&[0.0, 0.0], &[4.0, 6.0])
            .unwrap();
        assert_eq!(store.embedding(1, VertexId(2)), manual.as_slice());
        // Isolated vertex 0 aggregates nothing.
        assert_eq!(store.aggregate(1, VertexId(0)), &[0.0, 0.0]);
    }

    #[test]
    fn all_workloads_run_end_to_end() {
        let g = DatasetSpec::custom(40, 3.0, 5, 3)
            .generate_weighted(2, true)
            .unwrap();
        for workload in Workload::all() {
            let model = workload.build_model(5, 8, 3, 2, 11).unwrap();
            let store = full_inference(&g, &model).unwrap();
            assert_eq!(store.num_layers(), 2);
        }
    }

    /// The batched bootstrap path must be bit-identical to the per-vertex
    /// reference for every workload and thread count.
    #[test]
    fn batched_full_inference_bitwise_matches_per_vertex_reference() {
        let g = DatasetSpec::custom(90, 5.0, 6, 4)
            .generate_weighted(7, true)
            .unwrap();
        for workload in Workload::all() {
            let model = workload.build_model(6, 8, 4, 3, 13).unwrap();
            let reference = full_inference_per_vertex(&g, &model).unwrap();
            for threads in [1usize, 4] {
                let batched =
                    full_inference_with_pool(&g, &model, &WorkerPool::new(threads)).unwrap();
                assert!(
                    batched == reference,
                    "workload {workload} at {threads} threads diverged from the reference"
                );
            }
        }
    }

    /// Every topology view — dynamic lists, immutable CSR, CSR snapshot
    /// with a live overlay — must evaluate to bit-identical stores, since
    /// all of them present the same per-vertex neighbour order.
    #[test]
    fn full_inference_on_any_view_is_bit_identical() {
        use ripple_graph::{CsrSnapshot, GraphUpdate};
        let mut g = DatasetSpec::custom(70, 5.0, 6, 4)
            .generate_weighted(11, true)
            .unwrap();
        let model = GnnModel::new(LayerKind::Sage, Aggregator::Mean, &[6, 8, 4], 5).unwrap();
        let mut snap = CsrSnapshot::from_dynamic(&g);
        // Dirty the overlay so reads mix base slices and overlay rows.
        let updates = vec![
            GraphUpdate::add_weighted_edge(VertexId(0), VertexId(42), 0.75),
            GraphUpdate::add_weighted_edge(VertexId(3), VertexId(42), 1.25),
            GraphUpdate::delete_edge(VertexId(0), VertexId(42)),
        ];
        for u in &updates {
            g.apply(u).unwrap();
            snap.apply(u).unwrap();
        }
        let pool = WorkerPool::new(2);
        let via_dynamic = full_inference_on(&g, g.features(), &model, &pool).unwrap();
        let via_csr = full_inference_on(&g.to_csr(), g.features(), &model, &pool).unwrap();
        let via_snapshot = full_inference_on(&snap, g.features(), &model, &pool).unwrap();
        assert!(via_dynamic == via_csr, "CSR view diverged");
        assert!(via_dynamic == via_snapshot, "snapshot view diverged");
        // And the snapshot keeps agreeing after a compaction.
        snap.compact();
        let compacted = full_inference_on(&snap, g.features(), &model, &pool).unwrap();
        assert!(via_dynamic == compacted, "compacted snapshot diverged");
        // A feature table that does not cover the view is rejected.
        assert!(matches!(
            full_inference_on(&snap, &Matrix::zeros(3, 6), &model, &pool),
            Err(GnnError::StoreMismatch(_))
        ));
    }

    #[test]
    fn recompute_subset_reproduces_full_inference() {
        let g = small_graph();
        let model = GnnModel::new(LayerKind::Sage, Aggregator::Mean, &[6, 8, 4], 2).unwrap();
        let reference = full_inference(&g, &model).unwrap();
        let mut store = full_inference(&g, &model).unwrap();
        // Corrupt a few rows, then recompute exactly those vertices.
        let victims = vec![VertexId(1), VertexId(5), VertexId(17)];
        for &v in &victims {
            store.set_embedding(1, v, &[9.0; 8]).unwrap();
            store.set_aggregate(1, v, &[9.0; 6]).unwrap();
        }
        let ops = recompute_vertices_at_hop(&g, &model, &mut store, 1, &victims).unwrap();
        assert!(ops > 0);
        assert!(store.max_diff_all_layers(&reference).unwrap() < 1e-5);
    }

    #[test]
    fn reevaluate_slice_without_deltas_reproduces_stored_embeddings() {
        let g = small_graph();
        let model = GnnModel::new(LayerKind::Sage, Aggregator::Mean, &[6, 8, 4], 7).unwrap();
        let store = full_inference(&g, &model).unwrap();
        let vertices: Vec<VertexId> = (0..60).map(VertexId).collect();
        for hop in 1..=2 {
            let evals = reevaluate_slice(&g, &model, &store, hop, &vertices).unwrap();
            for (&v, new_embedding) in vertices.iter().zip(&evals) {
                assert_eq!(new_embedding.as_slice(), store.embedding(hop, v));
            }
        }
    }

    #[test]
    fn reevaluate_slice_sees_aggregates_folded_before_the_call() {
        // The engines' apply-then-evaluate contract: fold a pending delta
        // into the stored aggregate, and the slice evaluation must reflect
        // it exactly.
        let g = small_graph();
        let model = GnnModel::new(LayerKind::GraphConv, Aggregator::Sum, &[6, 8, 4], 9).unwrap();
        let mut store = full_inference(&g, &model).unwrap();
        let v = VertexId(11);
        let delta = vec![0.5f32; 6];
        ripple_tensor::add_assign(store.aggregate_mut(1, v), &delta);

        let evals = reevaluate_slice(&g, &model, &store, 1, &[v]).unwrap();
        let finalized = model
            .aggregator()
            .finalize(store.aggregate(1, v), g.in_degree(v));
        let expected_emb = model
            .layer(1)
            .unwrap()
            .forward(store.embedding(0, v), &finalized)
            .unwrap();
        assert_eq!(evals[0], expected_emb);
        assert_ne!(evals[0].as_slice(), store.embedding(1, v));
    }

    #[test]
    fn reevaluate_slice_preserves_input_order_and_is_splittable() {
        // Evaluating a slice in one call or as two disjoint sub-slices must
        // produce bit-identical results — the property parallel workers rely
        // on.
        let g = small_graph();
        let model = GnnModel::new(LayerKind::Gin, Aggregator::Sum, &[6, 8, 4], 3).unwrap();
        let mut store = full_inference(&g, &model).unwrap();
        // Perturb some aggregates so the evaluation is not a no-op replay.
        for v in (0..40).step_by(3) {
            ripple_tensor::add_assign(store.aggregate_mut(1, VertexId(v)), &[0.25; 6]);
        }
        let vertices: Vec<VertexId> = (0..40).map(VertexId).collect();
        let whole = reevaluate_slice(&g, &model, &store, 1, &vertices).unwrap();
        let mut split = reevaluate_slice(&g, &model, &store, 1, &vertices[..17]).unwrap();
        split.extend(reevaluate_slice(&g, &model, &store, 1, &vertices[17..]).unwrap());
        assert_eq!(whole, split);
    }

    #[test]
    fn reevaluate_slice_into_reuses_scratch_across_calls() {
        let g = small_graph();
        let model = GnnModel::new(LayerKind::Sage, Aggregator::Mean, &[6, 8, 4], 5).unwrap();
        let store = full_inference(&g, &model).unwrap();
        let vertices: Vec<VertexId> = (0..30).map(VertexId).collect();
        let mut scratch = Scratch::new();
        reevaluate_slice_into(&g, &model, &store, 1, &vertices, &mut scratch).unwrap();
        assert_eq!(scratch.out.shape(), (30, 8));
        let first = scratch.out.clone();
        // A second call over a smaller slice reuses the buffers and yields
        // the matching prefix rows.
        reevaluate_slice_into(&g, &model, &store, 1, &vertices[..5], &mut scratch).unwrap();
        assert_eq!(scratch.out.shape(), (5, 8));
        for i in 0..5 {
            assert_eq!(scratch.out.row(i), first.row(i));
        }
    }

    #[test]
    fn recompute_ops_scale_with_degree() {
        let g = small_graph();
        let model = GnnModel::new(LayerKind::GraphConv, Aggregator::Sum, &[6, 4], 0).unwrap();
        let mut store = full_inference(&g, &model).unwrap();
        let all: Vec<VertexId> = (0..60).map(VertexId).collect();
        let ops = recompute_vertices_at_hop(&g, &model, &mut store, 1, &all).unwrap();
        assert_eq!(ops, g.num_edges());
    }
}
