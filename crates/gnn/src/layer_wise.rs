//! Full-graph layer-wise inference.
//!
//! This is the paper's basic (and bootstrap) inference strategy: compute the
//! hop-1 embeddings for **all** vertices, then hop-2 from hop-1, and so on
//! (Fig 1, right). It avoids the neighbourhood-explosion and redundant
//! recomputation of vertex-wise inference, and it produces the
//! [`EmbeddingStore`] that both the recompute baseline and the Ripple engine
//! start from when updates begin streaming.

use crate::embeddings::EmbeddingStore;
use crate::model::GnnModel;
use crate::{GnnError, Result};
use ripple_graph::{DynamicGraph, VertexId};

/// Runs full layer-wise inference over every vertex of the graph, returning a
/// store with all layer embeddings and raw aggregates populated.
///
/// # Errors
///
/// Returns [`GnnError::FeatureDimMismatch`] if the graph's feature width does
/// not match the model's input dimension.
pub fn full_inference(graph: &DynamicGraph, model: &GnnModel) -> Result<EmbeddingStore> {
    if graph.feature_dim() != model.input_dim() {
        return Err(GnnError::FeatureDimMismatch {
            model: model.input_dim(),
            graph: graph.feature_dim(),
        });
    }
    let n = graph.num_vertices();
    let mut store = EmbeddingStore::zeroed(model, n);

    // Layer 0 embeddings are the input features.
    *store.embeddings_mut(0) = graph.features().clone();

    let aggregator = model.aggregator();
    for (hop, layer) in model.iter_layers() {
        for v in 0..n {
            let vid = VertexId(v as u32);
            let raw = aggregator.raw_aggregate(
                store.embeddings(hop - 1),
                graph.in_neighbors(vid),
                graph.in_weights(vid),
            );
            let finalized = aggregator.finalize(&raw, graph.in_degree(vid));
            let self_prev = store.embedding(hop - 1, vid).to_vec();
            let out = layer.forward(&self_prev, &finalized)?;
            store.set_aggregate(hop, vid, &raw)?;
            store.set_embedding(hop, vid, &out)?;
        }
    }
    Ok(store)
}

/// Recomputes (from scratch) the embeddings of a *subset* of vertices at one
/// hop, reading the previous hop's embeddings from `store` and writing both
/// the raw aggregate and the embedding back. Returns the number of
/// neighbour-accumulate operations performed, which is the cost metric the
/// paper contrasts with Ripple's `2·k'` (§4.3.3).
///
/// This is the building block of the layer-wise *recompute-on-update*
/// baseline (RC): for each affected vertex it pulls **all** in-neighbours,
/// regardless of how many of them actually changed.
///
/// # Errors
///
/// Propagates tensor shape errors if the store does not match the model.
pub fn recompute_vertices_at_hop(
    graph: &DynamicGraph,
    model: &GnnModel,
    store: &mut EmbeddingStore,
    hop: usize,
    vertices: &[VertexId],
) -> Result<usize> {
    let layer = model.layer(hop)?;
    let aggregator = model.aggregator();
    let mut ops = 0usize;
    for &vid in vertices {
        let neighbors = graph.in_neighbors(vid);
        let raw =
            aggregator.raw_aggregate(store.embeddings(hop - 1), neighbors, graph.in_weights(vid));
        ops += aggregator.ops_for_neighbors(neighbors.len());
        let finalized = aggregator.finalize(&raw, neighbors.len());
        let self_prev = store.embedding(hop - 1, vid).to_vec();
        let out = layer.forward(&self_prev, &finalized)?;
        store.set_aggregate(hop, vid, &raw)?;
        store.set_embedding(hop, vid, &out)?;
    }
    Ok(ops)
}

/// Re-evaluates hop `hop` for a slice of vertices against an **immutable**
/// store: each vertex's stored raw aggregate is finalized and pushed through
/// the layer's `Update` function, and the new embeddings come back in input
/// order. Nothing is written, so worker threads can evaluate disjoint slices
/// of an affected frontier concurrently without locking — the incremental
/// engines fold all pending mailbox deltas into the stored aggregates *before*
/// calling this, then commit the returned embeddings in a deterministic
/// order afterwards.
///
/// The arithmetic performed per vertex (finalize, forward) is
/// operation-for-operation identical to the serial incremental engine's
/// compute phase, which is what keeps parallel propagation bit-identical to
/// serial propagation for linear aggregators.
///
/// # Errors
///
/// Propagates layer lookup and tensor shape errors.
pub fn reevaluate_slice(
    graph: &DynamicGraph,
    model: &GnnModel,
    store: &EmbeddingStore,
    hop: usize,
    vertices: &[VertexId],
) -> Result<Vec<Vec<f32>>> {
    let layer = model.layer(hop)?;
    let aggregator = model.aggregator();
    let mut out = Vec::with_capacity(vertices.len());
    for &v in vertices {
        let finalized = aggregator.finalize(store.aggregate(hop, v), graph.in_degree(v));
        out.push(layer.forward(store.embedding(hop - 1, v), &finalized)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Aggregator, LayerKind, Workload};
    use ripple_graph::synth::DatasetSpec;

    fn small_graph() -> DynamicGraph {
        DatasetSpec::custom(60, 4.0, 6, 4).generate(3).unwrap()
    }

    #[test]
    fn full_inference_populates_every_layer() {
        let g = small_graph();
        let model = GnnModel::new(LayerKind::GraphConv, Aggregator::Sum, &[6, 8, 4], 1).unwrap();
        let store = full_inference(&g, &model).unwrap();
        assert_eq!(store.embeddings(0), g.features());
        // Some vertex must have a non-zero hop-2 embedding.
        let nonzero = (0..60).any(|v| {
            store
                .embedding(2, VertexId(v))
                .iter()
                .any(|&x| x.abs() > 1e-6)
        });
        assert!(nonzero);
    }

    #[test]
    fn feature_dim_mismatch_rejected() {
        let g = small_graph();
        let model = GnnModel::new(LayerKind::GraphConv, Aggregator::Sum, &[9, 8, 4], 1).unwrap();
        assert!(matches!(
            full_inference(&g, &model),
            Err(GnnError::FeatureDimMismatch { .. })
        ));
    }

    #[test]
    fn hop1_embedding_matches_manual_computation() {
        // Graph: 0 -> 2, 1 -> 2 with sum aggregation and identity-activation
        // final layer; hop-1 aggregate of 2 is feature(0) + feature(1).
        let mut g = DynamicGraph::new(3, 2);
        g.add_edge(VertexId(0), VertexId(2), 1.0).unwrap();
        g.add_edge(VertexId(1), VertexId(2), 1.0).unwrap();
        let mut feats = ripple_tensor::Matrix::zeros(3, 2);
        feats.set_row(0, &[1.0, 2.0]).unwrap();
        feats.set_row(1, &[3.0, 4.0]).unwrap();
        g.set_features(feats).unwrap();

        let model = GnnModel::new(LayerKind::GraphConv, Aggregator::Sum, &[2, 2], 5).unwrap();
        let store = full_inference(&g, &model).unwrap();
        assert_eq!(store.aggregate(1, VertexId(2)), &[4.0, 6.0]);
        let manual = model
            .layer(1)
            .unwrap()
            .forward(&[0.0, 0.0], &[4.0, 6.0])
            .unwrap();
        assert_eq!(store.embedding(1, VertexId(2)), manual.as_slice());
        // Isolated vertex 0 aggregates nothing.
        assert_eq!(store.aggregate(1, VertexId(0)), &[0.0, 0.0]);
    }

    #[test]
    fn all_workloads_run_end_to_end() {
        let g = DatasetSpec::custom(40, 3.0, 5, 3)
            .generate_weighted(2, true)
            .unwrap();
        for workload in Workload::all() {
            let model = workload.build_model(5, 8, 3, 2, 11).unwrap();
            let store = full_inference(&g, &model).unwrap();
            assert_eq!(store.num_layers(), 2);
        }
    }

    #[test]
    fn recompute_subset_reproduces_full_inference() {
        let g = small_graph();
        let model = GnnModel::new(LayerKind::Sage, Aggregator::Mean, &[6, 8, 4], 2).unwrap();
        let reference = full_inference(&g, &model).unwrap();
        let mut store = full_inference(&g, &model).unwrap();
        // Corrupt a few rows, then recompute exactly those vertices.
        let victims = vec![VertexId(1), VertexId(5), VertexId(17)];
        for &v in &victims {
            store.set_embedding(1, v, &[9.0; 8]).unwrap();
            store.set_aggregate(1, v, &[9.0; 6]).unwrap();
        }
        let ops = recompute_vertices_at_hop(&g, &model, &mut store, 1, &victims).unwrap();
        assert!(ops > 0);
        assert!(store.max_diff_all_layers(&reference).unwrap() < 1e-5);
    }

    #[test]
    fn reevaluate_slice_without_deltas_reproduces_stored_embeddings() {
        let g = small_graph();
        let model = GnnModel::new(LayerKind::Sage, Aggregator::Mean, &[6, 8, 4], 7).unwrap();
        let store = full_inference(&g, &model).unwrap();
        let vertices: Vec<VertexId> = (0..60).map(VertexId).collect();
        for hop in 1..=2 {
            let evals = reevaluate_slice(&g, &model, &store, hop, &vertices).unwrap();
            for (&v, new_embedding) in vertices.iter().zip(&evals) {
                assert_eq!(new_embedding.as_slice(), store.embedding(hop, v));
            }
        }
    }

    #[test]
    fn reevaluate_slice_sees_aggregates_folded_before_the_call() {
        // The engines' apply-then-evaluate contract: fold a pending delta
        // into the stored aggregate, and the slice evaluation must reflect
        // it exactly.
        let g = small_graph();
        let model = GnnModel::new(LayerKind::GraphConv, Aggregator::Sum, &[6, 8, 4], 9).unwrap();
        let mut store = full_inference(&g, &model).unwrap();
        let v = VertexId(11);
        let delta = vec![0.5f32; 6];
        ripple_tensor::add_assign(store.aggregate_mut(1, v), &delta);

        let evals = reevaluate_slice(&g, &model, &store, 1, &[v]).unwrap();
        let finalized = model
            .aggregator()
            .finalize(store.aggregate(1, v), g.in_degree(v));
        let expected_emb = model
            .layer(1)
            .unwrap()
            .forward(store.embedding(0, v), &finalized)
            .unwrap();
        assert_eq!(evals[0], expected_emb);
        assert_ne!(evals[0].as_slice(), store.embedding(1, v));
    }

    #[test]
    fn reevaluate_slice_preserves_input_order_and_is_splittable() {
        // Evaluating a slice in one call or as two disjoint sub-slices must
        // produce bit-identical results — the property parallel workers rely
        // on.
        let g = small_graph();
        let model = GnnModel::new(LayerKind::Gin, Aggregator::Sum, &[6, 8, 4], 3).unwrap();
        let mut store = full_inference(&g, &model).unwrap();
        // Perturb some aggregates so the evaluation is not a no-op replay.
        for v in (0..40).step_by(3) {
            ripple_tensor::add_assign(store.aggregate_mut(1, VertexId(v)), &[0.25; 6]);
        }
        let vertices: Vec<VertexId> = (0..40).map(VertexId).collect();
        let whole = reevaluate_slice(&g, &model, &store, 1, &vertices).unwrap();
        let mut split = reevaluate_slice(&g, &model, &store, 1, &vertices[..17]).unwrap();
        split.extend(reevaluate_slice(&g, &model, &store, 1, &vertices[17..]).unwrap());
        assert_eq!(whole, split);
    }

    #[test]
    fn recompute_ops_scale_with_degree() {
        let g = small_graph();
        let model = GnnModel::new(LayerKind::GraphConv, Aggregator::Sum, &[6, 4], 0).unwrap();
        let mut store = full_inference(&g, &model).unwrap();
        let all: Vec<VertexId> = (0..60).map(VertexId).collect();
        let ops = recompute_vertices_at_hop(&g, &model, &mut store, 1, &all).unwrap();
        assert_eq!(ops, g.num_edges());
    }
}
