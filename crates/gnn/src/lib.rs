//! GNN model substrate for the Ripple reproduction.
//!
//! The paper evaluates five workloads built from three model families
//! (GraphConv, GraphSAGE, GINConv) and three *linear* aggregation functions
//! (sum, mean, weighted sum). This crate implements those models and the
//! inference strategies the paper compares against:
//!
//! * [`Aggregator`] — the linear aggregation functions of Table 1, exposed in
//!   a form that both full recomputation and incremental delta propagation
//!   can share.
//! * [`GnnLayer`] / [`GnnModel`] — the per-layer `Update` functions (Eqn. 2)
//!   with deterministic, seeded weights.
//! * [`EmbeddingStore`] — the per-layer embedding **and aggregate** tables
//!   that inference maintains; keeping the raw aggregates is what lets the
//!   incremental engine (and exact recomputation under non-linear
//!   activations) avoid re-reading whole neighbourhoods.
//! * [`layer_wise`] — full-graph layer-wise inference (the bootstrap pass and
//!   the basis of the DRC/RC baselines).
//! * [`vertex_wise`] — per-target-vertex inference with optional fanout
//!   sampling (the DNC baseline and the Fig 2a accuracy/latency trade-off).
//! * [`recompute`] — the layer-wise *recompute-on-update* baseline (RC), the
//!   strongest non-incremental competitor in the paper.
//! * [`Workload`] — the five named paper workloads (GC-S, GS-S, GC-M, GI-S,
//!   GC-W).
//!
//! # Example
//!
//! ```
//! use ripple_gnn::{GnnModel, LayerKind, Aggregator, layer_wise};
//! use ripple_graph::synth::DatasetSpec;
//!
//! let graph = DatasetSpec::custom(100, 4.0, 8, 4).generate(1).unwrap();
//! let model = GnnModel::new(LayerKind::GraphConv, Aggregator::Sum, &[8, 16, 4], 7).unwrap();
//! let store = layer_wise::full_inference(&graph, &model).unwrap();
//! assert_eq!(store.num_layers(), 2);
//! assert_eq!(store.embeddings(2).shape(), (100, 4));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregator;
pub mod embeddings;
pub mod error;
pub mod layer;
pub mod layer_wise;
pub mod model;
pub mod recompute;
pub mod sampling;
pub mod vertex_wise;
pub mod workload;

pub use aggregator::Aggregator;
pub use embeddings::EmbeddingStore;
pub use error::GnnError;
pub use layer::{GnnLayer, LayerKind};
pub use model::GnnModel;
pub use workload::Workload;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GnnError>;
