//! Multi-layer GNN models.

use crate::aggregator::Aggregator;
use crate::layer::{GnnLayer, LayerKind};
use crate::{GnnError, Result};
use ripple_tensor::activation::Activation;
use serde::{Deserialize, Serialize};

/// An `L`-layer GNN model for vertex classification.
///
/// All layers share one model family and one aggregation function, matching
/// the paper's workloads (e.g. "GraphConv with Sum"). The final layer uses an
/// identity activation so its outputs can be read as class logits; hidden
/// layers use ReLU.
///
/// # Example
///
/// ```
/// use ripple_gnn::{GnnModel, LayerKind, Aggregator};
///
/// // A 2-layer GraphSAGE-with-sum model: 16 input features, 32 hidden, 8 classes.
/// let model = GnnModel::new(LayerKind::Sage, Aggregator::Sum, &[16, 32, 8], 42).unwrap();
/// assert_eq!(model.num_layers(), 2);
/// assert_eq!(model.input_dim(), 16);
/// assert_eq!(model.output_dim(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GnnModel {
    kind: LayerKind,
    aggregator: Aggregator,
    layers: Vec<GnnLayer>,
}

impl GnnModel {
    /// Builds a model with the given layer dimensions.
    ///
    /// `dims` lists the embedding width at every level: `dims[0]` is the
    /// input feature width, `dims[i]` the output width of layer `i`, so a
    /// model with `dims.len() == L + 1` has `L` layers.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidModelShape`] if fewer than two dimensions
    /// are given or any dimension is zero.
    pub fn new(kind: LayerKind, aggregator: Aggregator, dims: &[usize], seed: u64) -> Result<Self> {
        if dims.len() < 2 {
            return Err(GnnError::InvalidModelShape(format!(
                "need at least input and output dimensions, got {} entries",
                dims.len()
            )));
        }
        let num_layers = dims.len() - 1;
        let mut layers = Vec::with_capacity(num_layers);
        for l in 0..num_layers {
            let activation = if l + 1 == num_layers {
                Activation::Identity
            } else {
                Activation::Relu
            };
            layers.push(GnnLayer::new(
                kind,
                dims[l],
                dims[l + 1],
                activation,
                seed.wrapping_add(l as u64).wrapping_mul(0x9e3779b97f4a7c15),
            )?);
        }
        Ok(GnnModel {
            kind,
            aggregator,
            layers,
        })
    }

    /// The model family shared by every layer.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// The aggregation function shared by every layer.
    pub fn aggregator(&self) -> Aggregator {
        self.aggregator
    }

    /// Number of layers (`L`), i.e. the number of hops an update can ripple.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Input feature width expected by the first layer.
    pub fn input_dim(&self) -> usize {
        self.layers[0].input_dim()
    }

    /// Output width of the final layer (number of classes for vertex
    /// classification).
    pub fn output_dim(&self) -> usize {
        self.layers
            .last()
            .expect("models have at least one layer")
            .output_dim()
    }

    /// The layer computing hop `l` embeddings, where `l` runs from 1 to
    /// [`Self::num_layers`].
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::LayerOutOfRange`] if `l` is zero or greater than
    /// the number of layers.
    pub fn layer(&self, l: usize) -> Result<&GnnLayer> {
        if l == 0 || l > self.layers.len() {
            return Err(GnnError::LayerOutOfRange {
                layer: l,
                num_layers: self.layers.len(),
            });
        }
        Ok(&self.layers[l - 1])
    }

    /// Iterator over `(hop index, layer)` pairs in execution order
    /// (hop 1 first).
    pub fn iter_layers(&self) -> impl Iterator<Item = (usize, &GnnLayer)> + '_ {
        self.layers.iter().enumerate().map(|(i, l)| (i + 1, l))
    }

    /// The embedding width at each level, `[input, hidden..., output]`.
    pub fn dims(&self) -> Vec<usize> {
        let mut dims = Vec::with_capacity(self.layers.len() + 1);
        dims.push(self.input_dim());
        dims.extend(self.layers.iter().map(GnnLayer::output_dim));
        dims
    }

    /// Whether any layer's output depends on the vertex's own previous-layer
    /// embedding (see [`GnnLayer::depends_on_self`]).
    pub fn depends_on_self(&self) -> bool {
        self.layers.iter().any(GnnLayer::depends_on_self)
    }

    /// Total parameter memory of the model, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.layers.iter().map(GnnLayer::memory_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_requested_number_of_layers() {
        let m = GnnModel::new(LayerKind::GraphConv, Aggregator::Sum, &[8, 16, 16, 4], 0).unwrap();
        assert_eq!(m.num_layers(), 3);
        assert_eq!(m.dims(), vec![8, 16, 16, 4]);
        assert_eq!(m.input_dim(), 8);
        assert_eq!(m.output_dim(), 4);
        assert_eq!(m.kind(), LayerKind::GraphConv);
        assert_eq!(m.aggregator(), Aggregator::Sum);
    }

    #[test]
    fn rejects_too_few_dims() {
        assert!(GnnModel::new(LayerKind::GraphConv, Aggregator::Sum, &[8], 0).is_err());
        assert!(GnnModel::new(LayerKind::GraphConv, Aggregator::Sum, &[], 0).is_err());
    }

    #[test]
    fn hidden_layers_relu_final_identity() {
        let m = GnnModel::new(LayerKind::Sage, Aggregator::Mean, &[4, 8, 3], 1).unwrap();
        assert_eq!(m.layer(1).unwrap().activation(), Activation::Relu);
        assert_eq!(m.layer(2).unwrap().activation(), Activation::Identity);
    }

    #[test]
    fn layer_indexing_is_one_based() {
        let m = GnnModel::new(LayerKind::Gin, Aggregator::Sum, &[4, 4, 4], 1).unwrap();
        assert!(m.layer(0).is_err());
        assert!(m.layer(1).is_ok());
        assert!(m.layer(2).is_ok());
        assert!(m.layer(3).is_err());
        assert_eq!(m.iter_layers().count(), 2);
        assert_eq!(m.iter_layers().next().unwrap().0, 1);
    }

    #[test]
    fn depends_on_self_tracks_kind() {
        assert!(
            !GnnModel::new(LayerKind::GraphConv, Aggregator::Sum, &[4, 4], 0)
                .unwrap()
                .depends_on_self()
        );
        assert!(GnnModel::new(LayerKind::Sage, Aggregator::Sum, &[4, 4], 0)
            .unwrap()
            .depends_on_self());
        assert!(GnnModel::new(LayerKind::Gin, Aggregator::Sum, &[4, 4], 0)
            .unwrap()
            .depends_on_self());
    }

    #[test]
    fn deterministic_construction() {
        let a = GnnModel::new(LayerKind::Sage, Aggregator::Sum, &[8, 8, 4], 7).unwrap();
        let b = GnnModel::new(LayerKind::Sage, Aggregator::Sum, &[8, 8, 4], 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn memory_is_positive() {
        let m = GnnModel::new(LayerKind::GraphConv, Aggregator::Sum, &[16, 32, 8], 0).unwrap();
        assert!(m.memory_bytes() >= 16 * 32 * 4 + 32 * 8 * 4);
    }
}
