//! A single GNN layer: the learnable `Update` function of Eqn. 2.
//!
//! Each layer owns its (deterministically initialised) weight matrices and
//! knows how to combine a vertex's own previous-layer embedding with the
//! finalized aggregate of its in-neighbours. The three families follow the
//! standard formulations:
//!
//! * **GraphConv** (GCN): `h_v = σ(W · x_v + b)` — depends only on the
//!   neighbourhood aggregate.
//! * **GraphSAGE**: `h_v = σ(W_self · h_v^{prev} + W_neigh · x_v + b)`.
//! * **GINConv**: `h_v = σ(W · ((1 + ε) · h_v^{prev} + x_v) + b)` with a
//!   fixed ε.
//!
//! The important property for Ripple is that each of these is *linear in the
//! aggregate* `x_v`, and whether it *also* depends on the vertex's own
//! previous-layer embedding ([`GnnLayer::depends_on_self`]) — that determines
//! which vertices join the affected set at the next hop.

use crate::{GnnError, Result};
use ripple_tensor::activation::Activation;
use ripple_tensor::{init, ops, Matrix};
use serde::{Deserialize, Serialize};

/// The model family a layer belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Graph Convolutional Network layer (Kipf & Welling).
    GraphConv,
    /// GraphSAGE layer (Hamilton et al.) with separate self and neighbour
    /// transforms.
    Sage,
    /// Graph Isomorphism Network layer (Xu et al.) with `(1+ε)` self scaling.
    Gin,
}

impl std::fmt::Display for LayerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            LayerKind::GraphConv => "graph-conv",
            LayerKind::Sage => "sage",
            LayerKind::Gin => "gin",
        };
        f.write_str(name)
    }
}

/// Fixed ε used by GIN layers (the paper trains ε; any fixed value preserves
/// the computation structure).
pub const GIN_EPSILON: f32 = 0.1;

/// One GNN layer with its weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GnnLayer {
    kind: LayerKind,
    /// Transform applied to the neighbourhood aggregate (and, for GIN, the
    /// combined self+aggregate vector).
    w_neigh: Matrix,
    /// Transform applied to the vertex's own previous-layer embedding
    /// (GraphSAGE only).
    w_self: Option<Matrix>,
    bias: Vec<f32>,
    activation: Activation,
}

impl GnnLayer {
    /// Creates a layer with deterministic Xavier-initialised weights.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidModelShape`] if either dimension is zero.
    pub fn new(
        kind: LayerKind,
        input_dim: usize,
        output_dim: usize,
        activation: Activation,
        seed: u64,
    ) -> Result<Self> {
        if input_dim == 0 || output_dim == 0 {
            return Err(GnnError::InvalidModelShape(format!(
                "layer dimensions must be positive, got {input_dim} -> {output_dim}"
            )));
        }
        let w_neigh = init::xavier_uniform(input_dim, output_dim, seed);
        let w_self = match kind {
            LayerKind::Sage => Some(init::xavier_uniform(input_dim, output_dim, seed ^ 0x5eed)),
            LayerKind::GraphConv | LayerKind::Gin => None,
        };
        let bias = init::uniform(1, output_dim, -0.05, 0.05, seed ^ 0xb1a5).into_flat();
        Ok(GnnLayer {
            kind,
            w_neigh,
            w_self,
            bias,
            activation,
        })
    }

    /// The model family of this layer.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// Input (previous-layer) embedding width.
    pub fn input_dim(&self) -> usize {
        self.w_neigh.rows()
    }

    /// Output embedding width.
    pub fn output_dim(&self) -> usize {
        self.w_neigh.cols()
    }

    /// The activation applied to this layer's output.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Whether this layer's output for a vertex depends on that vertex's own
    /// previous-layer embedding (in addition to the aggregate).
    ///
    /// GraphSAGE and GIN do; GraphConv does not. The affected-set computation
    /// of both the recompute baseline and the incremental engine uses this to
    /// decide whether a vertex whose embedding changed at hop `l-1` must also
    /// be refreshed at hop `l` even when none of its in-neighbours changed.
    pub fn depends_on_self(&self) -> bool {
        matches!(self.kind, LayerKind::Sage | LayerKind::Gin)
    }

    /// Applies the layer's `Update` function to one vertex, **writing** the
    /// result into `out` (width [`Self::output_dim`]). `tmp` is a reusable
    /// scratch vector (any initial length; resized as needed); steady-state
    /// calls perform no heap allocation.
    ///
    /// `self_prev` is the vertex's own previous-layer embedding and
    /// `aggregate` is the finalized neighbourhood aggregate (see
    /// [`crate::Aggregator::finalize_into`]); both must have width
    /// [`Self::input_dim`].
    ///
    /// # Errors
    ///
    /// Returns a tensor shape error if the widths do not match.
    pub fn forward_into(
        &self,
        self_prev: &[f32],
        aggregate: &[f32],
        tmp: &mut Vec<f32>,
        out: &mut [f32],
    ) -> Result<()> {
        match self.kind {
            LayerKind::GraphConv => ops::row_matmul_into(aggregate, &self.w_neigh, out)?,
            LayerKind::Sage => {
                ops::row_matmul_into(aggregate, &self.w_neigh, out)?;
                tmp.clear();
                tmp.resize(self.output_dim(), 0.0);
                ops::row_matmul_into(
                    self_prev,
                    self.w_self
                        .as_ref()
                        .expect("SAGE layer always has a self transform"),
                    tmp,
                )?;
                ripple_tensor::add_assign(out, tmp);
            }
            LayerKind::Gin => {
                if self_prev.len() != aggregate.len() {
                    return Err(crate::GnnError::from(
                        ripple_tensor::TensorError::ShapeMismatch {
                            op: "forward_into",
                            left: (1, self_prev.len()),
                            right: (1, aggregate.len()),
                        },
                    ));
                }
                tmp.clear();
                tmp.extend_from_slice(aggregate);
                ripple_tensor::axpy(tmp, 1.0 + GIN_EPSILON, self_prev);
                ops::row_matmul_into(tmp, &self.w_neigh, out)?;
            }
        };
        ripple_tensor::add_assign(out, &self.bias);
        self.activation.apply(out);
        Ok(())
    }

    /// Applies the layer's `Update` function to one vertex, allocating the
    /// result. Thin wrapper over [`Self::forward_into`].
    ///
    /// # Errors
    ///
    /// Returns a tensor shape error if the widths do not match.
    pub fn forward(&self, self_prev: &[f32], aggregate: &[f32]) -> Result<Vec<f32>> {
        let mut out = vec![0.0f32; self.output_dim()];
        let mut tmp = Vec::new();
        self.forward_into(self_prev, aggregate, &mut tmp, &mut out)?;
        Ok(out)
    }

    /// Applies the layer's `Update` function to a whole packed frontier of
    /// `m` vertices in 1–2 GEMMs plus a fused bias/activation pass, over
    /// **borrowed row blocks**: `agg_rows` is the `m x input_dim` row-major
    /// block of finalized aggregates, `self_rows` the matching block of
    /// previous-layer embeddings (required for SAGE/GIN, ignored — and
    /// usually empty — for GraphConv), and the result lands in the
    /// `m x output_dim` block `out`. Nothing is copied in or out, so callers
    /// can evaluate straight from (and into) sub-blocks of larger tables;
    /// steady-state calls perform no heap allocation (`tmp` is a reusable
    /// scratch matrix).
    ///
    /// Per output element, the float-operation sequence is identical to
    /// [`Self::forward_into`] on that row, so the batched and per-vertex
    /// paths are **bit-identical** — the contract `tests/kernel_parity.rs`
    /// pins for every `LayerKind x Aggregator` combination.
    ///
    /// # Errors
    ///
    /// Returns a tensor shape error if any block size does not match `m` and
    /// the layer dimensions.
    pub fn forward_block(
        &self,
        self_rows: &[f32],
        agg_rows: &[f32],
        m: usize,
        tmp: &mut Matrix,
        out: &mut [f32],
    ) -> Result<()> {
        if agg_rows.len() != m * self.input_dim() {
            return Err(crate::GnnError::from(
                ripple_tensor::TensorError::ShapeMismatch {
                    op: "forward_block",
                    left: (m, agg_rows.len() / m.max(1)),
                    right: (m, self.input_dim()),
                },
            ));
        }
        if self.depends_on_self() && self_rows.len() != agg_rows.len() {
            return Err(crate::GnnError::from(
                ripple_tensor::TensorError::ShapeMismatch {
                    op: "forward_block",
                    left: (m, self_rows.len() / m.max(1)),
                    right: (m, agg_rows.len() / m.max(1)),
                },
            ));
        }
        match self.kind {
            LayerKind::GraphConv => ops::gemm_block_into(agg_rows, m, &self.w_neigh, out)?,
            LayerKind::Sage => {
                ops::gemm_block_into(agg_rows, m, &self.w_neigh, out)?;
                tmp.resize_reuse(m, self.output_dim());
                ops::gemm_block_into(
                    self_rows,
                    m,
                    self.w_self
                        .as_ref()
                        .expect("SAGE layer always has a self transform"),
                    tmp.as_mut_slice(),
                )?;
                ripple_tensor::add_assign(out, tmp.as_slice());
            }
            LayerKind::Gin => {
                tmp.resize_reuse(m, self.input_dim());
                tmp.as_mut_slice().copy_from_slice(agg_rows);
                ripple_tensor::axpy(tmp.as_mut_slice(), 1.0 + GIN_EPSILON, self_rows);
                ops::gemm_block_into(tmp.as_slice(), m, &self.w_neigh, out)?;
            }
        }
        // Fused bias + activation, row by row (same per-element order as the
        // per-vertex path).
        let n = self.output_dim();
        for row in out.chunks_exact_mut(n.max(1)) {
            ripple_tensor::add_assign(row, &self.bias);
            self.activation.apply(row);
        }
        Ok(())
    }

    /// Applies the layer's `Update` function to a whole packed frontier in
    /// 1–2 GEMMs plus a fused bias/activation pass, **writing** the result
    /// block into `out` (resized, capacity-reusing, to
    /// `aggregates.rows() x output_dim`). Thin wrapper over
    /// [`Self::forward_block`]; steady-state calls perform no heap
    /// allocation.
    ///
    /// Row `i` of `aggregates` is the finalized neighbourhood aggregate of
    /// the `i`-th frontier vertex; for self-dependent layers (SAGE/GIN) row
    /// `i` of `self_prev` must be that vertex's previous-layer embedding
    /// (GraphConv ignores `self_prev`, which may be empty).
    ///
    /// # Errors
    ///
    /// Returns a tensor shape error if operand widths do not match, or if a
    /// self-dependent layer receives fewer `self_prev` rows than aggregates.
    pub fn forward_batch(
        &self,
        self_prev: &Matrix,
        aggregates: &Matrix,
        tmp: &mut Matrix,
        out: &mut Matrix,
    ) -> Result<()> {
        if aggregates.cols() != self.input_dim() {
            return Err(crate::GnnError::from(
                ripple_tensor::TensorError::ShapeMismatch {
                    op: "forward_batch",
                    left: aggregates.shape(),
                    right: (self.input_dim(), self.output_dim()),
                },
            ));
        }
        out.resize_reuse(aggregates.rows(), self.output_dim());
        self.forward_block(
            self_prev.as_slice(),
            aggregates.as_slice(),
            aggregates.rows(),
            tmp,
            out.as_mut_slice(),
        )
    }

    /// Total memory attributable to this layer's parameters in bytes: the
    /// inline struct plus the **capacity** (not length) of every owned
    /// buffer, matching the [`Matrix::memory_bytes`] accounting convention.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.w_neigh.heap_bytes()
            + self.w_self.as_ref().map_or(0, Matrix::heap_bytes)
            + self.bias.capacity() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_dimensions() {
        assert!(GnnLayer::new(LayerKind::GraphConv, 0, 4, Activation::Relu, 0).is_err());
        assert!(GnnLayer::new(LayerKind::GraphConv, 4, 0, Activation::Relu, 0).is_err());
        let l = GnnLayer::new(LayerKind::GraphConv, 4, 8, Activation::Relu, 0).unwrap();
        assert_eq!(l.input_dim(), 4);
        assert_eq!(l.output_dim(), 8);
        assert_eq!(l.kind(), LayerKind::GraphConv);
        assert_eq!(l.activation(), Activation::Relu);
    }

    #[test]
    fn graphconv_ignores_self_embedding() {
        let l = GnnLayer::new(LayerKind::GraphConv, 3, 2, Activation::Identity, 1).unwrap();
        let agg = vec![1.0, 2.0, 3.0];
        let a = l.forward(&[0.0, 0.0, 0.0], &agg).unwrap();
        let b = l.forward(&[9.0, 9.0, 9.0], &agg).unwrap();
        assert_eq!(a, b);
        assert!(!l.depends_on_self());
    }

    #[test]
    fn sage_uses_self_embedding() {
        let l = GnnLayer::new(LayerKind::Sage, 3, 2, Activation::Identity, 1).unwrap();
        let agg = vec![1.0, 2.0, 3.0];
        let a = l.forward(&[0.0, 0.0, 0.0], &agg).unwrap();
        let b = l.forward(&[9.0, 9.0, 9.0], &agg).unwrap();
        assert_ne!(a, b);
        assert!(l.depends_on_self());
    }

    #[test]
    fn gin_scales_self_by_one_plus_epsilon() {
        let l = GnnLayer::new(LayerKind::Gin, 2, 2, Activation::Identity, 2).unwrap();
        assert!(l.depends_on_self());
        // GIN output is linear in (1+eps)*self + agg, so swapping "all weight
        // into self" vs "into agg" should differ exactly by the (1+eps) factor
        // before the linear map; verify via linearity.
        let zero = vec![0.0, 0.0];
        let e1 = vec![1.0, 0.0];
        let self_only = l.forward(&e1, &zero).unwrap();
        let agg_only = l.forward(&zero, &e1).unwrap();
        let bias_only = l.forward(&zero, &zero).unwrap();
        for i in 0..2 {
            let self_contrib = self_only[i] - bias_only[i];
            let agg_contrib = agg_only[i] - bias_only[i];
            assert!((self_contrib - (1.0 + GIN_EPSILON) * agg_contrib).abs() < 1e-5);
        }
    }

    #[test]
    fn forward_is_linear_in_aggregate_with_identity_activation() {
        for kind in [LayerKind::GraphConv, LayerKind::Sage, LayerKind::Gin] {
            let l = GnnLayer::new(kind, 3, 4, Activation::Identity, 5).unwrap();
            let self_prev = vec![0.5, -0.5, 1.0];
            let a = vec![1.0, 2.0, 3.0];
            let b = vec![-1.0, 0.5, 2.0];
            let sum: Vec<f32> = a.iter().zip(b.iter()).map(|(x, y)| x + y).collect();
            let fa = l.forward(&self_prev, &a).unwrap();
            let fb = l.forward(&self_prev, &b).unwrap();
            let fsum = l.forward(&self_prev, &sum).unwrap();
            let fzero = l.forward(&self_prev, &[0.0, 0.0, 0.0]).unwrap();
            // f(a) + f(b) - f(0) == f(a + b) when f is affine in the aggregate.
            for i in 0..4 {
                assert!(
                    (fa[i] + fb[i] - fzero[i] - fsum[i]).abs() < 1e-4,
                    "linearity violated for {kind}"
                );
            }
        }
    }

    #[test]
    fn relu_activation_clamps() {
        let l = GnnLayer::new(LayerKind::GraphConv, 2, 4, Activation::Relu, 3).unwrap();
        let out = l.forward(&[0.0, 0.0], &[-10.0, -10.0]).unwrap();
        assert!(out.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn deterministic_weights() {
        let a = GnnLayer::new(LayerKind::Sage, 4, 4, Activation::Relu, 9).unwrap();
        let b = GnnLayer::new(LayerKind::Sage, 4, 4, Activation::Relu, 9).unwrap();
        assert_eq!(a, b);
        let c = GnnLayer::new(LayerKind::Sage, 4, 4, Activation::Relu, 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn wrong_width_is_rejected() {
        let l = GnnLayer::new(LayerKind::GraphConv, 3, 2, Activation::Relu, 0).unwrap();
        assert!(l.forward(&[1.0, 2.0, 3.0], &[1.0]).is_err());
    }

    #[test]
    fn forward_block_rejects_wrong_widths_for_every_kind() {
        for kind in [LayerKind::GraphConv, LayerKind::Sage, LayerKind::Gin] {
            let l = GnnLayer::new(kind, 3, 2, Activation::Relu, 0).unwrap();
            let mut tmp = Matrix::default();
            let mut out = vec![0.0f32; 2 * 2];
            // Blocks of equal but wrong width (m=2, input_dim=3 needs len 6)
            // must come back as an error, never a panic.
            let bad = vec![0.0f32; 8];
            assert!(l.forward_block(&bad, &bad, 2, &mut tmp, &mut out).is_err());
            // Mismatched self/aggregate blocks are rejected for
            // self-dependent kinds.
            let good = vec![0.0f32; 6];
            let short = vec![0.0f32; 3];
            if l.depends_on_self() {
                assert!(l
                    .forward_block(&short, &good, 2, &mut tmp, &mut out)
                    .is_err());
            } else {
                assert!(l
                    .forward_block(&short, &good, 2, &mut tmp, &mut out)
                    .is_ok());
            }
        }
    }

    #[test]
    fn memory_and_display() {
        let l = GnnLayer::new(LayerKind::Sage, 8, 8, Activation::Relu, 0).unwrap();
        assert!(l.memory_bytes() > 8 * 8 * 4);
        assert_eq!(LayerKind::GraphConv.to_string(), "graph-conv");
        assert_eq!(LayerKind::Sage.to_string(), "sage");
        assert_eq!(LayerKind::Gin.to_string(), "gin");
    }
}
