//! A single GNN layer: the learnable `Update` function of Eqn. 2.
//!
//! Each layer owns its (deterministically initialised) weight matrices and
//! knows how to combine a vertex's own previous-layer embedding with the
//! finalized aggregate of its in-neighbours. The three families follow the
//! standard formulations:
//!
//! * **GraphConv** (GCN): `h_v = σ(W · x_v + b)` — depends only on the
//!   neighbourhood aggregate.
//! * **GraphSAGE**: `h_v = σ(W_self · h_v^{prev} + W_neigh · x_v + b)`.
//! * **GINConv**: `h_v = σ(W · ((1 + ε) · h_v^{prev} + x_v) + b)` with a
//!   fixed ε.
//!
//! The important property for Ripple is that each of these is *linear in the
//! aggregate* `x_v`, and whether it *also* depends on the vertex's own
//! previous-layer embedding ([`GnnLayer::depends_on_self`]) — that determines
//! which vertices join the affected set at the next hop.

use crate::{GnnError, Result};
use ripple_tensor::activation::Activation;
use ripple_tensor::{init, ops, Matrix};
use serde::{Deserialize, Serialize};

/// The model family a layer belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Graph Convolutional Network layer (Kipf & Welling).
    GraphConv,
    /// GraphSAGE layer (Hamilton et al.) with separate self and neighbour
    /// transforms.
    Sage,
    /// Graph Isomorphism Network layer (Xu et al.) with `(1+ε)` self scaling.
    Gin,
}

impl std::fmt::Display for LayerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            LayerKind::GraphConv => "graph-conv",
            LayerKind::Sage => "sage",
            LayerKind::Gin => "gin",
        };
        f.write_str(name)
    }
}

/// Fixed ε used by GIN layers (the paper trains ε; any fixed value preserves
/// the computation structure).
pub const GIN_EPSILON: f32 = 0.1;

/// One GNN layer with its weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GnnLayer {
    kind: LayerKind,
    /// Transform applied to the neighbourhood aggregate (and, for GIN, the
    /// combined self+aggregate vector).
    w_neigh: Matrix,
    /// Transform applied to the vertex's own previous-layer embedding
    /// (GraphSAGE only).
    w_self: Option<Matrix>,
    bias: Vec<f32>,
    activation: Activation,
}

impl GnnLayer {
    /// Creates a layer with deterministic Xavier-initialised weights.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidModelShape`] if either dimension is zero.
    pub fn new(
        kind: LayerKind,
        input_dim: usize,
        output_dim: usize,
        activation: Activation,
        seed: u64,
    ) -> Result<Self> {
        if input_dim == 0 || output_dim == 0 {
            return Err(GnnError::InvalidModelShape(format!(
                "layer dimensions must be positive, got {input_dim} -> {output_dim}"
            )));
        }
        let w_neigh = init::xavier_uniform(input_dim, output_dim, seed);
        let w_self = match kind {
            LayerKind::Sage => Some(init::xavier_uniform(input_dim, output_dim, seed ^ 0x5eed)),
            LayerKind::GraphConv | LayerKind::Gin => None,
        };
        let bias = init::uniform(1, output_dim, -0.05, 0.05, seed ^ 0xb1a5).into_flat();
        Ok(GnnLayer {
            kind,
            w_neigh,
            w_self,
            bias,
            activation,
        })
    }

    /// The model family of this layer.
    pub fn kind(&self) -> LayerKind {
        self.kind
    }

    /// Input (previous-layer) embedding width.
    pub fn input_dim(&self) -> usize {
        self.w_neigh.rows()
    }

    /// Output embedding width.
    pub fn output_dim(&self) -> usize {
        self.w_neigh.cols()
    }

    /// The activation applied to this layer's output.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Whether this layer's output for a vertex depends on that vertex's own
    /// previous-layer embedding (in addition to the aggregate).
    ///
    /// GraphSAGE and GIN do; GraphConv does not. The affected-set computation
    /// of both the recompute baseline and the incremental engine uses this to
    /// decide whether a vertex whose embedding changed at hop `l-1` must also
    /// be refreshed at hop `l` even when none of its in-neighbours changed.
    pub fn depends_on_self(&self) -> bool {
        matches!(self.kind, LayerKind::Sage | LayerKind::Gin)
    }

    /// Applies the layer's `Update` function to one vertex.
    ///
    /// `self_prev` is the vertex's own previous-layer embedding and
    /// `aggregate` is the finalized neighbourhood aggregate (see
    /// [`crate::Aggregator::finalize`]); both must have width
    /// [`Self::input_dim`].
    ///
    /// # Errors
    ///
    /// Returns a tensor shape error if the widths do not match.
    pub fn forward(&self, self_prev: &[f32], aggregate: &[f32]) -> Result<Vec<f32>> {
        let mut out = match self.kind {
            LayerKind::GraphConv => ops::row_matmul(aggregate, &self.w_neigh)?,
            LayerKind::Sage => {
                let mut o = ops::row_matmul(aggregate, &self.w_neigh)?;
                let self_part = ops::row_matmul(
                    self_prev,
                    self.w_self
                        .as_ref()
                        .expect("SAGE layer always has a self transform"),
                )?;
                ripple_tensor::add_assign(&mut o, &self_part);
                o
            }
            LayerKind::Gin => {
                let mut combined = aggregate.to_vec();
                ripple_tensor::axpy(&mut combined, 1.0 + GIN_EPSILON, self_prev);
                ops::row_matmul(&combined, &self.w_neigh)?
            }
        };
        ripple_tensor::add_assign(&mut out, &self.bias);
        self.activation.apply(&mut out);
        Ok(out)
    }

    /// Estimated heap memory of this layer's parameters in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.w_neigh.memory_bytes()
            + self.w_self.as_ref().map_or(0, Matrix::memory_bytes)
            + self.bias.capacity() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_dimensions() {
        assert!(GnnLayer::new(LayerKind::GraphConv, 0, 4, Activation::Relu, 0).is_err());
        assert!(GnnLayer::new(LayerKind::GraphConv, 4, 0, Activation::Relu, 0).is_err());
        let l = GnnLayer::new(LayerKind::GraphConv, 4, 8, Activation::Relu, 0).unwrap();
        assert_eq!(l.input_dim(), 4);
        assert_eq!(l.output_dim(), 8);
        assert_eq!(l.kind(), LayerKind::GraphConv);
        assert_eq!(l.activation(), Activation::Relu);
    }

    #[test]
    fn graphconv_ignores_self_embedding() {
        let l = GnnLayer::new(LayerKind::GraphConv, 3, 2, Activation::Identity, 1).unwrap();
        let agg = vec![1.0, 2.0, 3.0];
        let a = l.forward(&[0.0, 0.0, 0.0], &agg).unwrap();
        let b = l.forward(&[9.0, 9.0, 9.0], &agg).unwrap();
        assert_eq!(a, b);
        assert!(!l.depends_on_self());
    }

    #[test]
    fn sage_uses_self_embedding() {
        let l = GnnLayer::new(LayerKind::Sage, 3, 2, Activation::Identity, 1).unwrap();
        let agg = vec![1.0, 2.0, 3.0];
        let a = l.forward(&[0.0, 0.0, 0.0], &agg).unwrap();
        let b = l.forward(&[9.0, 9.0, 9.0], &agg).unwrap();
        assert_ne!(a, b);
        assert!(l.depends_on_self());
    }

    #[test]
    fn gin_scales_self_by_one_plus_epsilon() {
        let l = GnnLayer::new(LayerKind::Gin, 2, 2, Activation::Identity, 2).unwrap();
        assert!(l.depends_on_self());
        // GIN output is linear in (1+eps)*self + agg, so swapping "all weight
        // into self" vs "into agg" should differ exactly by the (1+eps) factor
        // before the linear map; verify via linearity.
        let zero = vec![0.0, 0.0];
        let e1 = vec![1.0, 0.0];
        let self_only = l.forward(&e1, &zero).unwrap();
        let agg_only = l.forward(&zero, &e1).unwrap();
        let bias_only = l.forward(&zero, &zero).unwrap();
        for i in 0..2 {
            let self_contrib = self_only[i] - bias_only[i];
            let agg_contrib = agg_only[i] - bias_only[i];
            assert!((self_contrib - (1.0 + GIN_EPSILON) * agg_contrib).abs() < 1e-5);
        }
    }

    #[test]
    fn forward_is_linear_in_aggregate_with_identity_activation() {
        for kind in [LayerKind::GraphConv, LayerKind::Sage, LayerKind::Gin] {
            let l = GnnLayer::new(kind, 3, 4, Activation::Identity, 5).unwrap();
            let self_prev = vec![0.5, -0.5, 1.0];
            let a = vec![1.0, 2.0, 3.0];
            let b = vec![-1.0, 0.5, 2.0];
            let sum: Vec<f32> = a.iter().zip(b.iter()).map(|(x, y)| x + y).collect();
            let fa = l.forward(&self_prev, &a).unwrap();
            let fb = l.forward(&self_prev, &b).unwrap();
            let fsum = l.forward(&self_prev, &sum).unwrap();
            let fzero = l.forward(&self_prev, &[0.0, 0.0, 0.0]).unwrap();
            // f(a) + f(b) - f(0) == f(a + b) when f is affine in the aggregate.
            for i in 0..4 {
                assert!(
                    (fa[i] + fb[i] - fzero[i] - fsum[i]).abs() < 1e-4,
                    "linearity violated for {kind}"
                );
            }
        }
    }

    #[test]
    fn relu_activation_clamps() {
        let l = GnnLayer::new(LayerKind::GraphConv, 2, 4, Activation::Relu, 3).unwrap();
        let out = l.forward(&[0.0, 0.0], &[-10.0, -10.0]).unwrap();
        assert!(out.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn deterministic_weights() {
        let a = GnnLayer::new(LayerKind::Sage, 4, 4, Activation::Relu, 9).unwrap();
        let b = GnnLayer::new(LayerKind::Sage, 4, 4, Activation::Relu, 9).unwrap();
        assert_eq!(a, b);
        let c = GnnLayer::new(LayerKind::Sage, 4, 4, Activation::Relu, 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn wrong_width_is_rejected() {
        let l = GnnLayer::new(LayerKind::GraphConv, 3, 2, Activation::Relu, 0).unwrap();
        assert!(l.forward(&[1.0, 2.0, 3.0], &[1.0]).is_err());
    }

    #[test]
    fn memory_and_display() {
        let l = GnnLayer::new(LayerKind::Sage, 8, 8, Activation::Relu, 0).unwrap();
        assert!(l.memory_bytes() > 8 * 8 * 4);
        assert_eq!(LayerKind::GraphConv.to_string(), "graph-conv");
        assert_eq!(LayerKind::Sage.to_string(), "sage");
        assert_eq!(LayerKind::Gin.to_string(), "gin");
    }
}
