//! Degree statistics, used to characterise synthetic datasets (Table 3) and
//! to sanity-check that generated graphs match their target density.

use crate::dynamic::DynamicGraph;
use crate::ids::VertexId;
use serde::{Deserialize, Serialize};

/// Summary statistics of a graph's in-degree distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of directed edges.
    pub num_edges: usize,
    /// Mean in-degree (`|E|/|V|`).
    pub avg_in_degree: f64,
    /// Largest in-degree.
    pub max_in_degree: usize,
    /// Largest out-degree.
    pub max_out_degree: usize,
    /// Median in-degree.
    pub median_in_degree: usize,
    /// Fraction of vertices with zero in-degree.
    pub isolated_fraction: f64,
}

impl DegreeStats {
    /// Computes degree statistics for a graph.
    pub fn compute(graph: &DynamicGraph) -> Self {
        let n = graph.num_vertices();
        if n == 0 {
            return DegreeStats {
                num_vertices: 0,
                num_edges: 0,
                avg_in_degree: 0.0,
                max_in_degree: 0,
                max_out_degree: 0,
                median_in_degree: 0,
                isolated_fraction: 0.0,
            };
        }
        let mut in_degrees: Vec<usize> = (0..n)
            .map(|v| graph.in_degree(VertexId(v as u32)))
            .collect();
        let max_out = (0..n)
            .map(|v| graph.out_degree(VertexId(v as u32)))
            .max()
            .unwrap_or(0);
        let isolated = in_degrees.iter().filter(|&&d| d == 0).count();
        in_degrees.sort_unstable();
        DegreeStats {
            num_vertices: n,
            num_edges: graph.num_edges(),
            avg_in_degree: graph.avg_in_degree(),
            max_in_degree: *in_degrees.last().unwrap(),
            max_out_degree: max_out,
            median_in_degree: in_degrees[n / 2],
            isolated_fraction: isolated as f64 / n as f64,
        }
    }
}

impl std::fmt::Display for DegreeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} avg-in={:.2} max-in={} max-out={} median-in={} isolated={:.1}%",
            self.num_vertices,
            self.num_edges,
            self.avg_in_degree,
            self.max_in_degree,
            self.max_out_degree,
            self.median_in_degree,
            self.isolated_fraction * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_star_graph() {
        // 4 leaves all pointing at vertex 0.
        let mut g = DynamicGraph::new(5, 1);
        for s in 1..5u32 {
            g.add_edge(VertexId(s), VertexId(0), 1.0).unwrap();
        }
        let stats = DegreeStats::compute(&g);
        assert_eq!(stats.num_vertices, 5);
        assert_eq!(stats.num_edges, 4);
        assert_eq!(stats.max_in_degree, 4);
        assert_eq!(stats.max_out_degree, 1);
        assert_eq!(stats.median_in_degree, 0);
        assert!((stats.avg_in_degree - 0.8).abs() < 1e-9);
        assert!((stats.isolated_fraction - 0.8).abs() < 1e-9);
    }

    #[test]
    fn stats_on_empty_graph() {
        let g = DynamicGraph::new(0, 0);
        let stats = DegreeStats::compute(&g);
        assert_eq!(stats.num_vertices, 0);
        assert_eq!(stats.avg_in_degree, 0.0);
    }

    #[test]
    fn display_contains_key_numbers() {
        let mut g = DynamicGraph::new(2, 1);
        g.add_edge(VertexId(0), VertexId(1), 1.0).unwrap();
        let s = DegreeStats::compute(&g).to_string();
        assert!(s.contains("|V|=2"));
        assert!(s.contains("|E|=1"));
    }
}
