//! Streaming graph updates and update batches.
//!
//! The paper supports three update kinds (§4.1): edge additions, edge
//! deletions and vertex feature changes. Updates arrive continuously and are
//! grouped into fixed-size [`UpdateBatch`]es before being applied; the batch
//! size is the main throughput/latency knob in the evaluation.

use crate::ids::VertexId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a streaming update, without its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UpdateKind {
    /// A directed edge was added.
    AddEdge,
    /// A directed edge was removed.
    DeleteEdge,
    /// A vertex's feature vector was replaced.
    UpdateFeature,
}

impl fmt::Display for UpdateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateKind::AddEdge => f.write_str("add-edge"),
            UpdateKind::DeleteEdge => f.write_str("delete-edge"),
            UpdateKind::UpdateFeature => f.write_str("update-feature"),
        }
    }
}

/// One streaming update to the graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GraphUpdate {
    /// Add a directed edge `src -> dst` with the given weight.
    AddEdge {
        /// Source (hop-0) vertex.
        src: VertexId,
        /// Destination (sink) vertex.
        dst: VertexId,
        /// Edge weight used by the `weighted sum` aggregator; 1.0 for
        /// unweighted graphs.
        weight: f32,
    },
    /// Remove the directed edge `src -> dst`.
    DeleteEdge {
        /// Source (hop-0) vertex.
        src: VertexId,
        /// Destination (sink) vertex.
        dst: VertexId,
    },
    /// Replace the feature vector of `vertex` with `features`.
    UpdateFeature {
        /// The vertex whose features change.
        vertex: VertexId,
        /// The new feature vector; must match the graph's feature width.
        features: Vec<f32>,
    },
}

impl GraphUpdate {
    /// Convenience constructor for an unweighted edge addition.
    pub fn add_edge(src: VertexId, dst: VertexId) -> Self {
        GraphUpdate::AddEdge {
            src,
            dst,
            weight: 1.0,
        }
    }

    /// Convenience constructor for a weighted edge addition.
    pub fn add_weighted_edge(src: VertexId, dst: VertexId, weight: f32) -> Self {
        GraphUpdate::AddEdge { src, dst, weight }
    }

    /// Convenience constructor for an edge deletion.
    pub fn delete_edge(src: VertexId, dst: VertexId) -> Self {
        GraphUpdate::DeleteEdge { src, dst }
    }

    /// Convenience constructor for a feature update.
    pub fn update_feature(vertex: VertexId, features: Vec<f32>) -> Self {
        GraphUpdate::UpdateFeature { vertex, features }
    }

    /// The kind of this update.
    pub fn kind(&self) -> UpdateKind {
        match self {
            GraphUpdate::AddEdge { .. } => UpdateKind::AddEdge,
            GraphUpdate::DeleteEdge { .. } => UpdateKind::DeleteEdge,
            GraphUpdate::UpdateFeature { .. } => UpdateKind::UpdateFeature,
        }
    }

    /// The hop-0 vertex of the update: the *source* vertex for edge updates
    /// and the updated vertex itself for feature updates. The distributed
    /// router assigns an update to the worker owning this vertex (§5.2).
    pub fn hop0_vertex(&self) -> VertexId {
        match self {
            GraphUpdate::AddEdge { src, .. } | GraphUpdate::DeleteEdge { src, .. } => *src,
            GraphUpdate::UpdateFeature { vertex, .. } => *vertex,
        }
    }

    /// The sink vertex of an edge update, or `None` for feature updates. The
    /// sink's owner receives a *no-compute* request in the distributed setup
    /// so it can mirror the topology change.
    pub fn sink_vertex(&self) -> Option<VertexId> {
        match self {
            GraphUpdate::AddEdge { dst, .. } | GraphUpdate::DeleteEdge { dst, .. } => Some(*dst),
            GraphUpdate::UpdateFeature { .. } => None,
        }
    }

    /// Approximate wire size of the update in bytes, used by the simulated
    /// network's byte accounting.
    pub fn wire_bytes(&self) -> usize {
        match self {
            GraphUpdate::AddEdge { .. } => 2 * 4 + 4,
            GraphUpdate::DeleteEdge { .. } => 2 * 4,
            GraphUpdate::UpdateFeature { features, .. } => 4 + 4 * features.len(),
        }
    }
}

impl fmt::Display for GraphUpdate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphUpdate::AddEdge { src, dst, weight } => {
                write!(f, "add-edge {src} -> {dst} (w={weight})")
            }
            GraphUpdate::DeleteEdge { src, dst } => write!(f, "delete-edge {src} -> {dst}"),
            GraphUpdate::UpdateFeature { vertex, features } => {
                write!(f, "update-feature {vertex} ({} dims)", features.len())
            }
        }
    }
}

/// A batch of streaming updates applied and propagated together.
///
/// Batching amortises per-batch overheads and is the throughput/latency
/// trade-off studied throughout the paper's evaluation (batch sizes 1, 10,
/// 100 and 1000).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UpdateBatch {
    updates: Vec<GraphUpdate>,
}

impl UpdateBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        UpdateBatch {
            updates: Vec::new(),
        }
    }

    /// Creates a batch from a vector of updates.
    pub fn from_updates(updates: Vec<GraphUpdate>) -> Self {
        UpdateBatch { updates }
    }

    /// Appends an update to the batch.
    pub fn push(&mut self, update: GraphUpdate) {
        self.updates.push(update);
    }

    /// Number of updates in the batch.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Returns `true` if the batch contains no updates.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Iterator over the updates in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &GraphUpdate> + '_ {
        self.updates.iter()
    }

    /// Borrow of the underlying updates.
    pub fn updates(&self) -> &[GraphUpdate] {
        &self.updates
    }

    /// Consumes the batch and returns its updates.
    pub fn into_updates(self) -> Vec<GraphUpdate> {
        self.updates
    }

    /// Counts of each update kind present in the batch.
    pub fn kind_counts(&self) -> (usize, usize, usize) {
        let mut adds = 0;
        let mut dels = 0;
        let mut feats = 0;
        for u in &self.updates {
            match u.kind() {
                UpdateKind::AddEdge => adds += 1,
                UpdateKind::DeleteEdge => dels += 1,
                UpdateKind::UpdateFeature => feats += 1,
            }
        }
        (adds, dels, feats)
    }

    /// Total approximate wire size of the batch in bytes.
    pub fn wire_bytes(&self) -> usize {
        self.updates.iter().map(GraphUpdate::wire_bytes).sum()
    }
}

impl FromIterator<GraphUpdate> for UpdateBatch {
    fn from_iter<T: IntoIterator<Item = GraphUpdate>>(iter: T) -> Self {
        UpdateBatch {
            updates: iter.into_iter().collect(),
        }
    }
}

impl Extend<GraphUpdate> for UpdateBatch {
    fn extend<T: IntoIterator<Item = GraphUpdate>>(&mut self, iter: T) {
        self.updates.extend(iter);
    }
}

impl IntoIterator for UpdateBatch {
    type Item = GraphUpdate;
    type IntoIter = std::vec::IntoIter<GraphUpdate>;

    fn into_iter(self) -> Self::IntoIter {
        self.updates.into_iter()
    }
}

impl<'a> IntoIterator for &'a UpdateBatch {
    type Item = &'a GraphUpdate;
    type IntoIter = std::slice::Iter<'a, GraphUpdate>;

    fn into_iter(self) -> Self::IntoIter {
        self.updates.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_kinds() {
        let a = GraphUpdate::add_edge(VertexId(0), VertexId(1));
        assert_eq!(a.kind(), UpdateKind::AddEdge);
        let d = GraphUpdate::delete_edge(VertexId(0), VertexId(1));
        assert_eq!(d.kind(), UpdateKind::DeleteEdge);
        let f = GraphUpdate::update_feature(VertexId(3), vec![1.0, 2.0]);
        assert_eq!(f.kind(), UpdateKind::UpdateFeature);
    }

    #[test]
    fn weighted_edge_keeps_weight() {
        if let GraphUpdate::AddEdge { weight, .. } =
            GraphUpdate::add_weighted_edge(VertexId(0), VertexId(1), 0.5)
        {
            assert_eq!(weight, 0.5);
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn hop0_and_sink_vertices() {
        let a = GraphUpdate::add_edge(VertexId(2), VertexId(7));
        assert_eq!(a.hop0_vertex(), VertexId(2));
        assert_eq!(a.sink_vertex(), Some(VertexId(7)));
        let f = GraphUpdate::update_feature(VertexId(5), vec![0.0]);
        assert_eq!(f.hop0_vertex(), VertexId(5));
        assert_eq!(f.sink_vertex(), None);
    }

    #[test]
    fn wire_bytes_scale_with_feature_width() {
        let small = GraphUpdate::update_feature(VertexId(0), vec![0.0; 4]);
        let large = GraphUpdate::update_feature(VertexId(0), vec![0.0; 128]);
        assert!(large.wire_bytes() > small.wire_bytes());
        assert!(GraphUpdate::add_edge(VertexId(0), VertexId(1)).wire_bytes() > 0);
        assert!(GraphUpdate::delete_edge(VertexId(0), VertexId(1)).wire_bytes() > 0);
    }

    #[test]
    fn batch_counts_kinds() {
        let batch: UpdateBatch = vec![
            GraphUpdate::add_edge(VertexId(0), VertexId(1)),
            GraphUpdate::add_edge(VertexId(1), VertexId(2)),
            GraphUpdate::delete_edge(VertexId(0), VertexId(1)),
            GraphUpdate::update_feature(VertexId(2), vec![1.0]),
        ]
        .into_iter()
        .collect();
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.kind_counts(), (2, 1, 1));
        assert!(!batch.is_empty());
    }

    #[test]
    fn batch_push_and_extend() {
        let mut b = UpdateBatch::new();
        assert!(b.is_empty());
        b.push(GraphUpdate::add_edge(VertexId(0), VertexId(1)));
        b.extend(vec![GraphUpdate::delete_edge(VertexId(1), VertexId(0))]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.iter().count(), 2);
        assert_eq!(b.clone().into_updates().len(), 2);
        assert_eq!((&b).into_iter().count(), 2);
        assert_eq!(b.into_iter().count(), 2);
    }

    #[test]
    fn display_strings() {
        assert!(GraphUpdate::add_edge(VertexId(0), VertexId(1))
            .to_string()
            .contains("add-edge"));
        assert!(GraphUpdate::delete_edge(VertexId(0), VertexId(1))
            .to_string()
            .contains("delete-edge"));
        assert!(GraphUpdate::update_feature(VertexId(0), vec![1.0])
            .to_string()
            .contains("update-feature"));
        assert_eq!(UpdateKind::AddEdge.to_string(), "add-edge");
        assert_eq!(UpdateKind::DeleteEdge.to_string(), "delete-edge");
        assert_eq!(UpdateKind::UpdateFeature.to_string(), "update-feature");
    }
}
