//! The experiment's update-stream protocol (paper §7.1.2).
//!
//! Starting from a fully generated graph, a random fraction of edges is held
//! out: the remaining graph is the *initial snapshot* on which embeddings are
//! bootstrapped, and the held-out edges are streamed back as **edge
//! additions**. Random snapshot edges are streamed as **deletions** and
//! random vertices receive **feature updates**. The three kinds are produced
//! in equal numbers (as in the paper's 90K-update streams) and shuffled into
//! one arrival order, then grouped into fixed-size batches.

use crate::dynamic::DynamicGraph;
use crate::ids::VertexId;
use crate::update::{GraphUpdate, UpdateBatch};
use crate::{GraphError, Result};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration of the update-stream builder.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Fraction of the full graph's edges held out of the snapshot and
    /// streamed back as additions (the paper uses 0.10 for single-machine
    /// datasets and 0.50 for Papers).
    pub holdout_fraction: f64,
    /// Total number of updates to generate across all three kinds.
    pub total_updates: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            holdout_fraction: 0.10,
            total_updates: 900,
            seed: 0,
        }
    }
}

/// The output of the stream builder: the initial snapshot and the shuffled
/// update stream to apply to it.
#[derive(Debug, Clone)]
pub struct StreamPlan {
    /// The initial graph snapshot (full graph minus held-out edges) on which
    /// embeddings are bootstrapped before streaming begins.
    pub snapshot: DynamicGraph,
    /// The shuffled stream of updates, applicable to `snapshot` in order.
    pub updates: Vec<GraphUpdate>,
}

impl StreamPlan {
    /// Groups the update stream into fixed-size batches (the last batch may
    /// be smaller).
    pub fn batches(&self, batch_size: usize) -> Vec<UpdateBatch> {
        into_batches(&self.updates, batch_size)
    }
}

/// Groups a slice of updates into fixed-size [`UpdateBatch`]es.
///
/// # Panics
///
/// Panics if `batch_size` is zero.
pub fn into_batches(updates: &[GraphUpdate], batch_size: usize) -> Vec<UpdateBatch> {
    assert!(batch_size > 0, "batch size must be positive");
    updates
        .chunks(batch_size)
        .map(|chunk| UpdateBatch::from_updates(chunk.to_vec()))
        .collect()
}

/// Builds the snapshot + update stream from a fully generated graph, per the
/// paper's §7.1.2 protocol.
///
/// # Errors
///
/// Returns [`GraphError::InvalidSpec`] if the graph has no edges, if the
/// holdout fraction is not in `[0, 1)`, or if more deletions are requested
/// than snapshot edges exist.
pub fn build_stream(full_graph: &DynamicGraph, config: &StreamConfig) -> Result<StreamPlan> {
    if full_graph.num_edges() == 0 {
        return Err(GraphError::InvalidSpec(
            "graph has no edges to stream".to_string(),
        ));
    }
    if !(0.0..1.0).contains(&config.holdout_fraction) {
        return Err(GraphError::InvalidSpec(format!(
            "holdout fraction {} must be in [0, 1)",
            config.holdout_fraction
        )));
    }
    let mut rng = SmallRng::seed_from_u64(config.seed);

    // Partition the full edge set into held-out (future additions) and
    // snapshot edges.
    let mut all_edges: Vec<(VertexId, VertexId, f32)> = full_graph.iter_edges().collect();
    all_edges.shuffle(&mut rng);
    let holdout_count = ((all_edges.len() as f64) * config.holdout_fraction).round() as usize;
    let (held_out, snapshot_edges) = all_edges.split_at(holdout_count);

    let snapshot = DynamicGraph::from_weighted_edges(
        full_graph.num_vertices(),
        full_graph.feature_dim(),
        snapshot_edges,
    )?;
    let mut snapshot = snapshot;
    snapshot.set_features(full_graph.features().clone())?;

    // Equal thirds of additions, deletions and feature updates, limited by
    // what is available.
    let per_kind = (config.total_updates / 3).max(1);
    let additions: Vec<GraphUpdate> = held_out
        .iter()
        .take(per_kind)
        .map(|&(s, d, w)| GraphUpdate::add_weighted_edge(s, d, w))
        .collect();

    let mut deletable: Vec<(VertexId, VertexId)> =
        snapshot_edges.iter().map(|&(s, d, _)| (s, d)).collect();
    deletable.shuffle(&mut rng);
    let deletions: Vec<GraphUpdate> = deletable
        .iter()
        .take(per_kind)
        .map(|&(s, d)| GraphUpdate::delete_edge(s, d))
        .collect();

    let feature_dim = full_graph.feature_dim();
    let feature_updates: Vec<GraphUpdate> = (0..per_kind)
        .map(|_| {
            let v = VertexId(rng.gen_range(0..full_graph.num_vertices() as u32));
            let features = ripple_tensor::init::feature_vector(feature_dim, rng.gen());
            GraphUpdate::update_feature(v, features)
        })
        .collect();

    let mut updates = Vec::with_capacity(additions.len() + deletions.len() + feature_updates.len());
    updates.extend(additions);
    updates.extend(deletions);
    updates.extend(feature_updates);
    updates.shuffle(&mut rng);

    // The shuffled order may delete an edge before an earlier-scheduled
    // deletion of the same edge would (duplicates are impossible because
    // deletions are drawn without replacement), but a deletion could still be
    // scheduled for an edge that an addition re-adds later. Both orders are
    // applicable because additions only use held-out edges (not in the
    // snapshot) and deletions only use snapshot edges.
    Ok(StreamPlan { snapshot, updates })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::DatasetSpec;
    use crate::update::UpdateKind;

    fn small_graph() -> DynamicGraph {
        DatasetSpec::custom(300, 6.0, 8, 4).generate(7).unwrap()
    }

    #[test]
    fn stream_is_applicable_in_order() {
        let full = small_graph();
        let plan = build_stream(
            &full,
            &StreamConfig {
                total_updates: 90,
                ..Default::default()
            },
        )
        .unwrap();
        let mut g = plan.snapshot.clone();
        for update in &plan.updates {
            g.apply(update).unwrap();
        }
    }

    #[test]
    fn holdout_removes_edges_from_snapshot() {
        let full = small_graph();
        let plan = build_stream(
            &full,
            &StreamConfig {
                holdout_fraction: 0.2,
                total_updates: 30,
                seed: 3,
            },
        )
        .unwrap();
        assert!(plan.snapshot.num_edges() < full.num_edges());
        let expected = (full.num_edges() as f64 * 0.8).round() as usize;
        assert!((plan.snapshot.num_edges() as i64 - expected as i64).abs() <= 1);
    }

    #[test]
    fn update_kinds_are_balanced() {
        let full = small_graph();
        let plan = build_stream(
            &full,
            &StreamConfig {
                total_updates: 90,
                ..Default::default()
            },
        )
        .unwrap();
        let batch = UpdateBatch::from_updates(plan.updates.clone());
        let (adds, dels, feats) = batch.kind_counts();
        assert_eq!(adds, 30);
        assert_eq!(dels, 30);
        assert_eq!(feats, 30);
    }

    #[test]
    fn additions_come_from_held_out_edges() {
        let full = small_graph();
        let plan = build_stream(
            &full,
            &StreamConfig {
                total_updates: 60,
                ..Default::default()
            },
        )
        .unwrap();
        for update in &plan.updates {
            if update.kind() == UpdateKind::AddEdge {
                if let GraphUpdate::AddEdge { src, dst, .. } = update {
                    assert!(
                        !plan.snapshot.has_edge(*src, *dst),
                        "added edge already in snapshot"
                    );
                    assert!(
                        full.has_edge(*src, *dst),
                        "added edge not part of the full graph"
                    );
                }
            }
        }
    }

    #[test]
    fn deletions_come_from_snapshot_edges() {
        let full = small_graph();
        let plan = build_stream(
            &full,
            &StreamConfig {
                total_updates: 60,
                ..Default::default()
            },
        )
        .unwrap();
        for update in &plan.updates {
            if let GraphUpdate::DeleteEdge { src, dst } = update {
                assert!(plan.snapshot.has_edge(*src, *dst));
            }
        }
    }

    #[test]
    fn feature_updates_match_width() {
        let full = small_graph();
        let plan = build_stream(
            &full,
            &StreamConfig {
                total_updates: 30,
                ..Default::default()
            },
        )
        .unwrap();
        for update in &plan.updates {
            if let GraphUpdate::UpdateFeature { features, .. } = update {
                assert_eq!(features.len(), full.feature_dim());
            }
        }
    }

    #[test]
    fn batching_groups_updates() {
        let full = small_graph();
        let plan = build_stream(
            &full,
            &StreamConfig {
                total_updates: 90,
                ..Default::default()
            },
        )
        .unwrap();
        let batches = plan.batches(25);
        assert_eq!(batches.len(), 4);
        assert_eq!(batches[0].len(), 25);
        assert_eq!(batches[3].len(), 15);
        let total: usize = batches.iter().map(UpdateBatch::len).sum();
        assert_eq!(total, 90);
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_panics() {
        into_batches(&[], 0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let full = small_graph();
        assert!(build_stream(
            &full,
            &StreamConfig {
                holdout_fraction: 1.5,
                ..Default::default()
            }
        )
        .is_err());
        let empty = DynamicGraph::new(10, 4);
        assert!(build_stream(&empty, &StreamConfig::default()).is_err());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let full = small_graph();
        let cfg = StreamConfig {
            total_updates: 30,
            seed: 5,
            ..Default::default()
        };
        let a = build_stream(&full, &cfg).unwrap();
        let b = build_stream(&full, &cfg).unwrap();
        assert_eq!(a.updates, b.updates);
    }
}
