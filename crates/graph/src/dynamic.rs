//! Mutable in-memory graph that absorbs streaming updates.
//!
//! [`DynamicGraph`] is the structure the paper calls its "lightweight edge
//! list structures": per-vertex in/out adjacency vectors that can apply an
//! edge addition/deletion or a feature change in (amortised) time
//! proportional to the degree of the endpoints, rather than rebuilding a CSR
//! as DGL does (which is what makes the DRC baseline slow at update time).

use crate::error::GraphError;
use crate::ids::VertexId;
use crate::update::{GraphUpdate, UpdateBatch};
use crate::{csr::CsrGraph, Result};
use ripple_tensor::Matrix;

/// A directed graph with per-vertex adjacency lists, per-edge weights and a
/// dense vertex feature table.
///
/// Vertices are dense ids `0..n`. Parallel edges are not allowed; edge
/// weights default to `1.0` and are only meaningful to the `weighted sum`
/// aggregator.
///
/// # Example
///
/// ```
/// use ripple_graph::{DynamicGraph, VertexId};
///
/// let mut g = DynamicGraph::new(3, 2);
/// g.add_edge(VertexId(0), VertexId(2), 1.0).unwrap();
/// g.add_edge(VertexId(1), VertexId(2), 1.0).unwrap();
/// assert_eq!(g.in_degree(VertexId(2)), 2);
/// assert_eq!(g.num_edges(), 2);
/// g.remove_edge(VertexId(0), VertexId(2)).unwrap();
/// assert_eq!(g.in_degree(VertexId(2)), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicGraph {
    /// Out-neighbour lists: `out[u]` holds the sinks of edges leaving `u`.
    out: Vec<Vec<VertexId>>,
    /// Weights parallel to `out`.
    out_weights: Vec<Vec<f32>>,
    /// In-neighbour lists: `inn[v]` holds the sources of edges entering `v`.
    inn: Vec<Vec<VertexId>>,
    /// Weights parallel to `inn`.
    in_weights: Vec<Vec<f32>>,
    /// Dense `n x f` vertex feature table.
    features: Matrix,
    /// Number of directed edges currently in the graph.
    num_edges: usize,
}

impl DynamicGraph {
    /// Creates a graph with `num_vertices` isolated vertices and zeroed
    /// features of width `feature_dim`.
    pub fn new(num_vertices: usize, feature_dim: usize) -> Self {
        DynamicGraph {
            out: vec![Vec::new(); num_vertices],
            out_weights: vec![Vec::new(); num_vertices],
            inn: vec![Vec::new(); num_vertices],
            in_weights: vec![Vec::new(); num_vertices],
            features: Matrix::zeros(num_vertices, feature_dim),
            num_edges: 0,
        }
    }

    /// Creates a graph from an edge list. Duplicate edges are silently
    /// ignored (the first occurrence wins), mirroring how the synthetic
    /// generators deduplicate.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownVertex`] if an edge references a vertex
    /// `>= num_vertices`.
    pub fn from_edges(
        num_vertices: usize,
        feature_dim: usize,
        edges: &[(VertexId, VertexId)],
    ) -> Result<Self> {
        let mut g = DynamicGraph::new(num_vertices, feature_dim);
        for &(src, dst) in edges {
            match g.add_edge(src, dst, 1.0) {
                Ok(()) | Err(GraphError::DuplicateEdge { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(g)
    }

    /// Creates a graph from an edge list with explicit per-edge weights.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownVertex`] if an edge references a vertex
    /// `>= num_vertices`.
    pub fn from_weighted_edges(
        num_vertices: usize,
        feature_dim: usize,
        edges: &[(VertexId, VertexId, f32)],
    ) -> Result<Self> {
        let mut g = DynamicGraph::new(num_vertices, feature_dim);
        for &(src, dst, w) in edges {
            match g.add_edge(src, dst, w) {
                Ok(()) | Err(GraphError::DuplicateEdge { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(g)
    }

    /// Reassembles a graph from exact per-vertex adjacency lists — the
    /// checkpoint-restore constructor.
    ///
    /// Replaying `add_edge`/`remove_edge` cannot reproduce an arbitrary
    /// graph state: `remove_edge` uses `swap_remove`, so the *order* of a
    /// vertex's adjacency lists depends on the whole mutation history, and
    /// that order determines float accumulation order downstream. Restoring
    /// bit-identical state therefore requires both adjacency orders
    /// verbatim, which is what this constructor accepts.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidSpec`] if list lengths disagree,
    /// [`GraphError::UnknownVertex`] if a neighbour id is out of range,
    /// [`GraphError::DuplicateEdge`] if an out-list repeats a sink, or
    /// [`GraphError::MissingEdge`] if the in- and out-lists do not describe
    /// the same edge set (including weights, compared bit-for-bit).
    pub fn from_adjacency(
        out: Vec<Vec<VertexId>>,
        out_weights: Vec<Vec<f32>>,
        inn: Vec<Vec<VertexId>>,
        in_weights: Vec<Vec<f32>>,
        features: Matrix,
    ) -> Result<Self> {
        let n = out.len();
        if out_weights.len() != n || inn.len() != n || in_weights.len() != n {
            return Err(GraphError::InvalidSpec(format!(
                "adjacency table lengths disagree: out {n}, out_weights {}, in {}, in_weights {}",
                out_weights.len(),
                inn.len(),
                in_weights.len()
            )));
        }
        if features.rows() != n {
            return Err(GraphError::FeatureWidthMismatch {
                expected: n,
                found: features.rows(),
            });
        }
        let check_lists = |ids: &[Vec<VertexId>], ws: &[Vec<f32>]| -> Result<usize> {
            let mut edges = 0;
            for (u, (vs, weights)) in ids.iter().zip(ws).enumerate() {
                if vs.len() != weights.len() {
                    return Err(GraphError::InvalidSpec(format!(
                        "vertex {u}: {} neighbours but {} weights",
                        vs.len(),
                        weights.len()
                    )));
                }
                for (i, &v) in vs.iter().enumerate() {
                    if v.index() >= n {
                        return Err(GraphError::UnknownVertex {
                            vertex: v,
                            num_vertices: n,
                        });
                    }
                    if vs[..i].contains(&v) {
                        return Err(GraphError::DuplicateEdge {
                            src: VertexId(u as u32),
                            dst: v,
                        });
                    }
                }
                edges += vs.len();
            }
            Ok(edges)
        };
        let num_edges = check_lists(&out, &out_weights)?;
        let in_edges = check_lists(&inn, &in_weights)?;
        if in_edges != num_edges {
            return Err(GraphError::InvalidSpec(format!(
                "out lists hold {num_edges} edges but in lists hold {in_edges}"
            )));
        }
        // Cross-check: every out-edge u -> v must appear in v's in-list with
        // a bit-identical weight (and the counts already match, so the edge
        // sets are equal).
        for (u, (vs, weights)) in out.iter().zip(&out_weights).enumerate() {
            for (&v, &w) in vs.iter().zip(weights) {
                let src = VertexId(u as u32);
                let matched = inn[v.index()]
                    .iter()
                    .zip(&in_weights[v.index()])
                    .any(|(&s, &iw)| s == src && iw.to_bits() == w.to_bits());
                if !matched {
                    return Err(GraphError::MissingEdge { src, dst: v });
                }
            }
        }
        Ok(DynamicGraph {
            out,
            out_weights,
            inn,
            in_weights,
            features,
            num_edges,
        })
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.out.len()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Width of the vertex feature vectors.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// Returns `true` if `v` is a valid vertex id for this graph.
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        v.index() < self.num_vertices()
    }

    fn check_vertex(&self, v: VertexId) -> Result<()> {
        if !self.contains_vertex(v) {
            return Err(GraphError::UnknownVertex {
                vertex: v,
                num_vertices: self.num_vertices(),
            });
        }
        Ok(())
    }

    /// Out-neighbours of `u` (sinks of edges leaving `u`), in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a vertex of the graph.
    pub fn out_neighbors(&self, u: VertexId) -> &[VertexId] {
        &self.out[u.index()]
    }

    /// Weights of the out-edges of `u`, parallel to [`Self::out_neighbors`].
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a vertex of the graph.
    pub fn out_weights(&self, u: VertexId) -> &[f32] {
        &self.out_weights[u.index()]
    }

    /// In-neighbours of `v` (sources of edges entering `v`), in insertion
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of the graph.
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.inn[v.index()]
    }

    /// Weights of the in-edges of `v`, parallel to [`Self::in_neighbors`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of the graph.
    pub fn in_weights(&self, v: VertexId) -> &[f32] {
        &self.in_weights[v.index()]
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.inn[v.index()].len()
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: VertexId) -> usize {
        self.out[u.index()].len()
    }

    /// Returns `true` if the edge `u -> v` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.contains_vertex(u) && self.out[u.index()].contains(&v)
    }

    /// Returns the weight of edge `u -> v`, if it exists.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<f32> {
        if !self.contains_vertex(u) {
            return None;
        }
        self.out[u.index()]
            .iter()
            .position(|&x| x == v)
            .map(|pos| self.out_weights[u.index()][pos])
    }

    /// Adds the directed edge `u -> v` with the given weight.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownVertex`] if either endpoint does not
    /// exist, or [`GraphError::DuplicateEdge`] if the edge is already present.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, weight: f32) -> Result<()> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if self.has_edge(u, v) {
            return Err(GraphError::DuplicateEdge { src: u, dst: v });
        }
        self.out[u.index()].push(v);
        self.out_weights[u.index()].push(weight);
        self.inn[v.index()].push(u);
        self.in_weights[v.index()].push(weight);
        self.num_edges += 1;
        Ok(())
    }

    /// Removes the directed edge `u -> v`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownVertex`] if either endpoint does not
    /// exist, or [`GraphError::MissingEdge`] if the edge is not present.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<()> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        let out_pos = self.out[u.index()]
            .iter()
            .position(|&x| x == v)
            .ok_or(GraphError::MissingEdge { src: u, dst: v })?;
        self.out[u.index()].swap_remove(out_pos);
        self.out_weights[u.index()].swap_remove(out_pos);
        let in_pos = self.inn[v.index()]
            .iter()
            .position(|&x| x == u)
            .expect("in/out adjacency lists out of sync");
        self.inn[v.index()].swap_remove(in_pos);
        self.in_weights[v.index()].swap_remove(in_pos);
        self.num_edges -= 1;
        Ok(())
    }

    /// Borrow of the whole feature table (`n x f`).
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Replaces the whole feature table.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::FeatureWidthMismatch`] if the new table does not
    /// have one row per vertex (width may differ, e.g. when re-featurising a
    /// synthetic graph).
    pub fn set_features(&mut self, features: Matrix) -> Result<()> {
        if features.rows() != self.num_vertices() {
            return Err(GraphError::FeatureWidthMismatch {
                expected: self.num_vertices(),
                found: features.rows(),
            });
        }
        self.features = features;
        Ok(())
    }

    /// Feature vector of one vertex.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of the graph.
    pub fn feature(&self, v: VertexId) -> &[f32] {
        self.features.row(v.index())
    }

    /// Replaces the feature vector of one vertex.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownVertex`] if `v` does not exist or
    /// [`GraphError::FeatureWidthMismatch`] if the width differs from the
    /// graph's feature dimension.
    pub fn set_feature(&mut self, v: VertexId, values: &[f32]) -> Result<()> {
        self.check_vertex(v)?;
        if values.len() != self.feature_dim() {
            return Err(GraphError::FeatureWidthMismatch {
                expected: self.feature_dim(),
                found: values.len(),
            });
        }
        self.features
            .set_row(v.index(), values)
            .expect("validated dimensions");
        Ok(())
    }

    /// Applies a single streaming update to the topology/features.
    ///
    /// # Errors
    ///
    /// Propagates the same errors as [`Self::add_edge`], [`Self::remove_edge`]
    /// and [`Self::set_feature`].
    pub fn apply(&mut self, update: &GraphUpdate) -> Result<()> {
        match update {
            GraphUpdate::AddEdge { src, dst, weight } => self.add_edge(*src, *dst, *weight),
            GraphUpdate::DeleteEdge { src, dst } => self.remove_edge(*src, *dst),
            GraphUpdate::UpdateFeature { vertex, features } => self.set_feature(*vertex, features),
        }
    }

    /// Applies every update in a batch, stopping at the first error.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`Self::apply`]; earlier updates in
    /// the batch remain applied.
    pub fn apply_batch(&mut self, batch: &UpdateBatch) -> Result<()> {
        for update in batch {
            self.apply(update)?;
        }
        Ok(())
    }

    /// Iterator over all directed edges as `(src, dst, weight)` triples.
    pub fn iter_edges(&self) -> impl Iterator<Item = (VertexId, VertexId, f32)> + '_ {
        self.out.iter().enumerate().flat_map(move |(u, outs)| {
            outs.iter()
                .zip(self.out_weights[u].iter())
                .map(move |(&v, &w)| (VertexId(u as u32), v, w))
        })
    }

    /// Average in-degree (`|E| / |V|`), the key density statistic the paper
    /// reports per dataset (Table 3).
    pub fn avg_in_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            return 0.0;
        }
        self.num_edges as f64 / self.num_vertices() as f64
    }

    /// Builds an immutable CSR snapshot of the current topology.
    pub fn to_csr(&self) -> CsrGraph {
        CsrGraph::from_dynamic(self)
    }

    /// Estimated heap memory used by adjacency lists and features, in bytes.
    pub fn memory_bytes(&self) -> usize {
        let adj: usize = self
            .out
            .iter()
            .chain(self.inn.iter())
            .map(|v| v.capacity() * std::mem::size_of::<VertexId>())
            .sum();
        let w: usize = self
            .out_weights
            .iter()
            .chain(self.in_weights.iter())
            .map(|v| v.capacity() * std::mem::size_of::<f32>())
            .sum();
        adj + w + self.features.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> DynamicGraph {
        let mut g = DynamicGraph::new(3, 2);
        g.add_edge(VertexId(0), VertexId(1), 1.0).unwrap();
        g.add_edge(VertexId(1), VertexId(2), 1.0).unwrap();
        g.add_edge(VertexId(2), VertexId(0), 1.0).unwrap();
        g
    }

    #[test]
    fn new_graph_is_empty() {
        let g = DynamicGraph::new(5, 3);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.feature_dim(), 3);
        assert_eq!(g.avg_in_degree(), 0.0);
    }

    #[test]
    fn add_and_remove_edges_keeps_adjacency_consistent() {
        let mut g = triangle();
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(!g.has_edge(VertexId(1), VertexId(0)));
        assert_eq!(g.in_neighbors(VertexId(1)), &[VertexId(0)]);
        assert_eq!(g.out_neighbors(VertexId(1)), &[VertexId(2)]);

        g.remove_edge(VertexId(0), VertexId(1)).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(!g.has_edge(VertexId(0), VertexId(1)));
        assert!(g.in_neighbors(VertexId(1)).is_empty());
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut g = triangle();
        let err = g.add_edge(VertexId(0), VertexId(1), 1.0).unwrap_err();
        assert!(matches!(err, GraphError::DuplicateEdge { .. }));
    }

    #[test]
    fn missing_edge_rejected() {
        let mut g = triangle();
        let err = g.remove_edge(VertexId(1), VertexId(0)).unwrap_err();
        assert!(matches!(err, GraphError::MissingEdge { .. }));
    }

    #[test]
    fn unknown_vertex_rejected() {
        let mut g = triangle();
        assert!(g.add_edge(VertexId(0), VertexId(9), 1.0).is_err());
        assert!(g.remove_edge(VertexId(9), VertexId(0)).is_err());
        assert!(g.set_feature(VertexId(9), &[0.0, 0.0]).is_err());
    }

    #[test]
    fn edge_weights_are_tracked() {
        let mut g = DynamicGraph::new(2, 1);
        g.add_edge(VertexId(0), VertexId(1), 0.25).unwrap();
        assert_eq!(g.edge_weight(VertexId(0), VertexId(1)), Some(0.25));
        assert_eq!(g.edge_weight(VertexId(1), VertexId(0)), None);
        assert_eq!(g.in_weights(VertexId(1)), &[0.25]);
        assert_eq!(g.out_weights(VertexId(0)), &[0.25]);
    }

    #[test]
    fn features_set_and_get() {
        let mut g = DynamicGraph::new(2, 3);
        g.set_feature(VertexId(1), &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(g.feature(VertexId(1)), &[1.0, 2.0, 3.0]);
        assert!(g.set_feature(VertexId(1), &[1.0]).is_err());
    }

    #[test]
    fn apply_updates() {
        let mut g = DynamicGraph::new(3, 2);
        let batch = UpdateBatch::from_updates(vec![
            GraphUpdate::add_edge(VertexId(0), VertexId(1)),
            GraphUpdate::add_edge(VertexId(1), VertexId(2)),
            GraphUpdate::update_feature(VertexId(2), vec![5.0, 6.0]),
            GraphUpdate::delete_edge(VertexId(0), VertexId(1)),
        ]);
        g.apply_batch(&batch).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.feature(VertexId(2)), &[5.0, 6.0]);
    }

    #[test]
    fn from_edges_ignores_duplicates() {
        let edges = vec![
            (VertexId(0), VertexId(1)),
            (VertexId(0), VertexId(1)),
            (VertexId(1), VertexId(2)),
        ];
        let g = DynamicGraph::from_edges(3, 1, &edges).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn from_weighted_edges_keeps_weights() {
        let g =
            DynamicGraph::from_weighted_edges(2, 1, &[(VertexId(0), VertexId(1), 2.5)]).unwrap();
        assert_eq!(g.edge_weight(VertexId(0), VertexId(1)), Some(2.5));
    }

    #[test]
    fn iter_edges_covers_everything() {
        let g = triangle();
        let edges: Vec<_> = g.iter_edges().collect();
        assert_eq!(edges.len(), 3);
        assert!(edges.contains(&(VertexId(2), VertexId(0), 1.0)));
    }

    #[test]
    fn avg_in_degree_matches_edge_count() {
        let g = triangle();
        assert!((g.avg_in_degree() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn set_features_validates_row_count() {
        let mut g = DynamicGraph::new(3, 2);
        assert!(g.set_features(Matrix::zeros(2, 2)).is_err());
        assert!(g.set_features(Matrix::zeros(3, 5)).is_ok());
        assert_eq!(g.feature_dim(), 5);
    }

    #[test]
    fn memory_bytes_nonzero_after_edges() {
        let g = triangle();
        assert!(g.memory_bytes() > 0);
    }

    /// Drives a graph through adds and swap_remove deletions, then rebuilds
    /// it from its own adjacency lists: the restored graph must be equal
    /// field-for-field (PartialEq covers list *order*, which edge-replay
    /// could not reproduce).
    #[test]
    fn from_adjacency_round_trips_swap_removed_order() {
        let mut g = DynamicGraph::new(4, 2);
        for (u, v) in [(0, 1), (0, 2), (0, 3), (2, 1), (3, 1), (1, 0)] {
            g.add_edge(VertexId(u), VertexId(v), (u + v) as f32 * 0.5)
                .unwrap();
        }
        g.remove_edge(VertexId(0), VertexId(1)).unwrap(); // swap_remove reorders 0's out-list
        g.remove_edge(VertexId(2), VertexId(1)).unwrap(); // ... and 1's in-list
        g.set_feature(VertexId(2), &[7.0, -1.5]).unwrap();
        let rebuilt = DynamicGraph::from_adjacency(
            (0..4)
                .map(|u| g.out_neighbors(VertexId(u)).to_vec())
                .collect(),
            (0..4)
                .map(|u| g.out_weights(VertexId(u)).to_vec())
                .collect(),
            (0..4)
                .map(|v| g.in_neighbors(VertexId(v)).to_vec())
                .collect(),
            (0..4).map(|v| g.in_weights(VertexId(v)).to_vec()).collect(),
            g.features().clone(),
        )
        .unwrap();
        assert_eq!(rebuilt, g);
        assert_eq!(rebuilt.num_edges(), g.num_edges());
    }

    #[test]
    fn from_adjacency_rejects_inconsistent_lists() {
        let features = Matrix::zeros(2, 1);
        // In-list missing the edge recorded in the out-list.
        let err = DynamicGraph::from_adjacency(
            vec![vec![VertexId(1)], vec![]],
            vec![vec![1.0], vec![]],
            vec![vec![], vec![]],
            vec![vec![], vec![]],
            features.clone(),
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::InvalidSpec(_)));
        // Same edge count, but the in-list claims a different weight.
        let err = DynamicGraph::from_adjacency(
            vec![vec![VertexId(1)], vec![]],
            vec![vec![1.0], vec![]],
            vec![vec![], vec![VertexId(0)]],
            vec![vec![], vec![2.0]],
            features.clone(),
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::MissingEdge { .. }));
        // Duplicate sink in an out-list.
        let err = DynamicGraph::from_adjacency(
            vec![vec![VertexId(1), VertexId(1)], vec![]],
            vec![vec![1.0, 1.0], vec![]],
            vec![vec![], vec![VertexId(0), VertexId(0)]],
            vec![vec![], vec![1.0, 1.0]],
            features.clone(),
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::DuplicateEdge { .. }));
        // Out-of-range neighbour id.
        let err = DynamicGraph::from_adjacency(
            vec![vec![VertexId(7)], vec![]],
            vec![vec![1.0], vec![]],
            vec![vec![], vec![]],
            vec![vec![], vec![]],
            features,
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::UnknownVertex { .. }));
    }
}
