//! Dynamic graph substrate for the Ripple streaming-GNN reproduction.
//!
//! The paper evaluates on OGB datasets (Arxiv, Reddit, Products, Papers)
//! streamed as edge additions, edge deletions and vertex-feature updates.
//! Those datasets and a METIS partitioner are not available here, so this
//! crate provides everything the paper's pipeline needs, built from scratch:
//!
//! * [`DynamicGraph`] — an in-memory directed graph with per-vertex in/out
//!   adjacency lists, optional edge weights and a dense feature table, able to
//!   absorb streaming [`GraphUpdate`]s cheaply (the paper's "lightweight edge
//!   list structures").
//! * [`CsrGraph`] — an immutable CSR snapshot used by the full layer-wise
//!   inference pass that bootstraps embeddings before updates start streaming.
//! * [`GraphView`] / [`CsrSnapshot`] — the read-only adjacency trait the
//!   whole compute spine streams through, and the epoch-versioned CSR + delta
//!   overlay (with incremental compaction) the engines keep hot instead of
//!   walking the dynamic lists per batch.
//! * [`synth`] — seeded power-law graph generators and [`synth::DatasetSpec`]s
//!   that mimic the paper's datasets (same average in-degree, feature width
//!   and class count, at a configurable scale).
//! * [`stream`] — the experiment protocol of §7.1.2: hold out a fraction of
//!   edges as future additions, pick deletions and feature updates, shuffle,
//!   and batch.
//! * [`partition`] — balanced edge-cut-minimising partitioners (hash, LDG
//!   greedy, BFS region growing) plus halo-vertex computation, standing in
//!   for METIS/DistDGL.
//! * [`bfs`] — L-hop forward neighbourhoods used to reason about which
//!   vertices an update can affect.
//!
//! # Example
//!
//! ```
//! use ripple_graph::{DynamicGraph, GraphUpdate, VertexId};
//!
//! let mut g = DynamicGraph::new(4, 8);
//! g.apply(&GraphUpdate::add_edge(VertexId(0), VertexId(1))).unwrap();
//! g.apply(&GraphUpdate::add_edge(VertexId(2), VertexId(1))).unwrap();
//! assert_eq!(g.in_degree(VertexId(1)), 2);
//! assert_eq!(g.out_neighbors(VertexId(0)), &[VertexId(1)]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bfs;
pub mod csr;
pub mod degree;
pub mod dynamic;
pub mod error;
pub mod ids;
pub mod partition;
pub mod snapshot;
pub mod stream;
pub mod synth;
pub mod update;
pub mod view;

pub use csr::CsrGraph;
pub use dynamic::DynamicGraph;
pub use error::GraphError;
pub use ids::{PartitionId, VertexId};
pub use snapshot::{CompactionPolicy, CompactionStats, CsrSnapshot};
pub use update::{GraphUpdate, UpdateBatch, UpdateKind};
pub use view::GraphView;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
