//! Error type for graph operations.

use crate::ids::VertexId;
use std::fmt;

/// Errors produced by graph construction, mutation and partitioning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex id referenced by an operation does not exist in the graph.
    UnknownVertex {
        /// The offending vertex.
        vertex: VertexId,
        /// Current number of vertices.
        num_vertices: usize,
    },
    /// An edge that was expected to exist (e.g. for deletion) was not found.
    MissingEdge {
        /// Source of the edge.
        src: VertexId,
        /// Destination of the edge.
        dst: VertexId,
    },
    /// An edge that must not already exist (e.g. for addition) was found.
    DuplicateEdge {
        /// Source of the edge.
        src: VertexId,
        /// Destination of the edge.
        dst: VertexId,
    },
    /// A feature vector had the wrong width for the graph's feature table.
    FeatureWidthMismatch {
        /// Expected width (graph feature dimension).
        expected: usize,
        /// Provided width.
        found: usize,
    },
    /// A partitioning request was invalid (e.g. zero parts).
    InvalidPartitioning(String),
    /// A dataset/generator specification was invalid.
    InvalidSpec(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownVertex {
                vertex,
                num_vertices,
            } => {
                write!(
                    f,
                    "unknown vertex {vertex} (graph has {num_vertices} vertices)"
                )
            }
            GraphError::MissingEdge { src, dst } => {
                write!(f, "edge {src} -> {dst} does not exist")
            }
            GraphError::DuplicateEdge { src, dst } => {
                write!(f, "edge {src} -> {dst} already exists")
            }
            GraphError::FeatureWidthMismatch { expected, found } => {
                write!(
                    f,
                    "feature width mismatch: expected {expected}, found {found}"
                )
            }
            GraphError::InvalidPartitioning(msg) => write!(f, "invalid partitioning: {msg}"),
            GraphError::InvalidSpec(msg) => write!(f, "invalid dataset spec: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_vertex() {
        let e = GraphError::UnknownVertex {
            vertex: VertexId(9),
            num_vertices: 5,
        };
        assert!(e.to_string().contains("v9"));
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn display_edge_errors() {
        let m = GraphError::MissingEdge {
            src: VertexId(1),
            dst: VertexId(2),
        };
        assert!(m.to_string().contains("does not exist"));
        let d = GraphError::DuplicateEdge {
            src: VertexId(1),
            dst: VertexId(2),
        };
        assert!(d.to_string().contains("already exists"));
    }

    #[test]
    fn display_feature_mismatch() {
        let e = GraphError::FeatureWidthMismatch {
            expected: 8,
            found: 4,
        };
        assert!(e.to_string().contains("expected 8"));
    }

    #[test]
    fn display_invalid_partitioning_and_spec() {
        assert!(GraphError::InvalidPartitioning("zero parts".into())
            .to_string()
            .contains("zero parts"));
        assert!(GraphError::InvalidSpec("bad".into())
            .to_string()
            .contains("bad"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
