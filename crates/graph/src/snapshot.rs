//! Epoch-versioned CSR topology snapshot with a mutable delta overlay.
//!
//! The engines stream adjacency constantly (aggregation pulls in-neighbour
//! slices, delta fanout walks out-neighbour slices) but mutate it rarely — a
//! handful of edges per update batch. [`CsrSnapshot`] exploits that skew: it
//! keeps an immutable [`CsrGraph`] base whose index/weight arrays are two
//! flat streams, plus a small per-vertex **overlay** holding the fully
//! materialised adjacency rows of only the vertices touched since the last
//! compaction. Reads resolve in O(1) to either a contiguous base slice (the
//! common case, prefetch-friendly) or an overlay row; writes touch only the
//! two endpoint rows. A size/ratio-triggered **incremental compaction**
//! splices the overlay rows back into the base arrays, bulk-copying the
//! clean spans between dirty vertices instead of re-walking every vertex the
//! way a full `to_csr()` rebuild does.
//!
//! # Bit-parity contract
//!
//! Overlay rows start as verbatim copies of the base row and then replay
//! exactly [`DynamicGraph`]'s mutation semantics — additions push to the
//! back, deletions `swap_remove` at the matched position. A snapshot built
//! from a graph and fed the same update sequence therefore keeps every
//! vertex's neighbour/weight order **identical** to the dynamic lists at all
//! times (compaction only re-homes rows, never reorders them), which is what
//! lets the engines swap the dynamic walk for the CSR stream without
//! changing a single accumulated float.
//!
//! # Epochs
//!
//! The snapshot carries a monotonically increasing **topology epoch** that
//! owners bump once per absorbed update batch ([`CsrSnapshot::advance_epoch`]).
//! The serving layer publishes it next to the embedding epoch so readers can
//! tell how fresh the topology behind their answers is.

use crate::csr::CsrGraph;
use crate::dynamic::DynamicGraph;
use crate::error::GraphError;
use crate::ids::VertexId;
use crate::update::GraphUpdate;
use crate::view::GraphView;
use crate::Result;
use std::collections::HashMap;

/// One materialised adjacency row of the overlay (targets + parallel
/// weights), in the same order the matching [`DynamicGraph`] list would be.
#[derive(Debug, Clone, Default)]
struct AdjRow {
    targets: Vec<VertexId>,
    weights: Vec<f32>,
}

/// When the overlay folds back into the base CSR arrays.
///
/// Compaction triggers when **either** bound is crossed: the overlay holds
/// more than `max_dirty_rows` materialised rows (memory bound), or the
/// absorbed edge churn exceeds `max_churn_ratio` of the base edge count
/// (staleness bound — past that point enough rows have left the contiguous
/// stream that the snapshot loses its prefetch advantage).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionPolicy {
    /// Overlay row cap (in-rows plus out-rows) before a compaction runs.
    pub max_dirty_rows: usize,
    /// Edge churn (additions + deletions since the last compaction) allowed
    /// as a fraction of the base edge count before a compaction runs.
    pub max_churn_ratio: f64,
    /// Absolute floor of the churn trigger, so small graphs do not compact
    /// after every single edge change.
    pub min_churn: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            max_dirty_rows: 1024,
            max_churn_ratio: 0.25,
            min_churn: 64,
        }
    }
}

impl CompactionPolicy {
    /// A policy that compacts after every `churn` absorbed edge changes —
    /// used by tests to force frequent compaction boundaries.
    pub fn every_churn(churn: usize) -> Self {
        CompactionPolicy {
            max_dirty_rows: usize::MAX,
            max_churn_ratio: 0.0,
            min_churn: churn.max(1),
        }
    }

    /// The churn count at which a compaction triggers for a base of
    /// `base_edges` edges.
    fn churn_bound(&self, base_edges: usize) -> usize {
        let ratio_bound = base_edges as f64 * self.max_churn_ratio;
        let ratio_bound = if ratio_bound.is_finite() {
            ratio_bound as usize
        } else {
            usize::MAX
        };
        ratio_bound.max(self.min_churn).max(1)
    }
}

/// Counters describing the snapshot's compaction behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Compactions performed over the snapshot's lifetime.
    pub compactions: u64,
    /// Dirty adjacency rows spliced back into the base arrays across all
    /// compactions (clean spans between them are bulk-copied, not rebuilt).
    pub rows_spliced: u64,
}

/// An epoch-versioned CSR topology snapshot: immutable [`CsrGraph`] base +
/// per-vertex overlay of rows touched since the last compaction.
///
/// # Example
///
/// ```
/// use ripple_graph::{CsrSnapshot, DynamicGraph, GraphView, VertexId};
///
/// let mut g = DynamicGraph::new(3, 1);
/// g.add_edge(VertexId(0), VertexId(2), 1.0).unwrap();
/// let mut snap = CsrSnapshot::from_dynamic(&g);
///
/// // Mutations keep the view in lockstep with the dynamic lists.
/// g.add_edge(VertexId(1), VertexId(2), 1.0).unwrap();
/// snap.add_edge(VertexId(1), VertexId(2), 1.0).unwrap();
/// assert_eq!(snap.in_neighbors(VertexId(2)), g.in_neighbors(VertexId(2)));
///
/// snap.compact();
/// assert_eq!(snap.in_neighbors(VertexId(2)), g.in_neighbors(VertexId(2)));
/// ```
#[derive(Debug, Clone)]
pub struct CsrSnapshot {
    base: CsrGraph,
    /// Materialised in-rows of vertices whose in-adjacency changed.
    in_overlay: HashMap<u32, AdjRow>,
    /// Materialised out-rows of vertices whose out-adjacency changed.
    out_overlay: HashMap<u32, AdjRow>,
    /// Live edge count (base ± overlay delta).
    num_edges: usize,
    /// Edge additions + deletions absorbed since the last compaction.
    churn: usize,
    epoch: u64,
    policy: CompactionPolicy,
    stats: CompactionStats,
    /// Reusable sorted-dirty-vertex scratch for compaction.
    dirty_scratch: Vec<u32>,
}

impl CsrSnapshot {
    /// Builds a snapshot of a dynamic graph's current topology with the
    /// default [`CompactionPolicy`].
    pub fn from_dynamic(g: &DynamicGraph) -> Self {
        CsrSnapshot::with_policy(g, CompactionPolicy::default())
    }

    /// Builds a snapshot of a dynamic graph at a given topology epoch — the
    /// checkpoint-restore constructor. The freshly compacted snapshot reads
    /// bit-identically to one that *reached* `epoch` incrementally (the
    /// bit-parity contract pins reads, not internal overlay state), so
    /// recovery can rebuild the topology from a restored [`DynamicGraph`]
    /// and resume the epoch sequence where the crashed process left off.
    pub fn from_dynamic_at(g: &DynamicGraph, epoch: u64) -> Self {
        let mut snap = CsrSnapshot::from_dynamic(g);
        snap.epoch = epoch;
        snap
    }

    /// Builds a snapshot with an explicit compaction policy.
    pub fn with_policy(g: &DynamicGraph, policy: CompactionPolicy) -> Self {
        let base = CsrGraph::from_dynamic(g);
        let num_edges = base.num_edges();
        CsrSnapshot {
            base,
            in_overlay: HashMap::new(),
            out_overlay: HashMap::new(),
            num_edges,
            churn: 0,
            epoch: 0,
            policy,
            stats: CompactionStats::default(),
            dirty_scratch: Vec::new(),
        }
    }

    /// The immutable CSR base (reflects the state as of the last
    /// compaction, not overlay rows absorbed since).
    pub fn base(&self) -> &CsrGraph {
        &self.base
    }

    /// The current topology epoch (bumped by [`CsrSnapshot::advance_epoch`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Bumps and returns the topology epoch. The engines call this once per
    /// absorbed update batch.
    pub fn advance_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Number of materialised overlay rows (in-rows + out-rows).
    pub fn overlay_rows(&self) -> usize {
        self.in_overlay.len() + self.out_overlay.len()
    }

    /// Edge churn absorbed since the last compaction.
    pub fn pending_churn(&self) -> usize {
        self.churn
    }

    /// Lifetime compaction counters.
    pub fn compaction_stats(&self) -> CompactionStats {
        self.stats
    }

    /// The active compaction policy.
    pub fn policy(&self) -> CompactionPolicy {
        self.policy
    }

    /// Returns `true` if the edge `u -> v` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.contains_vertex(u) && self.out_neighbors(u).contains(&v)
    }

    /// Returns the weight of edge `u -> v`, if it exists.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<f32> {
        if !self.contains_vertex(u) {
            return None;
        }
        let targets = self.out_neighbors(u);
        targets
            .iter()
            .position(|&x| x == v)
            .map(|pos| self.out_weights(u)[pos])
    }

    fn check_vertex(&self, v: VertexId) -> Result<()> {
        if !self.contains_vertex(v) {
            return Err(GraphError::UnknownVertex {
                vertex: v,
                num_vertices: self.num_vertices(),
            });
        }
        Ok(())
    }

    /// Adds the directed edge `u -> v`, mirroring
    /// [`DynamicGraph::add_edge`]'s semantics (push to the back of both
    /// endpoint rows).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownVertex`] if either endpoint does not
    /// exist, or [`GraphError::DuplicateEdge`] if the edge is already
    /// present.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, weight: f32) -> Result<()> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if self.has_edge(u, v) {
            return Err(GraphError::DuplicateEdge { src: u, dst: v });
        }
        let out_row = materialize(&mut self.out_overlay, &self.base, u, Side::Out);
        out_row.targets.push(v);
        out_row.weights.push(weight);
        let in_row = materialize(&mut self.in_overlay, &self.base, v, Side::In);
        in_row.targets.push(u);
        in_row.weights.push(weight);
        self.num_edges += 1;
        self.churn += 1;
        Ok(())
    }

    /// Removes the directed edge `u -> v`, mirroring
    /// [`DynamicGraph::remove_edge`]'s semantics (`swap_remove` at the
    /// matched position in both endpoint rows).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownVertex`] if either endpoint does not
    /// exist, or [`GraphError::MissingEdge`] if the edge is not present.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Result<()> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        // Validate against the read view *before* materialising overlay
        // rows: a failed remove must leave the overlay untouched, or
        // repeated failures would bloat it with verbatim row copies.
        if !self.has_edge(u, v) {
            return Err(GraphError::MissingEdge { src: u, dst: v });
        }
        let out_row = materialize(&mut self.out_overlay, &self.base, u, Side::Out);
        let out_pos = out_row
            .targets
            .iter()
            .position(|&x| x == v)
            .expect("edge vanished between has_edge check and removal");
        out_row.targets.swap_remove(out_pos);
        out_row.weights.swap_remove(out_pos);
        let in_row = materialize(&mut self.in_overlay, &self.base, v, Side::In);
        let in_pos = in_row
            .targets
            .iter()
            .position(|&x| x == u)
            .expect("in/out overlay rows out of sync");
        in_row.targets.swap_remove(in_pos);
        in_row.weights.swap_remove(in_pos);
        self.num_edges -= 1;
        self.churn += 1;
        Ok(())
    }

    /// Applies the topology part of a streaming update (feature updates do
    /// not touch adjacency and are ignored).
    ///
    /// # Errors
    ///
    /// Propagates the same errors as [`CsrSnapshot::add_edge`] and
    /// [`CsrSnapshot::remove_edge`].
    pub fn apply(&mut self, update: &GraphUpdate) -> Result<()> {
        match update {
            GraphUpdate::AddEdge { src, dst, weight } => self.add_edge(*src, *dst, *weight),
            GraphUpdate::DeleteEdge { src, dst } => self.remove_edge(*src, *dst),
            GraphUpdate::UpdateFeature { .. } => Ok(()),
        }
    }

    /// Compacts if the policy's size or churn bound has been crossed.
    /// Returns `true` if a compaction ran.
    pub fn maybe_compact(&mut self) -> bool {
        let over_rows = self.overlay_rows() > self.policy.max_dirty_rows;
        let over_churn =
            self.churn > 0 && self.churn >= self.policy.churn_bound(self.base.num_edges());
        if over_rows || over_churn {
            self.compact();
            true
        } else {
            false
        }
    }

    /// Folds every overlay row back into the base CSR arrays. Clean spans
    /// between dirty vertices are bulk-copied; only the dirty rows are
    /// spliced. A no-op when the overlay is empty.
    pub fn compact(&mut self) {
        if self.in_overlay.is_empty() && self.out_overlay.is_empty() {
            return;
        }
        let spliced = (self.in_overlay.len() + self.out_overlay.len()) as u64;
        let n = self.base.num_vertices;
        compact_side(
            &mut self.base.in_offsets,
            &mut self.base.in_targets,
            &mut self.base.in_weights,
            &mut self.in_overlay,
            &mut self.dirty_scratch,
            n,
        );
        compact_side(
            &mut self.base.out_offsets,
            &mut self.base.out_targets,
            &mut self.base.out_weights,
            &mut self.out_overlay,
            &mut self.dirty_scratch,
            n,
        );
        self.base.num_edges = self.num_edges;
        self.churn = 0;
        self.stats.compactions += 1;
        self.stats.rows_spliced += spliced;
        debug_assert_eq!(self.base.in_targets.len(), self.num_edges);
        debug_assert_eq!(self.base.out_targets.len(), self.num_edges);
    }

    /// Estimated heap bytes held by the base arrays, the overlay rows and
    /// the compaction scratch.
    pub fn heap_bytes(&self) -> usize {
        let overlay: usize = self
            .in_overlay
            .values()
            .chain(self.out_overlay.values())
            .map(|row| {
                row.targets.capacity() * std::mem::size_of::<VertexId>()
                    + row.weights.capacity() * std::mem::size_of::<f32>()
            })
            .sum();
        self.base.heap_bytes()
            + overlay
            + self.dirty_scratch.capacity() * std::mem::size_of::<u32>()
    }
}

/// Which orientation a row belongs to (selects the base slices to clone on
/// first touch).
#[derive(Clone, Copy)]
enum Side {
    In,
    Out,
}

/// Returns the overlay row for `v`, materialising it from the base CSR on
/// first touch (verbatim copy — order preserved).
fn materialize<'a>(
    overlay: &'a mut HashMap<u32, AdjRow>,
    base: &CsrGraph,
    v: VertexId,
    side: Side,
) -> &'a mut AdjRow {
    overlay.entry(v.0).or_insert_with(|| {
        let (targets, weights) = match side {
            Side::In => (base.in_neighbors(v), base.in_edge_weights(v)),
            Side::Out => (base.out_neighbors(v), base.out_edge_weights(v)),
        };
        AdjRow {
            targets: targets.to_vec(),
            weights: weights.to_vec(),
        }
    })
}

/// Splices one orientation's overlay rows into its CSR arrays: walks the
/// dirty vertices in ascending order, bulk-copies every clean span between
/// them and emits the overlay rows in their place, rewriting offsets with
/// the accumulated length shift.
fn compact_side(
    offsets: &mut Vec<usize>,
    targets: &mut Vec<VertexId>,
    weights: &mut Vec<f32>,
    overlay: &mut HashMap<u32, AdjRow>,
    dirty_scratch: &mut Vec<u32>,
    num_vertices: usize,
) {
    if overlay.is_empty() {
        return;
    }
    dirty_scratch.clear();
    dirty_scratch.extend(overlay.keys().copied());
    dirty_scratch.sort_unstable();

    let delta: isize = dirty_scratch
        .iter()
        .map(|&d| {
            let di = d as usize;
            let old_len = offsets[di + 1] - offsets[di];
            overlay[&d].targets.len() as isize - old_len as isize
        })
        .sum();
    let new_len = (targets.len() as isize + delta) as usize;

    let mut new_offsets = Vec::with_capacity(num_vertices + 1);
    let mut new_targets: Vec<VertexId> = Vec::with_capacity(new_len);
    let mut new_weights: Vec<f32> = Vec::with_capacity(new_len);
    new_offsets.push(0);

    let mut shift: isize = 0;
    let mut next = 0usize; // first vertex not yet emitted
    for &d in dirty_scratch.iter() {
        let di = d as usize;
        // Clean span [next, di): one bulk copy of targets/weights, offsets
        // shifted by the running delta.
        if di > next {
            let span = offsets[next]..offsets[di];
            new_targets.extend_from_slice(&targets[span.clone()]);
            new_weights.extend_from_slice(&weights[span]);
            for v in next..di {
                new_offsets.push((offsets[v + 1] as isize + shift) as usize);
            }
        }
        // Dirty vertex: splice the overlay row.
        let row = &overlay[&d];
        new_targets.extend_from_slice(&row.targets);
        new_weights.extend_from_slice(&row.weights);
        let old_len = offsets[di + 1] - offsets[di];
        shift += row.targets.len() as isize - old_len as isize;
        new_offsets.push((offsets[di + 1] as isize + shift) as usize);
        next = di + 1;
    }
    // Tail span after the last dirty vertex.
    if next < num_vertices {
        let span = offsets[next]..offsets[num_vertices];
        new_targets.extend_from_slice(&targets[span.clone()]);
        new_weights.extend_from_slice(&weights[span]);
        for v in next..num_vertices {
            new_offsets.push((offsets[v + 1] as isize + shift) as usize);
        }
    }
    debug_assert_eq!(new_targets.len(), new_len);
    debug_assert_eq!(new_offsets.len(), num_vertices + 1);

    *offsets = new_offsets;
    *targets = new_targets;
    *weights = new_weights;
    overlay.clear();
}

impl GraphView for CsrSnapshot {
    fn num_vertices(&self) -> usize {
        self.base.num_vertices
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        match self.in_overlay.get(&v.0) {
            Some(row) => &row.targets,
            None => self.base.in_neighbors(v),
        }
    }

    fn in_weights(&self, v: VertexId) -> &[f32] {
        match self.in_overlay.get(&v.0) {
            Some(row) => &row.weights,
            None => self.base.in_edge_weights(v),
        }
    }

    fn out_neighbors(&self, u: VertexId) -> &[VertexId] {
        match self.out_overlay.get(&u.0) {
            Some(row) => &row.targets,
            None => self.base.out_neighbors(u),
        }
    }

    fn out_weights(&self, u: VertexId) -> &[f32] {
        match self.out_overlay.get(&u.0) {
            Some(row) => &row.weights,
            None => self.base.out_edge_weights(u),
        }
    }

    fn in_adjacency(&self, v: VertexId) -> (&[VertexId], &[f32]) {
        // One overlay probe covers both slices.
        match self.in_overlay.get(&v.0) {
            Some(row) => (&row.targets, &row.weights),
            None => self.base.in_adjacency(v),
        }
    }

    fn out_adjacency(&self, u: VertexId) -> (&[VertexId], &[f32]) {
        match self.out_overlay.get(&u.0) {
            Some(row) => (&row.targets, &row.weights),
            None => self.base.out_adjacency(u),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DynamicGraph {
        let mut g = DynamicGraph::new(5, 1);
        g.add_edge(VertexId(0), VertexId(1), 1.0).unwrap();
        g.add_edge(VertexId(0), VertexId(2), 2.0).unwrap();
        g.add_edge(VertexId(3), VertexId(2), 3.0).unwrap();
        g.add_edge(VertexId(2), VertexId(1), 4.0).unwrap();
        g
    }

    fn assert_matches(snap: &CsrSnapshot, g: &DynamicGraph) {
        assert_eq!(snap.num_vertices(), g.num_vertices());
        assert_eq!(GraphView::num_edges(snap), g.num_edges());
        for v in 0..g.num_vertices() as u32 {
            let vid = VertexId(v);
            assert_eq!(snap.in_neighbors(vid), g.in_neighbors(vid), "in of {vid}");
            assert_eq!(snap.in_weights(vid), g.in_weights(vid), "in-w of {vid}");
            assert_eq!(
                snap.out_neighbors(vid),
                g.out_neighbors(vid),
                "out of {vid}"
            );
            assert_eq!(snap.out_weights(vid), g.out_weights(vid), "out-w of {vid}");
        }
    }

    #[test]
    fn fresh_snapshot_mirrors_the_graph() {
        let g = sample();
        let snap = CsrSnapshot::from_dynamic(&g);
        assert_matches(&snap, &g);
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.overlay_rows(), 0);
    }

    #[test]
    fn overlay_tracks_adds_and_removes_in_dynamic_order() {
        let mut g = sample();
        let mut snap = CsrSnapshot::from_dynamic(&g);

        g.add_edge(VertexId(4), VertexId(2), 5.0).unwrap();
        snap.add_edge(VertexId(4), VertexId(2), 5.0).unwrap();
        assert_matches(&snap, &g);

        // swap_remove reorders — both sides must reorder identically.
        g.remove_edge(VertexId(0), VertexId(2)).unwrap();
        snap.remove_edge(VertexId(0), VertexId(2)).unwrap();
        assert_matches(&snap, &g);
        assert!(snap.overlay_rows() > 0);
        assert_eq!(snap.pending_churn(), 2);

        snap.compact();
        assert_matches(&snap, &g);
        assert_eq!(snap.overlay_rows(), 0);
        assert_eq!(snap.pending_churn(), 0);
        assert_eq!(snap.compaction_stats().compactions, 1);
        assert!(snap.compaction_stats().rows_spliced >= 2);

        // Mutations keep working after a compaction.
        g.add_edge(VertexId(1), VertexId(0), 6.0).unwrap();
        snap.add_edge(VertexId(1), VertexId(0), 6.0).unwrap();
        assert_matches(&snap, &g);
    }

    #[test]
    fn errors_mirror_dynamic_graph_semantics() {
        let mut snap = CsrSnapshot::from_dynamic(&sample());
        assert!(matches!(
            snap.add_edge(VertexId(0), VertexId(1), 1.0),
            Err(GraphError::DuplicateEdge { .. })
        ));
        assert!(matches!(
            snap.remove_edge(VertexId(1), VertexId(0)),
            Err(GraphError::MissingEdge { .. })
        ));
        assert!(matches!(
            snap.add_edge(VertexId(0), VertexId(9), 1.0),
            Err(GraphError::UnknownVertex { .. })
        ));
        // Failed mutations leave nothing behind — no churn and, just as
        // important, no materialised overlay rows.
        assert_eq!(snap.pending_churn(), 0);
        assert_eq!(snap.overlay_rows(), 0);
    }

    #[test]
    fn apply_routes_updates_and_ignores_features() {
        let mut g = sample();
        let mut snap = CsrSnapshot::from_dynamic(&g);
        let updates = vec![
            GraphUpdate::add_weighted_edge(VertexId(4), VertexId(0), 0.5),
            GraphUpdate::update_feature(VertexId(1), vec![9.0]),
            GraphUpdate::delete_edge(VertexId(2), VertexId(1)),
        ];
        for u in &updates {
            g.apply(u).unwrap();
            snap.apply(u).unwrap();
        }
        assert_matches(&snap, &g);
    }

    #[test]
    fn churn_policy_triggers_compaction() {
        let g = sample();
        let mut snap = CsrSnapshot::with_policy(&g, CompactionPolicy::every_churn(2));
        assert!(!snap.maybe_compact(), "no pending churn");
        snap.add_edge(VertexId(4), VertexId(0), 1.0).unwrap();
        assert!(!snap.maybe_compact(), "one change under the bound");
        snap.add_edge(VertexId(4), VertexId(1), 1.0).unwrap();
        assert!(snap.maybe_compact(), "bound crossed");
        assert_eq!(snap.overlay_rows(), 0);
        assert_eq!(snap.compaction_stats().compactions, 1);
    }

    #[test]
    fn row_cap_policy_triggers_compaction() {
        let g = DynamicGraph::new(10, 1);
        let mut snap = CsrSnapshot::with_policy(
            &g,
            CompactionPolicy {
                max_dirty_rows: 3,
                max_churn_ratio: f64::INFINITY,
                min_churn: usize::MAX,
            },
        );
        snap.add_edge(VertexId(0), VertexId(1), 1.0).unwrap();
        assert!(!snap.maybe_compact(), "2 overlay rows under the cap");
        snap.add_edge(VertexId(2), VertexId(3), 1.0).unwrap();
        assert!(snap.maybe_compact(), "4 overlay rows over the cap");
    }

    #[test]
    fn epoch_advances_monotonically() {
        let mut snap = CsrSnapshot::from_dynamic(&sample());
        assert_eq!(snap.advance_epoch(), 1);
        assert_eq!(snap.advance_epoch(), 2);
        assert_eq!(snap.epoch(), 2);
    }

    #[test]
    fn edge_queries_cover_base_and_overlay() {
        let mut snap = CsrSnapshot::from_dynamic(&sample());
        assert!(snap.has_edge(VertexId(0), VertexId(1)));
        assert_eq!(snap.edge_weight(VertexId(3), VertexId(2)), Some(3.0));
        snap.add_edge(VertexId(4), VertexId(3), 7.5).unwrap();
        assert_eq!(snap.edge_weight(VertexId(4), VertexId(3)), Some(7.5));
        assert_eq!(snap.edge_weight(VertexId(3), VertexId(4)), None);
        assert_eq!(snap.edge_weight(VertexId(9), VertexId(0)), None);
    }

    #[test]
    fn heap_bytes_accounts_for_overlay() {
        let mut snap = CsrSnapshot::from_dynamic(&sample());
        let before = snap.heap_bytes();
        snap.add_edge(VertexId(4), VertexId(0), 1.0).unwrap();
        assert!(snap.heap_bytes() > before);
    }

    #[test]
    fn long_random_churn_stays_in_lockstep_across_compactions() {
        // Deterministic pseudo-random add/delete churn with compactions at
        // fixed boundaries; the view must match the dynamic lists bit for
        // bit at every step.
        let mut g = DynamicGraph::new(12, 1);
        let mut snap = CsrSnapshot::from_dynamic(&g);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..400 {
            let u = VertexId((next() % 12) as u32);
            let v = VertexId((next() % 12) as u32);
            if u == v {
                continue;
            }
            if g.has_edge(u, v) {
                g.remove_edge(u, v).unwrap();
                snap.remove_edge(u, v).unwrap();
            } else {
                let w = (next() % 7) as f32 + 0.5;
                g.add_edge(u, v, w).unwrap();
                snap.add_edge(u, v, w).unwrap();
            }
            if step % 37 == 0 {
                snap.compact();
            }
            assert_matches(&snap, &g);
        }
        assert!(snap.compaction_stats().compactions >= 10);
    }
}
