//! Halo (boundary replica) computation, mirroring DistDGL's halo vertices.
//!
//! Each worker owns the embeddings of its *local* vertices. When a local
//! vertex's embedding changes, messages must reach its out-neighbours — some
//! of which live on other workers. Rather than addressing remote vertices
//! directly, each worker keeps a *stub mailbox* for every remote vertex that
//! is an out-neighbour of one of its local vertices (an **outgoing halo**),
//! fills those stubs during the compute phase, and ships them to the owning
//! worker during the communication phase of each BSP superstep (§5.3).

use super::Partitioning;
use crate::dynamic::DynamicGraph;
use crate::ids::{PartitionId, VertexId};
use std::collections::{BTreeMap, BTreeSet};

/// Halo information for every partition of a partitioned graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HaloInfo {
    /// For each partition `p`: the remote vertices that local vertices of `p`
    /// have out-edges to, grouped by the partition that owns them.
    outgoing: Vec<BTreeMap<PartitionId, BTreeSet<VertexId>>>,
    /// For each partition `p`: the remote vertices with out-edges *into* `p`
    /// (the paper replicates these so the local topology is complete).
    incoming: Vec<BTreeSet<VertexId>>,
}

impl HaloInfo {
    /// Computes halo sets for every partition.
    pub fn compute(graph: &DynamicGraph, partitioning: &Partitioning) -> Self {
        let k = partitioning.num_parts();
        let mut outgoing: Vec<BTreeMap<PartitionId, BTreeSet<VertexId>>> = vec![BTreeMap::new(); k];
        let mut incoming: Vec<BTreeSet<VertexId>> = vec![BTreeSet::new(); k];
        for (src, dst, _w) in graph.iter_edges() {
            let ps = partitioning.part_of(src);
            let pd = partitioning.part_of(dst);
            if ps != pd {
                outgoing[ps.index()].entry(pd).or_default().insert(dst);
                incoming[pd.index()].insert(src);
            }
        }
        HaloInfo { outgoing, incoming }
    }

    /// Remote out-neighbour stubs of partition `p`, grouped by owning
    /// partition. These are the vertices `p` must send mailbox messages for.
    pub fn outgoing_halos(&self, p: PartitionId) -> &BTreeMap<PartitionId, BTreeSet<VertexId>> {
        &self.outgoing[p.index()]
    }

    /// Remote vertices with edges into partition `p` (replicated topology
    /// stubs).
    pub fn incoming_halos(&self, p: PartitionId) -> &BTreeSet<VertexId> {
        &self.incoming[p.index()]
    }

    /// Total number of outgoing halo stubs of partition `p` across all remote
    /// partitions.
    pub fn outgoing_halo_count(&self, p: PartitionId) -> usize {
        self.outgoing[p.index()].values().map(BTreeSet::len).sum()
    }

    /// Total number of halo replicas across all partitions — a proxy for the
    /// replication memory overhead of the distributed deployment.
    pub fn total_halo_replicas(&self) -> usize {
        self.outgoing
            .iter()
            .map(|m| m.values().map(BTreeSet::len).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{HashPartitioner, LdgPartitioner, Partitioner};
    use crate::synth::DatasetSpec;

    fn two_part_line() -> (DynamicGraph, Partitioning) {
        // 0 -> 1 -> 2 -> 3, split 0,1 | 2,3.
        let mut g = DynamicGraph::new(4, 1);
        for i in 0..3u32 {
            g.add_edge(VertexId(i), VertexId(i + 1), 1.0).unwrap();
        }
        let p = Partitioning::from_assignment(
            vec![
                PartitionId(0),
                PartitionId(0),
                PartitionId(1),
                PartitionId(1),
            ],
            2,
        )
        .unwrap();
        (g, p)
    }

    #[test]
    fn halos_on_split_line() {
        let (g, p) = two_part_line();
        let halos = HaloInfo::compute(&g, &p);
        // Partition 0 has the cut edge 1 -> 2, so vertex 2 is an outgoing halo
        // of partition 0 owned by partition 1.
        let out0 = halos.outgoing_halos(PartitionId(0));
        assert_eq!(out0.len(), 1);
        assert!(out0[&PartitionId(1)].contains(&VertexId(2)));
        assert_eq!(halos.outgoing_halo_count(PartitionId(0)), 1);
        // Partition 1 has no outgoing cut edges.
        assert!(halos.outgoing_halos(PartitionId(1)).is_empty());
        // Partition 1 sees vertex 1 as an incoming halo.
        assert!(halos.incoming_halos(PartitionId(1)).contains(&VertexId(1)));
        assert!(halos.incoming_halos(PartitionId(0)).is_empty());
        assert_eq!(halos.total_halo_replicas(), 1);
    }

    #[test]
    fn no_halos_for_single_partition() {
        let g = DatasetSpec::custom(50, 4.0, 2, 2).generate(0).unwrap();
        let p = LdgPartitioner::new().partition(&g, 1).unwrap();
        let halos = HaloInfo::compute(&g, &p);
        assert_eq!(halos.total_halo_replicas(), 0);
    }

    #[test]
    fn halo_count_tracks_edge_cut() {
        let g = DatasetSpec::custom(200, 6.0, 2, 2).generate(5).unwrap();
        let hash = HashPartitioner::new().partition(&g, 4).unwrap();
        let ldg = LdgPartitioner::new().partition(&g, 4).unwrap();
        let hash_halos = HaloInfo::compute(&g, &hash).total_halo_replicas();
        let ldg_halos = HaloInfo::compute(&g, &ldg).total_halo_replicas();
        // Halo replicas are bounded above by the edge cut (duplicate sinks collapse).
        assert!(hash_halos <= hash.edge_cut(&g));
        assert!(ldg_halos <= ldg.edge_cut(&g));
    }

    #[test]
    fn every_outgoing_halo_is_remote() {
        let g = DatasetSpec::custom(120, 5.0, 2, 2).generate(9).unwrap();
        let p = LdgPartitioner::new().partition(&g, 3).unwrap();
        let halos = HaloInfo::compute(&g, &p);
        for part in 0..3u32 {
            let pid = PartitionId(part);
            for (owner, verts) in halos.outgoing_halos(pid) {
                assert_ne!(*owner, pid);
                for v in verts {
                    assert_eq!(p.part_of(*v), *owner);
                }
            }
        }
    }
}
