//! Linear Deterministic Greedy (LDG) streaming partitioner.

use super::{validate_num_parts, Partitioner, Partitioning};
use crate::dynamic::DynamicGraph;
use crate::ids::{PartitionId, VertexId};
use crate::Result;

/// The LDG streaming partitioner (Stanton & Kliot).
///
/// Vertices are processed once in id order; each vertex is placed in the
/// partition `p` maximising `|N(v) ∩ p| * (1 - size(p)/capacity)`, i.e. the
/// partition that already holds most of its neighbours, discounted by how
/// full that partition is. This gives METIS-like balance with substantially
/// lower edge cut than hashing at a single linear pass — a reasonable
/// stand-in for METIS in the distributed experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LdgPartitioner {
    /// Capacity slack: each partition may hold up to
    /// `slack * |V| / num_parts` vertices. METIS' default imbalance tolerance
    /// is ~1.03; we default to 1.05.
    pub slack: f64,
}

impl Default for LdgPartitioner {
    fn default() -> Self {
        LdgPartitioner { slack: 1.05 }
    }
}

impl LdgPartitioner {
    /// Creates an LDG partitioner with the default 5% capacity slack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an LDG partitioner with a custom capacity slack (must be
    /// ≥ 1.0).
    pub fn with_slack(slack: f64) -> Self {
        LdgPartitioner {
            slack: slack.max(1.0),
        }
    }
}

impl Partitioner for LdgPartitioner {
    fn partition(&self, graph: &DynamicGraph, num_parts: usize) -> Result<Partitioning> {
        validate_num_parts(graph, num_parts)?;
        let n = graph.num_vertices();
        let capacity = ((n as f64 / num_parts as f64) * self.slack).ceil().max(1.0);
        let mut assignment: Vec<Option<PartitionId>> = vec![None; n];
        let mut sizes = vec![0usize; num_parts];

        for v in 0..n {
            let vid = VertexId(v as u32);
            // Count already-placed neighbours (both directions — communication
            // crosses the cut both ways during propagation).
            let mut neighbour_counts = vec![0usize; num_parts];
            for &u in graph
                .in_neighbors(vid)
                .iter()
                .chain(graph.out_neighbors(vid))
            {
                if let Some(p) = assignment[u.index()] {
                    neighbour_counts[p.index()] += 1;
                }
            }
            let mut best_part = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for p in 0..num_parts {
                if sizes[p] as f64 >= capacity {
                    continue;
                }
                let score = neighbour_counts[p] as f64 * (1.0 - sizes[p] as f64 / capacity);
                // Tie-break towards the emptiest partition to preserve balance.
                let score = score - sizes[p] as f64 * 1e-9;
                if score > best_score {
                    best_score = score;
                    best_part = p;
                }
            }
            assignment[v] = Some(PartitionId(best_part as u32));
            sizes[best_part] += 1;
        }

        let assignment: Vec<PartitionId> = assignment.into_iter().map(Option::unwrap).collect();
        Partitioning::from_assignment(assignment, num_parts)
    }

    fn name(&self) -> &'static str {
        "ldg"
    }
}

#[cfg(test)]
mod tests {
    use super::super::HashPartitioner;
    use super::*;
    use crate::synth::DatasetSpec;

    #[test]
    fn ldg_covers_all_vertices_and_respects_balance() {
        let g = DatasetSpec::custom(400, 8.0, 2, 2).generate(3).unwrap();
        let p = LdgPartitioner::new().partition(&g, 4).unwrap();
        assert_eq!(p.num_vertices(), 400);
        assert!(
            p.balance_factor() <= 1.06,
            "balance factor {}",
            p.balance_factor()
        );
        assert!(p.part_sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn ldg_cuts_fewer_edges_than_hash_on_clustered_graph() {
        // Two dense clusters joined by a single edge: LDG should find them.
        let mut g = DynamicGraph::new(40, 1);
        for i in 0..20u32 {
            for j in 0..20u32 {
                if i != j && (i + j) % 3 == 0 {
                    let _ = g.add_edge(VertexId(i), VertexId(j), 1.0);
                    let _ = g.add_edge(VertexId(20 + i), VertexId(20 + j), 1.0);
                }
            }
        }
        g.add_edge(VertexId(0), VertexId(20), 1.0).unwrap();
        let ldg = LdgPartitioner::new().partition(&g, 2).unwrap();
        let hash = HashPartitioner::new().partition(&g, 2).unwrap();
        assert!(
            ldg.edge_cut(&g) < hash.edge_cut(&g),
            "ldg cut {} vs hash cut {}",
            ldg.edge_cut(&g),
            hash.edge_cut(&g)
        );
    }

    use crate::dynamic::DynamicGraph;

    #[test]
    fn with_slack_clamps_below_one() {
        assert_eq!(LdgPartitioner::with_slack(0.5).slack, 1.0);
        assert_eq!(LdgPartitioner::with_slack(1.2).slack, 1.2);
    }

    #[test]
    fn rejects_invalid_part_counts() {
        let g = DatasetSpec::custom(10, 2.0, 2, 2).generate(0).unwrap();
        assert!(LdgPartitioner::new().partition(&g, 0).is_err());
    }

    #[test]
    fn single_partition_holds_everything() {
        let g = DatasetSpec::custom(50, 3.0, 2, 2).generate(0).unwrap();
        let p = LdgPartitioner::new().partition(&g, 1).unwrap();
        assert_eq!(p.part_sizes(), vec![50]);
        assert_eq!(p.edge_cut(&g), 0);
    }

    #[test]
    fn name_is_ldg() {
        assert_eq!(LdgPartitioner::new().name(), "ldg");
    }
}
