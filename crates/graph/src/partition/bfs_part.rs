//! BFS region-growing partitioner.

use super::{validate_num_parts, Partitioner, Partitioning};
use crate::dynamic::DynamicGraph;
use crate::ids::{PartitionId, VertexId};
use crate::Result;
use std::collections::VecDeque;

/// Grows partitions as BFS regions from seed vertices.
///
/// Parts are filled one at a time: starting from the lowest-id unassigned
/// vertex, a BFS (over both edge directions) claims vertices until the part
/// reaches its capacity, then the next part starts from a fresh unassigned
/// seed. On graphs with locality this produces contiguous, low-cut parts; on
/// expander-like graphs it degrades gracefully towards balanced-but-cut-heavy
/// assignments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BfsPartitioner;

impl BfsPartitioner {
    /// Creates a new BFS region-growing partitioner.
    pub fn new() -> Self {
        BfsPartitioner
    }
}

impl Partitioner for BfsPartitioner {
    fn partition(&self, graph: &DynamicGraph, num_parts: usize) -> Result<Partitioning> {
        validate_num_parts(graph, num_parts)?;
        let n = graph.num_vertices();
        let base = n / num_parts;
        let remainder = n % num_parts;
        // Capacity of part p: base (+1 for the first `remainder` parts).
        let capacity = |p: usize| -> usize { base + usize::from(p < remainder) };

        let mut assignment: Vec<Option<PartitionId>> = vec![None; n];
        let mut next_seed = 0usize;
        for p in 0..num_parts {
            let cap = capacity(p);
            let mut claimed = 0usize;
            let mut queue: VecDeque<usize> = VecDeque::new();
            while claimed < cap {
                if queue.is_empty() {
                    // Find the next unassigned seed.
                    while next_seed < n && assignment[next_seed].is_some() {
                        next_seed += 1;
                    }
                    if next_seed >= n {
                        break;
                    }
                    queue.push_back(next_seed);
                }
                let Some(v) = queue.pop_front() else { break };
                if assignment[v].is_some() {
                    continue;
                }
                assignment[v] = Some(PartitionId(p as u32));
                claimed += 1;
                let vid = VertexId(v as u32);
                for &u in graph
                    .out_neighbors(vid)
                    .iter()
                    .chain(graph.in_neighbors(vid))
                {
                    if assignment[u.index()].is_none() {
                        queue.push_back(u.index());
                    }
                }
            }
        }
        // Any stragglers (possible when capacities are hit while queues still
        // hold unassigned vertices) go to the last partition.
        let last = PartitionId(num_parts as u32 - 1);
        let assignment: Vec<PartitionId> =
            assignment.into_iter().map(|a| a.unwrap_or(last)).collect();
        Partitioning::from_assignment(assignment, num_parts)
    }

    fn name(&self) -> &'static str {
        "bfs"
    }
}

#[cfg(test)]
mod tests {
    use super::super::HashPartitioner;
    use super::*;
    use crate::synth::DatasetSpec;

    #[test]
    fn bfs_partitioning_covers_all_vertices() {
        let g = DatasetSpec::custom(200, 5.0, 2, 2).generate(1).unwrap();
        let p = BfsPartitioner::new().partition(&g, 4).unwrap();
        assert_eq!(p.num_vertices(), 200);
        let sizes = p.part_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 200);
        assert!(sizes.iter().all(|&s| s > 0));
    }

    #[test]
    fn bfs_beats_hash_on_line_graph() {
        let mut g = DynamicGraph::new(100, 1);
        for i in 0..99u32 {
            g.add_edge(VertexId(i), VertexId(i + 1), 1.0).unwrap();
        }
        let bfs = BfsPartitioner::new().partition(&g, 4).unwrap();
        let hash = HashPartitioner::new().partition(&g, 4).unwrap();
        assert!(bfs.edge_cut(&g) < hash.edge_cut(&g));
        assert!(
            bfs.edge_cut(&g) <= 4,
            "line graph should cut only a few edges"
        );
    }

    use crate::dynamic::DynamicGraph;

    #[test]
    fn balance_is_near_perfect() {
        let g = DatasetSpec::custom(101, 4.0, 2, 2).generate(2).unwrap();
        let p = BfsPartitioner::new().partition(&g, 4).unwrap();
        assert!(
            p.balance_factor() < 1.1,
            "balance factor {}",
            p.balance_factor()
        );
    }

    #[test]
    fn disconnected_graph_is_still_fully_assigned() {
        let g = DynamicGraph::new(10, 1); // no edges at all
        let p = BfsPartitioner::new().partition(&g, 3).unwrap();
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 10);
    }

    #[test]
    fn name_is_bfs() {
        assert_eq!(BfsPartitioner::new().name(), "bfs");
    }
}
