//! Hash (modulo) partitioner.

use super::{validate_num_parts, Partitioner, Partitioning};
use crate::dynamic::DynamicGraph;
use crate::ids::PartitionId;
use crate::Result;

/// Assigns vertex `v` to partition `v mod k`.
///
/// Perfectly balanced but oblivious to the topology, so it cuts a large
/// fraction of edges; the distributed experiments use it as the
/// high-communication baseline against which the smarter partitioners are
/// compared.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HashPartitioner;

impl HashPartitioner {
    /// Creates a new hash partitioner.
    pub fn new() -> Self {
        HashPartitioner
    }
}

impl Partitioner for HashPartitioner {
    fn partition(&self, graph: &DynamicGraph, num_parts: usize) -> Result<Partitioning> {
        validate_num_parts(graph, num_parts)?;
        let assignment = (0..graph.num_vertices())
            .map(|v| PartitionId((v % num_parts) as u32))
            .collect();
        Partitioning::from_assignment(assignment, num_parts)
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VertexId;
    use crate::synth::DatasetSpec;

    #[test]
    fn hash_partitioning_is_balanced() {
        let g = DatasetSpec::custom(100, 4.0, 2, 2).generate(0).unwrap();
        let p = HashPartitioner::new().partition(&g, 4).unwrap();
        assert_eq!(p.part_sizes(), vec![25, 25, 25, 25]);
        assert!(p.balance_factor() <= 1.0 + 1e-9);
    }

    #[test]
    fn assignment_follows_modulo() {
        let g = DatasetSpec::custom(10, 2.0, 2, 2).generate(0).unwrap();
        let p = HashPartitioner::new().partition(&g, 3).unwrap();
        assert_eq!(p.part_of(VertexId(7)), PartitionId(1));
        assert_eq!(p.part_of(VertexId(9)), PartitionId(0));
    }

    #[test]
    fn rejects_invalid_part_counts() {
        let g = DatasetSpec::custom(5, 1.0, 2, 2).generate(0).unwrap();
        assert!(HashPartitioner::new().partition(&g, 0).is_err());
        assert!(HashPartitioner::new().partition(&g, 9).is_err());
    }

    #[test]
    fn name_is_hash() {
        assert_eq!(HashPartitioner::new().name(), "hash");
    }
}
