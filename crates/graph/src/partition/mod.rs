//! Graph partitioning for the distributed runtime.
//!
//! The paper partitions the graph with METIS so that vertex counts are
//! balanced and edge cuts (and therefore network traffic) are minimised
//! (§5.1). METIS is not available here, so this module provides three
//! partitioners with the same interface:
//!
//! * [`HashPartitioner`] — assigns `v mod k`; balanced but cut-oblivious,
//!   useful as a worst-case baseline for communication measurements.
//! * [`LdgPartitioner`] — Linear Deterministic Greedy streaming partitioner;
//!   assigns each vertex to the part holding most of its already-placed
//!   neighbours, penalised by part fullness. Good cut quality at linear cost.
//! * [`BfsPartitioner`] — region-growing: grows parts from BFS seeds until a
//!   capacity is reached, producing contiguous, low-cut parts on graphs with
//!   community structure.
//!
//! All partitioners return a [`Partitioning`], and [`halo::HaloInfo`]
//! computes the replicated boundary ("halo") vertices that the distributed
//! runtime uses as message stubs, mirroring DistDGL.

mod bfs_part;
pub mod halo;
mod hash;
mod ldg;

pub use bfs_part::BfsPartitioner;
pub use halo::HaloInfo;
pub use hash::HashPartitioner;
pub use ldg::LdgPartitioner;

use crate::dynamic::DynamicGraph;
use crate::ids::{PartitionId, VertexId};
use crate::{GraphError, Result};
use serde::{Deserialize, Serialize};

/// A complete assignment of every vertex to exactly one partition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partitioning {
    assignment: Vec<PartitionId>,
    num_parts: usize,
}

impl Partitioning {
    /// Creates a partitioning from an explicit per-vertex assignment.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidPartitioning`] if `num_parts` is zero or
    /// any assigned partition id is out of range.
    pub fn from_assignment(assignment: Vec<PartitionId>, num_parts: usize) -> Result<Self> {
        if num_parts == 0 {
            return Err(GraphError::InvalidPartitioning(
                "zero partitions".to_string(),
            ));
        }
        if let Some(bad) = assignment.iter().find(|p| p.index() >= num_parts) {
            return Err(GraphError::InvalidPartitioning(format!(
                "vertex assigned to partition {bad} but only {num_parts} partitions exist"
            )));
        }
        Ok(Partitioning {
            assignment,
            num_parts,
        })
    }

    /// Number of partitions.
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Number of vertices covered by the assignment.
    pub fn num_vertices(&self) -> usize {
        self.assignment.len()
    }

    /// The partition that owns vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the assignment.
    pub fn part_of(&self, v: VertexId) -> PartitionId {
        self.assignment[v.index()]
    }

    /// All vertices owned by partition `p`, in id order.
    pub fn vertices_in(&self, p: PartitionId) -> Vec<VertexId> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(i, &part)| (part == p).then_some(VertexId(i as u32)))
            .collect()
    }

    /// Sizes of every partition, indexed by partition id.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_parts];
        for p in &self.assignment {
            sizes[p.index()] += 1;
        }
        sizes
    }

    /// Number of directed edges whose endpoints live in different partitions.
    pub fn edge_cut(&self, graph: &DynamicGraph) -> usize {
        graph
            .iter_edges()
            .filter(|(s, d, _)| self.part_of(*s) != self.part_of(*d))
            .count()
    }

    /// Fraction of edges that are cut, in `[0, 1]`.
    pub fn edge_cut_fraction(&self, graph: &DynamicGraph) -> f64 {
        if graph.num_edges() == 0 {
            return 0.0;
        }
        self.edge_cut(graph) as f64 / graph.num_edges() as f64
    }

    /// Balance factor: `max part size / ideal part size`. 1.0 is perfectly
    /// balanced; METIS-style partitioners typically guarantee ≤ 1.05.
    pub fn balance_factor(&self) -> f64 {
        let sizes = self.part_sizes();
        let max = sizes.iter().copied().max().unwrap_or(0) as f64;
        let ideal = self.num_vertices() as f64 / self.num_parts as f64;
        if ideal == 0.0 {
            return 1.0;
        }
        max / ideal
    }

    /// Raw assignment slice (index = vertex id).
    pub fn assignment(&self) -> &[PartitionId] {
        &self.assignment
    }
}

/// A vertex partitioner.
///
/// Implementations must assign every vertex of the graph to exactly one of
/// `num_parts` partitions.
pub trait Partitioner {
    /// Partitions `graph` into `num_parts` parts.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidPartitioning`] if `num_parts` is zero or
    /// exceeds the number of vertices.
    fn partition(&self, graph: &DynamicGraph, num_parts: usize) -> Result<Partitioning>;

    /// Short human-readable name used in experiment reports.
    fn name(&self) -> &'static str;
}

pub(crate) fn validate_num_parts(graph: &DynamicGraph, num_parts: usize) -> Result<()> {
    if num_parts == 0 {
        return Err(GraphError::InvalidPartitioning(
            "zero partitions".to_string(),
        ));
    }
    if num_parts > graph.num_vertices().max(1) {
        return Err(GraphError::InvalidPartitioning(format!(
            "{num_parts} partitions requested for {} vertices",
            graph.num_vertices()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph(n: usize) -> DynamicGraph {
        let mut g = DynamicGraph::new(n, 1);
        for i in 0..n - 1 {
            g.add_edge(VertexId(i as u32), VertexId(i as u32 + 1), 1.0)
                .unwrap();
        }
        g
    }

    #[test]
    fn from_assignment_validates() {
        assert!(Partitioning::from_assignment(vec![PartitionId(0)], 0).is_err());
        assert!(Partitioning::from_assignment(vec![PartitionId(3)], 2).is_err());
        let p = Partitioning::from_assignment(vec![PartitionId(0), PartitionId(1)], 2).unwrap();
        assert_eq!(p.num_parts(), 2);
        assert_eq!(p.num_vertices(), 2);
    }

    #[test]
    fn part_queries() {
        let p =
            Partitioning::from_assignment(vec![PartitionId(0), PartitionId(1), PartitionId(0)], 2)
                .unwrap();
        assert_eq!(p.part_of(VertexId(2)), PartitionId(0));
        assert_eq!(
            p.vertices_in(PartitionId(0)),
            vec![VertexId(0), VertexId(2)]
        );
        assert_eq!(p.part_sizes(), vec![2, 1]);
        assert!((p.balance_factor() - (2.0 / 1.5)).abs() < 1e-9);
    }

    #[test]
    fn edge_cut_counts_cross_partition_edges() {
        let g = line_graph(4);
        // Split in the middle: 0,1 | 2,3 — only edge 1->2 is cut.
        let p = Partitioning::from_assignment(
            vec![
                PartitionId(0),
                PartitionId(0),
                PartitionId(1),
                PartitionId(1),
            ],
            2,
        )
        .unwrap();
        assert_eq!(p.edge_cut(&g), 1);
        assert!((p.edge_cut_fraction(&g) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn edge_cut_fraction_of_empty_graph_is_zero() {
        let g = DynamicGraph::new(2, 1);
        let p = Partitioning::from_assignment(vec![PartitionId(0), PartitionId(1)], 2).unwrap();
        assert_eq!(p.edge_cut_fraction(&g), 0.0);
    }

    #[test]
    fn validate_num_parts_bounds() {
        let g = line_graph(3);
        assert!(validate_num_parts(&g, 0).is_err());
        assert!(validate_num_parts(&g, 4).is_err());
        assert!(validate_num_parts(&g, 3).is_ok());
    }
}
