//! Forward (out-edge) multi-hop traversals.
//!
//! An update at vertex `u` can only change the embeddings of vertices within
//! `L` hops *forward* of `u` (following out-edges), because layer-`l`
//! embeddings aggregate layer-`l-1` embeddings of in-neighbours. These
//! helpers compute that forward neighbourhood, which both the recompute
//! baseline and the experiment harness (propagation-tree size, Fig 11) need.

use crate::dynamic::DynamicGraph;
use crate::ids::VertexId;
use std::collections::HashSet;

/// The sets of vertices reachable from `sources` at each hop `1..=hops`,
/// following out-edges. Hop `l` contains every vertex with an in-neighbour in
/// hop `l-1` (hop 0 being the sources themselves), i.e. every vertex whose
/// layer-`l` aggregate could be affected by a change at the sources.
///
/// Unlike a plain BFS, a vertex can appear in multiple hop sets: being
/// reached at hop 1 does not exempt it from being affected again at hop 2
/// (its layer-2 embedding also depends on layer-1 embeddings).
///
/// # Example
///
/// ```
/// use ripple_graph::{DynamicGraph, VertexId, bfs};
///
/// let mut g = DynamicGraph::new(3, 1);
/// g.add_edge(VertexId(0), VertexId(1), 1.0).unwrap();
/// g.add_edge(VertexId(1), VertexId(2), 1.0).unwrap();
/// let hops = bfs::forward_hops(&g, &[VertexId(0)], 2);
/// assert!(hops[0].contains(&VertexId(1)));
/// assert!(hops[1].contains(&VertexId(2)));
/// ```
pub fn forward_hops(
    graph: &DynamicGraph,
    sources: &[VertexId],
    hops: usize,
) -> Vec<HashSet<VertexId>> {
    let mut result: Vec<HashSet<VertexId>> = Vec::with_capacity(hops);
    let mut frontier: HashSet<VertexId> = sources.iter().copied().collect();
    for _ in 0..hops {
        let mut next = HashSet::new();
        for &u in &frontier {
            if !graph.contains_vertex(u) {
                continue;
            }
            for &w in graph.out_neighbors(u) {
                next.insert(w);
            }
        }
        result.push(next.clone());
        frontier = next;
    }
    result
}

/// The *cumulative* affected set within `hops` hops forward of `sources`:
/// the union of all hop sets. This is the set of vertices whose final-layer
/// prediction may need refreshing after an update at the sources — the
/// quantity plotted as "% affected nodes" in Fig 2b.
pub fn affected_set(graph: &DynamicGraph, sources: &[VertexId], hops: usize) -> HashSet<VertexId> {
    let per_hop = forward_hops(graph, sources, hops);
    let mut all = HashSet::new();
    for hop in per_hop {
        all.extend(hop);
    }
    all
}

/// Size of the propagation tree: the total number of (vertex, hop) pairs
/// visited when propagating an update for `hops` hops. A vertex affected at
/// two different hops counts twice, matching the amount of work both RC and
/// Ripple perform (Fig 11's x-axis).
pub fn propagation_tree_size(graph: &DynamicGraph, sources: &[VertexId], hops: usize) -> usize {
    forward_hops(graph, sources, hops)
        .iter()
        .map(HashSet::len)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small directed "diamond with a tail":
    /// 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 4.
    fn diamond() -> DynamicGraph {
        let mut g = DynamicGraph::new(5, 1);
        for (s, d) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)] {
            g.add_edge(VertexId(s), VertexId(d), 1.0).unwrap();
        }
        g
    }

    #[test]
    fn forward_hops_follow_out_edges() {
        let g = diamond();
        let hops = forward_hops(&g, &[VertexId(0)], 3);
        assert_eq!(hops[0], [VertexId(1), VertexId(2)].into_iter().collect());
        assert_eq!(hops[1], [VertexId(3)].into_iter().collect());
        assert_eq!(hops[2], [VertexId(4)].into_iter().collect());
    }

    #[test]
    fn affected_set_is_union_of_hops() {
        let g = diamond();
        let set = affected_set(&g, &[VertexId(0)], 3);
        assert_eq!(set.len(), 4);
        assert!(
            !set.contains(&VertexId(0)),
            "source itself is not forward-reachable"
        );
    }

    #[test]
    fn vertex_can_appear_in_multiple_hops() {
        // 0 -> 1, 1 -> 1 would be a self loop; instead use a cycle 0 -> 1 -> 2 -> 1.
        let mut g = DynamicGraph::new(3, 1);
        g.add_edge(VertexId(0), VertexId(1), 1.0).unwrap();
        g.add_edge(VertexId(1), VertexId(2), 1.0).unwrap();
        g.add_edge(VertexId(2), VertexId(1), 1.0).unwrap();
        let hops = forward_hops(&g, &[VertexId(0)], 3);
        assert!(hops[0].contains(&VertexId(1)));
        assert!(
            hops[2].contains(&VertexId(1)),
            "cycle revisits vertex 1 at hop 3"
        );
        assert_eq!(propagation_tree_size(&g, &[VertexId(0)], 3), 3);
    }

    #[test]
    fn empty_sources_affect_nothing() {
        let g = diamond();
        assert!(affected_set(&g, &[], 3).is_empty());
        assert_eq!(propagation_tree_size(&g, &[], 3), 0);
    }

    #[test]
    fn zero_hops_affect_nothing() {
        let g = diamond();
        assert!(forward_hops(&g, &[VertexId(0)], 0).is_empty());
    }

    #[test]
    fn multiple_sources_union() {
        let g = diamond();
        let set = affected_set(&g, &[VertexId(1), VertexId(2)], 1);
        assert_eq!(set, [VertexId(3)].into_iter().collect());
    }

    #[test]
    fn unknown_source_is_ignored() {
        let g = diamond();
        let set = affected_set(&g, &[VertexId(99)], 2);
        assert!(set.is_empty());
    }
}
