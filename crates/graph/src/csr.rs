//! Immutable CSR (compressed sparse row) snapshot of a graph.
//!
//! Bulk layer-wise inference over the whole graph (the bootstrap step and the
//! DRC/RC baselines' full-graph pass) iterates over every vertex's in-edges
//! once per layer; a CSR layout makes that traversal cache-friendly and
//! allocation-free. The snapshot stores *both* orientations (in-CSR and
//! out-CSR) because inference pulls from in-neighbours while update
//! propagation pushes to out-neighbours.

use crate::dynamic::DynamicGraph;
use crate::ids::VertexId;

/// An immutable CSR snapshot with both in- and out-edge orientations and
/// per-edge weights.
///
/// # Example
///
/// ```
/// use ripple_graph::{CsrGraph, DynamicGraph, VertexId};
///
/// let mut g = DynamicGraph::new(3, 1);
/// g.add_edge(VertexId(0), VertexId(2), 1.0).unwrap();
/// g.add_edge(VertexId(1), VertexId(2), 1.0).unwrap();
/// let csr = CsrGraph::from_dynamic(&g);
/// assert_eq!(csr.in_neighbors(VertexId(2)).len(), 2);
/// assert_eq!(csr.out_neighbors(VertexId(0)), &[VertexId(2)]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrGraph {
    pub(crate) num_vertices: usize,
    pub(crate) num_edges: usize,
    pub(crate) in_offsets: Vec<usize>,
    pub(crate) in_targets: Vec<VertexId>,
    pub(crate) in_weights: Vec<f32>,
    pub(crate) out_offsets: Vec<usize>,
    pub(crate) out_targets: Vec<VertexId>,
    pub(crate) out_weights: Vec<f32>,
}

impl CsrGraph {
    /// Builds a CSR snapshot from a dynamic graph's current topology.
    ///
    /// Every array is pre-reserved to its exact final size from
    /// [`DynamicGraph::num_edges`], so the `|V|` `extend_from_slice` calls
    /// below append into already-allocated storage and never trigger a
    /// reallocation mid-build.
    pub fn from_dynamic(g: &DynamicGraph) -> Self {
        let n = g.num_vertices();
        let edges = g.num_edges();
        let mut in_offsets = Vec::with_capacity(n + 1);
        let mut in_targets: Vec<VertexId> = Vec::with_capacity(edges);
        let mut in_weights: Vec<f32> = Vec::with_capacity(edges);
        in_offsets.push(0);
        for v in 0..n {
            let vid = VertexId(v as u32);
            in_targets.extend_from_slice(g.in_neighbors(vid));
            in_weights.extend_from_slice(g.in_weights(vid));
            in_offsets.push(in_targets.len());
        }
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_targets: Vec<VertexId> = Vec::with_capacity(edges);
        let mut out_weights: Vec<f32> = Vec::with_capacity(edges);
        out_offsets.push(0);
        for v in 0..n {
            let vid = VertexId(v as u32);
            out_targets.extend_from_slice(g.out_neighbors(vid));
            out_weights.extend_from_slice(g.out_weights(vid));
            out_offsets.push(out_targets.len());
        }
        debug_assert_eq!(in_targets.len(), edges, "in-CSR must cover every edge");
        debug_assert_eq!(out_targets.len(), edges, "out-CSR must cover every edge");
        CsrGraph {
            num_vertices: n,
            num_edges: edges,
            in_offsets,
            in_targets,
            in_weights,
            out_offsets,
            out_targets,
            out_weights,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// In-neighbours (sources of edges entering `v`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of the graph.
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let i = v.index();
        &self.in_targets[self.in_offsets[i]..self.in_offsets[i + 1]]
    }

    /// Weights of the in-edges of `v`, parallel to [`Self::in_neighbors`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of the graph.
    pub fn in_edge_weights(&self, v: VertexId) -> &[f32] {
        let i = v.index();
        &self.in_weights[self.in_offsets[i]..self.in_offsets[i + 1]]
    }

    /// Out-neighbours (sinks of edges leaving `u`).
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a vertex of the graph.
    pub fn out_neighbors(&self, u: VertexId) -> &[VertexId] {
        let i = u.index();
        &self.out_targets[self.out_offsets[i]..self.out_offsets[i + 1]]
    }

    /// Weights of the out-edges of `u`, parallel to [`Self::out_neighbors`].
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a vertex of the graph.
    pub fn out_edge_weights(&self, u: VertexId) -> &[f32] {
        let i = u.index();
        &self.out_weights[self.out_offsets[i]..self.out_offsets[i + 1]]
    }

    /// Both in-edge slices of `v` with a single pair of offset loads.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of the graph.
    #[inline]
    pub fn in_adjacency(&self, v: VertexId) -> (&[VertexId], &[f32]) {
        let i = v.index();
        let (start, end) = (self.in_offsets[i], self.in_offsets[i + 1]);
        (&self.in_targets[start..end], &self.in_weights[start..end])
    }

    /// Both out-edge slices of `u` with a single pair of offset loads.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a vertex of the graph.
    #[inline]
    pub fn out_adjacency(&self, u: VertexId) -> (&[VertexId], &[f32]) {
        let i = u.index();
        let (start, end) = (self.out_offsets[i], self.out_offsets[i + 1]);
        (&self.out_targets[start..end], &self.out_weights[start..end])
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_neighbors(v).len()
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: VertexId) -> usize {
        self.out_neighbors(u).len()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.num_vertices as u32).map(VertexId)
    }

    /// Estimated heap memory used by the CSR arrays, in bytes.
    pub fn memory_bytes(&self) -> usize {
        (self.in_offsets.capacity() + self.out_offsets.capacity()) * std::mem::size_of::<usize>()
            + (self.in_targets.capacity() + self.out_targets.capacity())
                * std::mem::size_of::<VertexId>()
            + (self.in_weights.capacity() + self.out_weights.capacity())
                * std::mem::size_of::<f32>()
    }

    /// Heap bytes held by the CSR arrays — the same accounting surface as
    /// [`DynamicGraph::memory_bytes`], so the two representations can be
    /// compared head to head (the CSR form carries no per-vertex `Vec`
    /// headers and no features table).
    pub fn heap_bytes(&self) -> usize {
        self.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DynamicGraph {
        let mut g = DynamicGraph::new(4, 1);
        g.add_edge(VertexId(0), VertexId(1), 1.0).unwrap();
        g.add_edge(VertexId(0), VertexId(2), 2.0).unwrap();
        g.add_edge(VertexId(3), VertexId(2), 3.0).unwrap();
        g.add_edge(VertexId(2), VertexId(1), 4.0).unwrap();
        g
    }

    #[test]
    fn csr_matches_dynamic_adjacency() {
        let g = sample();
        let csr = g.to_csr();
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_edges(), 4);
        for v in csr.vertices() {
            let mut csr_in: Vec<_> = csr.in_neighbors(v).to_vec();
            let mut dyn_in: Vec<_> = g.in_neighbors(v).to_vec();
            csr_in.sort();
            dyn_in.sort();
            assert_eq!(csr_in, dyn_in, "in-neighbours of {v}");
            let mut csr_out: Vec<_> = csr.out_neighbors(v).to_vec();
            let mut dyn_out: Vec<_> = g.out_neighbors(v).to_vec();
            csr_out.sort();
            dyn_out.sort();
            assert_eq!(csr_out, dyn_out, "out-neighbours of {v}");
        }
    }

    #[test]
    fn degrees_match() {
        let g = sample();
        let csr = g.to_csr();
        for v in csr.vertices() {
            assert_eq!(csr.in_degree(v), g.in_degree(v));
            assert_eq!(csr.out_degree(v), g.out_degree(v));
        }
    }

    #[test]
    fn weights_follow_edges() {
        let csr = sample().to_csr();
        let in2 = csr.in_neighbors(VertexId(2));
        let w2 = csr.in_edge_weights(VertexId(2));
        assert_eq!(in2.len(), w2.len());
        for (n, w) in in2.iter().zip(w2.iter()) {
            match n.0 {
                0 => assert_eq!(*w, 2.0),
                3 => assert_eq!(*w, 3.0),
                other => panic!("unexpected in-neighbour {other}"),
            }
        }
        assert_eq!(csr.out_edge_weights(VertexId(0)).len(), 2);
    }

    #[test]
    fn empty_graph_snapshot() {
        let g = DynamicGraph::new(0, 0);
        let csr = g.to_csr();
        assert_eq!(csr.num_vertices(), 0);
        assert_eq!(csr.num_edges(), 0);
        assert_eq!(csr.vertices().count(), 0);
    }

    #[test]
    fn memory_bytes_positive() {
        assert!(sample().to_csr().memory_bytes() > 0);
    }
}
