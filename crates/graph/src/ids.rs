//! Strongly-typed identifiers for vertices and partitions.
//!
//! Using newtypes instead of bare integers keeps vertex indices, partition
//! indices and plain counters from being mixed up across the workspace
//! (particularly in the distributed runtime, where a local index and a global
//! vertex id are different things).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A global vertex identifier, dense in `0..n`.
///
/// Vertex ids double as row indices into feature and embedding matrices, so
/// they are kept dense; vertex deletion is out of scope (as in the paper).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VertexId(pub u32);

impl VertexId {
    /// The id as a `usize`, for indexing into per-vertex tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(value: u32) -> Self {
        VertexId(value)
    }
}

impl From<VertexId> for u32 {
    fn from(value: VertexId) -> Self {
        value.0
    }
}

/// Identifier of a graph partition (worker) in the distributed runtime.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PartitionId(pub u32);

impl PartitionId {
    /// The id as a `usize`, for indexing into per-partition tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for PartitionId {
    fn from(value: u32) -> Self {
        PartitionId(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_round_trips_through_u32() {
        let v = VertexId::from(42u32);
        assert_eq!(u32::from(v), 42);
        assert_eq!(v.index(), 42);
    }

    #[test]
    fn display_formats() {
        assert_eq!(VertexId(3).to_string(), "v3");
        assert_eq!(PartitionId(1).to_string(), "p1");
    }

    #[test]
    fn ordering_follows_numeric_order() {
        assert!(VertexId(1) < VertexId(2));
        assert!(PartitionId(0) < PartitionId(5));
    }

    #[test]
    fn ids_are_hashable() {
        use std::collections::HashSet;
        let set: HashSet<VertexId> = [VertexId(1), VertexId(1), VertexId(2)]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
    }
}
