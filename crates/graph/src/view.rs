//! Read-only topology access shared by every representation of a graph.
//!
//! The compute spine (batched bootstrap inference, the incremental engines'
//! frontier re-evaluation and message fanout) only ever *reads* adjacency:
//! in-neighbours and their weights for aggregation, out-neighbours and their
//! weights for delta fanout, degrees for mean normalisation. [`GraphView`]
//! abstracts exactly that surface so the same kernels run against
//! [`DynamicGraph`]'s per-vertex `Vec` lists, an immutable [`CsrGraph`]
//! snapshot, or the incrementally maintained [`CsrSnapshot`] overlay.
//!
//! # Bit-parity contract
//!
//! Every implementation must present each vertex's neighbour/weight slices
//! **in the same per-vertex order** as the [`DynamicGraph`] they mirror
//! (insertion order, with [`DynamicGraph::remove_edge`]'s `swap_remove`
//! reordering applied identically). Neighbour order fixes the float
//! accumulation order of the aggregation kernels, so preserving it is what
//! keeps the serial, parallel, distributed and serving paths bit-identical
//! no matter which view they stream.
//!
//! [`CsrSnapshot`]: crate::snapshot::CsrSnapshot

use crate::csr::CsrGraph;
use crate::dynamic::DynamicGraph;
use crate::ids::VertexId;

/// Read-only adjacency view over a directed, weighted graph with dense
/// vertex ids `0..n`.
pub trait GraphView {
    /// Number of vertices.
    fn num_vertices(&self) -> usize;

    /// Number of directed edges.
    fn num_edges(&self) -> usize;

    /// In-neighbours of `v` (sources of edges entering `v`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of the graph.
    fn in_neighbors(&self, v: VertexId) -> &[VertexId];

    /// Weights of the in-edges of `v`, parallel to
    /// [`GraphView::in_neighbors`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of the graph.
    fn in_weights(&self, v: VertexId) -> &[f32];

    /// Out-neighbours of `u` (sinks of edges leaving `u`).
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a vertex of the graph.
    fn out_neighbors(&self, u: VertexId) -> &[VertexId];

    /// Weights of the out-edges of `u`, parallel to
    /// [`GraphView::out_neighbors`].
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a vertex of the graph.
    fn out_weights(&self, u: VertexId) -> &[f32];

    /// Both in-edge slices of `v` in one call — the hot aggregation loop
    /// uses this so implementations can resolve the row lookup (CSR offset
    /// loads, overlay probes) once instead of twice.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of the graph.
    fn in_adjacency(&self, v: VertexId) -> (&[VertexId], &[f32]) {
        (self.in_neighbors(v), self.in_weights(v))
    }

    /// Both out-edge slices of `u` in one call — the message-fanout loops
    /// use this; same single-lookup rationale as
    /// [`GraphView::in_adjacency`].
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a vertex of the graph.
    fn out_adjacency(&self, u: VertexId) -> (&[VertexId], &[f32]) {
        (self.out_neighbors(u), self.out_weights(u))
    }

    /// In-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a vertex of the graph.
    fn in_degree(&self, v: VertexId) -> usize {
        self.in_neighbors(v).len()
    }

    /// Out-degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a vertex of the graph.
    fn out_degree(&self, u: VertexId) -> usize {
        self.out_neighbors(u).len()
    }

    /// Returns `true` if `v` is a valid vertex id for this view.
    fn contains_vertex(&self, v: VertexId) -> bool {
        v.index() < self.num_vertices()
    }
}

impl GraphView for DynamicGraph {
    fn num_vertices(&self) -> usize {
        DynamicGraph::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        DynamicGraph::num_edges(self)
    }

    fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        DynamicGraph::in_neighbors(self, v)
    }

    fn in_weights(&self, v: VertexId) -> &[f32] {
        DynamicGraph::in_weights(self, v)
    }

    fn out_neighbors(&self, u: VertexId) -> &[VertexId] {
        DynamicGraph::out_neighbors(self, u)
    }

    fn out_weights(&self, u: VertexId) -> &[f32] {
        DynamicGraph::out_weights(self, u)
    }
}

impl GraphView for CsrGraph {
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        CsrGraph::num_edges(self)
    }

    fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        CsrGraph::in_neighbors(self, v)
    }

    fn in_weights(&self, v: VertexId) -> &[f32] {
        CsrGraph::in_edge_weights(self, v)
    }

    fn out_neighbors(&self, u: VertexId) -> &[VertexId] {
        CsrGraph::out_neighbors(self, u)
    }

    fn out_weights(&self, u: VertexId) -> &[f32] {
        CsrGraph::out_edge_weights(self, u)
    }

    fn in_adjacency(&self, v: VertexId) -> (&[VertexId], &[f32]) {
        CsrGraph::in_adjacency(self, v)
    }

    fn out_adjacency(&self, u: VertexId) -> (&[VertexId], &[f32]) {
        CsrGraph::out_adjacency(self, u)
    }
}

impl<G: GraphView + ?Sized> GraphView for &G {
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }

    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }

    fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        (**self).in_neighbors(v)
    }

    fn in_weights(&self, v: VertexId) -> &[f32] {
        (**self).in_weights(v)
    }

    fn out_neighbors(&self, u: VertexId) -> &[VertexId] {
        (**self).out_neighbors(u)
    }

    fn out_weights(&self, u: VertexId) -> &[f32] {
        (**self).out_weights(u)
    }

    fn in_adjacency(&self, v: VertexId) -> (&[VertexId], &[f32]) {
        (**self).in_adjacency(v)
    }

    fn out_adjacency(&self, u: VertexId) -> (&[VertexId], &[f32]) {
        (**self).out_adjacency(u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DynamicGraph {
        let mut g = DynamicGraph::new(4, 1);
        g.add_edge(VertexId(0), VertexId(1), 1.0).unwrap();
        g.add_edge(VertexId(0), VertexId(2), 2.0).unwrap();
        g.add_edge(VertexId(3), VertexId(2), 3.0).unwrap();
        g
    }

    /// A generic consumer sees identical adjacency through every view.
    fn total_weight<G: GraphView>(view: &G) -> f32 {
        (0..view.num_vertices() as u32)
            .map(VertexId)
            .flat_map(|v| view.in_weights(v).to_vec())
            .sum()
    }

    #[test]
    fn dynamic_and_csr_views_agree() {
        let g = sample();
        let csr = g.to_csr();
        assert_eq!(GraphView::num_edges(&g), GraphView::num_edges(&csr));
        assert_eq!(total_weight(&g), total_weight(&csr));
        for v in 0..4u32 {
            let vid = VertexId(v);
            assert_eq!(GraphView::in_neighbors(&g, vid), csr.in_neighbors(vid));
            assert_eq!(GraphView::out_neighbors(&g, vid), csr.out_neighbors(vid));
            assert_eq!(
                GraphView::in_degree(&g, vid),
                GraphView::in_degree(&csr, vid)
            );
            assert_eq!(
                GraphView::out_degree(&g, vid),
                GraphView::out_degree(&csr, vid)
            );
        }
        assert!(GraphView::contains_vertex(&g, VertexId(3)));
        assert!(!GraphView::contains_vertex(&g, VertexId(4)));
        // A borrowed view forwards.
        assert_eq!(total_weight(&&g), total_weight(&g));
    }
}
