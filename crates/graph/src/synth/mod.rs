//! Synthetic graph generators and dataset specifications.
//!
//! The paper evaluates on four OGB datasets (Table 3). Those datasets are not
//! redistributable inside this reproduction, so this module generates
//! synthetic graphs that preserve the properties the paper's results actually
//! depend on:
//!
//! * **average in-degree** — governs how fast the affected neighbourhood of
//!   an update grows per hop, which is the quantity behind every throughput
//!   and latency trend in the evaluation;
//! * **degree skew** — real graphs are power-law; hub vertices make worst-case
//!   batches much more expensive than the average, which the generators
//!   reproduce with a Chung-Lu style model (and an R-MAT alternative);
//! * **feature width and class count** — set the constant per-vertex cost of
//!   the aggregation and update steps.
//!
//! Absolute vertex counts are scaled down (configurable) so experiments run
//! in minutes instead of hours; [`DatasetSpec`] records the paper-scale
//! numbers alongside the generated ones for reporting.

mod datasets;
mod powerlaw;
mod rmat;

pub use datasets::{DatasetKind, DatasetSpec};
pub use powerlaw::{powerlaw_edges, PowerLawConfig};
pub use rmat::{rmat_edges, RmatConfig};
