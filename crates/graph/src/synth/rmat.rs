//! R-MAT recursive-matrix edge generator.
//!
//! The classic Kronecker-style generator used by Graph500: each edge is
//! placed by recursively descending into one of four quadrants of the
//! adjacency matrix with probabilities `(a, b, c, d)`. Provided as an
//! alternative to the Chung-Lu generator for ablations — R-MAT produces
//! strong community structure as well as skew, which stresses the
//! partitioners differently.

use crate::ids::VertexId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Configuration for the R-MAT generator.
#[derive(Debug, Clone, PartialEq)]
pub struct RmatConfig {
    /// log2 of the number of vertices (the generator works on `2^scale`
    /// vertices).
    pub scale: u32,
    /// Target number of directed edges.
    pub num_edges: usize,
    /// Quadrant probabilities; must sum to ~1. The Graph500 defaults are
    /// `(0.57, 0.19, 0.19, 0.05)`.
    pub probabilities: (f64, f64, f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for RmatConfig {
    fn default() -> Self {
        RmatConfig {
            scale: 10,
            num_edges: 8192,
            probabilities: (0.57, 0.19, 0.19, 0.05),
            seed: 0,
        }
    }
}

impl RmatConfig {
    /// Number of vertices (`2^scale`).
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }
}

/// Generates a deduplicated, self-loop-free R-MAT edge list.
pub fn rmat_edges(config: &RmatConfig) -> Vec<(VertexId, VertexId)> {
    let (a, b, c, _d) = config.probabilities;
    let n = config.num_vertices();
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut edges = Vec::with_capacity(config.num_edges);
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(config.num_edges * 2);
    let max_attempts = config.num_edges.saturating_mul(50).max(1000);
    let mut attempts = 0;
    while edges.len() < config.num_edges && attempts < max_attempts {
        attempts += 1;
        let mut row_lo = 0usize;
        let mut col_lo = 0usize;
        let mut size = n;
        while size > 1 {
            size /= 2;
            let r: f64 = rng.gen();
            if r < a {
                // top-left quadrant: nothing to add
            } else if r < a + b {
                col_lo += size;
            } else if r < a + b + c {
                row_lo += size;
            } else {
                row_lo += size;
                col_lo += size;
            }
        }
        let (src, dst) = (row_lo as u32, col_lo as u32);
        if src == dst {
            continue;
        }
        if seen.insert((src, dst)) {
            edges.push((VertexId(src), VertexId(dst)));
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_generates_edges() {
        let cfg = RmatConfig {
            scale: 8,
            num_edges: 1000,
            ..Default::default()
        };
        let edges = rmat_edges(&cfg);
        assert!(edges.len() >= 900, "got {} edges", edges.len());
        let n = cfg.num_vertices() as u32;
        assert!(edges.iter().all(|(s, d)| s.0 < n && d.0 < n));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = RmatConfig {
            scale: 7,
            num_edges: 500,
            ..Default::default()
        };
        assert_eq!(rmat_edges(&cfg), rmat_edges(&cfg));
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let cfg = RmatConfig {
            scale: 7,
            num_edges: 500,
            ..Default::default()
        };
        let edges = rmat_edges(&cfg);
        let mut seen = HashSet::new();
        for (s, d) in &edges {
            assert_ne!(s, d);
            assert!(seen.insert((*s, *d)));
        }
    }

    #[test]
    fn skewed_probabilities_create_hubs() {
        let cfg = RmatConfig {
            scale: 9,
            num_edges: 4000,
            ..Default::default()
        };
        let edges = rmat_edges(&cfg);
        let mut deg = vec![0usize; cfg.num_vertices()];
        for (_, d) in &edges {
            deg[d.index()] += 1;
        }
        let max = deg.iter().max().copied().unwrap();
        let avg = 4000.0 / cfg.num_vertices() as f64;
        assert!(max as f64 > avg * 5.0, "max {max} vs avg {avg}");
    }

    #[test]
    fn num_vertices_is_power_of_two() {
        assert_eq!(
            RmatConfig {
                scale: 5,
                ..Default::default()
            }
            .num_vertices(),
            32
        );
    }
}
