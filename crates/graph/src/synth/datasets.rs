//! Dataset specifications mirroring the paper's Table 3.
//!
//! Each [`DatasetSpec`] records both the paper-scale statistics (for
//! reporting in `EXPERIMENTS.md`) and the generated-scale parameters used in
//! this reproduction. Calling [`DatasetSpec::generate`] produces a
//! [`DynamicGraph`] with power-law topology, random features of the right
//! width, and edge weights suitable for the `weighted sum` aggregator.

use crate::dynamic::DynamicGraph;
use crate::synth::powerlaw::{powerlaw_edges, PowerLawConfig};
use crate::Result;
use ripple_tensor::init;
use serde::{Deserialize, Serialize};

/// Which of the paper's datasets a spec mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// ogbn-arxiv: sparse citation network (avg in-degree ≈ 6.9).
    Arxiv,
    /// Reddit: dense social network (avg in-degree ≈ 492).
    Reddit,
    /// ogbn-products: e-commerce co-purchase network (avg in-degree ≈ 50.5).
    Products,
    /// ogbn-papers100M: very large citation network (avg in-degree ≈ 14.5),
    /// used for the distributed experiments.
    Papers,
    /// A free-form synthetic dataset not mimicking any paper dataset.
    Custom,
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            DatasetKind::Arxiv => "arxiv",
            DatasetKind::Reddit => "reddit",
            DatasetKind::Products => "products",
            DatasetKind::Papers => "papers",
            DatasetKind::Custom => "custom",
        };
        f.write_str(name)
    }
}

/// A synthetic stand-in for one of the paper's datasets.
///
/// # Example
///
/// ```
/// use ripple_graph::synth::DatasetSpec;
///
/// // A small Arxiv-like graph for tests: ~2000 vertices, avg in-degree ~6.9.
/// let spec = DatasetSpec::arxiv_like().scaled_to(2_000);
/// let graph = spec.generate(42).unwrap();
/// assert_eq!(graph.num_vertices(), 2_000);
/// assert!(graph.avg_in_degree() > 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which paper dataset this mimics.
    pub kind: DatasetKind,
    /// Human-readable name.
    pub name: String,
    /// Number of vertices to generate.
    pub num_vertices: usize,
    /// Target average in-degree (paper's Table 3 value).
    pub avg_in_degree: f64,
    /// Vertex feature width.
    pub feature_dim: usize,
    /// Number of output classes for the vertex-classification task.
    pub num_classes: usize,
    /// Degree-skew exponent for the power-law generator.
    pub skew: f64,
    /// Paper-scale vertex count, for reporting.
    pub paper_num_vertices: usize,
    /// Paper-scale edge count, for reporting.
    pub paper_num_edges: usize,
}

impl DatasetSpec {
    /// Arxiv-like: sparse citation network. Default reproduction scale is
    /// 20 000 vertices (paper: 169K vertices, 1.2M edges, 128 features,
    /// 40 classes, avg in-degree 6.9).
    pub fn arxiv_like() -> Self {
        DatasetSpec {
            kind: DatasetKind::Arxiv,
            name: "arxiv-like".to_string(),
            num_vertices: 20_000,
            avg_in_degree: 6.9,
            feature_dim: 128,
            num_classes: 40,
            skew: 0.65,
            paper_num_vertices: 169_000,
            paper_num_edges: 1_200_000,
        }
    }

    /// Reddit-like: dense social network. Default reproduction scale is
    /// 2 000 vertices with avg in-degree 200 (paper: 233K vertices, 114.9M
    /// edges, 602 features, 41 classes, avg in-degree 492). The in-degree is
    /// reduced along with the vertex count so the dense-graph behaviour
    /// (affected set ≈ whole graph) still shows without requiring 100M+
    /// edges.
    pub fn reddit_like() -> Self {
        DatasetSpec {
            kind: DatasetKind::Reddit,
            name: "reddit-like".to_string(),
            num_vertices: 2_000,
            avg_in_degree: 200.0,
            feature_dim: 602,
            num_classes: 41,
            skew: 0.55,
            paper_num_vertices: 233_000,
            paper_num_edges: 114_900_000,
        }
    }

    /// Products-like: e-commerce co-purchase network. Default reproduction
    /// scale is 10 000 vertices (paper: 2.5M vertices, 123.7M edges, 100
    /// features, 47 classes, avg in-degree 50.5).
    pub fn products_like() -> Self {
        DatasetSpec {
            kind: DatasetKind::Products,
            name: "products-like".to_string(),
            num_vertices: 10_000,
            avg_in_degree: 50.5,
            feature_dim: 100,
            num_classes: 47,
            skew: 0.6,
            paper_num_vertices: 2_500_000,
            paper_num_edges: 123_700_000,
        }
    }

    /// Papers-like: very large citation network used for the distributed
    /// experiments. Default reproduction scale is 40 000 vertices (paper:
    /// 111M vertices, 1.62B edges, 128 features, 172 classes, avg in-degree
    /// 14.5).
    pub fn papers_like() -> Self {
        DatasetSpec {
            kind: DatasetKind::Papers,
            name: "papers-like".to_string(),
            num_vertices: 40_000,
            avg_in_degree: 14.5,
            feature_dim: 128,
            num_classes: 172,
            skew: 0.7,
            paper_num_vertices: 111_000_000,
            paper_num_edges: 1_620_000_000,
        }
    }

    /// A small custom dataset, convenient for unit tests.
    pub fn custom(
        num_vertices: usize,
        avg_in_degree: f64,
        feature_dim: usize,
        num_classes: usize,
    ) -> Self {
        DatasetSpec {
            kind: DatasetKind::Custom,
            name: format!("custom-{num_vertices}v"),
            num_vertices,
            avg_in_degree,
            feature_dim,
            num_classes,
            skew: 0.6,
            paper_num_vertices: num_vertices,
            paper_num_edges: (num_vertices as f64 * avg_in_degree) as usize,
        }
    }

    /// Returns the same spec with a different generated vertex count. The
    /// average in-degree, feature width and class count are preserved.
    pub fn scaled_to(mut self, num_vertices: usize) -> Self {
        self.num_vertices = num_vertices;
        self
    }

    /// Returns the same spec with a different average in-degree. Useful for
    /// keeping test graphs small and fast.
    pub fn with_avg_in_degree(mut self, avg_in_degree: f64) -> Self {
        self.avg_in_degree = avg_in_degree;
        self
    }

    /// Returns the same spec with a different feature width (e.g. to shrink
    /// the 602-wide Reddit features in quick tests).
    pub fn with_feature_dim(mut self, feature_dim: usize) -> Self {
        self.feature_dim = feature_dim;
        self
    }

    /// Target number of edges at the generated scale.
    pub fn target_edges(&self) -> usize {
        (self.num_vertices as f64 * self.avg_in_degree).round() as usize
    }

    /// Generates the full synthetic graph (topology + features + unit edge
    /// weights).
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError::InvalidSpec`] if the spec asks for zero
    /// vertices.
    pub fn generate(&self, seed: u64) -> Result<DynamicGraph> {
        self.generate_weighted(seed, false)
    }

    /// Generates the synthetic graph with random edge weights in `(0, 1]`,
    /// for the `weighted sum` aggregator workloads.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError::InvalidSpec`] if the spec asks for zero
    /// vertices.
    pub fn generate_weighted(&self, seed: u64, random_weights: bool) -> Result<DynamicGraph> {
        if self.num_vertices == 0 {
            return Err(crate::GraphError::InvalidSpec(
                "dataset must have at least one vertex".to_string(),
            ));
        }
        let config = PowerLawConfig {
            num_vertices: self.num_vertices,
            num_edges: self.target_edges(),
            skew: self.skew,
            seed,
        };
        let edges = powerlaw_edges(&config);
        let mut graph = if random_weights {
            use rand::rngs::SmallRng;
            use rand::{Rng, SeedableRng};
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
            let weighted: Vec<_> = edges
                .into_iter()
                .map(|(s, d)| (s, d, rng.gen_range(0.05f32..1.0)))
                .collect();
            DynamicGraph::from_weighted_edges(self.num_vertices, self.feature_dim, &weighted)?
        } else {
            DynamicGraph::from_edges(self.num_vertices, self.feature_dim, &edges)?
        };
        let features = init::normal_like(self.num_vertices, self.feature_dim, seed.wrapping_add(1));
        graph.set_features(features)?;
        Ok(graph)
    }

    /// One-line summary in the format of the paper's Table 3, reporting both
    /// the paper-scale and generated-scale statistics.
    pub fn table3_row(&self, generated: Option<&DynamicGraph>) -> String {
        let generated_part = match generated {
            Some(g) => format!(
                " | generated |V|={} |E|={} avg-in={:.1}",
                g.num_vertices(),
                g.num_edges(),
                g.avg_in_degree()
            ),
            None => String::new(),
        };
        format!(
            "{:<14} paper |V|={} |E|={} feats={} classes={} avg-in={:.1}{}",
            self.name,
            self.paper_num_vertices,
            self.paper_num_edges,
            self.feature_dim,
            self.num_classes,
            self.avg_in_degree,
            generated_part
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_have_paper_statistics() {
        for spec in [
            DatasetSpec::arxiv_like(),
            DatasetSpec::reddit_like(),
            DatasetSpec::products_like(),
            DatasetSpec::papers_like(),
        ] {
            assert!(spec.paper_num_vertices > 0);
            assert!(spec.paper_num_edges > 0);
            assert!(spec.num_classes > 1);
            assert!(spec.feature_dim > 0);
        }
    }

    #[test]
    fn arxiv_like_matches_paper_density() {
        let spec = DatasetSpec::arxiv_like().scaled_to(3000);
        let g = spec.generate(1).unwrap();
        assert_eq!(g.num_vertices(), 3000);
        // Within 20% of the target average in-degree.
        assert!(
            (g.avg_in_degree() - 6.9).abs() < 1.5,
            "avg in-degree {}",
            g.avg_in_degree()
        );
        assert_eq!(g.feature_dim(), 128);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::custom(500, 4.0, 8, 5);
        let a = spec.generate(9).unwrap();
        let b = spec.generate(9).unwrap();
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.features(), b.features());
    }

    #[test]
    fn weighted_generation_produces_non_unit_weights() {
        let spec = DatasetSpec::custom(300, 5.0, 4, 3);
        let g = spec.generate_weighted(2, true).unwrap();
        let has_non_unit = g.iter_edges().any(|(_, _, w)| (w - 1.0).abs() > 1e-6);
        assert!(has_non_unit);
        let all_positive = g.iter_edges().all(|(_, _, w)| w > 0.0);
        assert!(all_positive);
    }

    #[test]
    fn zero_vertices_rejected() {
        let spec = DatasetSpec::custom(0, 1.0, 4, 2);
        assert!(spec.generate(0).is_err());
    }

    #[test]
    fn scaled_to_and_with_methods() {
        let spec = DatasetSpec::products_like()
            .scaled_to(100)
            .with_avg_in_degree(3.0)
            .with_feature_dim(16);
        assert_eq!(spec.num_vertices, 100);
        assert_eq!(spec.target_edges(), 300);
        assert_eq!(spec.feature_dim, 16);
        assert_eq!(spec.kind, DatasetKind::Products);
    }

    #[test]
    fn table3_row_mentions_paper_and_generated() {
        let spec = DatasetSpec::arxiv_like()
            .scaled_to(200)
            .with_avg_in_degree(3.0);
        let g = spec.generate(0).unwrap();
        let row = spec.table3_row(Some(&g));
        assert!(row.contains("arxiv-like"));
        assert!(row.contains("169000"));
        assert!(row.contains("generated |V|=200"));
        let row_no_gen = spec.table3_row(None);
        assert!(!row_no_gen.contains("generated"));
    }

    #[test]
    fn dataset_kind_display() {
        assert_eq!(DatasetKind::Arxiv.to_string(), "arxiv");
        assert_eq!(DatasetKind::Reddit.to_string(), "reddit");
        assert_eq!(DatasetKind::Products.to_string(), "products");
        assert_eq!(DatasetKind::Papers.to_string(), "papers");
        assert_eq!(DatasetKind::Custom.to_string(), "custom");
    }
}
