//! Property-based tests of the dynamic graph substrate, CSR snapshots,
//! partitioners and the update-stream protocol.

use proptest::prelude::*;
use ripple_graph::partition::{BfsPartitioner, HashPartitioner, LdgPartitioner, Partitioner};
use ripple_graph::stream::{build_stream, StreamConfig};
use ripple_graph::synth::{powerlaw_edges, DatasetSpec, PowerLawConfig};
use ripple_graph::{DynamicGraph, GraphUpdate, VertexId};

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Applying a random sequence of valid edge additions/removals keeps the
    /// in/out adjacency lists mutually consistent.
    #[test]
    fn adjacency_stays_consistent(
        n in 3usize..30,
        ops in prop::collection::vec((any::<bool>(), 0u32..30, 0u32..30), 1..60),
    ) {
        let mut g = DynamicGraph::new(n, 2);
        for (add, a, b) in ops {
            let (src, dst) = (VertexId(a % n as u32), VertexId(b % n as u32));
            if src == dst { continue; }
            if add && !g.has_edge(src, dst) {
                g.add_edge(src, dst, 1.0).unwrap();
            } else if !add && g.has_edge(src, dst) {
                g.remove_edge(src, dst).unwrap();
            }
        }
        // Invariants: edge count equals the sum of out-degrees and the sum of
        // in-degrees; every out-edge has a matching in-edge.
        let out_sum: usize = (0..n).map(|v| g.out_degree(VertexId(v as u32))).sum();
        let in_sum: usize = (0..n).map(|v| g.in_degree(VertexId(v as u32))).sum();
        prop_assert_eq!(out_sum, g.num_edges());
        prop_assert_eq!(in_sum, g.num_edges());
        for (src, dst, _) in g.iter_edges() {
            prop_assert!(g.in_neighbors(dst).contains(&src));
        }
    }

    /// CSR snapshots preserve the adjacency structure exactly.
    #[test]
    fn csr_round_trip(seed in 0u64..500, n in 5usize..60, deg in 1.0f64..6.0) {
        let g = DatasetSpec::custom(n, deg, 2, 2).generate(seed).unwrap();
        let csr = g.to_csr();
        prop_assert_eq!(csr.num_edges(), g.num_edges());
        for v in csr.vertices() {
            let mut a: Vec<_> = csr.in_neighbors(v).to_vec();
            let mut b: Vec<_> = g.in_neighbors(v).to_vec();
            a.sort(); b.sort();
            prop_assert_eq!(a, b);
        }
    }

    /// Every partitioner assigns every vertex exactly once and keeps parts
    /// non-pathological.
    #[test]
    fn partitioners_cover_all_vertices(
        seed in 0u64..200,
        n in 20usize..120,
        parts in 2usize..6,
    ) {
        let g = DatasetSpec::custom(n, 4.0, 2, 2).generate(seed).unwrap();
        for p in [
            HashPartitioner::new().partition(&g, parts).unwrap(),
            LdgPartitioner::new().partition(&g, parts).unwrap(),
            BfsPartitioner::new().partition(&g, parts).unwrap(),
        ] {
            prop_assert_eq!(p.num_vertices(), n);
            prop_assert_eq!(p.part_sizes().iter().sum::<usize>(), n);
            prop_assert!(p.edge_cut(&g) <= g.num_edges());
            prop_assert!(p.balance_factor() >= 1.0 - 1e-9);
        }
    }

    /// The generated update stream is always applicable, in order, to its own
    /// snapshot, and the post-stream edge count is consistent with the
    /// add/delete counts.
    #[test]
    fn update_stream_is_applicable(seed in 0u64..200, total in 3usize..60) {
        let full = DatasetSpec::custom(120, 5.0, 4, 2).generate(seed).unwrap();
        let plan = build_stream(
            &full,
            &StreamConfig { holdout_fraction: 0.2, total_updates: total, seed },
        ).unwrap();
        let mut g = plan.snapshot.clone();
        let mut adds = 0i64;
        let mut dels = 0i64;
        for u in &plan.updates {
            match u {
                GraphUpdate::AddEdge { .. } => adds += 1,
                GraphUpdate::DeleteEdge { .. } => dels += 1,
                GraphUpdate::UpdateFeature { .. } => {}
            }
            g.apply(u).unwrap();
        }
        prop_assert_eq!(
            g.num_edges() as i64,
            plan.snapshot.num_edges() as i64 + adds - dels
        );
    }

    /// The power-law generator never emits self loops, duplicates or
    /// out-of-range endpoints.
    #[test]
    fn powerlaw_edges_are_well_formed(
        seed in 0u64..300,
        n in 4usize..200,
        edges in 1usize..400,
        skew in 0.0f64..1.2,
    ) {
        let config = PowerLawConfig { num_vertices: n, num_edges: edges, skew, seed };
        let generated = powerlaw_edges(&config);
        let mut seen = std::collections::HashSet::new();
        for (s, d) in &generated {
            prop_assert!(s.index() < n && d.index() < n);
            prop_assert_ne!(s, d);
            prop_assert!(seen.insert((*s, *d)));
        }
    }
}
