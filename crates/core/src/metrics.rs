//! Aggregate metrics over a processed update stream.
//!
//! The paper reports two headline metrics per (strategy, workload, graph,
//! batch size) cell: **throughput** in updates/second and **median batch
//! latency**. [`StreamSummary`] computes those (plus the affected-set and
//! operation counters used by the analysis figures) from a sequence of
//! per-batch [`BatchStats`].

use ripple_gnn::recompute::BatchStats;
use std::time::Duration;

/// Percentile of a slice of durations (nearest-rank). Returns zero for an
/// empty slice. `p` is clamped to `[0, 100]`.
pub fn percentile(durations: &[Duration], p: f64) -> Duration {
    if durations.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted: Vec<Duration> = durations.to_vec();
    sorted.sort();
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank]
}

/// Median of a slice of durations.
pub fn median(durations: &[Duration]) -> Duration {
    percentile(durations, 50.0)
}

/// Summary of a whole stream of processed batches for one strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSummary {
    /// Strategy name (e.g. "ripple", "rc", "drc").
    pub strategy: String,
    /// Number of batches processed.
    pub num_batches: usize,
    /// Total number of updates across all batches.
    pub total_updates: usize,
    /// Sum of all batch latencies (update + propagate).
    pub total_time: Duration,
    /// Median batch latency.
    pub median_latency: Duration,
    /// 95th-percentile batch latency.
    pub p95_latency: Duration,
    /// Throughput: total updates / total time, in updates per second.
    pub throughput: f64,
    /// Mean number of distinct vertices refreshed at the final hop per batch.
    pub mean_affected_final: f64,
    /// Mean propagation-tree size per batch.
    pub mean_propagation_tree: f64,
    /// Total neighbour-accumulate operations across the stream.
    pub total_aggregate_ops: usize,
    /// Total time spent in the update phase.
    pub total_update_time: Duration,
    /// Total time spent in the propagate phase.
    pub total_propagate_time: Duration,
}

impl StreamSummary {
    /// Builds a summary from per-batch statistics.
    pub fn from_stats(strategy: impl Into<String>, stats: &[BatchStats]) -> Self {
        let latencies: Vec<Duration> = stats.iter().map(BatchStats::total_time).collect();
        let total_time: Duration = latencies.iter().sum();
        let total_updates: usize = stats.iter().map(|s| s.batch_size).sum();
        let throughput = if total_time.is_zero() {
            f64::INFINITY
        } else {
            total_updates as f64 / total_time.as_secs_f64()
        };
        let mean = |f: &dyn Fn(&BatchStats) -> f64| -> f64 {
            if stats.is_empty() {
                0.0
            } else {
                stats.iter().map(f).sum::<f64>() / stats.len() as f64
            }
        };
        StreamSummary {
            strategy: strategy.into(),
            num_batches: stats.len(),
            total_updates,
            total_time,
            median_latency: median(&latencies),
            p95_latency: percentile(&latencies, 95.0),
            throughput,
            mean_affected_final: mean(&|s| s.affected_final as f64),
            mean_propagation_tree: mean(&|s| s.propagation_tree_size as f64),
            total_aggregate_ops: stats.iter().map(|s| s.aggregate_ops).sum(),
            total_update_time: stats.iter().map(|s| s.update_time).sum(),
            total_propagate_time: stats.iter().map(|s| s.propagate_time).sum(),
        }
    }

    /// One line in the format used by the experiment harness tables.
    pub fn table_row(&self) -> String {
        format!(
            "{:<8} batches={:<5} updates={:<7} thpt={:>10.1} up/s  median={:>9.3} ms  p95={:>9.3} ms  affected={:>8.1}",
            self.strategy,
            self.num_batches,
            self.total_updates,
            self.throughput,
            self.median_latency.as_secs_f64() * 1e3,
            self.p95_latency.as_secs_f64() * 1e3,
            self.mean_affected_final,
        )
    }
}

impl std::fmt::Display for StreamSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.table_row())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(update_ms: u64, propagate_ms: u64, batch: usize, affected: usize) -> BatchStats {
        BatchStats {
            update_time: Duration::from_millis(update_ms),
            propagate_time: Duration::from_millis(propagate_ms),
            affected_per_hop: vec![affected, affected],
            propagation_tree_size: affected * 2,
            affected_final: affected,
            aggregate_ops: affected * 3,
            batch_size: batch,
        }
    }

    #[test]
    fn percentile_and_median() {
        let d: Vec<Duration> = (1..=10).map(Duration::from_millis).collect();
        assert_eq!(median(&d), Duration::from_millis(6));
        assert_eq!(percentile(&d, 0.0), Duration::from_millis(1));
        assert_eq!(percentile(&d, 100.0), Duration::from_millis(10));
        assert_eq!(percentile(&[], 50.0), Duration::ZERO);
        assert_eq!(percentile(&d, 200.0), Duration::from_millis(10));
    }

    #[test]
    fn summary_aggregates_batches() {
        let all = vec![stats(1, 9, 10, 5), stats(2, 18, 10, 15), stats(1, 4, 10, 2)];
        let summary = StreamSummary::from_stats("ripple", &all);
        assert_eq!(summary.num_batches, 3);
        assert_eq!(summary.total_updates, 30);
        assert_eq!(summary.total_time, Duration::from_millis(35));
        assert_eq!(summary.median_latency, Duration::from_millis(10));
        assert!((summary.throughput - 30.0 / 0.035).abs() < 1.0);
        assert!((summary.mean_affected_final - (5.0 + 15.0 + 2.0) / 3.0).abs() < 1e-9);
        assert_eq!(summary.total_aggregate_ops, (5 + 15 + 2) * 3);
        assert_eq!(summary.total_update_time, Duration::from_millis(4));
        assert_eq!(summary.total_propagate_time, Duration::from_millis(31));
    }

    #[test]
    fn empty_stream_summary() {
        let summary = StreamSummary::from_stats("rc", &[]);
        assert_eq!(summary.num_batches, 0);
        assert_eq!(summary.total_updates, 0);
        assert!(summary.throughput.is_infinite());
        assert_eq!(summary.mean_affected_final, 0.0);
    }

    #[test]
    fn table_row_and_display_contain_strategy() {
        let summary = StreamSummary::from_stats("drc", &[stats(1, 1, 5, 1)]);
        assert!(summary.table_row().contains("drc"));
        assert!(summary.to_string().contains("up/s"));
    }
}
