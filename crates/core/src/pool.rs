//! A fixed-size worker pool with channel-free range stealing.
//!
//! The parallel engines shard the affected frontier of each hop into
//! contiguous chunks and let a fixed set of [`std::thread::scope`] workers
//! steal chunks off one shared atomic cursor — no channels, no locks, no
//! work queues. Each chunk's result is tagged with its chunk index, so the
//! caller gets results back **in chunk order** regardless of which worker
//! processed which chunk. That ordered reduction is what lets the parallel
//! engines commit results in exactly the serial engine's vertex order and
//! stay bit-identical to it.
//!
//! Scoped threads let the work closure borrow the caller's graph, model and
//! embedding store directly; the per-call spawn cost (a few tens of
//! microseconds per worker) is amortised over whole-hop frontiers, which is
//! why the engines fall back to inline execution for small frontiers.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fixed-size worker pool executing chunked parallel-for loops over scoped
/// threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl Default for WorkerPool {
    /// A single-threaded pool (runs everything inline on the caller).
    fn default() -> Self {
        WorkerPool::new(1)
    }
}

impl WorkerPool {
    /// Creates a pool of `threads` workers. A count of zero is clamped to 1.
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// Creates a pool sized to the host's available parallelism (1 if that
    /// cannot be determined).
    pub fn host_sized() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        WorkerPool::new(threads)
    }

    /// Number of workers in the pool.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Splits `0..num_items` into chunks of `chunk_size` and maps `work` over
    /// every chunk, returning the per-chunk results **in chunk order** (the
    /// order the chunks appear in the input range, not completion order).
    ///
    /// Workers steal the next chunk index from a shared atomic cursor until
    /// the range is exhausted. With one worker (or a single chunk) the loop
    /// runs inline on the caller thread — same results, no spawn cost.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero, or propagates a panic from `work`.
    pub fn map_chunks<T, F>(&self, num_items: usize, chunk_size: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Range<usize>) -> T + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        if num_items == 0 {
            return Vec::new();
        }
        let num_chunks = num_items.div_ceil(chunk_size);
        let chunk_range = |c: usize| {
            let start = c * chunk_size;
            start..(start + chunk_size).min(num_items)
        };
        if self.threads == 1 || num_chunks == 1 {
            return (0..num_chunks).map(|c| work(chunk_range(c))).collect();
        }

        let cursor = AtomicUsize::new(0);
        let workers = self.threads.min(num_chunks);
        let mut tagged: Vec<(usize, T)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut produced = Vec::new();
                        loop {
                            let c = cursor.fetch_add(1, Ordering::Relaxed);
                            if c >= num_chunks {
                                break;
                            }
                            produced.push((c, work(chunk_range(c))));
                        }
                        produced
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("pool worker panicked"))
                .collect()
        });
        // Ordered reduction: restore chunk order so callers can merge
        // deterministically.
        tagged.sort_unstable_by_key(|&(c, _)| c);
        tagged.into_iter().map(|(_, t)| t).collect()
    }

    /// A chunk size that splits `num_items` into a few chunks per worker
    /// (bounded below so tiny chunks never dominate on large frontiers).
    pub fn suggested_chunk_size(&self, num_items: usize) -> usize {
        num_items.div_ceil(self.threads * 4).max(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).threads(), 1);
        assert_eq!(WorkerPool::default().threads(), 1);
        assert!(WorkerPool::host_sized().threads() >= 1);
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        let pool = WorkerPool::new(4);
        let out: Vec<usize> = pool.map_chunks(0, 8, |r| r.len());
        assert!(out.is_empty());
    }

    #[test]
    fn chunks_cover_range_in_order() {
        for threads in [1, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let ranges: Vec<Range<usize>> = pool.map_chunks(103, 10, |r| r);
            assert_eq!(ranges.len(), 11);
            assert_eq!(ranges[0], 0..10);
            assert_eq!(ranges[10], 100..103);
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "chunks must be contiguous");
            }
        }
    }

    #[test]
    fn parallel_map_matches_serial_map() {
        let items: Vec<u64> = (0..500).collect();
        let serial: Vec<u64> =
            WorkerPool::new(1).map_chunks(items.len(), 7, |r| items[r].iter().map(|x| x * x).sum());
        let parallel: Vec<u64> =
            WorkerPool::new(8).map_chunks(items.len(), 7, |r| items[r].iter().map(|x| x * x).sum());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn more_workers_than_chunks_is_fine() {
        let pool = WorkerPool::new(16);
        let out: Vec<usize> = pool.map_chunks(5, 2, |r| r.start);
        assert_eq!(out, vec![0, 2, 4]);
    }

    #[test]
    fn suggested_chunk_size_has_floor_and_scales() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.suggested_chunk_size(10), 16);
        assert_eq!(pool.suggested_chunk_size(16_000), 1000);
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_size_panics() {
        WorkerPool::new(2).map_chunks::<(), _>(10, 0, |_| ());
    }
}
