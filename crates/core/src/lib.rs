//! The Ripple incremental streaming-GNN inference engine (paper §4).
//!
//! Ripple treats vertices as first-class entities that own their embeddings
//! and propagate changes strictly *forward* through the graph. When a batch
//! of updates arrives:
//!
//! 1. the **update** operator applies the topology/feature changes at hop 0
//!    and deposits *delta messages* into the hop-1 mailboxes of the affected
//!    sinks (`m = α·h_new − α·h_old`, so that the old contribution is undone
//!    and the new one applied in a single scaled add);
//! 2. the **propagate** operator then runs hop by hop: each affected vertex
//!    *applies* the messages accumulated in its hop-`l` mailbox to its stored
//!    raw aggregate, recomputes its hop-`l` embedding through the layer's
//!    `Update` function, and *computes* fresh delta messages for its
//!    out-neighbours' hop-`l+1` mailboxes.
//!
//! Compared with the layer-wise recompute baseline, the aggregation work per
//! affected vertex drops from `k` (its full in-degree) to `2·k'` (twice the
//! number of in-neighbours that actually changed), which is where all of the
//! paper's speed-ups come from. The computation is exact for every linear
//! aggregation function — verified against full re-inference by this crate's
//! tests and property tests.
//!
//! # Example
//!
//! ```
//! use ripple_core::{RippleEngine, RippleConfig};
//! use ripple_gnn::{Workload, layer_wise};
//! use ripple_graph::{GraphUpdate, UpdateBatch, VertexId};
//! use ripple_graph::synth::DatasetSpec;
//!
//! // Bootstrap: generate a graph and pre-compute all embeddings.
//! let graph = DatasetSpec::custom(200, 5.0, 8, 4).generate(1).unwrap();
//! let model = Workload::GcS.build_model(8, 16, 4, 2, 7).unwrap();
//! let store = layer_wise::full_inference(&graph, &model).unwrap();
//!
//! // Stream a batch of updates through the incremental engine.
//! let mut engine = RippleEngine::new(graph, model, store, RippleConfig::default()).unwrap();
//! let batch = UpdateBatch::from_updates(vec![
//!     GraphUpdate::add_edge(VertexId(3), VertexId(10)),
//!     GraphUpdate::update_feature(VertexId(5), vec![0.5; 8]),
//! ]);
//! let stats = engine.process_batch(&batch).unwrap();
//! assert_eq!(stats.batch_size, 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod engine;
pub mod error;
pub mod footprint;
pub mod mailbox;
pub mod message;
pub mod metrics;
pub mod parallel;
pub mod shard;

pub use batch::{StreamRunner, StreamingEngine};
pub use engine::{RippleConfig, RippleEngine};
pub use error::RippleError;
pub use footprint::Footprint;
pub use mailbox::{MailArena, MailboxSet};
pub use message::{DeltaMessage, HaloStubs};
pub use metrics::StreamSummary;
pub use parallel::{evaluate_frontier, evaluate_frontier_into, ParallelRippleEngine};
/// Re-export of the worker pool, which now lives at the bottom of the
/// compute stack so batched inference can shard over it too.
pub use ripple_tensor::{pool, Scratch, WorkerPool};
pub use shard::ShardEngine;

/// Re-export of the per-batch statistics shared with the recompute baselines.
pub use ripple_gnn::recompute::BatchStats;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RippleError>;
