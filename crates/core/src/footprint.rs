//! Read/write footprints of coalesced update windows (paper §5's
//! conflict-tracking admission).
//!
//! A [`Footprint`] is the set of store rows a window's engine pass may touch:
//! the hop-0 vertices of the batch (feature-rewritten vertices, edge
//! endpoints) plus the k-hop affected cone computed by
//! [`ripple_gnn::recompute::affected_hops`] on the pre-apply topology. Two
//! windows whose footprints are disjoint commute — the update operator
//! mutates disjoint adjacency rows, every mailbox deposit lands in exactly
//! one window's cone, and re-evaluation reads only a vertex's own aggregate
//! row, own previous-layer embedding and own in-degree — so they can be
//! admitted into one merged engine pass and still commit bit-identically to
//! sequential execution (see [`crate::StreamingEngine::process_windows`]).
//!
//! Intersection tests are two-tier, after the exemplar's footprint machinery:
//! a 64-bit occupancy mask (`bit = v mod 64`) answers most disjoint pairs in
//! one `AND`, and only mask collisions fall through to the exact merge-walk
//! over the sorted vertex sets.
//!
//! The cone is computed **before** the window applies, which is sound under
//! staged admission: a cone can only reach through an edge added by an
//! earlier still-staged window via that edge's source vertex, which sits in
//! the adding window's write set — so the pair is flagged as a conflict and
//! never merged. Deleted edges merely over-approximate the cone.

use ripple_gnn::recompute::affected_hops;
use ripple_gnn::GnnModel;
use ripple_graph::{GraphView, UpdateBatch, VertexId};

/// The rows a coalesced window may read or write, as sorted vertex sets
/// behind a 64-bit occupancy-mask prefilter.
///
/// For the Ripple engine family every consulted row is also a written row
/// (aggregates are delta-maintained, so re-evaluation never scans unchanged
/// neighbours); `reads` holds rows that are consulted but never mutated and
/// is empty for windows built by [`Footprint::for_batch`]. Both sets
/// participate in [`Footprint::intersects`], so an engine with genuine
/// read-only rows can extend the footprint without changing the admission
/// logic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Occupancy mask over both sets: bit `v mod 64` of every member vertex.
    mask: u64,
    /// Rows the window's engine pass may mutate, sorted ascending.
    writes: Vec<VertexId>,
    /// Rows consulted but never mutated, sorted ascending.
    reads: Vec<VertexId>,
}

impl Footprint {
    /// An empty footprint (a fully-cancelled window touches nothing and is
    /// disjoint with every other window).
    pub fn empty() -> Self {
        Footprint::default()
    }

    /// Builds the footprint of one coalesced window against the pre-apply
    /// topology: hop-0 touched vertices (feature targets, edge endpoints)
    /// unioned with every hop of the model's affected cone.
    pub fn for_batch<G: GraphView + ?Sized>(
        graph: &G,
        model: &GnnModel,
        batch: &UpdateBatch,
    ) -> Self {
        if batch.is_empty() {
            return Footprint::empty();
        }
        let mut writes: Vec<VertexId> = Vec::new();
        for update in batch.iter() {
            writes.push(update.hop0_vertex());
            if let Some(sink) = update.sink_vertex() {
                writes.push(sink);
            }
        }
        for hop in affected_hops(graph, model, batch) {
            writes.extend(hop);
        }
        Footprint::from_writes(writes)
    }

    /// Builds a footprint from an unsorted write set (dedup + sort + mask).
    pub fn from_writes(mut writes: Vec<VertexId>) -> Self {
        writes.sort_unstable();
        writes.dedup();
        let mask = occupancy(&writes);
        Footprint {
            mask,
            writes,
            reads: Vec::new(),
        }
    }

    /// Extends the write set with `seeds` and their out-cone up to `depth`
    /// hops — the sharded tier's halo extension: a delta deposited at hop
    /// `h` into an owned target re-evaluates the target and fans out to its
    /// out-neighbours at every later hop, so the deposit's whole forward
    /// cone joins the window's footprint.
    pub fn extend_cone<G: GraphView + ?Sized>(
        &mut self,
        graph: &G,
        depth: usize,
        seeds: impl IntoIterator<Item = VertexId>,
    ) {
        let mut frontier: Vec<VertexId> = seeds
            .into_iter()
            .filter(|&v| graph.contains_vertex(v))
            .collect();
        let mut grown: Vec<VertexId> = frontier.clone();
        for _ in 0..depth {
            let mut next = Vec::new();
            for &u in &frontier {
                next.extend_from_slice(graph.out_neighbors(u));
            }
            next.sort_unstable();
            next.dedup();
            grown.extend_from_slice(&next);
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        self.writes.extend(grown);
        self.writes.sort_unstable();
        self.writes.dedup();
        self.mask = occupancy(&self.writes) | occupancy(&self.reads);
    }

    /// The sorted write set.
    pub fn writes(&self) -> &[VertexId] {
        &self.writes
    }

    /// The sorted read-only set.
    pub fn reads(&self) -> &[VertexId] {
        &self.reads
    }

    /// `true` when the footprint touches no rows.
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty() && self.reads.is_empty()
    }

    /// Conflict test: `true` when the two windows may touch a common row —
    /// write/write, write/read or read/write (read/read overlap is
    /// harmless). The occupancy mask answers most disjoint pairs in one
    /// `AND`; only mask collisions pay for the exact sorted merge-walk.
    pub fn intersects(&self, other: &Footprint) -> bool {
        if self.mask & other.mask == 0 {
            return false;
        }
        sorted_intersect(&self.writes, &other.writes)
            || sorted_intersect(&self.writes, &other.reads)
            || sorted_intersect(&self.reads, &other.writes)
    }

    /// `true` when the windows commute (no conflicting row).
    pub fn disjoint(&self, other: &Footprint) -> bool {
        !self.intersects(other)
    }

    /// Intersects a sorted candidate row list with the write set, appending
    /// the common rows to `out` — how a merged pass's union dirty set is
    /// partitioned back into per-window dirty sets at commit time.
    pub fn intersect_sorted_into(&self, rows: &[VertexId], out: &mut Vec<VertexId>) {
        let (mut i, mut j) = (0, 0);
        while i < rows.len() && j < self.writes.len() {
            match rows[i].cmp(&self.writes[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(rows[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

/// One occupancy bit per vertex: `v mod 64`.
fn occupancy(vertices: &[VertexId]) -> u64 {
    vertices
        .iter()
        .fold(0u64, |mask, v| mask | (1u64 << (v.0 & 63)))
}

/// Exact merge-walk over two sorted vertex sets.
fn sorted_intersect(a: &[VertexId], b: &[VertexId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_gnn::Workload;
    use ripple_graph::synth::DatasetSpec;
    use ripple_graph::{DynamicGraph, GraphUpdate};

    fn line_graph(n: usize) -> DynamicGraph {
        // 0 -> 1 -> 2 -> ... -> n-1: cones are intervals, easy to reason
        // about.
        let mut g = DynamicGraph::new(n, 4);
        for v in 0..n - 1 {
            g.add_edge(VertexId(v as u32), VertexId(v as u32 + 1), 1.0)
                .unwrap();
        }
        g
    }

    fn model() -> GnnModel {
        Workload::GcS.build_model(4, 8, 4, 2, 7).unwrap()
    }

    #[test]
    fn feature_update_footprint_covers_the_forward_cone() {
        let g = line_graph(10);
        let m = model();
        let batch =
            UpdateBatch::from_updates(vec![GraphUpdate::update_feature(VertexId(2), vec![0.5; 4])]);
        let fp = Footprint::for_batch(&g, &m, &batch);
        // 2 layers: the cone of vertex 2 on a line is {2, 3, 4}.
        assert!(fp.writes().contains(&VertexId(2)));
        assert!(fp.writes().contains(&VertexId(3)));
        assert!(fp.writes().contains(&VertexId(4)));
        assert!(!fp.writes().contains(&VertexId(5)));
        assert!(!fp.writes().contains(&VertexId(1)));
    }

    #[test]
    fn distant_windows_are_disjoint_and_neighbours_conflict() {
        let g = line_graph(200);
        let m = model();
        let near = |v: u32| {
            Footprint::for_batch(
                &g,
                &m,
                &UpdateBatch::from_updates(vec![GraphUpdate::update_feature(
                    VertexId(v),
                    vec![0.1; 4],
                )]),
            )
        };
        let a = near(10);
        let b = near(100);
        let c = near(11); // cone {11,12,13} overlaps a's {10,11,12}
        assert!(a.disjoint(&b));
        assert!(b.disjoint(&a));
        assert!(a.intersects(&c));
        assert!(c.intersects(&a));
    }

    #[test]
    fn mask_collision_falls_through_to_the_exact_walk() {
        // Vertices 1 and 65 share occupancy bit 1 but are distinct rows:
        // the mask collides, the exact walk must still say disjoint.
        let a = Footprint::from_writes(vec![VertexId(1)]);
        let b = Footprint::from_writes(vec![VertexId(65)]);
        assert_eq!(a.mask & b.mask, 1 << 1);
        assert!(a.disjoint(&b));
        let c = Footprint::from_writes(vec![VertexId(65), VertexId(1)]);
        assert!(a.intersects(&c));
    }

    #[test]
    fn edge_update_footprint_includes_both_endpoints() {
        let g = line_graph(10);
        let m = model();
        let batch =
            UpdateBatch::from_updates(vec![GraphUpdate::add_edge(VertexId(0), VertexId(5))]);
        let fp = Footprint::for_batch(&g, &m, &batch);
        assert!(fp.writes().contains(&VertexId(0)), "source row is mutated");
        assert!(fp.writes().contains(&VertexId(5)), "sink joins every hop");
        // The sink's own forward cone is affected at hop 2.
        assert!(fp.writes().contains(&VertexId(6)));
    }

    #[test]
    fn empty_window_is_disjoint_with_everything() {
        let g = line_graph(10);
        let m = model();
        let fp = Footprint::for_batch(&g, &m, &UpdateBatch::new());
        assert!(fp.is_empty());
        let other = Footprint::from_writes((0..10).map(VertexId).collect());
        assert!(fp.disjoint(&other));
        assert!(other.disjoint(&fp));
    }

    #[test]
    fn cone_extension_grows_the_write_set_along_out_edges() {
        let g = line_graph(10);
        let mut fp = Footprint::from_writes(vec![VertexId(0)]);
        fp.extend_cone(&g, 2, [VertexId(4)]);
        assert_eq!(
            fp.writes(),
            &[VertexId(0), VertexId(4), VertexId(5), VertexId(6)]
        );
        // The refreshed mask keeps the prefilter sound.
        let probe = Footprint::from_writes(vec![VertexId(6)]);
        assert!(fp.intersects(&probe));
    }

    #[test]
    fn dirty_partitioning_recovers_the_per_window_rows() {
        let fp = Footprint::from_writes(vec![VertexId(2), VertexId(5), VertexId(9)]);
        let merged_dirty: Vec<VertexId> = [1u32, 2, 3, 5, 8].map(VertexId).to_vec();
        let mut own = Vec::new();
        fp.intersect_sorted_into(&merged_dirty, &mut own);
        assert_eq!(own, vec![VertexId(2), VertexId(5)]);
    }

    #[test]
    fn real_dataset_footprints_stay_sorted_and_deduped() {
        let g = DatasetSpec::custom(120, 4.0, 4, 4).generate(3).unwrap();
        let m = model();
        let batch = UpdateBatch::from_updates(vec![
            GraphUpdate::update_feature(VertexId(7), vec![0.2; 4]),
            GraphUpdate::add_edge(VertexId(3), VertexId(90)),
        ]);
        let fp = Footprint::for_batch(&g, &m, &batch);
        assert!(fp.writes().windows(2).all(|w| w[0] < w[1]));
        assert!(fp.intersects(&fp));
    }
}
