//! Uniform driver for streaming-inference strategies.
//!
//! The evaluation compares several strategies (Ripple, RC, DRC-style,
//! vertex-wise) over identical update streams. [`StreamingEngine`] gives them
//! one interface and [`StreamRunner`] replays a stream of batches through any
//! of them, collecting the per-batch statistics that the experiment harness
//! and Criterion benchmarks consume.

use crate::engine::RippleEngine;
use crate::metrics::StreamSummary;
use crate::parallel::ParallelRippleEngine;
use crate::{Result, RippleError};
use ripple_gnn::recompute::{vertex_wise_recompute_batch, BatchStats, RecomputeEngine};
use ripple_gnn::{EmbeddingStore, GnnModel};
use ripple_graph::{DynamicGraph, UpdateBatch, VertexId};

/// A strategy that consumes update batches and keeps predictions fresh.
pub trait StreamingEngine {
    /// Applies one batch of updates and refreshes all affected embeddings.
    ///
    /// # Errors
    ///
    /// Implementations return an error if an update is invalid for the
    /// current graph state or an internal computation fails.
    fn process_batch(&mut self, batch: &UpdateBatch) -> Result<BatchStats>;

    /// Short strategy name used in reports ("ripple", "rc", "drc", "dnc").
    fn strategy_name(&self) -> &'static str;

    /// The embedding store holding the current predictions.
    fn current_store(&self) -> &EmbeddingStore;

    /// The current graph (after all processed batches).
    fn current_graph(&self) -> &DynamicGraph;

    /// The engine's topology epoch: how many update batches its topology
    /// snapshot has absorbed. Engines without an epoch-versioned snapshot
    /// (the recompute baselines) report 0; the serving layer publishes this
    /// next to the embedding epoch so readers can expose topology staleness.
    fn topology_epoch(&self) -> u64 {
        0
    }

    /// The vertices whose store rows changed in the last processed batch
    /// (sorted, deduplicated), or `None` when the engine does not track
    /// them. The serving layer uses this for O(affected) dirty-row epoch
    /// publication; `None` falls back to a full-store refresh.
    fn dirty_rows(&self) -> Option<&[ripple_graph::VertexId]> {
        None
    }

    /// Replaces the engine's graph and embedding store with externally
    /// restored state (a durability checkpoint) and resumes the topology
    /// epoch at `topology_epoch`. Per-batch scratch state is reset; the
    /// model and configuration are the ones the engine was built with.
    ///
    /// # Errors
    ///
    /// Returns an error if the restored parts do not fit the engine's
    /// model, or (the default) if the engine does not support restoration.
    fn restore_state(
        &mut self,
        graph: DynamicGraph,
        store: EmbeddingStore,
        topology_epoch: u64,
    ) -> Result<()> {
        let _ = (graph, store, topology_epoch);
        Err(RippleError::Mismatch(format!(
            "the {} engine does not support checkpoint restore",
            self.strategy_name()
        )))
    }

    /// The model the engine evaluates, when it exposes one. The admission
    /// layer needs it to compute window footprints (cone depth, self
    /// dependence); engines that return `None` simply never merge windows.
    fn model(&self) -> Option<&GnnModel> {
        None
    }

    /// Applies a group of **pairwise footprint-disjoint** windows and
    /// returns the union of the rows they dirtied (sorted, deduplicated),
    /// or `None` when the engine does not track dirty rows.
    ///
    /// The observable result — store rows, graph, topology epoch — must be
    /// bit-identical to calling [`StreamingEngine::process_batch`] once per
    /// window in order, and the topology epoch must advance once per
    /// non-empty window either way. The default does exactly that sequential
    /// replay; the Ripple engines override it with a single merged pass over
    /// the concatenated batch, which is where disjoint windows actually
    /// share propagation work (see `ripple_core::footprint`). Callers are
    /// responsible for the disjointness precondition: merged execution of
    /// conflicting windows is **not** bit-identical (a later window's edge
    /// snapshots would predate an earlier window's writes).
    ///
    /// # Errors
    ///
    /// Propagates the first engine error; windows before it are applied.
    fn process_windows(&mut self, windows: &[UpdateBatch]) -> Result<Option<Vec<VertexId>>> {
        let mut dirty: Option<Vec<VertexId>> = Some(Vec::new());
        for batch in windows {
            if batch.is_empty() {
                continue;
            }
            self.process_batch(batch)?;
            match (self.dirty_rows(), &mut dirty) {
                (Some(rows), Some(acc)) => acc.extend_from_slice(rows),
                _ => dirty = None,
            }
        }
        if let Some(acc) = &mut dirty {
            acc.sort_unstable();
            acc.dedup();
        }
        Ok(dirty)
    }
}

impl<T: StreamingEngine + ?Sized> StreamingEngine for Box<T> {
    fn process_batch(&mut self, batch: &UpdateBatch) -> Result<BatchStats> {
        (**self).process_batch(batch)
    }

    fn strategy_name(&self) -> &'static str {
        (**self).strategy_name()
    }

    fn current_store(&self) -> &EmbeddingStore {
        (**self).current_store()
    }

    fn current_graph(&self) -> &DynamicGraph {
        (**self).current_graph()
    }

    fn topology_epoch(&self) -> u64 {
        (**self).topology_epoch()
    }

    fn dirty_rows(&self) -> Option<&[ripple_graph::VertexId]> {
        (**self).dirty_rows()
    }

    fn restore_state(
        &mut self,
        graph: DynamicGraph,
        store: EmbeddingStore,
        topology_epoch: u64,
    ) -> Result<()> {
        (**self).restore_state(graph, store, topology_epoch)
    }

    fn model(&self) -> Option<&GnnModel> {
        (**self).model()
    }

    fn process_windows(&mut self, windows: &[UpdateBatch]) -> Result<Option<Vec<VertexId>>> {
        (**self).process_windows(windows)
    }
}

impl StreamingEngine for RippleEngine {
    fn process_batch(&mut self, batch: &UpdateBatch) -> Result<BatchStats> {
        RippleEngine::process_batch(self, batch)
    }

    fn strategy_name(&self) -> &'static str {
        "ripple"
    }

    fn current_store(&self) -> &EmbeddingStore {
        self.store()
    }

    fn current_graph(&self) -> &DynamicGraph {
        self.graph()
    }

    fn topology_epoch(&self) -> u64 {
        RippleEngine::topology_epoch(self)
    }

    fn dirty_rows(&self) -> Option<&[ripple_graph::VertexId]> {
        Some(RippleEngine::dirty_rows(self))
    }

    fn restore_state(
        &mut self,
        graph: DynamicGraph,
        store: EmbeddingStore,
        topology_epoch: u64,
    ) -> Result<()> {
        RippleEngine::restore_state(self, graph, store, topology_epoch)
    }

    fn model(&self) -> Option<&GnnModel> {
        Some(RippleEngine::model(self))
    }

    fn process_windows(&mut self, windows: &[UpdateBatch]) -> Result<Option<Vec<VertexId>>> {
        RippleEngine::process_windows(self, windows).map(Some)
    }
}

impl StreamingEngine for ParallelRippleEngine {
    fn process_batch(&mut self, batch: &UpdateBatch) -> Result<BatchStats> {
        ParallelRippleEngine::process_batch(self, batch)
    }

    fn strategy_name(&self) -> &'static str {
        "ripple-par"
    }

    fn current_store(&self) -> &EmbeddingStore {
        self.store()
    }

    fn current_graph(&self) -> &DynamicGraph {
        self.graph()
    }

    fn topology_epoch(&self) -> u64 {
        ParallelRippleEngine::topology_epoch(self)
    }

    fn dirty_rows(&self) -> Option<&[ripple_graph::VertexId]> {
        Some(ParallelRippleEngine::dirty_rows(self))
    }

    fn restore_state(
        &mut self,
        graph: DynamicGraph,
        store: EmbeddingStore,
        topology_epoch: u64,
    ) -> Result<()> {
        ParallelRippleEngine::restore_state(self, graph, store, topology_epoch)
    }

    fn model(&self) -> Option<&GnnModel> {
        Some(ParallelRippleEngine::model(self))
    }

    fn process_windows(&mut self, windows: &[UpdateBatch]) -> Result<Option<Vec<VertexId>>> {
        ParallelRippleEngine::process_windows(self, windows).map(Some)
    }
}

impl StreamingEngine for RecomputeEngine {
    fn process_batch(&mut self, batch: &UpdateBatch) -> Result<BatchStats> {
        RecomputeEngine::process_batch(self, batch).map_err(RippleError::from)
    }

    fn strategy_name(&self) -> &'static str {
        // The engine's config decides whether it behaves like RC or DRC; the
        // runner lets callers override the label, so a single name here is
        // only the default.
        "rc"
    }

    fn current_store(&self) -> &EmbeddingStore {
        self.store()
    }

    fn current_graph(&self) -> &DynamicGraph {
        self.graph()
    }
}

/// The vertex-wise (DNC-style) strategy wrapped as a [`StreamingEngine`].
///
/// Kept separate from the layer-wise engines because its per-batch cost grows
/// with the product of in-degrees across hops; the Fig 8 experiment is the
/// only place it is used.
#[derive(Debug, Clone)]
pub struct VertexWiseEngine {
    graph: DynamicGraph,
    model: GnnModel,
    store: EmbeddingStore,
}

impl VertexWiseEngine {
    /// Creates the vertex-wise strategy from bootstrapped state.
    pub fn new(graph: DynamicGraph, model: GnnModel, store: EmbeddingStore) -> Self {
        VertexWiseEngine {
            graph,
            model,
            store,
        }
    }
}

impl StreamingEngine for VertexWiseEngine {
    fn process_batch(&mut self, batch: &UpdateBatch) -> Result<BatchStats> {
        vertex_wise_recompute_batch(&mut self.graph, &self.model, &mut self.store, batch)
            .map_err(RippleError::from)
    }

    fn strategy_name(&self) -> &'static str {
        "dnc"
    }

    fn current_store(&self) -> &EmbeddingStore {
        &self.store
    }

    fn current_graph(&self) -> &DynamicGraph {
        &self.graph
    }
}

/// Replays a stream of batches through a [`StreamingEngine`], collecting
/// per-batch statistics and a summary.
#[derive(Debug, Default)]
pub struct StreamRunner {
    per_batch: Vec<BatchStats>,
}

impl StreamRunner {
    /// Creates an empty runner.
    pub fn new() -> Self {
        StreamRunner {
            per_batch: Vec::new(),
        }
    }

    /// Processes every batch in order through `engine`, recording statistics.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first engine error.
    pub fn run<E: StreamingEngine + ?Sized>(
        &mut self,
        engine: &mut E,
        batches: &[UpdateBatch],
    ) -> Result<()> {
        self.per_batch.reserve(batches.len());
        for batch in batches {
            let stats = engine.process_batch(batch)?;
            self.per_batch.push(stats);
        }
        Ok(())
    }

    /// Per-batch statistics recorded so far.
    pub fn batch_stats(&self) -> &[BatchStats] {
        &self.per_batch
    }

    /// Builds a summary with the given strategy label.
    pub fn summary(&self, strategy: impl Into<String>) -> StreamSummary {
        StreamSummary::from_stats(strategy, &self.per_batch)
    }

    /// Convenience: run a stream through an engine and return the summary in
    /// one call.
    ///
    /// # Errors
    ///
    /// Propagates the first engine error.
    pub fn run_to_summary<E: StreamingEngine + ?Sized>(
        engine: &mut E,
        batches: &[UpdateBatch],
        strategy: impl Into<String>,
    ) -> Result<StreamSummary> {
        let mut runner = StreamRunner::new();
        runner.run(engine, batches)?;
        Ok(runner.summary(strategy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RippleConfig;
    use ripple_gnn::layer_wise::full_inference;
    use ripple_gnn::recompute::RecomputeConfig;
    use ripple_gnn::Workload;
    use ripple_graph::stream::{build_stream, StreamConfig};
    use ripple_graph::synth::DatasetSpec;

    fn setup() -> (DynamicGraph, GnnModel, EmbeddingStore, Vec<UpdateBatch>) {
        let full = DatasetSpec::custom(120, 5.0, 6, 4).generate(2).unwrap();
        let plan = build_stream(
            &full,
            &StreamConfig {
                total_updates: 45,
                seed: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let model = Workload::GcS.build_model(6, 8, 4, 2, 1).unwrap();
        let store = full_inference(&plan.snapshot, &model).unwrap();
        let batches = plan.batches(15);
        (plan.snapshot, model, store, batches)
    }

    #[test]
    fn all_strategies_agree_on_final_predictions() {
        let (graph, model, store, batches) = setup();
        let mut ripple = RippleEngine::new(
            graph.clone(),
            model.clone(),
            store.clone(),
            RippleConfig::default(),
        )
        .unwrap();
        let mut rc = RecomputeEngine::new(
            graph.clone(),
            model.clone(),
            store.clone(),
            RecomputeConfig::rc(),
        )
        .unwrap();
        let mut dnc = VertexWiseEngine::new(graph, model, store);

        let mut runner = StreamRunner::new();
        runner.run(&mut ripple, &batches).unwrap();
        StreamRunner::run_to_summary(&mut rc, &batches, "rc").unwrap();
        StreamRunner::run_to_summary(&mut dnc, &batches, "dnc").unwrap();

        let final_diff = ripple
            .current_store()
            .max_final_diff(rc.current_store())
            .unwrap();
        assert!(final_diff < 2e-3, "ripple vs rc diff {final_diff}");
        let dnc_diff = rc
            .current_store()
            .max_final_diff(dnc.current_store())
            .unwrap();
        assert!(dnc_diff < 2e-3, "rc vs dnc diff {dnc_diff}");
        assert_eq!(
            ripple.current_graph().num_edges(),
            rc.current_graph().num_edges()
        );
    }

    #[test]
    fn runner_collects_stats_and_summary() {
        let (graph, model, store, batches) = setup();
        let mut ripple = RippleEngine::new(graph, model, store, RippleConfig::default()).unwrap();
        let mut runner = StreamRunner::new();
        runner.run(&mut ripple, &batches).unwrap();
        assert_eq!(runner.batch_stats().len(), batches.len());
        let summary = runner.summary("ripple");
        assert_eq!(summary.strategy, "ripple");
        assert_eq!(summary.total_updates, 45);
        assert!(summary.throughput > 0.0);
    }

    #[test]
    fn strategy_names_are_distinct() {
        let (graph, model, store, _) = setup();
        let ripple = RippleEngine::new(
            graph.clone(),
            model.clone(),
            store.clone(),
            RippleConfig::default(),
        )
        .unwrap();
        let rc = RecomputeEngine::new(
            graph.clone(),
            model.clone(),
            store.clone(),
            RecomputeConfig::rc(),
        )
        .unwrap();
        let dnc = VertexWiseEngine::new(graph, model, store);
        assert_eq!(ripple.strategy_name(), "ripple");
        assert_eq!(rc.strategy_name(), "rc");
        assert_eq!(dnc.strategy_name(), "dnc");
    }

    #[test]
    fn merged_disjoint_windows_match_sequential_replay_bit_for_bit() {
        use crate::Footprint;
        use ripple_graph::{GraphUpdate, VertexId};
        // A long line graph gives interval-shaped cones, so windows far
        // apart are provably footprint-disjoint.
        let n = 64usize;
        let mut graph = DynamicGraph::new(n, 6);
        for v in 0..n - 1 {
            graph
                .add_edge(VertexId(v as u32), VertexId(v as u32 + 1), 1.0)
                .unwrap();
        }
        let model = Workload::GcS.build_model(6, 8, 4, 2, 1).unwrap();
        let store = full_inference(&graph, &model).unwrap();
        let windows = vec![
            UpdateBatch::from_updates(vec![GraphUpdate::update_feature(VertexId(2), vec![0.9; 6])]),
            UpdateBatch::new(), // a fully-cancelled window merges as a no-op
            UpdateBatch::from_updates(vec![
                GraphUpdate::update_feature(VertexId(20), vec![-0.4; 6]),
                GraphUpdate::add_edge(VertexId(24), VertexId(22)),
            ]),
            UpdateBatch::from_updates(vec![GraphUpdate::delete_edge(VertexId(40), VertexId(41))]),
        ];
        for pair in windows
            .iter()
            .filter(|w| !w.is_empty())
            .collect::<Vec<_>>()
            .windows(2)
        {
            let a = Footprint::for_batch(&graph, &model, pair[0]);
            let b = Footprint::for_batch(&graph, &model, pair[1]);
            assert!(a.disjoint(&b), "test windows must be disjoint");
        }

        let mut serial = RippleEngine::new(
            graph.clone(),
            model.clone(),
            store.clone(),
            RippleConfig::default(),
        )
        .unwrap();
        let mut serial_dirty = Vec::new();
        for window in windows.iter().filter(|w| !w.is_empty()) {
            serial.process_batch(window).unwrap();
            serial_dirty.extend_from_slice(RippleEngine::dirty_rows(&serial));
        }
        serial_dirty.sort_unstable();
        serial_dirty.dedup();

        let mut merged = RippleEngine::new(
            graph.clone(),
            model.clone(),
            store.clone(),
            RippleConfig::default(),
        )
        .unwrap();
        let merged_dirty = merged.process_windows(&windows).unwrap();

        assert!(merged.store() == serial.store(), "stores diverged");
        assert!(merged.graph() == serial.graph(), "graphs diverged");
        assert_eq!(merged.topology_epoch(), serial.topology_epoch());
        assert_eq!(merged_dirty, serial_dirty);

        // The parallel engine upholds the same contract.
        let mut par = ParallelRippleEngine::new(
            graph.clone(),
            model.clone(),
            store.clone(),
            RippleConfig::default(),
            2,
        )
        .unwrap();
        let par_dirty = par.process_windows(&windows).unwrap();
        assert!(par.store() == serial.store(), "parallel store diverged");
        assert_eq!(par.topology_epoch(), serial.topology_epoch());
        assert_eq!(par_dirty, serial_dirty);

        // Box forwarding reaches the override, and the trait-default
        // sequential fallback (an engine without dirty tracking) stays
        // correct while reporting `None` for the union dirty set.
        let mut boxed: Box<dyn StreamingEngine> = Box::new(
            RippleEngine::new(
                graph.clone(),
                model.clone(),
                store.clone(),
                RippleConfig::default(),
            )
            .unwrap(),
        );
        let boxed_dirty = boxed.process_windows(&windows).unwrap().unwrap();
        assert!(boxed.current_store() == serial.store());
        assert_eq!(boxed.topology_epoch(), serial.topology_epoch());
        assert_eq!(boxed_dirty, serial_dirty);

        let mut rc = RecomputeEngine::new(graph, model, store, RecomputeConfig::rc()).unwrap();
        let rc_dirty = rc.process_windows(&windows).unwrap();
        assert!(rc_dirty.is_none(), "rc does not track dirty rows");
        let diff = rc.current_store().max_final_diff(serial.store()).unwrap();
        assert!(diff < 2e-3, "fallback replay diverged: {diff}");
    }

    #[test]
    fn runner_stops_on_error() {
        let (graph, model, store, _) = setup();
        let mut ripple =
            RippleEngine::new(graph.clone(), model, store, RippleConfig::default()).unwrap();
        let n = graph.num_vertices() as u32;
        let bad = vec![UpdateBatch::from_updates(vec![
            ripple_graph::GraphUpdate::update_feature(ripple_graph::VertexId(n + 1), vec![0.0; 6]),
        ])];
        let mut runner = StreamRunner::new();
        assert!(runner.run(&mut ripple, &bad).is_err());
        assert!(runner.batch_stats().is_empty());
    }
}
