//! Error type for the incremental engine.

use std::fmt;

/// Errors produced by the Ripple incremental engine.
#[derive(Debug, Clone, PartialEq)]
pub enum RippleError {
    /// The engine was constructed from mismatched graph/model/store parts.
    Mismatch(String),
    /// A streamed update was invalid for the current graph state (e.g.
    /// deleting an edge that does not exist).
    InvalidUpdate(String),
    /// An underlying GNN model/inference error.
    Gnn(ripple_gnn::GnnError),
    /// An underlying graph error.
    Graph(ripple_graph::GraphError),
    /// An underlying tensor error.
    Tensor(ripple_tensor::TensorError),
}

impl fmt::Display for RippleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RippleError::Mismatch(msg) => write!(f, "engine construction mismatch: {msg}"),
            RippleError::InvalidUpdate(msg) => write!(f, "invalid update: {msg}"),
            RippleError::Gnn(e) => write!(f, "gnn error: {e}"),
            RippleError::Graph(e) => write!(f, "graph error: {e}"),
            RippleError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for RippleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RippleError::Gnn(e) => Some(e),
            RippleError::Graph(e) => Some(e),
            RippleError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ripple_gnn::GnnError> for RippleError {
    fn from(e: ripple_gnn::GnnError) -> Self {
        RippleError::Gnn(e)
    }
}

impl From<ripple_graph::GraphError> for RippleError {
    fn from(e: ripple_graph::GraphError) -> Self {
        RippleError::Graph(e)
    }
}

impl From<ripple_tensor::TensorError> for RippleError {
    fn from(e: ripple_tensor::TensorError) -> Self {
        RippleError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(RippleError::Mismatch("x".into())
            .to_string()
            .contains("mismatch"));
        assert!(RippleError::InvalidUpdate("y".into())
            .to_string()
            .contains("invalid update"));
        let g: RippleError = ripple_graph::GraphError::InvalidSpec("s".into()).into();
        assert!(g.to_string().contains("graph error"));
        let t: RippleError = ripple_tensor::TensorError::Empty.into();
        assert!(t.to_string().contains("tensor error"));
        let n: RippleError = ripple_gnn::GnnError::StoreMismatch("m".into()).into();
        assert!(n.to_string().contains("gnn error"));
    }

    #[test]
    fn sources_are_chained() {
        use std::error::Error;
        let e: RippleError = ripple_tensor::TensorError::Empty.into();
        assert!(e.source().is_some());
        assert!(RippleError::Mismatch("x".into()).source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RippleError>();
    }
}
