//! Per-hop mailboxes accumulating delta messages.
//!
//! Every vertex conceptually owns `L` mailboxes, one per hop (paper §4.3).
//! Because linear aggregators are commutative and associative, messages from
//! different senders can be *pre-accumulated* in the mailbox in any order;
//! the apply phase then needs exactly one vector addition per affected vertex
//! regardless of how many in-neighbours changed.
//!
//! The concrete layout is one `HashMap<VertexId, Vec<f32>>` per hop — dense
//! per-vertex storage would waste memory on the (vast) majority of vertices
//! that are untouched by a batch.

use crate::message::DeltaMessage;
use ripple_graph::VertexId;
use ripple_tensor::axpy;
use std::collections::HashMap;

/// The set of per-hop mailboxes used while processing one batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MailboxSet {
    /// `boxes[l-1]` maps a vertex to the accumulated delta for its hop-`l`
    /// aggregate.
    boxes: Vec<HashMap<VertexId, Vec<f32>>>,
}

impl MailboxSet {
    /// Creates mailboxes for an `L`-layer model.
    pub fn new(num_hops: usize) -> Self {
        MailboxSet {
            boxes: vec![HashMap::new(); num_hops],
        }
    }

    /// Number of hops covered.
    pub fn num_hops(&self) -> usize {
        self.boxes.len()
    }

    /// Deposits `coeff * delta` into the hop-`hop` mailbox of `target`,
    /// creating the slot (zero-initialised at the width of `delta`) if absent.
    ///
    /// # Panics
    ///
    /// Panics if `hop` is 0 or greater than [`Self::num_hops`], or if a
    /// previous deposit for the same slot used a different width.
    pub fn deposit(&mut self, hop: usize, target: VertexId, coeff: f32, delta: &[f32]) {
        assert!(
            hop >= 1 && hop <= self.boxes.len(),
            "hop {hop} out of range"
        );
        let slot = self.boxes[hop - 1]
            .entry(target)
            .or_insert_with(|| vec![0.0; delta.len()]);
        axpy(slot, coeff, delta);
    }

    /// Deposits a pre-built [`DeltaMessage`] (used when receiving remote halo
    /// messages in the distributed runtime).
    pub fn deposit_message(&mut self, message: &DeltaMessage) {
        self.deposit(message.hop, message.target, 1.0, &message.delta);
    }

    /// Targets currently holding mail for hop `hop`.
    ///
    /// # Panics
    ///
    /// Panics if `hop` is out of range.
    pub fn targets(&self, hop: usize) -> impl Iterator<Item = VertexId> + '_ {
        self.boxes[hop - 1].keys().copied()
    }

    /// Number of vertices with pending mail at hop `hop`.
    pub fn len(&self, hop: usize) -> usize {
        self.boxes[hop - 1].len()
    }

    /// Returns `true` if no mailbox at any hop holds mail.
    pub fn is_empty(&self) -> bool {
        self.boxes.iter().all(HashMap::is_empty)
    }

    /// Drains and returns the hop-`hop` mailbox contents, leaving it empty.
    ///
    /// # Panics
    ///
    /// Panics if `hop` is out of range.
    pub fn take_hop(&mut self, hop: usize) -> HashMap<VertexId, Vec<f32>> {
        std::mem::take(&mut self.boxes[hop - 1])
    }

    /// Clears every mailbox.
    pub fn clear(&mut self) {
        for b in &mut self.boxes {
            b.clear();
        }
    }

    /// Total number of pending (vertex, hop) slots across all hops.
    pub fn total_pending(&self) -> usize {
        self.boxes.iter().map(HashMap::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deposits_accumulate() {
        let mut m = MailboxSet::new(2);
        m.deposit(1, VertexId(3), 1.0, &[1.0, 2.0]);
        m.deposit(1, VertexId(3), 0.5, &[4.0, 4.0]);
        let taken = m.take_hop(1);
        assert_eq!(taken[&VertexId(3)], vec![3.0, 4.0]);
        assert!(m.is_empty());
    }

    #[test]
    fn deposits_are_order_independent() {
        let deltas = [
            (1.0, vec![1.0, -1.0]),
            (2.0, vec![0.5, 0.5]),
            (-1.0, vec![3.0, 0.0]),
        ];
        let mut forward = MailboxSet::new(1);
        let mut backward = MailboxSet::new(1);
        for (c, d) in &deltas {
            forward.deposit(1, VertexId(0), *c, d);
        }
        for (c, d) in deltas.iter().rev() {
            backward.deposit(1, VertexId(0), *c, d);
        }
        assert_eq!(forward.take_hop(1), backward.take_hop(1));
    }

    #[test]
    fn hops_are_independent() {
        let mut m = MailboxSet::new(3);
        m.deposit(1, VertexId(0), 1.0, &[1.0]);
        m.deposit(3, VertexId(0), 1.0, &[2.0]);
        assert_eq!(m.len(1), 1);
        assert_eq!(m.len(2), 0);
        assert_eq!(m.len(3), 1);
        assert_eq!(m.total_pending(), 2);
        assert_eq!(m.targets(1).collect::<Vec<_>>(), vec![VertexId(0)]);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn deposit_message_routes_by_hop_and_target() {
        let mut m = MailboxSet::new(2);
        m.deposit_message(&DeltaMessage::new(VertexId(7), 2, vec![1.0, 1.0]));
        m.deposit_message(&DeltaMessage::new(VertexId(7), 2, vec![0.5, -1.0]));
        let taken = m.take_hop(2);
        assert_eq!(taken[&VertexId(7)], vec![1.5, 0.0]);
    }

    #[test]
    fn num_hops_reported() {
        assert_eq!(MailboxSet::new(4).num_hops(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hop_zero_panics() {
        let mut m = MailboxSet::new(2);
        m.deposit(0, VertexId(0), 1.0, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hop_beyond_layers_panics() {
        let mut m = MailboxSet::new(2);
        m.deposit(3, VertexId(0), 1.0, &[1.0]);
    }
}
