//! Per-hop mailboxes accumulating delta messages.
//!
//! Every vertex conceptually owns `L` mailboxes, one per hop (paper §4.3).
//! Because linear aggregators are commutative and associative, messages from
//! different senders can be *pre-accumulated* in the mailbox in any order;
//! the apply phase then needs exactly one vector addition per affected vertex
//! regardless of how many in-neighbours changed.
//!
//! The concrete layout is one `HashMap<VertexId, Vec<f32>>` per hop — dense
//! per-vertex storage would waste memory on the (vast) majority of vertices
//! that are untouched by a batch.

use crate::message::DeltaMessage;
use ripple_graph::VertexId;
use ripple_tensor::axpy;
use std::collections::HashMap;

/// A flat, sorted `(vertex, delta-row)` arena holding one hop's drained mail.
///
/// [`MailboxSet::drain_hop_sorted_into`] leaves the per-hop deltas here in
/// ascending vertex order as one contiguous row-major buffer, so the apply
/// phase becomes a branch-free walk over two flat arrays (vectorisable adds,
/// no hash lookups) and — once the buffers have reached their steady-state
/// capacity — performs **zero heap allocations**.
#[derive(Debug, Clone, Default)]
pub struct MailArena {
    /// Target vertices in ascending order, one per row of `rows`.
    ids: Vec<VertexId>,
    /// Row-major delta rows, `width` floats per entry of `ids`.
    rows: Vec<f32>,
    /// Width of every delta row (0 while the arena is empty).
    width: usize,
}

impl MailArena {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        MailArena::default()
    }

    /// Number of `(vertex, delta)` entries currently held.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns `true` if the arena holds no entries.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Width of every delta row (0 while the arena is empty).
    pub fn width(&self) -> usize {
        self.width
    }

    /// The target vertices in ascending order.
    pub fn ids(&self) -> &[VertexId] {
        &self.ids
    }

    /// The `i`-th delta row (paired with `ids()[i]`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.rows[i * self.width..(i + 1) * self.width]
    }

    /// Iterator over `(vertex, delta-row)` pairs in ascending vertex order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &[f32])> + '_ {
        self.ids
            .iter()
            .copied()
            .zip(self.rows.chunks_exact(self.width.max(1)))
    }

    /// Empties the arena, retaining both buffers' capacity.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.rows.clear();
        self.width = 0;
    }

    /// Heap memory retained by the arena (buffer capacities), in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.ids.capacity() * std::mem::size_of::<VertexId>()
            + self.rows.capacity() * std::mem::size_of::<f32>()
    }
}

/// The set of per-hop mailboxes used while processing one batch.
#[derive(Debug, Clone, Default)]
pub struct MailboxSet {
    /// `boxes[l-1]` maps a vertex to the accumulated delta for its hop-`l`
    /// aggregate.
    boxes: Vec<HashMap<VertexId, Vec<f32>>>,
    /// Drained-but-kept maps recycled into [`MailboxSet::take_hop`]
    /// replacements, so repeated take/refill cycles reuse the grown table
    /// allocation instead of rebuilding from a capacity-less `HashMap::new()`.
    spare: Vec<HashMap<VertexId, Vec<f32>>>,
}

impl PartialEq for MailboxSet {
    fn eq(&self, other: &Self) -> bool {
        // The spare pool is an allocation cache, not observable state.
        self.boxes == other.boxes
    }
}

impl MailboxSet {
    /// Creates mailboxes for an `L`-layer model.
    pub fn new(num_hops: usize) -> Self {
        MailboxSet {
            boxes: vec![HashMap::new(); num_hops],
            spare: Vec::new(),
        }
    }

    /// Number of hops covered.
    pub fn num_hops(&self) -> usize {
        self.boxes.len()
    }

    /// Deposits `coeff * delta` into the hop-`hop` mailbox of `target`,
    /// creating the slot (zero-initialised at the width of `delta`) if absent.
    ///
    /// # Panics
    ///
    /// Panics if `hop` is 0 or greater than [`Self::num_hops`], or if a
    /// previous deposit for the same slot used a different width.
    pub fn deposit(&mut self, hop: usize, target: VertexId, coeff: f32, delta: &[f32]) {
        assert!(
            hop >= 1 && hop <= self.boxes.len(),
            "hop {hop} out of range"
        );
        let slot = self.boxes[hop - 1]
            .entry(target)
            .or_insert_with(|| vec![0.0; delta.len()]);
        axpy(slot, coeff, delta);
    }

    /// Deposits a pre-built [`DeltaMessage`] (used when receiving remote halo
    /// messages in the distributed runtime).
    pub fn deposit_message(&mut self, message: &DeltaMessage) {
        self.deposit(message.hop, message.target, 1.0, &message.delta);
    }

    /// Targets currently holding mail for hop `hop`.
    ///
    /// # Panics
    ///
    /// Panics if `hop` is out of range.
    pub fn targets(&self, hop: usize) -> impl Iterator<Item = VertexId> + '_ {
        self.boxes[hop - 1].keys().copied()
    }

    /// Number of vertices with pending mail at hop `hop`.
    pub fn len(&self, hop: usize) -> usize {
        self.boxes[hop - 1].len()
    }

    /// Returns `true` if no mailbox at any hop holds mail.
    pub fn is_empty(&self) -> bool {
        self.boxes.iter().all(HashMap::is_empty)
    }

    /// Drains and returns the hop-`hop` mailbox contents, leaving it empty.
    ///
    /// The replacement map comes from the [`MailboxSet::recycle`] pool when
    /// one is available, so callers that hand drained maps back keep the
    /// grown table allocation across take/refill cycles instead of regrowing
    /// a capacity-less `HashMap::new()` every batch.
    ///
    /// # Panics
    ///
    /// Panics if `hop` is out of range.
    pub fn take_hop(&mut self, hop: usize) -> HashMap<VertexId, Vec<f32>> {
        let replacement = self.spare.pop().unwrap_or_default();
        std::mem::replace(&mut self.boxes[hop - 1], replacement)
    }

    /// Returns a map obtained from [`MailboxSet::take_hop`] to the recycle
    /// pool. The map is cleared (retaining its capacity) and handed back out
    /// by the next `take_hop` call.
    pub fn recycle(&mut self, mut map: HashMap<VertexId, Vec<f32>>) {
        map.clear();
        self.spare.push(map);
    }

    /// Drains the hop-`hop` mailbox into `arena` as a flat, **ascending-
    /// vertex-order** `(vertex, delta-row)` block, leaving the mailbox empty
    /// while retaining its table capacity for the next batch.
    ///
    /// The per-slot accumulated values are moved verbatim, so applying the
    /// arena rows is bit-identical to walking the hash map (each delta
    /// targets its own store row; only the iteration order changes, and the
    /// sorted order is exactly the canonical order the engines commit in).
    ///
    /// # Panics
    ///
    /// Panics if `hop` is out of range, or if the slots of this hop disagree
    /// on their delta width (the deposit API already enforces agreement).
    pub fn drain_hop_sorted_into(&mut self, hop: usize, arena: &mut MailArena) {
        let map = &mut self.boxes[hop - 1];
        arena.clear();
        arena.ids.extend(map.keys().copied());
        arena.ids.sort_unstable();
        if let Some(first) = arena.ids.first() {
            arena.width = map[first].len();
        }
        arena.rows.reserve(arena.ids.len() * arena.width);
        for v in &arena.ids {
            let delta = &map[v];
            assert_eq!(delta.len(), arena.width, "ragged mailbox rows at hop {hop}");
            arena.rows.extend_from_slice(delta);
        }
        // `clear` (not `take`) keeps the grown table capacity for refills.
        map.clear();
    }

    /// Clears every mailbox.
    pub fn clear(&mut self) {
        for b in &mut self.boxes {
            b.clear();
        }
    }

    /// Total number of pending (vertex, hop) slots across all hops.
    pub fn total_pending(&self) -> usize {
        self.boxes.iter().map(HashMap::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deposits_accumulate() {
        let mut m = MailboxSet::new(2);
        m.deposit(1, VertexId(3), 1.0, &[1.0, 2.0]);
        m.deposit(1, VertexId(3), 0.5, &[4.0, 4.0]);
        let taken = m.take_hop(1);
        assert_eq!(taken[&VertexId(3)], vec![3.0, 4.0]);
        assert!(m.is_empty());
    }

    #[test]
    fn deposits_are_order_independent() {
        let deltas = [
            (1.0, vec![1.0, -1.0]),
            (2.0, vec![0.5, 0.5]),
            (-1.0, vec![3.0, 0.0]),
        ];
        let mut forward = MailboxSet::new(1);
        let mut backward = MailboxSet::new(1);
        for (c, d) in &deltas {
            forward.deposit(1, VertexId(0), *c, d);
        }
        for (c, d) in deltas.iter().rev() {
            backward.deposit(1, VertexId(0), *c, d);
        }
        assert_eq!(forward.take_hop(1), backward.take_hop(1));
    }

    #[test]
    fn hops_are_independent() {
        let mut m = MailboxSet::new(3);
        m.deposit(1, VertexId(0), 1.0, &[1.0]);
        m.deposit(3, VertexId(0), 1.0, &[2.0]);
        assert_eq!(m.len(1), 1);
        assert_eq!(m.len(2), 0);
        assert_eq!(m.len(3), 1);
        assert_eq!(m.total_pending(), 2);
        assert_eq!(m.targets(1).collect::<Vec<_>>(), vec![VertexId(0)]);
        m.clear();
        assert!(m.is_empty());
    }

    #[test]
    fn deposit_message_routes_by_hop_and_target() {
        let mut m = MailboxSet::new(2);
        m.deposit_message(&DeltaMessage::new(VertexId(7), 2, vec![1.0, 1.0]));
        m.deposit_message(&DeltaMessage::new(VertexId(7), 2, vec![0.5, -1.0]));
        let taken = m.take_hop(2);
        assert_eq!(taken[&VertexId(7)], vec![1.5, 0.0]);
    }

    #[test]
    fn num_hops_reported() {
        assert_eq!(MailboxSet::new(4).num_hops(), 4);
    }

    #[test]
    fn drain_sorted_moves_accumulated_values_in_vertex_order() {
        let mut m = MailboxSet::new(2);
        m.deposit(1, VertexId(9), 1.0, &[1.0, 0.0]);
        m.deposit(1, VertexId(2), 1.0, &[2.0, 2.0]);
        m.deposit(1, VertexId(9), 0.5, &[2.0, 2.0]);
        let mut arena = MailArena::new();
        m.drain_hop_sorted_into(1, &mut arena);
        assert!(m.is_empty());
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.width(), 2);
        assert_eq!(arena.ids(), &[VertexId(2), VertexId(9)]);
        assert_eq!(arena.row(0), &[2.0, 2.0]);
        assert_eq!(arena.row(1), &[2.0, 1.0]);
        let pairs: Vec<(VertexId, Vec<f32>)> = arena.iter().map(|(v, d)| (v, d.to_vec())).collect();
        assert_eq!(pairs[0], (VertexId(2), vec![2.0, 2.0]));
        assert!(arena.memory_bytes() > 0);
    }

    /// Bit-parity of the two apply paths: folding the sorted arena rows into
    /// per-vertex accumulators yields exactly the values the `HashMap` walk
    /// produced — each delta targets its own slot, so only the (irrelevant)
    /// iteration order differs.
    #[test]
    fn drained_arena_is_bit_identical_to_taken_map() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(71);
        let mut a = MailboxSet::new(1);
        let mut b = MailboxSet::new(1);
        for _ in 0..200 {
            let v = VertexId(rng.gen_range(0u32..40));
            let coeff = rng.gen_range(-2.0f32..2.0);
            let delta: Vec<f32> = (0..3).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            a.deposit(1, v, coeff, &delta);
            b.deposit(1, v, coeff, &delta);
        }
        let map = a.take_hop(1);
        let mut arena = MailArena::new();
        b.drain_hop_sorted_into(1, &mut arena);
        assert_eq!(arena.len(), map.len());
        for (v, row) in arena.iter() {
            assert_eq!(row, map[&v].as_slice(), "vertex {v}");
        }
    }

    #[test]
    fn drain_empty_hop_leaves_empty_arena() {
        let mut m = MailboxSet::new(1);
        let mut arena = MailArena::new();
        // Pre-fill the arena to verify it is cleared.
        m.deposit(1, VertexId(0), 1.0, &[1.0]);
        m.drain_hop_sorted_into(1, &mut arena);
        m.drain_hop_sorted_into(1, &mut arena);
        assert!(arena.is_empty());
        assert_eq!(arena.width(), 0);
        assert_eq!(arena.iter().count(), 0);
    }

    #[test]
    fn drain_retains_map_capacity_across_cycles() {
        let mut m = MailboxSet::new(1);
        let mut arena = MailArena::new();
        for v in 0..64u32 {
            m.deposit(1, VertexId(v), 1.0, &[1.0]);
        }
        m.drain_hop_sorted_into(1, &mut arena);
        let capacity_after_drain = m.boxes[0].capacity();
        assert!(
            capacity_after_drain >= 64,
            "drain must keep the grown table, got capacity {capacity_after_drain}"
        );
        // Refill: no rehash growth needed for the same population.
        for v in 0..64u32 {
            m.deposit(1, VertexId(v), 1.0, &[1.0]);
        }
        assert_eq!(m.boxes[0].capacity(), capacity_after_drain);
    }

    #[test]
    fn recycled_map_allocation_is_reused_by_take_hop() {
        let mut m = MailboxSet::new(1);
        for v in 0..64u32 {
            m.deposit(1, VertexId(v), 1.0, &[1.0]);
        }
        let taken = m.take_hop(1);
        let grown_capacity = taken.capacity();
        assert!(grown_capacity >= 64);
        m.recycle(taken);
        // The next take hands the recycled (cleared, still-grown) map back
        // out as the replacement slot.
        let empty = m.take_hop(1);
        assert!(empty.is_empty());
        assert_eq!(m.boxes[0].capacity(), grown_capacity);
    }

    #[test]
    fn equality_ignores_the_spare_pool() {
        let mut a = MailboxSet::new(1);
        let b = MailboxSet::new(1);
        a.deposit(1, VertexId(0), 1.0, &[1.0]);
        let map = a.take_hop(1);
        a.recycle(map);
        assert_eq!(a, b, "spare maps are a cache, not observable state");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hop_zero_panics() {
        let mut m = MailboxSet::new(2);
        m.deposit(0, VertexId(0), 1.0, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hop_beyond_layers_panics() {
        let mut m = MailboxSet::new(2);
        m.deposit(3, VertexId(0), 1.0, &[1.0]);
    }
}
