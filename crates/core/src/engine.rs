//! The single-machine Ripple incremental engine.
//!
//! See the crate-level documentation for the algorithm outline. The
//! correctness-critical details, all exercised by the tests below and by the
//! cross-crate property tests, are:
//!
//! * **hop-1 deltas are built sequentially** over the batch, so that
//!   interleaved feature updates and edge additions/deletions touching the
//!   same vertices never double-count a contribution;
//! * **edge updates re-affect their sink at every hop**: a new (deleted) edge
//!   contributes (removes) the source's embedding at each layer, and those
//!   contributions use the source's *pre-batch* embeddings — the in-batch
//!   change, if any, arrives separately via the source's own delta message —
//!   so the two always sum to exactly the new value;
//! * **mean aggregation stores unnormalised sums**: the stored aggregate is
//!   only divided by the in-degree when the layer is evaluated, so degree
//!   changes caused by edge updates re-normalise for free.

use crate::mailbox::{MailArena, MailboxSet};
use crate::{Result, RippleError};
use ripple_gnn::layer_wise::reevaluate_slice_into;
use ripple_gnn::recompute::BatchStats;
use ripple_gnn::{Aggregator, EmbeddingStore, GnnModel};
use ripple_graph::{CsrSnapshot, DynamicGraph, GraphUpdate, GraphView, UpdateBatch, VertexId};
use ripple_tensor::{Matrix, Scratch};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Configuration knobs of the incremental engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RippleConfig {
    /// When `true`, a vertex whose recomputed embedding is numerically
    /// unchanged does not forward messages to the next hop. The paper's
    /// engine does **not** prune (to stay deterministic about which vertices
    /// are touched), so this defaults to `false`; it exists as an ablation of
    /// how much InkStream-style pruning would help linear aggregators.
    pub skip_unchanged: bool,
    /// Absolute tolerance below which a delta counts as "unchanged" when
    /// `skip_unchanged` is enabled.
    pub prune_tolerance: f32,
}

impl Default for RippleConfig {
    fn default() -> Self {
        RippleConfig {
            skip_unchanged: false,
            prune_tolerance: 1e-7,
        }
    }
}

impl RippleConfig {
    /// The paper's configuration: propagate to every affected vertex.
    pub fn exact() -> Self {
        Self::default()
    }

    /// Ablation configuration that prunes numerically-unchanged vertices.
    pub fn pruning(tolerance: f32) -> Self {
        RippleConfig {
            skip_unchanged: true,
            prune_tolerance: tolerance,
        }
    }
}

/// Records one topology change of the current batch so its per-hop aggregate
/// contributions can be injected during propagation.
#[derive(Debug, Clone)]
pub(crate) struct EdgeChange {
    source: VertexId,
    sink: VertexId,
    /// +1 for addition, -1 for deletion.
    sign: f32,
    /// Aggregator edge coefficient (1 for sum/mean, the edge weight for
    /// weighted sum).
    coeff: f32,
}

/// Validates that a graph, model and bootstrap store fit together, shared by
/// the serial and parallel engine constructors.
pub(crate) fn validate_parts(
    graph: &DynamicGraph,
    model: &GnnModel,
    store: &EmbeddingStore,
) -> Result<()> {
    if store.num_vertices() != graph.num_vertices() {
        return Err(RippleError::Mismatch(format!(
            "store covers {} vertices, graph has {}",
            store.num_vertices(),
            graph.num_vertices()
        )));
    }
    if store.num_layers() != model.num_layers() {
        return Err(RippleError::Mismatch(format!(
            "store has {} layers, model has {}",
            store.num_layers(),
            model.num_layers()
        )));
    }
    if graph.feature_dim() != model.input_dim() {
        return Err(RippleError::Mismatch(format!(
            "graph features are {}-wide, model expects {}",
            graph.feature_dim(),
            model.input_dim()
        )));
    }
    Ok(())
}

/// Output of the hop-0 `update` operator: the state propagation starts from.
pub(crate) struct UpdatePhase {
    /// Per-hop mailboxes, with the hop-1 deltas already deposited.
    pub mailboxes: MailboxSet,
    /// Pre-batch embeddings (layers 1..L-1) of every edge-update source.
    pub source_snapshots: HashMap<VertexId, Vec<Vec<f32>>>,
    /// Topology changes of the batch, for per-hop contribution injection.
    pub edge_changes: Vec<EdgeChange>,
    /// Vertices whose hop-0 embedding (feature vector) changed.
    pub changed_prev: HashSet<VertexId>,
}

/// Runs the `update` operator (hop 0) **sequentially** over the batch —
/// interleaved feature updates and edge additions/deletions touching the same
/// vertices must never double-count a contribution, so this phase is shared
/// verbatim by the serial and parallel engines.
///
/// Topology mutations are applied to the dynamic graph **and** the engine's
/// persistent [`CsrSnapshot`] in lockstep (the snapshot replays the exact
/// same push/`swap_remove` semantics, so the two stay bit-identical per
/// vertex); fanout reads stream the snapshot's contiguous rows.
pub(crate) fn run_update_operator(
    graph: &mut DynamicGraph,
    topo: &mut CsrSnapshot,
    store: &mut EmbeddingStore,
    model: &GnnModel,
    batch: &UpdateBatch,
    stats: &mut BatchStats,
) -> Result<UpdatePhase> {
    let aggregator = model.aggregator();
    let mut mailboxes = MailboxSet::new(model.num_layers());
    let mut source_snapshots: HashMap<VertexId, Vec<Vec<f32>>> = HashMap::new();
    let mut edge_changes: Vec<EdgeChange> = Vec::new();
    let mut changed_prev: HashSet<VertexId> = HashSet::new();

    for update in batch {
        match update {
            GraphUpdate::UpdateFeature { vertex, features } => {
                if !graph.contains_vertex(*vertex) {
                    return Err(RippleError::InvalidUpdate(format!(
                        "feature update for unknown vertex {vertex}"
                    )));
                }
                let old = store.embedding(0, *vertex).to_vec();
                let delta: Vec<f32> = features
                    .iter()
                    .zip(old.iter())
                    .map(|(n, o)| n - o)
                    .collect();
                // Deltas flow to the *current* out-neighbourhood, which
                // reflects every earlier update in this batch.
                let (sinks, weights) = GraphView::out_adjacency(topo, *vertex);
                for (&w, &weight) in sinks.iter().zip(weights.iter()) {
                    mailboxes.deposit(1, w, aggregator.edge_coefficient(weight), &delta);
                    stats.aggregate_ops += 1;
                }
                graph.set_feature(*vertex, features)?;
                store.set_embedding(0, *vertex, features)?;
                changed_prev.insert(*vertex);
            }
            GraphUpdate::AddEdge { src, dst, weight } => {
                snapshot_source(store, model, &mut source_snapshots, *src);
                graph.add_edge(*src, *dst, *weight)?;
                topo.add_edge(*src, *dst, *weight)
                    .expect("topology snapshot out of sync with graph");
                let coeff = aggregator.edge_coefficient(*weight);
                mailboxes.deposit(1, *dst, coeff, store.embedding(0, *src));
                stats.aggregate_ops += 1;
                edge_changes.push(EdgeChange {
                    source: *src,
                    sink: *dst,
                    sign: 1.0,
                    coeff,
                });
            }
            GraphUpdate::DeleteEdge { src, dst } => {
                let weight = graph.edge_weight(*src, *dst).ok_or_else(|| {
                    RippleError::InvalidUpdate(format!("deleting missing edge {src} -> {dst}"))
                })?;
                snapshot_source(store, model, &mut source_snapshots, *src);
                graph.remove_edge(*src, *dst)?;
                topo.remove_edge(*src, *dst)
                    .expect("topology snapshot out of sync with graph");
                let coeff = aggregator.edge_coefficient(weight);
                mailboxes.deposit(1, *dst, -coeff, store.embedding(0, *src));
                stats.aggregate_ops += 1;
                edge_changes.push(EdgeChange {
                    source: *src,
                    sink: *dst,
                    sign: -1.0,
                    coeff,
                });
            }
        }
    }
    Ok(UpdatePhase {
        mailboxes,
        source_snapshots,
        edge_changes,
        changed_prev,
    })
}

/// Captures the pre-batch embeddings (layers 1..L-1) of an edge-update
/// source vertex, once per batch.
fn snapshot_source(
    store: &EmbeddingStore,
    model: &GnnModel,
    snapshots: &mut HashMap<VertexId, Vec<Vec<f32>>>,
    source: VertexId,
) {
    if snapshots.contains_key(&source) {
        return;
    }
    let upto = model.num_layers().saturating_sub(1);
    let mut layers = Vec::with_capacity(upto);
    for l in 1..=upto {
        layers.push(store.embedding(l, source).to_vec());
    }
    snapshots.insert(source, layers);
}

/// Injects the hop-`hop` aggregate contribution of every topology change of
/// the batch (hop 1 is handled sequentially by the update operator). A new
/// (deleted) edge contributes (removes) the source's *pre-batch* embedding at
/// each layer; the in-batch change, if any, arrives separately via the
/// source's own delta message, so the two always sum to exactly the new
/// value.
pub(crate) fn inject_edge_changes(
    mailboxes: &mut MailboxSet,
    hop: usize,
    edge_changes: &[EdgeChange],
    source_snapshots: &HashMap<VertexId, Vec<Vec<f32>>>,
    stats: &mut BatchStats,
) {
    for change in edge_changes {
        let snapshot = &source_snapshots[&change.source];
        let pre_batch = &snapshot[hop - 2];
        mailboxes.deposit(hop, change.sink, change.sign * change.coeff, pre_batch);
        stats.aggregate_ops += 1;
    }
}

/// The hop-`hop` affected frontier in ascending vertex order: every vertex
/// with pending mail (already sorted by the arena drain), plus — when the
/// layer reads its own previous-layer embedding — every vertex that changed
/// at the previous hop.
///
/// Sorting pins the per-hop processing (and therefore float accumulation)
/// order, which makes serial runs reproducible across processes and gives the
/// parallel engine a canonical order to shard and merge against.
pub(crate) fn sorted_affected(
    mail_ids: &[VertexId],
    changed_prev: &HashSet<VertexId>,
    depends_on_self: bool,
) -> Vec<VertexId> {
    let mut affected: Vec<VertexId> = mail_ids.to_vec();
    if depends_on_self {
        affected.extend(changed_prev.iter().copied());
        affected.sort_unstable();
        affected.dedup();
    }
    affected
}

/// Apply phase: folds every pending hop-`hop` mail delta into the stored raw
/// aggregate **in place**, walking the flat sorted arena — two contiguous
/// arrays, no hash lookups, zero allocations. Each delta targets its own
/// store row, so the result is bit-identical to the historical `HashMap`
/// walk ([`apply_mail_map`]) for any order; the engines run this on the
/// owner thread before (possibly parallel) re-evaluation.
pub(crate) fn apply_mail(
    store: &mut EmbeddingStore,
    hop: usize,
    mail: &MailArena,
    stats: &mut BatchStats,
) {
    for (v, delta) in mail.iter() {
        ripple_tensor::add_assign(store.aggregate_mut(hop, v), delta);
        stats.aggregate_ops += 1;
    }
}

/// The historical apply phase over the drained `HashMap`, kept as the
/// reference implementation that the arena path is parity-tested against
/// (`tests/mailbox_parity.rs`).
pub fn apply_mail_map(
    store: &mut EmbeddingStore,
    hop: usize,
    mail: &HashMap<VertexId, Vec<f32>>,
    stats: &mut BatchStats,
) {
    for (&v, delta) in mail {
        ripple_tensor::add_assign(store.aggregate_mut(hop, v), delta);
        stats.aggregate_ops += 1;
    }
}

/// Commits one hop's evaluation results in frontier order: writes the new
/// embeddings back and forwards delta messages to the next hop's mailboxes.
/// Because deposits replay in the same vertex order the serial engine uses,
/// the resulting mailbox contents are bit-identical no matter how many
/// workers produced `new_embeddings`.
///
/// `new_embeddings` is a flat row-major block, one row per entry of
/// `affected` (the layout [`reevaluate_slice_into`] leaves in a scratch
/// arena); `delta` is a reusable buffer for the per-vertex output delta.
/// Vertices whose hop-`hop` embedding actually changed (everything, unless
/// `config.skip_unchanged` prunes) are inserted into `changed_now`, so a
/// frontier split across several scratch blocks commits via several calls.
#[allow(clippy::too_many_arguments)]
pub(crate) fn commit_hop<G: GraphView + ?Sized>(
    view: &G,
    store: &mut EmbeddingStore,
    config: RippleConfig,
    aggregator: Aggregator,
    mailboxes: &mut MailboxSet,
    hop: usize,
    num_layers: usize,
    affected: &[VertexId],
    new_embeddings: &Matrix,
    delta: &mut Vec<f32>,
    changed_now: &mut HashSet<VertexId>,
    stats: &mut BatchStats,
) -> Result<()> {
    debug_assert_eq!(affected.len(), new_embeddings.rows());
    for (&v, new_embedding) in affected.iter().zip(new_embeddings.iter_rows()) {
        let old = store.embedding(hop, v);
        delta.clear();
        delta.extend(new_embedding.iter().zip(old.iter()).map(|(n, o)| n - o));
        store.set_embedding(hop, v, new_embedding)?;

        let effectively_unchanged =
            config.skip_unchanged && delta.iter().all(|d| d.abs() <= config.prune_tolerance);
        if effectively_unchanged {
            continue;
        }
        changed_now.insert(v);

        // Forward messages to the next hop's mailboxes, streaming the
        // view's contiguous out-neighbour/weight slices.
        if hop < num_layers {
            let (sinks, weights) = view.out_adjacency(v);
            for (&w, &weight) in sinks.iter().zip(weights.iter()) {
                mailboxes.deposit(hop + 1, w, aggregator.edge_coefficient(weight), delta);
                stats.aggregate_ops += 1;
            }
        }
    }
    Ok(())
}

/// The single-machine incremental inference engine.
#[derive(Debug, Clone)]
pub struct RippleEngine {
    graph: DynamicGraph,
    model: GnnModel,
    store: EmbeddingStore,
    config: RippleConfig,
    /// Persistent epoch-versioned CSR snapshot of the topology: the hot
    /// propagation paths (aggregation degrees, message fanout) stream its
    /// contiguous rows; the update operator keeps it in lockstep with
    /// `graph` through the delta overlay, and a policy-triggered incremental
    /// compaction folds the overlay back after enough churn.
    topo: CsrSnapshot,
    /// Persistent workspace of the compute phase: once its buffers reach the
    /// steady-state frontier size, batch propagation re-evaluates every hop
    /// without heap allocation.
    scratch: Scratch,
    /// Persistent flat arena the per-hop mailboxes drain into: the apply
    /// phase walks sorted contiguous rows instead of a hash map.
    mail: MailArena,
    /// Reusable buffer for the per-vertex output delta of the commit phase.
    commit_delta: Vec<f32>,
    /// Vertices whose store rows (any layer: features, aggregates or
    /// embeddings) changed during the last processed batch, sorted and
    /// deduplicated. The serving layer threads this into dirty-row epoch
    /// publication.
    dirty: Vec<VertexId>,
}

impl RippleEngine {
    /// Creates an engine from a bootstrapped graph, model and embedding
    /// store (normally produced by [`ripple_gnn::layer_wise::full_inference`]).
    ///
    /// # Errors
    ///
    /// Returns [`RippleError::Mismatch`] if the store does not cover the
    /// graph's vertices or the model's layers, or if the graph's feature
    /// width differs from the model input width.
    pub fn new(
        graph: DynamicGraph,
        model: GnnModel,
        store: EmbeddingStore,
        config: RippleConfig,
    ) -> Result<Self> {
        validate_parts(&graph, &model, &store)?;
        let topo = CsrSnapshot::from_dynamic(&graph);
        Ok(RippleEngine {
            graph,
            model,
            store,
            config,
            topo,
            scratch: Scratch::new(),
            mail: MailArena::new(),
            commit_delta: Vec::new(),
            dirty: Vec::new(),
        })
    }

    /// Replaces the engine's graph and store with restored checkpoint state
    /// and resumes the topology epoch at `topology_epoch`. The rebuilt CSR
    /// snapshot reads bit-identically to one that reached the same graph
    /// incrementally, and the scratch/mailbox/dirty state is per-batch, so
    /// an engine restored here continues exactly as the checkpointed one
    /// would have.
    ///
    /// # Errors
    ///
    /// Returns [`RippleError::Mismatch`] if the restored parts do not fit
    /// the engine's model.
    pub fn restore_state(
        &mut self,
        graph: DynamicGraph,
        store: EmbeddingStore,
        topology_epoch: u64,
    ) -> Result<()> {
        validate_parts(&graph, &self.model, &store)?;
        self.topo = CsrSnapshot::from_dynamic_at(&graph, topology_epoch);
        self.graph = graph;
        self.store = store;
        self.dirty.clear();
        Ok(())
    }

    /// The current graph (reflecting every processed batch).
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// The engine's persistent topology snapshot (in lockstep with
    /// [`RippleEngine::graph`]).
    pub fn topology(&self) -> &CsrSnapshot {
        &self.topo
    }

    /// The topology epoch: how many update batches the snapshot has
    /// absorbed.
    pub fn topology_epoch(&self) -> u64 {
        self.topo.epoch()
    }

    /// The sorted, deduplicated set of vertices whose store rows changed in
    /// the last processed batch (empty before the first batch).
    pub fn dirty_rows(&self) -> &[VertexId] {
        &self.dirty
    }

    /// The current embedding store.
    pub fn store(&self) -> &EmbeddingStore {
        &self.store
    }

    /// The model used for inference.
    pub fn model(&self) -> &GnnModel {
        &self.model
    }

    /// The engine configuration.
    pub fn config(&self) -> RippleConfig {
        self.config
    }

    /// Predicted label of a vertex from the current final-layer embeddings —
    /// the lookup a trigger-based application reads after each batch.
    pub fn predicted_label(&self, v: VertexId) -> usize {
        self.store.predicted_label(v)
    }

    /// Consumes the engine, returning the graph and store.
    pub fn into_parts(self) -> (DynamicGraph, EmbeddingStore) {
        (self.graph, self.store)
    }

    /// Memory overhead of the additional state Ripple keeps relative to the
    /// recompute baseline (the aggregate tables, the scratch arena and the
    /// CSR topology snapshot), in bytes.
    pub fn incremental_state_bytes(&self) -> usize {
        self.store.aggregate_memory_bytes()
            + self.scratch.memory_bytes()
            + self.mail.memory_bytes()
            + self.topo.heap_bytes()
    }

    /// Applies a batch of updates and incrementally refreshes every affected
    /// embedding.
    ///
    /// # Errors
    ///
    /// Propagates graph errors (e.g. deleting a non-existent edge) and tensor
    /// errors. The engine should be considered poisoned after an error.
    pub fn process_batch(&mut self, batch: &UpdateBatch) -> Result<BatchStats> {
        let mut stats = BatchStats {
            batch_size: batch.len(),
            ..BatchStats::default()
        };

        // ------------------------------------------------------------------
        // Phase 1 — the `update` operator (hop 0), sequential over the batch.
        // ------------------------------------------------------------------
        let update_start = Instant::now();
        self.dirty.clear();
        let mut phase = run_update_operator(
            &mut self.graph,
            &mut self.topo,
            &mut self.store,
            &self.model,
            batch,
            &mut stats,
        )?;
        stats.update_time = update_start.elapsed();

        // ------------------------------------------------------------------
        // Phase 2 — the `propagate` operator, hop by hop.
        // ------------------------------------------------------------------
        let propagate_start = Instant::now();
        self.propagate_batch(&mut phase, &mut stats)?;
        stats.propagate_time = propagate_start.elapsed();

        // Batch absorbed: bump the topology epoch and let the snapshot fold
        // its overlay back once enough churn has accumulated.
        self.topo.advance_epoch();
        self.topo.maybe_compact();
        Ok(stats)
    }

    /// Applies a group of **pairwise footprint-disjoint** windows (see
    /// [`crate::Footprint`]) as one merged pass over the concatenated batch,
    /// returning the union of the dirtied rows. Bit-identical to processing
    /// the windows sequentially: disjointness means the update operator
    /// mutates disjoint adjacency rows, every mailbox target receives
    /// deposits from exactly one window in its original relative order, and
    /// re-evaluation reads only rows of the owning window's cone. The
    /// topology epoch still advances once per non-empty window, so the
    /// serving layer's per-window counters match a serial replay exactly.
    ///
    /// # Errors
    ///
    /// Propagates graph and tensor errors like
    /// [`RippleEngine::process_batch`]; the engine should be considered
    /// poisoned after an error.
    pub fn process_windows(&mut self, windows: &[UpdateBatch]) -> Result<Vec<VertexId>> {
        let non_empty = windows.iter().filter(|b| !b.is_empty()).count();
        match non_empty {
            0 => return Ok(Vec::new()),
            1 => {
                let batch = windows.iter().find(|b| !b.is_empty()).expect("counted");
                self.process_batch(batch)?;
                return Ok(self.dirty.clone());
            }
            _ => {}
        }
        let mut merged = UpdateBatch::new();
        for batch in windows.iter().filter(|b| !b.is_empty()) {
            for update in batch.iter() {
                merged.push(update.clone());
            }
        }
        self.process_batch(&merged)?;
        // The merged pass advanced the epoch once; a serial replay advances
        // it once per non-empty window. Compaction timing (inside
        // `process_batch`) only affects internal CSR layout, never reads.
        for _ in 1..non_empty {
            self.topo.advance_epoch();
        }
        Ok(self.dirty.clone())
    }

    /// The `propagate` operator: walks the hops, applying mail, re-evaluating
    /// each affected frontier as one batched block in the engine's scratch
    /// arena (the **compute phase** — allocation-free in steady state) and
    /// committing results in canonical vertex order.
    fn propagate_batch(&mut self, phase: &mut UpdatePhase, stats: &mut BatchStats) -> Result<()> {
        let RippleEngine {
            graph: _,
            model,
            store,
            config,
            topo,
            scratch,
            mail,
            commit_delta,
            dirty,
        } = self;
        let num_layers = model.num_layers();
        let aggregator = model.aggregator();
        // Feature-updated vertices rewrote their layer-0 rows.
        dirty.extend(phase.changed_prev.iter().copied());
        for hop in 1..=num_layers {
            // Inject the per-layer contribution of topology changes. Hop 1
            // was already handled sequentially by the update operator.
            if hop >= 2 {
                inject_edge_changes(
                    &mut phase.mailboxes,
                    hop,
                    &phase.edge_changes,
                    &phase.source_snapshots,
                    stats,
                );
            }

            let layer = model.layer(hop)?;
            phase.mailboxes.drain_hop_sorted_into(hop, mail);
            let affected =
                sorted_affected(mail.ids(), &phase.changed_prev, layer.depends_on_self());

            stats.affected_per_hop.push(affected.len());
            stats.propagation_tree_size += affected.len();
            if hop == num_layers {
                stats.affected_final = affected.len();
            }
            dirty.extend_from_slice(&affected);

            // Apply phase in place, compute phase over the frontier, commit.
            apply_mail(store, hop, mail, stats);
            reevaluate_slice_into(topo, model, store, hop, &affected, scratch)?;
            let mut changed_now = HashSet::with_capacity(affected.len());
            commit_hop(
                topo,
                store,
                *config,
                aggregator,
                &mut phase.mailboxes,
                hop,
                num_layers,
                &affected,
                &scratch.out,
                commit_delta,
                &mut changed_now,
                stats,
            )?;
            phase.changed_prev = changed_now;
        }
        dirty.sort_unstable();
        dirty.dedup();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_gnn::layer_wise::full_inference;
    use ripple_gnn::Workload;
    use ripple_graph::stream::{build_stream, StreamConfig};
    use ripple_graph::synth::DatasetSpec;

    fn bootstrap(
        workload: Workload,
        layers: usize,
        seed: u64,
    ) -> (RippleEngine, DynamicGraph, GnnModel, Vec<UpdateBatch>) {
        let spec = DatasetSpec::custom(150, 5.0, 6, 4);
        let full = spec
            .generate_weighted(seed, workload.needs_edge_weights())
            .unwrap();
        let plan = build_stream(
            &full,
            &StreamConfig {
                total_updates: 90,
                seed: seed ^ 1,
                ..Default::default()
            },
        )
        .unwrap();
        let model = workload.build_model(6, 8, 4, layers, seed ^ 2).unwrap();
        let store = full_inference(&plan.snapshot, &model).unwrap();
        let engine = RippleEngine::new(
            plan.snapshot.clone(),
            model.clone(),
            store,
            RippleConfig::default(),
        )
        .unwrap();
        let batches = plan.batches(15);
        (engine, plan.snapshot, model, batches)
    }

    /// The headline exactness claim: after streaming every batch, the
    /// incrementally maintained embeddings equal full re-inference on the
    /// final graph, for every workload.
    #[test]
    fn incremental_matches_full_inference_all_workloads() {
        for workload in Workload::all() {
            let (mut engine, snapshot, model, batches) = bootstrap(workload, 2, 3);
            let mut reference_graph = snapshot;
            for batch in &batches {
                engine.process_batch(batch).unwrap();
                reference_graph.apply_batch(batch).unwrap();
            }
            let reference = full_inference(&reference_graph, &model).unwrap();
            let diff = engine.store().max_diff_all_layers(&reference).unwrap();
            assert!(diff < 2e-3, "workload {workload}: diff {diff}");
        }
    }

    #[test]
    fn incremental_matches_full_inference_three_layers() {
        for workload in [Workload::GcS, Workload::GsS, Workload::GcM] {
            let (mut engine, snapshot, model, batches) = bootstrap(workload, 3, 5);
            let mut reference_graph = snapshot;
            for batch in &batches {
                engine.process_batch(batch).unwrap();
                reference_graph.apply_batch(batch).unwrap();
            }
            let reference = full_inference(&reference_graph, &model).unwrap();
            let diff = engine.store().max_diff_all_layers(&reference).unwrap();
            assert!(diff < 2e-3, "workload {workload}: diff {diff}");
        }
    }

    #[test]
    fn single_edge_addition_matches_manual_expectation() {
        // Fig 3-style check: adding an edge only changes the forward
        // neighbourhood of the source.
        let (mut engine, snapshot, model, _) = bootstrap(Workload::GcS, 2, 11);
        let before = engine.store().clone();
        // Pick a fresh edge not in the snapshot.
        let mut chosen = None;
        'outer: for s in 0..snapshot.num_vertices() as u32 {
            for d in 0..snapshot.num_vertices() as u32 {
                if s != d && !snapshot.has_edge(VertexId(s), VertexId(d)) {
                    chosen = Some((VertexId(s), VertexId(d)));
                    break 'outer;
                }
            }
        }
        let (src, dst) = chosen.unwrap();
        let batch = UpdateBatch::from_updates(vec![GraphUpdate::add_edge(src, dst)]);
        let stats = engine.process_batch(&batch).unwrap();
        assert!(stats.affected_per_hop[0] >= 1);

        // Exactness against full inference.
        let mut after_graph = snapshot.clone();
        after_graph.apply_batch(&batch).unwrap();
        let reference = full_inference(&after_graph, &model).unwrap();
        assert!(engine.store().max_diff_all_layers(&reference).unwrap() < 1e-3);

        // Untouched vertices keep their embeddings bit-for-bit.
        let affected = ripple_graph::bfs::affected_set(&after_graph, &[src], 2);
        for v in 0..snapshot.num_vertices() as u32 {
            let vid = VertexId(v);
            if !affected.contains(&vid) && vid != dst {
                assert_eq!(
                    engine.store().embedding(2, vid),
                    before.embedding(2, vid),
                    "vertex {vid} outside the propagation tree must not change"
                );
            }
        }
    }

    #[test]
    fn edge_addition_then_deletion_round_trips() {
        let (mut engine, snapshot, _model, _) = bootstrap(Workload::GcS, 2, 13);
        let before = engine.store().clone();
        let (src, dst) = (VertexId(0), VertexId(75));
        assert!(!snapshot.has_edge(src, dst));
        let add = UpdateBatch::from_updates(vec![GraphUpdate::add_edge(src, dst)]);
        let del = UpdateBatch::from_updates(vec![GraphUpdate::delete_edge(src, dst)]);
        engine.process_batch(&add).unwrap();
        engine.process_batch(&del).unwrap();
        let diff = engine.store().max_diff_all_layers(&before).unwrap();
        assert!(
            diff < 1e-3,
            "add followed by delete should restore embeddings, diff {diff}"
        );
        assert_eq!(engine.graph().num_edges(), snapshot.num_edges());
    }

    #[test]
    fn add_and_delete_same_edge_in_one_batch_is_a_noop() {
        let (mut engine, _snapshot, _model, _) = bootstrap(Workload::GcM, 2, 17);
        let before = engine.store().clone();
        let (src, dst) = (VertexId(1), VertexId(90));
        let batch = UpdateBatch::from_updates(vec![
            GraphUpdate::add_edge(src, dst),
            GraphUpdate::delete_edge(src, dst),
        ]);
        engine.process_batch(&batch).unwrap();
        assert!(engine.store().max_diff_all_layers(&before).unwrap() < 1e-3);
    }

    #[test]
    fn feature_update_and_edge_update_interleaved_in_one_batch() {
        // The double-counting trap: update u's features and add an edge from
        // u in the same batch; the sink must end up with exactly the new
        // contribution.
        for workload in Workload::all() {
            let (mut engine, snapshot, model, _) = bootstrap(workload, 2, 19);
            let u = VertexId(2);
            let dst = VertexId(110);
            assert!(!snapshot.has_edge(u, dst));
            let new_features = vec![0.25; 6];
            let batch = UpdateBatch::from_updates(vec![
                GraphUpdate::update_feature(u, new_features.clone()),
                GraphUpdate::add_weighted_edge(u, dst, 0.7),
                GraphUpdate::update_feature(u, new_features.iter().map(|x| x * 2.0).collect()),
            ]);
            engine.process_batch(&batch).unwrap();

            let mut reference_graph = snapshot.clone();
            reference_graph.apply_batch(&batch).unwrap();
            let reference = full_inference(&reference_graph, &model).unwrap();
            let diff = engine.store().max_diff_all_layers(&reference).unwrap();
            assert!(diff < 1e-3, "workload {workload}: diff {diff}");
        }
    }

    #[test]
    fn labels_update_after_processing() {
        let (mut engine, _snapshot, _model, batches) = bootstrap(Workload::GcS, 2, 23);
        let before: Vec<usize> = (0..engine.graph().num_vertices() as u32)
            .map(|v| engine.predicted_label(VertexId(v)))
            .collect();
        for batch in &batches {
            engine.process_batch(batch).unwrap();
        }
        let after: Vec<usize> = (0..engine.graph().num_vertices() as u32)
            .map(|v| engine.predicted_label(VertexId(v)))
            .collect();
        assert_ne!(
            before, after,
            "streaming 90 updates should change at least one label"
        );
    }

    #[test]
    fn stats_track_affected_sets_and_ops() {
        let (mut engine, _snapshot, _model, batches) = bootstrap(Workload::GcS, 2, 29);
        let stats = engine.process_batch(&batches[0]).unwrap();
        assert_eq!(stats.batch_size, 15);
        assert_eq!(stats.affected_per_hop.len(), 2);
        assert!(stats.propagation_tree_size > 0);
        assert!(stats.aggregate_ops > 0);
        assert!(stats.affected_final <= engine.graph().num_vertices());
    }

    #[test]
    fn pruning_config_still_exact_for_identical_feature_rewrite() {
        // Re-writing a vertex's features with the same values is a zero delta:
        // the pruning configuration must not propagate anything, and the
        // result must still be exact.
        let (engine_parts, snapshot, model, _) = bootstrap(Workload::GcS, 2, 31);
        let (graph, store) = engine_parts.into_parts();
        let mut engine =
            RippleEngine::new(graph, model.clone(), store, RippleConfig::pruning(1e-6)).unwrap();
        let same_features = snapshot.feature(VertexId(4)).to_vec();
        let batch = UpdateBatch::from_updates(vec![GraphUpdate::update_feature(
            VertexId(4),
            same_features,
        )]);
        let stats = engine.process_batch(&batch).unwrap();
        let reference = full_inference(&snapshot, &model).unwrap();
        assert!(engine.store().max_diff_all_layers(&reference).unwrap() < 1e-4);
        assert!(stats.affected_per_hop[0] <= snapshot.out_degree(VertexId(4)) + 1);
    }

    #[test]
    fn invalid_updates_are_reported() {
        let (mut engine, _snapshot, _model, _) = bootstrap(Workload::GcS, 2, 37);
        let missing_edge =
            UpdateBatch::from_updates(vec![GraphUpdate::delete_edge(VertexId(0), VertexId(1))]);
        // Vertex 0 -> 1 may or may not exist; craft a guaranteed-missing edge
        // by deleting twice.
        let n = engine.graph().num_vertices() as u32;
        let unknown_vertex = UpdateBatch::from_updates(vec![GraphUpdate::update_feature(
            VertexId(n + 5),
            vec![0.0; 6],
        )]);
        assert!(engine.process_batch(&unknown_vertex).is_err());
        let _ = missing_edge; // the unknown-vertex case above is the deterministic one
    }

    #[test]
    fn constructor_validates_shapes() {
        let spec = DatasetSpec::custom(50, 3.0, 6, 4);
        let graph = spec.generate(1).unwrap();
        let model = Workload::GcS.build_model(6, 8, 4, 2, 0).unwrap();
        let other_model = Workload::GcS.build_model(6, 8, 4, 3, 0).unwrap();
        let store = full_inference(&graph, &model).unwrap();
        assert!(RippleEngine::new(
            graph.clone(),
            other_model,
            store.clone(),
            RippleConfig::default()
        )
        .is_err());
        let wrong_width_model = Workload::GcS.build_model(9, 8, 4, 2, 0).unwrap();
        let wrong_store = EmbeddingStore::zeroed(&wrong_width_model, 50);
        assert!(RippleEngine::new(
            graph.clone(),
            wrong_width_model,
            wrong_store,
            RippleConfig::default()
        )
        .is_err());
        let small_store = EmbeddingStore::zeroed(&model, 10);
        assert!(RippleEngine::new(graph, model, small_store, RippleConfig::default()).is_err());
    }

    #[test]
    fn topology_snapshot_stays_in_lockstep_with_the_graph() {
        let (mut engine, _snapshot, _model, batches) = bootstrap(Workload::GcS, 2, 43);
        for batch in &batches {
            engine.process_batch(batch).unwrap();
        }
        assert_eq!(engine.topology_epoch(), batches.len() as u64);
        let graph = engine.graph();
        let topo = engine.topology();
        assert_eq!(GraphView::num_edges(topo), graph.num_edges());
        for v in 0..graph.num_vertices() as u32 {
            let vid = VertexId(v);
            assert_eq!(topo.in_neighbors(vid), graph.in_neighbors(vid));
            assert_eq!(topo.in_weights(vid), graph.in_weights(vid));
            assert_eq!(topo.out_neighbors(vid), graph.out_neighbors(vid));
            assert_eq!(topo.out_weights(vid), graph.out_weights(vid));
        }
    }

    #[test]
    fn dirty_rows_cover_every_changed_store_row() {
        let (mut engine, _snapshot, _model, batches) = bootstrap(Workload::GcS, 2, 47);
        let before = engine.store().clone();
        assert!(engine.dirty_rows().is_empty(), "clean before any batch");
        engine.process_batch(&batches[0]).unwrap();
        let dirty = engine.dirty_rows().to_vec();
        assert!(!dirty.is_empty());
        assert!(dirty.windows(2).all(|w| w[0] < w[1]), "sorted and deduped");
        // Completeness: any vertex with a changed row at any layer must be
        // in the dirty set.
        let after = engine.store();
        for v in 0..after.num_vertices() as u32 {
            let vid = VertexId(v);
            let changed = (0..=after.num_layers())
                .any(|l| after.embedding(l, vid) != before.embedding(l, vid))
                || (1..=after.num_layers())
                    .any(|l| after.aggregate(l, vid) != before.aggregate(l, vid));
            if changed {
                assert!(
                    dirty.binary_search(&vid).is_ok(),
                    "changed vertex {vid} missing from dirty rows"
                );
            }
        }
        // The set resets per batch.
        engine
            .process_batch(&UpdateBatch::from_updates(vec![
                GraphUpdate::update_feature(VertexId(0), vec![0.5; 6]),
            ]))
            .unwrap();
        assert!(engine.dirty_rows().binary_search(&VertexId(0)).is_ok());
    }

    use ripple_gnn::EmbeddingStore;
    use ripple_graph::GraphView;

    #[test]
    fn incremental_state_overhead_is_reported() {
        let (engine, _, _, _) = bootstrap(Workload::GcS, 2, 41);
        assert!(engine.incremental_state_bytes() > 0);
        assert!(engine.config() == RippleConfig::default());
    }
}
