//! The per-shard incremental engine of the sharded serving tier.
//!
//! A [`ShardEngine`] is a [`crate::RippleEngine`] specialised for owning one
//! partition of the vertex space. Its graph keeps the **full vertex-id
//! space** but only the edges incident to at least one owned vertex (the
//! halo-restricted topology): owned vertices therefore see their complete
//! in-adjacency (so mean-aggregator in-degrees are exact) and complete
//! out-adjacency (so fanout reaches every sink), while edges entirely
//! between foreign vertices are absent — their propagation happens on the
//! shards that own them.
//!
//! Cross-shard effects travel as [`DeltaMessage`]s, exactly like the halo
//! stubs of the simulated distributed engine (`ripple-dist`):
//!
//! * a commit-phase delta whose sink is foreign accumulates in a
//!   [`HaloStubs`] outbox slot instead of a local mailbox, and
//!   [`ShardEngine::process_window`] returns the drained outbox so the
//!   caller can ship it;
//! * incoming messages from peer shards are handed to the next
//!   `process_window` call and deposited into the local mailboxes before
//!   propagation.
//!
//! Linearity of the aggregators makes this exact at quiescence: deltas sum
//! in any window order, and a forwarded delta is the `new − old` of an
//! actual re-evaluation, so once every in-flight message has been applied
//! the union of the shards' owned rows equals the single-engine state (up to
//! float accumulation order) — pinned by the parity tests below and by
//! `tests/serve_consistency.rs`.

use crate::engine::{apply_mail, sorted_affected, validate_parts, RippleConfig};
use crate::mailbox::{MailArena, MailboxSet};
use crate::message::{DeltaMessage, HaloStubs};
use crate::{Result, RippleError};
use ripple_gnn::layer_wise::reevaluate_slice_into;
use ripple_gnn::recompute::BatchStats;
use ripple_gnn::{EmbeddingStore, GnnModel};
use ripple_graph::partition::Partitioning;
use ripple_graph::{
    CsrSnapshot, DynamicGraph, GraphUpdate, GraphView, PartitionId, UpdateBatch, VertexId,
};
use ripple_tensor::Scratch;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// One topology change of the current window, recorded by the shard that
/// owns its source so the per-hop aggregate contributions can be injected
/// during propagation (mirrors the single-engine bookkeeping).
#[derive(Debug, Clone)]
struct ShardEdgeChange {
    source: VertexId,
    sink: VertexId,
    /// +1 for addition, -1 for deletion.
    sign: f32,
    /// Aggregator edge coefficient of the changed edge.
    coeff: f32,
}

/// Hop-0 output of one window: the state propagation starts from.
struct ShardPhase {
    mailboxes: MailboxSet,
    source_snapshots: HashMap<VertexId, Vec<Vec<f32>>>,
    edge_changes: Vec<ShardEdgeChange>,
    changed_prev: HashSet<VertexId>,
}

/// Deposits `coeff * delta` for `target`'s hop-`hop` mailbox, routed by
/// ownership: locally owned sinks go straight into the shard's mailboxes,
/// foreign sinks accumulate in the outbox slot of their owning shard.
#[allow(clippy::too_many_arguments)]
fn route_deposit(
    partitioning: &Partitioning,
    part: PartitionId,
    mailboxes: &mut MailboxSet,
    outbox: &mut HaloStubs,
    hop: usize,
    target: VertexId,
    coeff: f32,
    delta: &[f32],
    stats: &mut BatchStats,
) {
    let owner = partitioning.part_of(target);
    if owner == part {
        mailboxes.deposit(hop, target, coeff, delta);
    } else {
        outbox.deposit(owner, hop, target, coeff, delta);
    }
    stats.aggregate_ops += 1;
}

/// Captures the pre-window embeddings (layers 1..L-1) of an edge-update
/// source vertex, once per window.
fn snapshot_source(
    store: &EmbeddingStore,
    model: &GnnModel,
    snapshots: &mut HashMap<VertexId, Vec<Vec<f32>>>,
    source: VertexId,
) {
    if snapshots.contains_key(&source) {
        return;
    }
    let upto = model.num_layers().saturating_sub(1);
    let mut layers = Vec::with_capacity(upto);
    for l in 1..=upto {
        layers.push(store.embedding(l, source).to_vec());
    }
    snapshots.insert(source, layers);
}

/// The incremental engine of one shard: owns the halo-restricted topology
/// and is authoritative for the store rows of the vertices its partition
/// owns. Foreign rows exist (same dense id space) but are never read or
/// re-evaluated — they stay at their bootstrap values.
#[derive(Debug, Clone)]
pub struct ShardEngine {
    part: PartitionId,
    partitioning: Arc<Partitioning>,
    graph: DynamicGraph,
    model: GnnModel,
    store: EmbeddingStore,
    config: RippleConfig,
    /// Persistent epoch-versioned CSR snapshot of the halo-restricted
    /// topology, compacted independently of every other shard.
    topo: CsrSnapshot,
    scratch: Scratch,
    mail: MailArena,
    commit_delta: Vec<f32>,
    /// Owned vertices whose store rows changed in the last window (sorted,
    /// deduplicated) — threaded into dirty-row epoch publication.
    dirty: Vec<VertexId>,
    /// Pending outgoing cross-shard deltas, drained at each window boundary.
    outbox: HaloStubs,
    /// The shard's owned vertices, ascending.
    owned: Vec<VertexId>,
}

impl ShardEngine {
    /// Builds the shard engine for partition `part` of `partitioning` from
    /// the full bootstrapped state: the shard graph keeps every vertex (and
    /// its features) but only the edges incident to at least one owned
    /// endpoint; the store starts as a full copy, of which only the owned
    /// rows will be maintained.
    ///
    /// # Errors
    ///
    /// Returns [`RippleError::Mismatch`] if the partitioning does not cover
    /// the graph's vertices, `part` is out of range, or graph/model/store
    /// shapes do not fit together.
    pub fn new(
        full_graph: &DynamicGraph,
        model: GnnModel,
        store: EmbeddingStore,
        config: RippleConfig,
        partitioning: Arc<Partitioning>,
        part: PartitionId,
    ) -> Result<Self> {
        if partitioning.num_vertices() != full_graph.num_vertices() {
            return Err(RippleError::Mismatch(format!(
                "partitioning covers {} vertices, graph has {}",
                partitioning.num_vertices(),
                full_graph.num_vertices()
            )));
        }
        if part.index() >= partitioning.num_parts() {
            return Err(RippleError::Mismatch(format!(
                "shard {part} out of range for {} partitions",
                partitioning.num_parts()
            )));
        }
        validate_parts(full_graph, &model, &store)?;
        let mut graph = DynamicGraph::new(full_graph.num_vertices(), full_graph.feature_dim());
        graph.set_features(full_graph.features().clone())?;
        for (src, dst, weight) in full_graph.iter_edges() {
            if partitioning.part_of(src) == part || partitioning.part_of(dst) == part {
                graph.add_edge(src, dst, weight)?;
            }
        }
        let topo = CsrSnapshot::from_dynamic(&graph);
        let owned = partitioning.vertices_in(part);
        let num_parts = partitioning.num_parts();
        Ok(ShardEngine {
            part,
            partitioning,
            graph,
            model,
            store,
            config,
            topo,
            scratch: Scratch::new(),
            mail: MailArena::new(),
            commit_delta: Vec::new(),
            dirty: Vec::new(),
            outbox: HaloStubs::new(num_parts),
            owned,
        })
    }

    /// Replaces the shard's halo-restricted graph and store with restored
    /// checkpoint state and resumes the topology epoch at `topology_epoch`.
    /// The graph must already be the *shard-local* one (full vertex space,
    /// incident edges only) — checkpoints store it verbatim because edge
    /// replay cannot reproduce `swap_remove` adjacency order. Pending
    /// outgoing halos are discarded: each window's outbox is drained at the
    /// window boundary, and recovery replays whole windows only.
    ///
    /// # Errors
    ///
    /// Returns [`RippleError::Mismatch`] if the restored parts do not fit
    /// the shard's model.
    pub fn restore_state(
        &mut self,
        graph: DynamicGraph,
        store: EmbeddingStore,
        topology_epoch: u64,
    ) -> Result<()> {
        validate_parts(&graph, &self.model, &store)?;
        self.topo = CsrSnapshot::from_dynamic_at(&graph, topology_epoch);
        self.graph = graph;
        self.store = store;
        self.dirty.clear();
        self.outbox = HaloStubs::new(self.partitioning.num_parts());
        Ok(())
    }

    /// The partition this shard owns.
    pub fn part(&self) -> PartitionId {
        self.part
    }

    /// The partitioning shared by every shard of the tier.
    pub fn partitioning(&self) -> &Arc<Partitioning> {
        &self.partitioning
    }

    /// The shard's owned vertices, ascending.
    pub fn owned_vertices(&self) -> &[VertexId] {
        &self.owned
    }

    /// The halo-restricted graph (full vertex space, incident edges only).
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// The model used for inference.
    pub fn model(&self) -> &GnnModel {
        &self.model
    }

    /// The shard store. Only the owned rows are maintained; foreign rows
    /// keep their bootstrap values.
    pub fn store(&self) -> &EmbeddingStore {
        &self.store
    }

    /// The engine configuration.
    pub fn config(&self) -> RippleConfig {
        self.config
    }

    /// The shard topology epoch: how many windows this shard has absorbed.
    pub fn topology_epoch(&self) -> u64 {
        self.topo.epoch()
    }

    /// The owned vertices whose store rows changed in the last processed
    /// window (sorted, deduplicated; empty before the first window).
    pub fn dirty_rows(&self) -> &[VertexId] {
        &self.dirty
    }

    /// Copies this shard's owned rows (all layers and aggregates) into
    /// `target`; `false` on shape mismatch. Gathering every shard into one
    /// store assembles the authoritative global state.
    pub fn gather_into(&self, target: &mut EmbeddingStore) -> bool {
        target.copy_rows_from(&self.store, &self.owned)
    }

    /// Applies one flush window — a coalesced batch of updates routed to
    /// this shard plus the halo deltas received from peers since the last
    /// window — and returns the batch statistics together with the outgoing
    /// cross-shard messages this window produced (in deterministic
    /// partition-major, (hop, target) order).
    ///
    /// Routing contract (enforced, violations are
    /// [`RippleError::InvalidUpdate`]): feature updates target owned
    /// vertices only; edge updates have at least one owned endpoint (both
    /// owners apply the topology change, only the source's owner emits value
    /// deltas); halo messages target owned vertices at hops `1..=L`.
    ///
    /// # Errors
    ///
    /// Propagates graph and tensor errors; the shard should be considered
    /// poisoned after an error.
    pub fn process_window(
        &mut self,
        batch: &UpdateBatch,
        halos: &[DeltaMessage],
    ) -> Result<(BatchStats, Vec<(PartitionId, DeltaMessage)>)> {
        let mut stats = BatchStats {
            batch_size: batch.len(),
            ..BatchStats::default()
        };

        let update_start = Instant::now();
        self.dirty.clear();
        let mut phase = self.run_update_operator(batch, &mut stats)?;
        self.absorb_halos(&mut phase, halos, &mut stats)?;
        stats.update_time = update_start.elapsed();

        let propagate_start = Instant::now();
        self.propagate_window(&mut phase, &mut stats)?;
        stats.propagate_time = propagate_start.elapsed();

        self.topo.advance_epoch();
        self.topo.maybe_compact();
        Ok((stats, self.outbox.drain()))
    }

    /// The hop-0 `update` operator, sequential over the window's batch, with
    /// every deposit routed by sink ownership.
    fn run_update_operator(
        &mut self,
        batch: &UpdateBatch,
        stats: &mut BatchStats,
    ) -> Result<ShardPhase> {
        let ShardEngine {
            part,
            partitioning,
            graph,
            model,
            store,
            topo,
            outbox,
            ..
        } = self;
        let part = *part;
        let aggregator = model.aggregator();
        let mut mailboxes = MailboxSet::new(model.num_layers());
        let mut source_snapshots: HashMap<VertexId, Vec<Vec<f32>>> = HashMap::new();
        let mut edge_changes: Vec<ShardEdgeChange> = Vec::new();
        let mut changed_prev: HashSet<VertexId> = HashSet::new();

        for update in batch {
            match update {
                GraphUpdate::UpdateFeature { vertex, features } => {
                    if !graph.contains_vertex(*vertex) {
                        return Err(RippleError::InvalidUpdate(format!(
                            "feature update for unknown vertex {vertex}"
                        )));
                    }
                    if partitioning.part_of(*vertex) != part {
                        return Err(RippleError::InvalidUpdate(format!(
                            "feature update for {vertex} routed to non-owning shard {part}"
                        )));
                    }
                    let old = store.embedding(0, *vertex).to_vec();
                    let delta: Vec<f32> = features
                        .iter()
                        .zip(old.iter())
                        .map(|(n, o)| n - o)
                        .collect();
                    // The owned vertex's out-adjacency is complete in the
                    // halo-restricted topology, so fanout reaches every
                    // sink; foreign sinks route to the outbox.
                    let (sinks, weights) = GraphView::out_adjacency(topo, *vertex);
                    for (&w, &weight) in sinks.iter().zip(weights.iter()) {
                        route_deposit(
                            partitioning,
                            part,
                            &mut mailboxes,
                            outbox,
                            1,
                            w,
                            aggregator.edge_coefficient(weight),
                            &delta,
                            stats,
                        );
                    }
                    graph.set_feature(*vertex, features)?;
                    store.set_embedding(0, *vertex, features)?;
                    changed_prev.insert(*vertex);
                }
                GraphUpdate::AddEdge { src, dst, weight } => {
                    let (src_owned, _) =
                        Self::edge_roles(partitioning, part, graph, *src, *dst, "adding")?;
                    if src_owned {
                        snapshot_source(store, model, &mut source_snapshots, *src);
                    }
                    graph.add_edge(*src, *dst, *weight)?;
                    topo.add_edge(*src, *dst, *weight)
                        .expect("topology snapshot out of sync with graph");
                    if src_owned {
                        let coeff = aggregator.edge_coefficient(*weight);
                        route_deposit(
                            partitioning,
                            part,
                            &mut mailboxes,
                            outbox,
                            1,
                            *dst,
                            coeff,
                            store.embedding(0, *src),
                            stats,
                        );
                        edge_changes.push(ShardEdgeChange {
                            source: *src,
                            sink: *dst,
                            sign: 1.0,
                            coeff,
                        });
                    }
                }
                GraphUpdate::DeleteEdge { src, dst } => {
                    let (src_owned, _) =
                        Self::edge_roles(partitioning, part, graph, *src, *dst, "deleting")?;
                    let weight = graph.edge_weight(*src, *dst).ok_or_else(|| {
                        RippleError::InvalidUpdate(format!("deleting missing edge {src} -> {dst}"))
                    })?;
                    if src_owned {
                        snapshot_source(store, model, &mut source_snapshots, *src);
                    }
                    graph.remove_edge(*src, *dst)?;
                    topo.remove_edge(*src, *dst)
                        .expect("topology snapshot out of sync with graph");
                    if src_owned {
                        let coeff = aggregator.edge_coefficient(weight);
                        route_deposit(
                            partitioning,
                            part,
                            &mut mailboxes,
                            outbox,
                            1,
                            *dst,
                            -coeff,
                            store.embedding(0, *src),
                            stats,
                        );
                        edge_changes.push(ShardEdgeChange {
                            source: *src,
                            sink: *dst,
                            sign: -1.0,
                            coeff,
                        });
                    }
                }
            }
        }
        Ok(ShardPhase {
            mailboxes,
            source_snapshots,
            edge_changes,
            changed_prev,
        })
    }

    /// Validates an edge update against the routing contract and reports
    /// whether this shard owns the source (and therefore emits the value
    /// deltas) and/or the sink.
    fn edge_roles(
        partitioning: &Partitioning,
        part: PartitionId,
        graph: &DynamicGraph,
        src: VertexId,
        dst: VertexId,
        verb: &str,
    ) -> Result<(bool, bool)> {
        if !graph.contains_vertex(src) || !graph.contains_vertex(dst) {
            return Err(RippleError::InvalidUpdate(format!(
                "{verb} edge {src} -> {dst} with unknown endpoint"
            )));
        }
        let src_owned = partitioning.part_of(src) == part;
        let dst_owned = partitioning.part_of(dst) == part;
        if !src_owned && !dst_owned {
            return Err(RippleError::InvalidUpdate(format!(
                "edge {src} -> {dst} routed to shard {part} owning neither endpoint"
            )));
        }
        Ok((src_owned, dst_owned))
    }

    /// Deposits the halo deltas received from peer shards into the local
    /// mailboxes; propagation then treats them exactly like locally
    /// generated mail.
    fn absorb_halos(
        &self,
        phase: &mut ShardPhase,
        halos: &[DeltaMessage],
        stats: &mut BatchStats,
    ) -> Result<()> {
        let num_layers = self.model.num_layers();
        for message in halos {
            if message.hop == 0 || message.hop > num_layers {
                return Err(RippleError::InvalidUpdate(format!(
                    "halo delta for {} at hop {} outside 1..={num_layers}",
                    message.target, message.hop
                )));
            }
            if self.partitioning.part_of(message.target) != self.part {
                return Err(RippleError::InvalidUpdate(format!(
                    "halo delta for foreign vertex {} delivered to shard {}",
                    message.target, self.part
                )));
            }
            phase
                .mailboxes
                .deposit(message.hop, message.target, 1.0, &message.delta);
            stats.aggregate_ops += 1;
        }
        Ok(())
    }

    /// The `propagate` operator: identical hop loop to the single-machine
    /// engine, except the commit-phase fanout routes each delta by sink
    /// ownership (local mailbox vs outbox).
    fn propagate_window(&mut self, phase: &mut ShardPhase, stats: &mut BatchStats) -> Result<()> {
        let ShardEngine {
            part,
            partitioning,
            model,
            store,
            config,
            topo,
            scratch,
            mail,
            commit_delta,
            dirty,
            outbox,
            ..
        } = self;
        let part = *part;
        let num_layers = model.num_layers();
        let aggregator = model.aggregator();
        dirty.extend(phase.changed_prev.iter().copied());
        for hop in 1..=num_layers {
            // Inject the per-layer contribution of this window's topology
            // changes (hop 1 was handled sequentially by the update
            // operator); foreign sinks route to the outbox.
            if hop >= 2 {
                for change in &phase.edge_changes {
                    let snapshot = &phase.source_snapshots[&change.source];
                    let pre_window = &snapshot[hop - 2];
                    route_deposit(
                        partitioning,
                        part,
                        &mut phase.mailboxes,
                        outbox,
                        hop,
                        change.sink,
                        change.sign * change.coeff,
                        pre_window,
                        stats,
                    );
                }
            }

            let layer = model.layer(hop)?;
            phase.mailboxes.drain_hop_sorted_into(hop, mail);
            let affected =
                sorted_affected(mail.ids(), &phase.changed_prev, layer.depends_on_self());

            stats.affected_per_hop.push(affected.len());
            stats.propagation_tree_size += affected.len();
            if hop == num_layers {
                stats.affected_final = affected.len();
            }
            dirty.extend_from_slice(&affected);

            apply_mail(store, hop, mail, stats);
            reevaluate_slice_into(topo, model, store, hop, &affected, scratch)?;

            let mut changed_now = HashSet::with_capacity(affected.len());
            for (&v, new_embedding) in affected.iter().zip(scratch.out.iter_rows()) {
                let old = store.embedding(hop, v);
                commit_delta.clear();
                commit_delta.extend(new_embedding.iter().zip(old.iter()).map(|(n, o)| n - o));
                store.set_embedding(hop, v, new_embedding)?;

                let effectively_unchanged = config.skip_unchanged
                    && commit_delta
                        .iter()
                        .all(|d| d.abs() <= config.prune_tolerance);
                if effectively_unchanged {
                    continue;
                }
                changed_now.insert(v);

                if hop < num_layers {
                    let (sinks, weights) = GraphView::out_adjacency(topo, v);
                    for (&w, &weight) in sinks.iter().zip(weights.iter()) {
                        route_deposit(
                            partitioning,
                            part,
                            &mut phase.mailboxes,
                            outbox,
                            hop + 1,
                            w,
                            aggregator.edge_coefficient(weight),
                            commit_delta,
                            stats,
                        );
                    }
                }
            }
            phase.changed_prev = changed_now;
        }
        dirty.sort_unstable();
        dirty.dedup();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RippleEngine;
    use ripple_gnn::layer_wise::full_inference;
    use ripple_gnn::Workload;
    use ripple_graph::partition::{HashPartitioner, Partitioner};
    use ripple_graph::stream::{build_stream, StreamConfig};
    use ripple_graph::synth::DatasetSpec;

    fn bootstrap(
        seed: u64,
        layers: usize,
    ) -> (DynamicGraph, GnnModel, EmbeddingStore, Vec<UpdateBatch>) {
        let full = DatasetSpec::custom(150, 5.0, 6, 4).generate(seed).unwrap();
        let plan = build_stream(
            &full,
            &StreamConfig {
                total_updates: 90,
                seed: seed ^ 1,
                ..Default::default()
            },
        )
        .unwrap();
        let model = Workload::GcS
            .build_model(6, 8, 4, layers, seed ^ 2)
            .unwrap();
        let store = full_inference(&plan.snapshot, &model).unwrap();
        let batches = plan.batches(15);
        (plan.snapshot, model, store, batches)
    }

    fn make_shards(
        graph: &DynamicGraph,
        model: &GnnModel,
        store: &EmbeddingStore,
        num_parts: usize,
    ) -> Vec<ShardEngine> {
        let partitioning = Arc::new(HashPartitioner.partition(graph, num_parts).unwrap());
        (0..num_parts)
            .map(|p| {
                ShardEngine::new(
                    graph,
                    model.clone(),
                    store.clone(),
                    RippleConfig::default(),
                    Arc::clone(&partitioning),
                    PartitionId(p as u32),
                )
                .unwrap()
            })
            .collect()
    }

    /// Splits a batch into per-shard sub-batches following the router's
    /// rules: feature updates to the owner, edge updates to both endpoint
    /// owners (deduplicated).
    fn split_batch(batch: &UpdateBatch, partitioning: &Partitioning) -> Vec<Vec<GraphUpdate>> {
        let mut per_shard = vec![Vec::new(); partitioning.num_parts()];
        for update in batch {
            match update {
                GraphUpdate::UpdateFeature { vertex, .. } => {
                    per_shard[partitioning.part_of(*vertex).index()].push(update.clone());
                }
                GraphUpdate::AddEdge { src, dst, .. } | GraphUpdate::DeleteEdge { src, dst } => {
                    let a = partitioning.part_of(*src);
                    let b = partitioning.part_of(*dst);
                    per_shard[a.index()].push(update.clone());
                    if b != a {
                        per_shard[b.index()].push(update.clone());
                    }
                }
            }
        }
        per_shard
    }

    /// Processes one batch across every shard, then pumps halo messages
    /// until the mesh quiesces.
    fn process_and_quiesce(shards: &mut [ShardEngine], batch: &UpdateBatch) {
        let partitioning = Arc::clone(shards[0].partitioning());
        let per_shard = split_batch(batch, &partitioning);
        let mut pending: Vec<Vec<DeltaMessage>> = vec![Vec::new(); shards.len()];
        for (shard, updates) in shards.iter_mut().zip(per_shard) {
            let (_, out) = shard
                .process_window(&UpdateBatch::from_updates(updates), &[])
                .unwrap();
            for (p, m) in out {
                pending[p.index()].push(m);
            }
        }
        // Messages only ever move to strictly higher hops, so this drains
        // within num_layers rounds.
        while pending.iter().any(|p| !p.is_empty()) {
            let mut next: Vec<Vec<DeltaMessage>> = vec![Vec::new(); shards.len()];
            for (i, shard) in shards.iter_mut().enumerate() {
                let halos = std::mem::take(&mut pending[i]);
                if halos.is_empty() {
                    continue;
                }
                let (_, out) = shard
                    .process_window(&UpdateBatch::from_updates(Vec::new()), &halos)
                    .unwrap();
                for (p, m) in out {
                    next[p.index()].push(m);
                }
            }
            pending = next;
        }
    }

    fn gather(shards: &[ShardEngine]) -> EmbeddingStore {
        let mut global = shards[0].store().clone();
        for shard in &shards[1..] {
            assert!(shard.gather_into(&mut global), "shard store shapes agree");
        }
        global
    }

    fn sharded_matches_serial(num_parts: usize, layers: usize, seed: u64) {
        let (graph, model, store, batches) = bootstrap(seed, layers);
        let mut serial = RippleEngine::new(
            graph.clone(),
            model.clone(),
            store.clone(),
            RippleConfig::default(),
        )
        .unwrap();
        let mut shards = make_shards(&graph, &model, &store, num_parts);
        for batch in &batches {
            serial.process_batch(batch).unwrap();
            process_and_quiesce(&mut shards, batch);
        }
        let gathered = gather(&shards);
        let diff = gathered.max_diff_all_layers(serial.store()).unwrap();
        assert!(
            diff < 2e-3,
            "{num_parts}-shard gathered state drifted from serial engine: {diff}"
        );
        // Edge counts add up: every edge lives on 1 or 2 shards, cut edges
        // on exactly 2.
        let partitioning = Arc::clone(shards[0].partitioning());
        let cut = partitioning.edge_cut(serial.graph());
        let shard_edges: usize = shards.iter().map(|s| s.graph().num_edges()).sum();
        assert_eq!(shard_edges, serial.graph().num_edges() + cut);
    }

    #[test]
    fn two_shards_match_serial_engine_at_quiescence() {
        sharded_matches_serial(2, 2, 3);
    }

    #[test]
    fn four_shards_match_serial_engine_at_quiescence() {
        sharded_matches_serial(4, 2, 5);
    }

    #[test]
    fn three_layer_model_quiesces_and_matches() {
        sharded_matches_serial(2, 3, 7);
    }

    #[test]
    fn misrouted_updates_are_rejected() {
        let (graph, model, store, _) = bootstrap(11, 2);
        let mut shards = make_shards(&graph, &model, &store, 2);
        let partitioning = Arc::clone(shards[0].partitioning());
        // A vertex owned by shard 1, submitted to shard 0.
        let foreign = (0..graph.num_vertices() as u32)
            .map(VertexId)
            .find(|v| partitioning.part_of(*v) == PartitionId(1))
            .unwrap();
        let batch =
            UpdateBatch::from_updates(vec![GraphUpdate::update_feature(foreign, vec![0.0; 6])]);
        assert!(shards[0].process_window(&batch, &[]).is_err());
        // A halo for a foreign vertex is rejected too.
        let halo = DeltaMessage::new(foreign, 1, vec![0.0; 6]);
        assert!(shards[0]
            .process_window(&UpdateBatch::from_updates(Vec::new()), &[halo])
            .is_err());
        // As is a halo at an out-of-range hop.
        let owned = shards[1].owned_vertices()[0];
        let bad_hop = DeltaMessage::new(owned, 9, vec![0.0; 6]);
        assert!(shards[1]
            .process_window(&UpdateBatch::from_updates(Vec::new()), &[bad_hop])
            .is_err());
    }

    #[test]
    fn constructor_validates_partitioning_shape() {
        let (graph, model, store, _) = bootstrap(13, 2);
        let small = DatasetSpec::custom(50, 3.0, 6, 4).generate(1).unwrap();
        let wrong = Arc::new(HashPartitioner.partition(&small, 2).unwrap());
        assert!(ShardEngine::new(
            &graph,
            model.clone(),
            store.clone(),
            RippleConfig::default(),
            wrong,
            PartitionId(0),
        )
        .is_err());
        let partitioning = Arc::new(HashPartitioner.partition(&graph, 2).unwrap());
        assert!(ShardEngine::new(
            &graph,
            model,
            store,
            RippleConfig::default(),
            partitioning,
            PartitionId(7),
        )
        .is_err());
    }

    #[test]
    fn dirty_rows_are_owned_sorted_and_reset_per_window() {
        let (graph, model, store, batches) = bootstrap(17, 2);
        let mut shards = make_shards(&graph, &model, &store, 2);
        process_and_quiesce(&mut shards, &batches[0]);
        for shard in &shards {
            let dirty = shard.dirty_rows();
            assert!(dirty.windows(2).all(|w| w[0] < w[1]), "sorted and deduped");
        }
    }
}
