//! The multi-threaded single-machine Ripple engine.
//!
//! Delta propagation is embarrassingly parallel *within* a hop: every
//! affected vertex folds its accumulated delta and re-evaluates its layer
//! against state that no other vertex of the same hop touches. The parallel
//! engine exploits exactly that:
//!
//! 1. the hop-0 `update` operator runs sequentially over the batch (shared
//!    verbatim with [`crate::RippleEngine`] — interleaved updates must never
//!    double-count);
//! 2. the owner thread folds each hop's pending mailbox deltas into the
//!    stored aggregates in place, then the affected frontier — sorted into
//!    the serial engine's canonical vertex order — is split into one
//!    contiguous range per [`WorkerPool`] worker and evaluated through the
//!    lock-free, batched
//!    [`ripple_gnn::layer_wise::reevaluate_slice_into`] primitive into that
//!    worker's persistent scratch arena (allocation-free once warm); workers
//!    only *read* the graph, model and store;
//! 3. the owner thread commits the per-worker blocks in range order
//!    (= ascending vertex order) and replays the embedding writes and
//!    next-hop mailbox deposits exactly as the serial engine would.
//!
//! Because linear aggregators make every per-vertex computation independent
//! and the ordered reduction replays float operations in the serial order,
//! the engine's embeddings are **bit-identical** to [`crate::RippleEngine`]'s for
//! any thread count — asserted by this module's tests and by the
//! `parallel_determinism` property suite.

use crate::engine::{
    apply_mail, commit_hop, inject_edge_changes, run_update_operator, sorted_affected,
    validate_parts, RippleConfig,
};
use crate::mailbox::MailArena;
use crate::pool::WorkerPool;
use crate::Result;
use ripple_gnn::layer_wise::reevaluate_slice_into;
use ripple_gnn::recompute::BatchStats;
use ripple_gnn::{EmbeddingStore, GnnModel};
use ripple_graph::{CsrSnapshot, DynamicGraph, GraphView, UpdateBatch, VertexId};
use ripple_tensor::Scratch;
use std::collections::HashSet;
use std::ops::Range;
use std::time::Instant;

/// Frontiers smaller than this are evaluated inline: the per-hop spawn cost
/// of scoped workers would dominate the handful of layer evaluations.
const MIN_PARALLEL_FRONTIER: usize = 64;

/// Evaluates a hop frontier against an immutable store (all pending deltas
/// already folded in by the owner thread) into per-worker scratch arenas:
/// the frontier is split into one contiguous range per arena (small
/// frontiers, or a 1-thread pool, collapse onto `scratches[0]` inline) and
/// each worker leaves its block's embeddings in its own `scratch.out`.
/// Returns the ranges, index-aligned with `scratches`, so the caller can
/// commit block after block in frontier order. Per-vertex evaluation cost is
/// uniform at a given hop, so static ranges stay load-balanced.
///
/// Once every arena has reached steady-state capacity, the per-worker
/// evaluation kernels perform **zero heap allocations**; the orchestration
/// around them (range bookkeeping, scoped-thread spawns) still costs a few
/// small allocations per hop — it is the serial engine's inline path that
/// is allocation-free end to end. Shared by [`ParallelRippleEngine`] and
/// the distributed engine's intra-worker parallelism.
///
/// # Errors
///
/// Propagates layer lookup and tensor shape errors from any shard.
///
/// # Panics
///
/// Panics if `scratches` is empty.
pub fn evaluate_frontier_into<G: GraphView + Sync + ?Sized>(
    pool: &WorkerPool,
    graph: &G,
    model: &GnnModel,
    store: &EmbeddingStore,
    hop: usize,
    vertices: &[VertexId],
    scratches: &mut [Scratch],
) -> ripple_gnn::Result<Vec<Range<usize>>> {
    assert!(!scratches.is_empty(), "need at least one scratch arena");
    let arenas = if pool.threads() == 1 || vertices.len() < MIN_PARALLEL_FRONTIER {
        1
    } else {
        scratches.len().min(pool.threads())
    };
    let mut ranges = Vec::with_capacity(arenas);
    let results = pool.map_ranges(
        &mut scratches[..arenas],
        vertices.len(),
        |scratch, range| {
            let result =
                reevaluate_slice_into(graph, model, store, hop, &vertices[range.clone()], scratch);
            (range, result)
        },
    );
    for (range, result) in results {
        result?;
        ranges.push(range);
    }
    Ok(ranges)
}

/// Evaluates a hop frontier against an immutable store, returning one
/// freshly allocated embedding per vertex in frontier order regardless of
/// the thread count. Thin wrapper over [`evaluate_frontier_into`] for
/// callers outside the steady-state hot path.
///
/// # Errors
///
/// Propagates layer lookup and tensor shape errors from any shard.
pub fn evaluate_frontier<G: GraphView + Sync + ?Sized>(
    pool: &WorkerPool,
    graph: &G,
    model: &GnnModel,
    store: &EmbeddingStore,
    hop: usize,
    vertices: &[VertexId],
) -> ripple_gnn::Result<Vec<Vec<f32>>> {
    let mut scratches = vec![Scratch::new(); pool.threads()];
    let ranges = evaluate_frontier_into(pool, graph, model, store, hop, vertices, &mut scratches)?;
    let mut evals = Vec::with_capacity(vertices.len());
    for (scratch, range) in scratches.iter().zip(ranges) {
        debug_assert_eq!(scratch.out.rows(), range.len());
        evals.extend(scratch.out.iter_rows().map(<[f32]>::to_vec));
    }
    Ok(evals)
}

/// The multi-threaded single-machine incremental inference engine.
///
/// Behaves exactly like [`crate::RippleEngine`] — same configuration knobs, same
/// statistics, bit-identical embeddings — but shards each hop's affected
/// frontier across a fixed [`WorkerPool`].
#[derive(Debug, Clone)]
pub struct ParallelRippleEngine {
    graph: DynamicGraph,
    model: GnnModel,
    store: EmbeddingStore,
    config: RippleConfig,
    pool: WorkerPool,
    /// Persistent epoch-versioned CSR snapshot of the topology, kept in
    /// lockstep with `graph` by the update operator; workers stream its
    /// contiguous rows during frontier evaluation.
    topo: CsrSnapshot,
    /// One persistent scratch arena per pool worker: once each arena reaches
    /// its steady-state frontier-shard size, the compute phase of every hop
    /// runs without heap allocation.
    scratches: Vec<Scratch>,
    /// Persistent flat arena the per-hop mailboxes drain into: the apply
    /// phase walks sorted contiguous rows instead of a hash map.
    mail: MailArena,
    /// Reusable buffer for the per-vertex output delta of the commit phase.
    commit_delta: Vec<f32>,
    /// Vertices whose store rows changed during the last processed batch
    /// (sorted, deduplicated) — see [`crate::RippleEngine::dirty_rows`].
    dirty: Vec<VertexId>,
}

impl ParallelRippleEngine {
    /// Creates an engine from bootstrapped state, with `threads` workers
    /// (clamped to at least 1; 1 behaves like the serial engine).
    ///
    /// # Errors
    ///
    /// Returns [`crate::RippleError::Mismatch`] under the same conditions as
    /// [`crate::RippleEngine::new`].
    pub fn new(
        graph: DynamicGraph,
        model: GnnModel,
        store: EmbeddingStore,
        config: RippleConfig,
        threads: usize,
    ) -> Result<Self> {
        validate_parts(&graph, &model, &store)?;
        let pool = WorkerPool::new(threads);
        let scratches = vec![Scratch::new(); pool.threads()];
        let topo = CsrSnapshot::from_dynamic(&graph);
        Ok(ParallelRippleEngine {
            graph,
            model,
            store,
            config,
            pool,
            topo,
            scratches,
            mail: MailArena::new(),
            commit_delta: Vec::new(),
            dirty: Vec::new(),
        })
    }

    /// Replaces the engine's graph and store with restored checkpoint state
    /// and resumes the topology epoch at `topology_epoch` — see
    /// [`crate::RippleEngine::restore_state`]. Bit-parity with the serial
    /// engine is unaffected: the restored state is identical, and the
    /// worker pool holds no cross-batch state.
    ///
    /// # Errors
    ///
    /// Returns [`crate::RippleError::Mismatch`] if the restored parts do
    /// not fit the engine's model.
    pub fn restore_state(
        &mut self,
        graph: DynamicGraph,
        store: EmbeddingStore,
        topology_epoch: u64,
    ) -> Result<()> {
        validate_parts(&graph, &self.model, &store)?;
        self.topo = CsrSnapshot::from_dynamic_at(&graph, topology_epoch);
        self.graph = graph;
        self.store = store;
        self.dirty.clear();
        Ok(())
    }

    /// Number of worker threads used per hop.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The current graph (reflecting every processed batch).
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// The engine's persistent topology snapshot (in lockstep with
    /// [`ParallelRippleEngine::graph`]).
    pub fn topology(&self) -> &CsrSnapshot {
        &self.topo
    }

    /// The topology epoch: how many update batches the snapshot has
    /// absorbed.
    pub fn topology_epoch(&self) -> u64 {
        self.topo.epoch()
    }

    /// The sorted, deduplicated set of vertices whose store rows changed in
    /// the last processed batch (empty before the first batch).
    pub fn dirty_rows(&self) -> &[VertexId] {
        &self.dirty
    }

    /// The current embedding store.
    pub fn store(&self) -> &EmbeddingStore {
        &self.store
    }

    /// The model used for inference.
    pub fn model(&self) -> &GnnModel {
        &self.model
    }

    /// The engine configuration.
    pub fn config(&self) -> RippleConfig {
        self.config
    }

    /// Predicted label of a vertex from the current final-layer embeddings.
    pub fn predicted_label(&self, v: VertexId) -> usize {
        self.store.predicted_label(v)
    }

    /// Consumes the engine, returning the graph and store.
    pub fn into_parts(self) -> (DynamicGraph, EmbeddingStore) {
        (self.graph, self.store)
    }

    /// Memory overhead of the additional state Ripple keeps relative to the
    /// recompute baseline (the aggregate tables, the per-worker scratch
    /// arenas and the CSR topology snapshot), in bytes.
    pub fn incremental_state_bytes(&self) -> usize {
        self.store.aggregate_memory_bytes()
            + self.mail.memory_bytes()
            + self.topo.heap_bytes()
            + self
                .scratches
                .iter()
                .map(Scratch::memory_bytes)
                .sum::<usize>()
    }

    /// Applies a batch of updates and incrementally refreshes every affected
    /// embedding, sharding each hop's frontier across the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates graph and tensor errors, exactly like
    /// [`crate::RippleEngine::process_batch`]. The engine should be considered
    /// poisoned after an error.
    pub fn process_batch(&mut self, batch: &UpdateBatch) -> Result<BatchStats> {
        let ParallelRippleEngine {
            graph,
            model,
            store,
            config,
            pool,
            topo,
            scratches,
            mail,
            commit_delta,
            dirty,
        } = self;
        let num_layers = model.num_layers();
        let aggregator = model.aggregator();
        let mut stats = BatchStats {
            batch_size: batch.len(),
            ..BatchStats::default()
        };

        // Phase 1 — the `update` operator (hop 0), sequential over the batch.
        let update_start = Instant::now();
        dirty.clear();
        let mut phase = run_update_operator(graph, topo, store, model, batch, &mut stats)?;
        stats.update_time = update_start.elapsed();

        // Phase 2 — the `propagate` operator, hop by hop, frontier-parallel.
        let propagate_start = Instant::now();
        dirty.extend(phase.changed_prev.iter().copied());
        for hop in 1..=num_layers {
            if hop >= 2 {
                inject_edge_changes(
                    &mut phase.mailboxes,
                    hop,
                    &phase.edge_changes,
                    &phase.source_snapshots,
                    &mut stats,
                );
            }

            let layer = model.layer(hop)?;
            phase.mailboxes.drain_hop_sorted_into(hop, mail);
            let affected =
                sorted_affected(mail.ids(), &phase.changed_prev, layer.depends_on_self());

            stats.affected_per_hop.push(affected.len());
            stats.propagation_tree_size += affected.len();
            if hop == num_layers {
                stats.affected_final = affected.len();
            }
            dirty.extend_from_slice(&affected);

            // Apply phase in place on the owner thread, then compute phase:
            // workers re-evaluate disjoint, contiguous shards of the
            // frontier into their own scratch arenas — allocation-free once
            // the arenas are warm — streaming the snapshot's CSR rows.
            apply_mail(store, hop, mail, &mut stats);
            let ranges =
                evaluate_frontier_into(pool, topo, model, store, hop, &affected, scratches)?;

            // Owner-ordered reduction: commit store writes and next-hop
            // deposits block after block in ascending vertex order, exactly
            // as the serial engine does.
            let mut changed_now = HashSet::with_capacity(affected.len());
            for (scratch, range) in scratches.iter().zip(ranges) {
                commit_hop(
                    topo,
                    store,
                    *config,
                    aggregator,
                    &mut phase.mailboxes,
                    hop,
                    num_layers,
                    &affected[range],
                    &scratch.out,
                    commit_delta,
                    &mut changed_now,
                    &mut stats,
                )?;
            }
            phase.changed_prev = changed_now;
        }
        dirty.sort_unstable();
        dirty.dedup();
        stats.propagate_time = propagate_start.elapsed();

        // Batch absorbed: bump the topology epoch and compact if due.
        topo.advance_epoch();
        topo.maybe_compact();
        Ok(stats)
    }

    /// Applies a group of **pairwise footprint-disjoint** windows as one
    /// merged frontier-parallel pass, returning the union of the dirtied
    /// rows — the same contract and bit-identity argument as
    /// [`crate::RippleEngine::process_windows`], with the topology epoch
    /// advancing once per non-empty window.
    ///
    /// # Errors
    ///
    /// Propagates graph and tensor errors like
    /// [`ParallelRippleEngine::process_batch`].
    pub fn process_windows(&mut self, windows: &[UpdateBatch]) -> Result<Vec<VertexId>> {
        let non_empty = windows.iter().filter(|b| !b.is_empty()).count();
        match non_empty {
            0 => return Ok(Vec::new()),
            1 => {
                let batch = windows.iter().find(|b| !b.is_empty()).expect("counted");
                self.process_batch(batch)?;
                return Ok(self.dirty.clone());
            }
            _ => {}
        }
        let mut merged = UpdateBatch::new();
        for batch in windows.iter().filter(|b| !b.is_empty()) {
            for update in batch.iter() {
                merged.push(update.clone());
            }
        }
        self.process_batch(&merged)?;
        for _ in 1..non_empty {
            self.topo.advance_epoch();
        }
        Ok(self.dirty.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RippleEngine;
    use ripple_gnn::layer_wise::full_inference;
    use ripple_gnn::Workload;
    use ripple_graph::stream::{build_stream, StreamConfig};
    use ripple_graph::synth::DatasetSpec;

    fn bootstrap(
        workload: Workload,
        layers: usize,
        seed: u64,
    ) -> (DynamicGraph, GnnModel, EmbeddingStore, Vec<UpdateBatch>) {
        let full = DatasetSpec::custom(180, 5.0, 6, 4)
            .generate_weighted(seed, workload.needs_edge_weights())
            .unwrap();
        let plan = build_stream(
            &full,
            &StreamConfig {
                total_updates: 80,
                seed: seed ^ 1,
                ..Default::default()
            },
        )
        .unwrap();
        let model = workload.build_model(6, 8, 4, layers, seed ^ 2).unwrap();
        let store = full_inference(&plan.snapshot, &model).unwrap();
        let batches = plan.batches(16);
        (plan.snapshot, model, store, batches)
    }

    #[test]
    fn parallel_is_bit_identical_to_serial_for_all_workloads() {
        for workload in Workload::all() {
            let (snapshot, model, store, batches) = bootstrap(workload, 2, 5);
            let mut serial = RippleEngine::new(
                snapshot.clone(),
                model.clone(),
                store.clone(),
                RippleConfig::default(),
            )
            .unwrap();
            for threads in [1, 2, 4, 8] {
                let mut parallel = ParallelRippleEngine::new(
                    snapshot.clone(),
                    model.clone(),
                    store.clone(),
                    RippleConfig::default(),
                    threads,
                )
                .unwrap();
                for batch in &batches {
                    parallel.process_batch(batch).unwrap();
                }
                if threads == 1 {
                    for batch in &batches {
                        serial.process_batch(batch).unwrap();
                    }
                }
                assert!(
                    parallel.store() == serial.store(),
                    "workload {workload}, {threads} threads: stores differ"
                );
                assert_eq!(parallel.graph().num_edges(), serial.graph().num_edges());
            }
        }
    }

    #[test]
    fn parallel_stats_match_serial_stats() {
        let (snapshot, model, store, batches) = bootstrap(Workload::GcS, 3, 11);
        let mut serial = RippleEngine::new(
            snapshot.clone(),
            model.clone(),
            store.clone(),
            RippleConfig::default(),
        )
        .unwrap();
        let mut parallel =
            ParallelRippleEngine::new(snapshot, model, store, RippleConfig::default(), 4).unwrap();
        for batch in &batches {
            let s = serial.process_batch(batch).unwrap();
            let p = parallel.process_batch(batch).unwrap();
            assert_eq!(s.affected_per_hop, p.affected_per_hop);
            assert_eq!(s.affected_final, p.affected_final);
            assert_eq!(s.propagation_tree_size, p.propagation_tree_size);
            assert_eq!(s.aggregate_ops, p.aggregate_ops);
            assert_eq!(s.batch_size, p.batch_size);
        }
    }

    #[test]
    fn pruning_config_is_respected() {
        let (snapshot, model, store, batches) = bootstrap(Workload::GcS, 2, 13);
        let mut exact = ParallelRippleEngine::new(
            snapshot.clone(),
            model.clone(),
            store.clone(),
            RippleConfig::default(),
            2,
        )
        .unwrap();
        let mut pruning =
            ParallelRippleEngine::new(snapshot, model, store, RippleConfig::pruning(1e-6), 2)
                .unwrap();
        for batch in &batches {
            exact.process_batch(batch).unwrap();
            pruning.process_batch(batch).unwrap();
        }
        // Pruning only skips numerically unchanged vertices, so the final
        // embeddings stay within tolerance of the exact configuration.
        let diff = exact.store().max_diff_all_layers(pruning.store()).unwrap();
        assert!(diff < 1e-3, "pruning drifted: {diff}");
        assert_eq!(pruning.config(), RippleConfig::pruning(1e-6));
    }

    #[test]
    fn constructor_validates_shapes_and_clamps_threads() {
        let (snapshot, model, store, _) = bootstrap(Workload::GcS, 2, 17);
        let wrong_model = Workload::GcS.build_model(6, 8, 4, 3, 0).unwrap();
        assert!(ParallelRippleEngine::new(
            snapshot.clone(),
            wrong_model,
            store.clone(),
            RippleConfig::default(),
            4
        )
        .is_err());
        let engine =
            ParallelRippleEngine::new(snapshot, model, store, RippleConfig::default(), 0).unwrap();
        assert_eq!(engine.threads(), 1);
        assert!(engine.incremental_state_bytes() > 0);
        let n = engine.graph().num_vertices();
        assert!(engine.predicted_label(VertexId(0)) < engine.model().output_dim());
        let (graph, store) = engine.into_parts();
        assert_eq!(graph.num_vertices(), store.num_vertices());
        assert_eq!(graph.num_vertices(), n);
    }

    #[test]
    fn invalid_updates_are_reported() {
        let (snapshot, model, store, _) = bootstrap(Workload::GcS, 2, 19);
        let n = snapshot.num_vertices() as u32;
        let mut engine =
            ParallelRippleEngine::new(snapshot, model, store, RippleConfig::default(), 2).unwrap();
        let bad = UpdateBatch::from_updates(vec![ripple_graph::GraphUpdate::update_feature(
            VertexId(n + 2),
            vec![0.0; 6],
        )]);
        assert!(engine.process_batch(&bad).is_err());
    }
}
