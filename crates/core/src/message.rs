//! Delta messages exchanged between vertices (and, in the distributed
//! runtime, between workers).
//!
//! A message's purpose (paper §4.3.1) is to *nullify* the contribution of a
//! sender's old embedding to a receiver's aggregate and replace it with the
//! new one. For every linear aggregator that boils down to a single vector
//! `delta = α·h_new − α·h_old` that the receiver adds to its stored raw
//! aggregate. Edge additions are the special case `h_old = 0`; deletions the
//! special case `h_new = 0`.

use ripple_graph::VertexId;
use serde::{Deserialize, Serialize};

/// A delta message destined for one vertex's hop-`hop` mailbox.
///
/// Inside a single machine the engine deposits deltas straight into the
/// mailbox without materialising this struct; it exists as the unit of
/// *remote* communication (halo messages) and for tests/benchmarks that need
/// to reason about individual messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaMessage {
    /// The vertex whose mailbox receives the delta.
    pub target: VertexId,
    /// The hop (layer) the delta applies to, in `1..=L`.
    pub hop: usize,
    /// The accumulated delta to add to the target's raw aggregate for that
    /// hop.
    pub delta: Vec<f32>,
}

impl DeltaMessage {
    /// Creates a message.
    pub fn new(target: VertexId, hop: usize, delta: Vec<f32>) -> Self {
        DeltaMessage { target, hop, delta }
    }

    /// Builds the delta that replaces `old` with `new` under edge coefficient
    /// `coeff` (`delta = coeff·(new − old)`).
    ///
    /// # Panics
    ///
    /// Panics if `old` and `new` have different lengths.
    pub fn replacing(target: VertexId, hop: usize, coeff: f32, old: &[f32], new: &[f32]) -> Self {
        assert_eq!(old.len(), new.len(), "old/new embedding width mismatch");
        let delta = new
            .iter()
            .zip(old.iter())
            .map(|(n, o)| coeff * (n - o))
            .collect();
        DeltaMessage { target, hop, delta }
    }

    /// Builds the delta for a newly added edge contribution (`h_old = 0`).
    pub fn adding(target: VertexId, hop: usize, coeff: f32, new: &[f32]) -> Self {
        DeltaMessage {
            target,
            hop,
            delta: new.iter().map(|n| coeff * n).collect(),
        }
    }

    /// Builds the delta for a removed edge contribution (`h_new = 0`).
    pub fn removing(target: VertexId, hop: usize, coeff: f32, old: &[f32]) -> Self {
        DeltaMessage {
            target,
            hop,
            delta: old.iter().map(|o| -coeff * o).collect(),
        }
    }

    /// Approximate wire size of the message in bytes (vertex id + hop +
    /// payload), used by the simulated network's byte accounting — the
    /// quantity behind the paper's "70× lower communication" claim.
    pub fn wire_bytes(&self) -> usize {
        4 + 8 + 4 * self.delta.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replacing_encodes_difference() {
        let m = DeltaMessage::replacing(VertexId(3), 2, 1.0, &[1.0, 2.0], &[3.0, 1.0]);
        assert_eq!(m.delta, vec![2.0, -1.0]);
        assert_eq!(m.target, VertexId(3));
        assert_eq!(m.hop, 2);
    }

    #[test]
    fn replacing_applies_coefficient() {
        let m = DeltaMessage::replacing(VertexId(0), 1, 0.5, &[2.0], &[6.0]);
        assert_eq!(m.delta, vec![2.0]);
    }

    #[test]
    fn adding_is_replacing_from_zero() {
        let new = vec![1.5, -2.0];
        let a = DeltaMessage::adding(VertexId(1), 1, 2.0, &new);
        let r = DeltaMessage::replacing(VertexId(1), 1, 2.0, &[0.0, 0.0], &new);
        assert_eq!(a, r);
    }

    #[test]
    fn removing_is_replacing_to_zero() {
        let old = vec![1.5, -2.0];
        let d = DeltaMessage::removing(VertexId(1), 1, 1.0, &old);
        let r = DeltaMessage::replacing(VertexId(1), 1, 1.0, &old, &[0.0, 0.0]);
        assert_eq!(d, r);
    }

    #[test]
    fn wire_bytes_scales_with_width() {
        let narrow = DeltaMessage::new(VertexId(0), 1, vec![0.0; 4]);
        let wide = DeltaMessage::new(VertexId(0), 1, vec![0.0; 128]);
        assert!(wide.wire_bytes() > narrow.wire_bytes());
        assert_eq!(narrow.wire_bytes(), 4 + 8 + 16);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn replacing_width_mismatch_panics() {
        let _ = DeltaMessage::replacing(VertexId(0), 1, 1.0, &[1.0], &[1.0, 2.0]);
    }
}
