//! Delta messages exchanged between vertices (and, in the distributed
//! runtime, between workers).
//!
//! A message's purpose (paper §4.3.1) is to *nullify* the contribution of a
//! sender's old embedding to a receiver's aggregate and replace it with the
//! new one. For every linear aggregator that boils down to a single vector
//! `delta = α·h_new − α·h_old` that the receiver adds to its stored raw
//! aggregate. Edge additions are the special case `h_old = 0`; deletions the
//! special case `h_new = 0`.

use ripple_graph::{PartitionId, VertexId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A delta message destined for one vertex's hop-`hop` mailbox.
///
/// Inside a single machine the engine deposits deltas straight into the
/// mailbox without materialising this struct; it exists as the unit of
/// *remote* communication (halo messages) and for tests/benchmarks that need
/// to reason about individual messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaMessage {
    /// The vertex whose mailbox receives the delta.
    pub target: VertexId,
    /// The hop (layer) the delta applies to, in `1..=L`.
    pub hop: usize,
    /// The accumulated delta to add to the target's raw aggregate for that
    /// hop.
    pub delta: Vec<f32>,
}

impl DeltaMessage {
    /// Creates a message.
    pub fn new(target: VertexId, hop: usize, delta: Vec<f32>) -> Self {
        DeltaMessage { target, hop, delta }
    }

    /// Builds the delta that replaces `old` with `new` under edge coefficient
    /// `coeff` (`delta = coeff·(new − old)`).
    ///
    /// # Panics
    ///
    /// Panics if `old` and `new` have different lengths.
    pub fn replacing(target: VertexId, hop: usize, coeff: f32, old: &[f32], new: &[f32]) -> Self {
        assert_eq!(old.len(), new.len(), "old/new embedding width mismatch");
        let delta = new
            .iter()
            .zip(old.iter())
            .map(|(n, o)| coeff * (n - o))
            .collect();
        DeltaMessage { target, hop, delta }
    }

    /// Builds the delta for a newly added edge contribution (`h_old = 0`).
    pub fn adding(target: VertexId, hop: usize, coeff: f32, new: &[f32]) -> Self {
        DeltaMessage {
            target,
            hop,
            delta: new.iter().map(|n| coeff * n).collect(),
        }
    }

    /// Builds the delta for a removed edge contribution (`h_new = 0`).
    pub fn removing(target: VertexId, hop: usize, coeff: f32, old: &[f32]) -> Self {
        DeltaMessage {
            target,
            hop,
            delta: old.iter().map(|o| -coeff * o).collect(),
        }
    }

    /// Approximate wire size of the message in bytes (vertex id + hop +
    /// payload), used by the simulated network's byte accounting — the
    /// quantity behind the paper's "70× lower communication" claim.
    pub fn wire_bytes(&self) -> usize {
        4 + 8 + 4 * self.delta.len()
    }
}

/// Pre-accumulated outgoing halo deltas, grouped per partition.
///
/// The unit of cross-partition communication shared by the simulated
/// distributed runtime (`ripple-dist`) and the threaded sharded serving
/// tier (`ripple-serve`): a deposit whose target lives on the depositing
/// worker goes straight into its own [`crate::MailboxSet`]; anything else
/// accumulates here — one slot per (partition, hop, target) — until a
/// superstep or flush-window boundary drains the slots as one
/// [`DeltaMessage`] each. Accumulation is a scaled add (`slot += coeff *
/// delta`), which is lossless for every linear aggregator, and slots are
/// kept in `BTreeMap` order so drains (and therefore downstream float
/// accumulation) are deterministic.
#[derive(Debug, Clone, Default)]
pub struct HaloStubs {
    /// `parts[p]` holds the pending stubs of partition slot `p`, keyed by
    /// (hop, target). Callers choose whether the slot indexes the *sender*
    /// (dist: per-worker outgoing stubs, shipped to wherever each target
    /// lives) or the *receiver* (serve: per-destination-shard outboxes).
    parts: Vec<BTreeMap<(usize, VertexId), Vec<f32>>>,
}

impl HaloStubs {
    /// A stub pool with `num_parts` partition slots.
    pub fn new(num_parts: usize) -> Self {
        HaloStubs {
            parts: vec![BTreeMap::new(); num_parts],
        }
    }

    /// Number of partition slots.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// Accumulates `coeff * delta` into partition `part`'s stub for
    /// (`hop`, `target`).
    ///
    /// # Panics
    ///
    /// Panics if `part` is out of range.
    pub fn deposit(
        &mut self,
        part: PartitionId,
        hop: usize,
        target: VertexId,
        coeff: f32,
        delta: &[f32],
    ) {
        let slot = self.parts[part.index()]
            .entry((hop, target))
            .or_insert_with(|| vec![0.0; delta.len()]);
        ripple_tensor::axpy(slot, coeff, delta);
    }

    /// Total pending stubs across all partition slots.
    pub fn pending(&self) -> usize {
        self.parts.iter().map(|p| p.len()).sum()
    }

    /// `true` when no stub is pending anywhere.
    pub fn is_empty(&self) -> bool {
        self.parts.iter().all(|p| p.is_empty())
    }

    /// Drains partition `part`'s pending stubs as messages in (hop, target)
    /// order.
    pub fn drain_part(&mut self, part: PartitionId) -> Vec<DeltaMessage> {
        std::mem::take(&mut self.parts[part.index()])
            .into_iter()
            .map(|((hop, target), delta)| DeltaMessage { target, hop, delta })
            .collect()
    }

    /// Drains every pending stub, partition-major then (hop, target) order.
    pub fn drain(&mut self) -> Vec<(PartitionId, DeltaMessage)> {
        let mut out = Vec::new();
        for p in 0..self.parts.len() {
            let part = PartitionId(p as u32);
            for message in self.drain_part(part) {
                out.push((part, message));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halo_stubs_accumulate_and_drain_in_order() {
        let mut stubs = HaloStubs::new(2);
        assert!(stubs.is_empty());
        stubs.deposit(PartitionId(1), 2, VertexId(9), 1.0, &[1.0, 0.0]);
        stubs.deposit(PartitionId(1), 1, VertexId(3), 2.0, &[0.5, 0.5]);
        stubs.deposit(PartitionId(1), 2, VertexId(9), -1.0, &[0.0, 2.0]);
        stubs.deposit(PartitionId(0), 1, VertexId(7), 1.0, &[4.0]);
        assert_eq!(stubs.pending(), 3);

        let drained = stubs.drain();
        assert!(stubs.is_empty());
        assert_eq!(drained.len(), 3);
        // Partition-major, then (hop, target) ascending.
        assert_eq!(drained[0].0, PartitionId(0));
        assert_eq!(drained[0].1, DeltaMessage::new(VertexId(7), 1, vec![4.0]));
        assert_eq!(drained[1].0, PartitionId(1));
        assert_eq!(
            drained[1].1,
            DeltaMessage::new(VertexId(3), 1, vec![1.0, 1.0])
        );
        // Same (hop, target) slot accumulated with coefficients applied.
        assert_eq!(
            drained[2].1,
            DeltaMessage::new(VertexId(9), 2, vec![1.0, -2.0])
        );
    }

    #[test]
    fn halo_stubs_drain_part_leaves_other_parts_pending() {
        let mut stubs = HaloStubs::new(3);
        stubs.deposit(PartitionId(0), 1, VertexId(1), 1.0, &[1.0]);
        stubs.deposit(PartitionId(2), 1, VertexId(2), 1.0, &[1.0]);
        let part0 = stubs.drain_part(PartitionId(0));
        assert_eq!(part0.len(), 1);
        assert_eq!(stubs.pending(), 1);
        assert!(!stubs.is_empty());
        assert!(stubs.drain_part(PartitionId(0)).is_empty());
    }

    #[test]
    fn replacing_encodes_difference() {
        let m = DeltaMessage::replacing(VertexId(3), 2, 1.0, &[1.0, 2.0], &[3.0, 1.0]);
        assert_eq!(m.delta, vec![2.0, -1.0]);
        assert_eq!(m.target, VertexId(3));
        assert_eq!(m.hop, 2);
    }

    #[test]
    fn replacing_applies_coefficient() {
        let m = DeltaMessage::replacing(VertexId(0), 1, 0.5, &[2.0], &[6.0]);
        assert_eq!(m.delta, vec![2.0]);
    }

    #[test]
    fn adding_is_replacing_from_zero() {
        let new = vec![1.5, -2.0];
        let a = DeltaMessage::adding(VertexId(1), 1, 2.0, &new);
        let r = DeltaMessage::replacing(VertexId(1), 1, 2.0, &[0.0, 0.0], &new);
        assert_eq!(a, r);
    }

    #[test]
    fn removing_is_replacing_to_zero() {
        let old = vec![1.5, -2.0];
        let d = DeltaMessage::removing(VertexId(1), 1, 1.0, &old);
        let r = DeltaMessage::replacing(VertexId(1), 1, 1.0, &old, &[0.0, 0.0]);
        assert_eq!(d, r);
    }

    #[test]
    fn wire_bytes_scales_with_width() {
        let narrow = DeltaMessage::new(VertexId(0), 1, vec![0.0; 4]);
        let wide = DeltaMessage::new(VertexId(0), 1, vec![0.0; 128]);
        assert!(wide.wire_bytes() > narrow.wire_bytes());
        assert_eq!(narrow.wire_bytes(), 4 + 8 + 16);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn replacing_width_mismatch_panics() {
        let _ = DeltaMessage::replacing(VertexId(0), 1, 1.0, &[1.0], &[1.0, 2.0]);
    }
}
