//! Error type of the distributed runtime.

use std::fmt;

/// Errors produced by the distributed engines.
#[derive(Debug)]
pub enum DistError {
    /// Graph, model, store and partitioning shapes do not fit together.
    Mismatch(String),
    /// An update is invalid for the current replicated graph state.
    InvalidUpdate(String),
    /// An underlying graph operation failed.
    Graph(ripple_graph::GraphError),
    /// An underlying model/embedding operation failed.
    Gnn(ripple_gnn::GnnError),
    /// An underlying single-machine engine operation failed.
    Engine(ripple_core::RippleError),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Mismatch(msg) => write!(f, "shape mismatch: {msg}"),
            DistError::InvalidUpdate(msg) => write!(f, "invalid update: {msg}"),
            DistError::Graph(e) => write!(f, "graph error: {e}"),
            DistError::Gnn(e) => write!(f, "gnn error: {e}"),
            DistError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Mismatch(_) | DistError::InvalidUpdate(_) => None,
            DistError::Graph(e) => Some(e),
            DistError::Gnn(e) => Some(e),
            DistError::Engine(e) => Some(e),
        }
    }
}

impl From<ripple_graph::GraphError> for DistError {
    fn from(e: ripple_graph::GraphError) -> Self {
        DistError::Graph(e)
    }
}

impl From<ripple_gnn::GnnError> for DistError {
    fn from(e: ripple_gnn::GnnError) -> Self {
        DistError::Gnn(e)
    }
}

impl From<ripple_core::RippleError> for DistError {
    fn from(e: ripple_core::RippleError) -> Self {
        DistError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = DistError::Mismatch("store covers 3 vertices".to_string());
        assert!(e.to_string().contains("store covers 3 vertices"));
        let e = DistError::InvalidUpdate("unknown vertex".to_string());
        assert!(e.to_string().contains("unknown vertex"));
    }
}
