//! Distributed Ripple and recompute engines over a simulated network
//! (paper §5, Figs 12–13).
//!
//! The paper's distributed deployment partitions the graph across workers
//! (METIS there, [`ripple_graph::partition`] here), replicates the topology
//! of boundary ("halo") vertices DistDGL-style, and runs inference as a
//! sequence of **BSP supersteps**: one superstep per GNN hop, each consisting
//! of a communication phase (ship the messages produced by the previous
//! compute phase) and a compute phase (apply mailboxes, re-evaluate layers).
//!
//! Real sockets would add nothing to the reproduction — the quantities the
//! paper reports are *bytes on the wire* and *simulated network time* — so
//! this crate executes every worker in one process against per-worker
//! embedding stores and routes anything that crosses a partition boundary
//! through a byte-accounted [`NetworkModel`]:
//!
//! * [`DistRippleEngine`] — **push-based**: a vertex whose embedding changed
//!   sends [`ripple_core::DeltaMessage`]s to its remote out-neighbours'
//!   mailboxes, pre-accumulated per (source worker, target) stub exactly as
//!   the halo machinery prescribes. Communication scales with the *changed*
//!   in-neighbours `k'` of each affected vertex.
//! * [`DistRecomputeEngine`] — **pull-based** (DistDGL/RC-style): a worker
//!   recomputing an affected vertex has no change tracking, so every
//!   superstep it must fetch the previous-hop embeddings of **all** remote
//!   in-neighbours of its affected vertices. Communication scales with the
//!   full in-degree `k` — the gap behind the paper's ~70× communication
//!   reduction (Fig 12c).
//!
//! Both engines are exact: their [`gather_store`]d embeddings match
//! single-machine full inference within floating-point accumulation
//! tolerance, for any partitioning and any partition count.
//!
//! # Example
//!
//! ```
//! use ripple_dist::{DistRippleEngine, NetworkModel};
//! use ripple_gnn::{layer_wise::full_inference, Workload};
//! use ripple_graph::partition::{LdgPartitioner, Partitioner};
//! use ripple_graph::stream::{build_stream, StreamConfig};
//! use ripple_graph::synth::DatasetSpec;
//!
//! let full = DatasetSpec::custom(300, 5.0, 8, 4).generate(3).unwrap();
//! let plan = build_stream(&full, &StreamConfig { total_updates: 30, ..Default::default() })
//!     .unwrap();
//! let model = Workload::GcS.build_model(8, 16, 4, 2, 1).unwrap();
//! let store = full_inference(&plan.snapshot, &model).unwrap();
//! let partitioning = LdgPartitioner::new().partition(&plan.snapshot, 4).unwrap();
//!
//! let mut engine = DistRippleEngine::new(
//!     &plan.snapshot,
//!     model,
//!     &store,
//!     partitioning,
//!     NetworkModel::ten_gbe(),
//! )
//! .unwrap();
//! for batch in plan.batches(10) {
//!     let stats = engine.process_batch(&batch).unwrap();
//!     println!("{} bytes across the wire", stats.comm.bytes);
//! }
//! let fresh = engine.gather_store();
//! assert_eq!(fresh.num_layers(), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod engine;
mod error;
mod network;
mod recompute;
mod stats;
mod worker;

pub use engine::DistRippleEngine;
pub use error::DistError;
pub use network::{CommStats, NetworkModel};
pub use recompute::DistRecomputeEngine;
pub use stats::{DistBatchStats, DistSummary};
pub use worker::gather_store;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DistError>;
