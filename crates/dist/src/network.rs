//! The simulated interconnect and its byte accounting.
//!
//! The distributed engines run every worker in one process, so network cost
//! is *modelled*, not measured: every message that crosses a partition
//! boundary is charged to a [`CommStats`] ledger, and each BSP superstep's
//! traffic is converted to simulated wall-clock time by a [`NetworkModel`]
//! (per-superstep latency plus bytes over bandwidth). This is the quantity
//! pair — bytes and communication time — behind the paper's Fig 12c and its
//! ~70× communication-reduction claim.

use std::time::Duration;

/// A latency/bandwidth cost model of the interconnect between workers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Sustained link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Per-transfer latency (one synchronisation per BSP superstep).
    pub latency: Duration,
}

impl NetworkModel {
    /// The paper's evaluation interconnect: 10-gigabit Ethernet
    /// (1.25 GB/s) with a 50 µs message latency.
    pub fn ten_gbe() -> Self {
        NetworkModel {
            bandwidth_bytes_per_sec: 1.25e9,
            latency: Duration::from_micros(50),
        }
    }

    /// Simulated time to move `bytes` across the interconnect in one
    /// superstep: zero for an idle superstep, otherwise latency plus
    /// bytes over bandwidth.
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        if bytes == 0 {
            return Duration::ZERO;
        }
        self.latency + Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
    }
}

/// Communication ledger of one processed batch, broken down by purpose.
///
/// `bytes` is always `update_bytes + halo_bytes`; the breakdown separates the
/// unavoidable replication of the update stream itself from the per-hop halo
/// traffic that distinguishes the strategies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Number of discrete messages that crossed a partition boundary.
    pub messages: usize,
    /// Total bytes that crossed a partition boundary.
    pub bytes: usize,
    /// Bytes spent broadcasting the update batch to every topology replica.
    pub update_bytes: usize,
    /// Bytes spent on per-hop halo traffic (delta messages for Ripple,
    /// embedding pulls for distributed recompute).
    pub halo_bytes: usize,
}

impl CommStats {
    /// Records the broadcast of one update batch to `replicas` remote
    /// workers.
    pub(crate) fn record_update_broadcast(&mut self, replicas: usize, batch_bytes: usize) {
        if replicas == 0 || batch_bytes == 0 {
            return;
        }
        self.messages += replicas;
        self.update_bytes += batch_bytes * replicas;
        self.bytes += batch_bytes * replicas;
    }

    /// Records one cross-partition halo message of `wire_bytes` bytes.
    pub(crate) fn record_halo_message(&mut self, wire_bytes: usize) {
        self.messages += 1;
        self.halo_bytes += wire_bytes;
        self.bytes += wire_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_gbe_constants_round_trip() {
        let network = NetworkModel::ten_gbe();
        assert_eq!(network.bandwidth_bytes_per_sec, 1.25e9);
        assert_eq!(network.latency, Duration::from_micros(50));
        // The struct is plain data: a round trip through its fields rebuilds
        // an identical model.
        let rebuilt = NetworkModel {
            bandwidth_bytes_per_sec: network.bandwidth_bytes_per_sec,
            latency: network.latency,
        };
        assert_eq!(rebuilt, network);
    }

    #[test]
    fn transfer_time_is_latency_plus_bandwidth_term() {
        let network = NetworkModel {
            bandwidth_bytes_per_sec: 1e6,
            latency: Duration::from_millis(2),
        };
        // 1 MB at 1 MB/s = 1 s, plus 2 ms latency.
        let t = network.transfer_time(1_000_000);
        let expected = Duration::from_millis(1002);
        assert!((t.as_secs_f64() - expected.as_secs_f64()).abs() < 1e-9);
        // More bytes take strictly longer.
        assert!(network.transfer_time(2_000_000) > t);
    }

    #[test]
    fn idle_supersteps_are_free() {
        assert_eq!(NetworkModel::ten_gbe().transfer_time(0), Duration::ZERO);
    }

    #[test]
    fn comm_stats_ledger_adds_up() {
        let mut comm = CommStats::default();
        comm.record_update_broadcast(3, 100);
        comm.record_halo_message(76);
        comm.record_halo_message(76);
        assert_eq!(comm.messages, 5);
        assert_eq!(comm.update_bytes, 300);
        assert_eq!(comm.halo_bytes, 152);
        assert_eq!(comm.bytes, 452);
    }

    #[test]
    fn empty_broadcast_is_free() {
        let mut comm = CommStats::default();
        comm.record_update_broadcast(3, 0);
        comm.record_update_broadcast(0, 100);
        assert_eq!(comm, CommStats::default());
    }
}
