//! The distributed (BSP) incremental engine.
//!
//! One superstep per GNN hop. During a compute phase each worker processes
//! the affected vertices *it owns*: it applies its mailboxes, re-evaluates
//! the layer, and produces delta messages for the out-neighbours of every
//! changed vertex. Messages to locally owned sinks go straight into the next
//! hop's mailbox; messages to remote sinks are pre-accumulated in per-target
//! **halo stubs** (the outgoing-halo machinery of
//! [`ripple_graph::partition::halo`]) and shipped at the next superstep
//! boundary as one [`ripple_core::DeltaMessage`] per (worker, target) pair. Linearity of
//! the aggregators makes stub pre-accumulation lossless, which is why the
//! distributed result matches the single-machine engine.

use crate::network::{CommStats, NetworkModel};
use crate::stats::DistBatchStats;
use crate::worker::{gather_store, group_by_part, validate_shapes};
use crate::{DistError, Result};
use ripple_core::{evaluate_frontier_into, HaloStubs, MailboxSet, Scratch, WorkerPool};
use ripple_gnn::{EmbeddingStore, GnnModel};
use ripple_graph::partition::Partitioning;
use ripple_graph::{
    CsrSnapshot, DynamicGraph, GraphUpdate, GraphView, PartitionId, UpdateBatch, VertexId,
};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// One topology change of the current batch, recorded so its per-hop
/// aggregate contributions can be injected during propagation (see the
/// single-machine engine for the exactness argument).
#[derive(Debug, Clone)]
struct EdgeChange {
    source: VertexId,
    sink: VertexId,
    /// +1 for addition, -1 for deletion.
    sign: f32,
    /// Aggregator edge coefficient of the changed edge.
    coeff: f32,
}

/// Routes delta messages between workers during one batch.
///
/// Owns the per-hop mailboxes plus the outgoing halo stubs of every worker:
/// a deposit whose target lives on the sending worker goes straight into the
/// mailbox, anything else is pre-accumulated in the sender's per-target stub
/// until the next superstep boundary ships it as one [`ripple_core::DeltaMessage`] per
/// (worker, target) pair. Stubs are kept ordered and workers process their
/// vertices in sorted order, so float accumulation — and therefore a whole
/// run — is reproducible.
struct MessageRouter<'a> {
    partitioning: &'a Partitioning,
    mailboxes: MailboxSet,
    /// Outgoing halo stubs, one slot per **sending** worker (the shared
    /// [`HaloStubs`] pool also backs the threaded serving tier, where slots
    /// index the receiver instead).
    stubs: HaloStubs,
}

impl<'a> MessageRouter<'a> {
    fn new(partitioning: &'a Partitioning, num_hops: usize) -> Self {
        MessageRouter {
            partitioning,
            mailboxes: MailboxSet::new(num_hops),
            stubs: HaloStubs::new(partitioning.num_parts()),
        }
    }

    /// Deposits `coeff * delta` for `target`'s hop-`hop` mailbox on behalf of
    /// worker `source_part`.
    fn deposit(
        &mut self,
        hop: usize,
        source_part: usize,
        target: VertexId,
        coeff: f32,
        delta: &[f32],
    ) {
        if self.partitioning.part_of(target).index() == source_part {
            self.mailboxes.deposit(hop, target, coeff, delta);
        } else {
            self.stubs
                .deposit(PartitionId(source_part as u32), hop, target, coeff, delta);
        }
    }

    /// Superstep boundary: ships every pending halo stub as a
    /// [`ripple_core::DeltaMessage`] for `hop`, depositing it into the receiving workers'
    /// mailboxes and charging the ledger. Returns the bytes put on the wire.
    fn flush(&mut self, hop: usize, comm: &mut CommStats) -> usize {
        let mut superstep_bytes = 0usize;
        for part in 0..self.stubs.num_parts() {
            for message in self.stubs.drain_part(PartitionId(part as u32)) {
                debug_assert_eq!(message.hop, hop, "stubs only span one superstep");
                let wire = message.wire_bytes();
                comm.record_halo_message(wire);
                superstep_bytes += wire;
                self.mailboxes.deposit_message(&message);
            }
        }
        superstep_bytes
    }

    /// Drains and returns the hop-`hop` mailbox contents.
    fn take_hop(&mut self, hop: usize) -> HashMap<VertexId, Vec<f32>> {
        self.mailboxes.take_hop(hop)
    }

    /// Returns a drained map so its grown table allocation is reused by the
    /// next superstep's `take_hop` instead of regrowing from empty.
    fn recycle(&mut self, map: HashMap<VertexId, Vec<f32>>) {
        self.mailboxes.recycle(map);
    }
}

/// The distributed incremental (Ripple) engine.
///
/// Workers execute in one process against per-worker embedding stores; the
/// topology is replicated (DistDGL-style halo replication makes every
/// worker's local topology complete, so one shared copy simulates all
/// replicas) and everything crossing a partition boundary is charged to the
/// [`NetworkModel`].
#[derive(Debug, Clone)]
pub struct DistRippleEngine {
    graph: DynamicGraph,
    model: GnnModel,
    partitioning: Partitioning,
    network: NetworkModel,
    stores: Vec<EmbeddingStore>,
    pool: WorkerPool,
    /// Persistent epoch-versioned CSR snapshot of the replicated topology
    /// (DistDGL-style halo replication makes every worker's local topology
    /// complete, so one snapshot simulates all replicas). The update
    /// operator keeps it in lockstep with `graph`; every worker's compute
    /// phase and message fanout stream its contiguous rows.
    topo: CsrSnapshot,
    /// One persistent scratch arena per pool worker, shared across the
    /// simulated workers' compute phases (they run one after another in this
    /// simulation); steady-state frontier evaluation is allocation-free.
    scratches: Vec<Scratch>,
    /// Reusable buffer for the per-vertex output delta of the commit phase.
    commit_delta: Vec<f32>,
}

impl DistRippleEngine {
    /// Creates a distributed engine from bootstrapped single-machine state.
    ///
    /// Every worker starts from a copy of the bootstrap store but is
    /// authoritative only for the rows of the vertices it owns.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::Mismatch`] if graph, model, store and
    /// partitioning shapes do not fit together.
    pub fn new(
        graph: &DynamicGraph,
        model: GnnModel,
        store: &EmbeddingStore,
        partitioning: Partitioning,
        network: NetworkModel,
    ) -> Result<Self> {
        validate_shapes(graph, &model, store, &partitioning)?;
        let stores = vec![store.clone(); partitioning.num_parts()];
        Ok(DistRippleEngine {
            graph: graph.clone(),
            model,
            partitioning,
            network,
            stores,
            pool: WorkerPool::default(),
            topo: CsrSnapshot::from_dynamic(graph),
            scratches: vec![Scratch::new()],
            commit_delta: Vec::new(),
        })
    }

    /// Enables intra-worker parallelism: each simulated worker shards its
    /// per-superstep frontier across `threads` pool workers (clamped to at
    /// least 1). Results are bit-identical for any thread count — the
    /// per-part commit replays in the same sorted vertex order either way.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pool = WorkerPool::new(threads);
        self.scratches = vec![Scratch::new(); self.pool.threads()];
        self
    }

    /// Number of pool threads each simulated worker uses during a superstep.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Number of workers.
    pub fn num_parts(&self) -> usize {
        self.partitioning.num_parts()
    }

    /// The replicated topology (reflecting every processed batch).
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// The engine's persistent topology snapshot (in lockstep with
    /// [`DistRippleEngine::graph`]).
    pub fn topology(&self) -> &CsrSnapshot {
        &self.topo
    }

    /// The topology epoch: how many update batches the snapshot has
    /// absorbed.
    pub fn topology_epoch(&self) -> u64 {
        self.topo.epoch()
    }

    /// The model used for inference.
    pub fn model(&self) -> &GnnModel {
        &self.model
    }

    /// The vertex-to-worker assignment.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// The interconnect cost model.
    pub fn network(&self) -> NetworkModel {
        self.network
    }

    /// Assembles the authoritative rows of every worker into one store.
    pub fn gather_store(&self) -> EmbeddingStore {
        gather_store(&self.stores, &self.partitioning)
    }

    /// Applies a batch of updates across all workers and incrementally
    /// refreshes every affected embedding, one BSP superstep per hop.
    ///
    /// # Errors
    ///
    /// Propagates graph and tensor errors; the engine should be considered
    /// poisoned after an error.
    pub fn process_batch(&mut self, batch: &UpdateBatch) -> Result<DistBatchStats> {
        let DistRippleEngine {
            graph,
            model,
            partitioning,
            network,
            stores,
            pool,
            topo,
            scratches,
            commit_delta,
        } = self;
        let num_layers = model.num_layers();
        let num_parts = partitioning.num_parts();
        let aggregator = model.aggregator();

        let mut router = MessageRouter::new(partitioning, num_layers);
        let mut stats = DistBatchStats {
            batch_size: batch.len(),
            ..DistBatchStats::default()
        };

        // --------------------------------------------------------------
        // Superstep 0 — broadcast the batch to every topology replica and
        // run the `update` operator (sequential over the batch, exactly as
        // on a single machine, so interleaved updates never double-count).
        // --------------------------------------------------------------
        stats
            .comm
            .record_update_broadcast(num_parts - 1, batch.wire_bytes());
        stats.comm_time += network.transfer_time(stats.comm.update_bytes);

        let update_start = Instant::now();
        let mut source_snapshots: HashMap<VertexId, Vec<Vec<f32>>> = HashMap::new();
        let mut edge_changes: Vec<EdgeChange> = Vec::new();
        let mut changed_prev: HashSet<VertexId> = HashSet::new();

        for update in batch {
            match update {
                GraphUpdate::UpdateFeature { vertex, features } => {
                    if !graph.contains_vertex(*vertex) {
                        return Err(DistError::InvalidUpdate(format!(
                            "feature update for unknown vertex {vertex}"
                        )));
                    }
                    let owner = partitioning.part_of(*vertex).index();
                    let delta: Vec<f32> = features
                        .iter()
                        .zip(stores[owner].embedding(0, *vertex).iter())
                        .map(|(n, o)| n - o)
                        .collect();
                    let (sinks, weights) = GraphView::out_adjacency(topo, *vertex);
                    for (&w, &weight) in sinks.iter().zip(weights.iter()) {
                        router.deposit(1, owner, w, aggregator.edge_coefficient(weight), &delta);
                    }
                    graph.set_feature(*vertex, features)?;
                    stores[owner].set_embedding(0, *vertex, features)?;
                    changed_prev.insert(*vertex);
                }
                GraphUpdate::AddEdge { src, dst, weight } => {
                    snapshot_source(stores, partitioning, model, &mut source_snapshots, *src);
                    graph.add_edge(*src, *dst, *weight)?;
                    topo.add_edge(*src, *dst, *weight)
                        .expect("topology snapshot out of sync with graph");
                    let owner = partitioning.part_of(*src).index();
                    let coeff = aggregator.edge_coefficient(*weight);
                    router.deposit(1, owner, *dst, coeff, stores[owner].embedding(0, *src));
                    edge_changes.push(EdgeChange {
                        source: *src,
                        sink: *dst,
                        sign: 1.0,
                        coeff,
                    });
                }
                GraphUpdate::DeleteEdge { src, dst } => {
                    let weight = graph.edge_weight(*src, *dst).ok_or_else(|| {
                        DistError::InvalidUpdate(format!("deleting missing edge {src} -> {dst}"))
                    })?;
                    snapshot_source(stores, partitioning, model, &mut source_snapshots, *src);
                    graph.remove_edge(*src, *dst)?;
                    topo.remove_edge(*src, *dst)
                        .expect("topology snapshot out of sync with graph");
                    let owner = partitioning.part_of(*src).index();
                    let coeff = aggregator.edge_coefficient(weight);
                    router.deposit(1, owner, *dst, -coeff, stores[owner].embedding(0, *src));
                    edge_changes.push(EdgeChange {
                        source: *src,
                        sink: *dst,
                        sign: -1.0,
                        coeff,
                    });
                }
            }
        }
        stats.compute_time += update_start.elapsed();

        // --------------------------------------------------------------
        // Supersteps 1..=L — the `propagate` operator, hop by hop.
        // --------------------------------------------------------------
        for hop in 1..=num_layers {
            stats.supersteps += 1;

            // Inject the per-hop contribution of topology changes (hop 1 was
            // handled sequentially above). The delta is built from the
            // source's pre-batch embedding held by the source's owner, and
            // routed to the sink's owner like any other message.
            if hop >= 2 {
                for change in &edge_changes {
                    let owner = partitioning.part_of(change.source).index();
                    let pre_batch = &source_snapshots[&change.source][hop - 2];
                    router.deposit(
                        hop,
                        owner,
                        change.sink,
                        change.sign * change.coeff,
                        pre_batch,
                    );
                }
            }

            // Communication phase: ship all pending halo stubs for this hop.
            let superstep_bytes = router.flush(hop, &mut stats.comm);
            stats.comm_time += network.transfer_time(superstep_bytes);

            // Compute phase: each worker applies mailboxes and re-evaluates
            // the layer for the affected vertices it owns. Workers run
            // concurrently in a real deployment, so the phase costs as much
            // as its slowest worker.
            let layer = model.layer(hop)?;
            let mail = router.take_hop(hop);
            let mut affected: HashSet<VertexId> = mail.keys().copied().collect();
            if layer.depends_on_self() {
                affected.extend(changed_prev.iter().copied());
            }
            if hop == num_layers {
                stats.affected_final = affected.len();
            }

            let by_part = group_by_part(affected, partitioning);
            let mut changed_now: HashSet<VertexId> = HashSet::new();
            let mut slowest_worker = Duration::ZERO;
            for (part, vertices) in by_part.iter().enumerate() {
                if vertices.is_empty() {
                    continue;
                }
                let worker_start = Instant::now();

                // Apply phase: fold the deltas addressed to this part's
                // vertices into its store in place, then the compute phase
                // runs intra-worker parallel — pool workers re-evaluate
                // disjoint contiguous shards of the frontier into their own
                // scratch arenas (allocation-free once warm) without
                // writing the store.
                for &v in vertices {
                    if let Some(delta) = mail.get(&v) {
                        ripple_tensor::add_assign(stores[part].aggregate_mut(hop, v), delta);
                    }
                }
                let ranges = evaluate_frontier_into(
                    pool,
                    &*topo,
                    model,
                    &stores[part],
                    hop,
                    vertices,
                    scratches,
                )?;

                // Commit block after block in sorted vertex order (identical
                // to the inline order), writing back and routing next-hop
                // messages.
                for (scratch, range) in scratches.iter().zip(ranges) {
                    for (&v, new_embedding) in vertices[range].iter().zip(scratch.out.iter_rows()) {
                        commit_delta.clear();
                        commit_delta.extend(
                            new_embedding
                                .iter()
                                .zip(stores[part].embedding(hop, v).iter())
                                .map(|(n, o)| n - o),
                        );
                        stores[part].set_embedding(hop, v, new_embedding)?;
                        changed_now.insert(v);

                        // Forward messages to the next hop's mailboxes,
                        // streaming the snapshot's contiguous out-rows.
                        if hop < num_layers {
                            let (sinks, weights) = GraphView::out_adjacency(&*topo, v);
                            for (&w, &weight) in sinks.iter().zip(weights.iter()) {
                                router.deposit(
                                    hop + 1,
                                    part,
                                    w,
                                    aggregator.edge_coefficient(weight),
                                    commit_delta,
                                );
                            }
                        }
                    }
                }
                slowest_worker = slowest_worker.max(worker_start.elapsed());
            }
            router.recycle(mail);
            stats.compute_time += slowest_worker;
            changed_prev = changed_now;
        }

        // Batch absorbed: bump the topology epoch and compact if due.
        topo.advance_epoch();
        topo.maybe_compact();
        Ok(stats)
    }
}

/// Captures the pre-batch embeddings (layers 1..L-1) of an edge-update source
/// vertex from its owner's store, once per batch.
fn snapshot_source(
    stores: &[EmbeddingStore],
    partitioning: &Partitioning,
    model: &GnnModel,
    snapshots: &mut HashMap<VertexId, Vec<Vec<f32>>>,
    source: VertexId,
) {
    if snapshots.contains_key(&source) {
        return;
    }
    let owner = partitioning.part_of(source).index();
    let upto = model.num_layers().saturating_sub(1);
    let mut layers = Vec::with_capacity(upto);
    for l in 1..=upto {
        layers.push(stores[owner].embedding(l, source).to_vec());
    }
    snapshots.insert(source, layers);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_core::{RippleConfig, RippleEngine};
    use ripple_gnn::layer_wise::full_inference;
    use ripple_gnn::Workload;
    use ripple_graph::partition::halo::HaloInfo;
    use ripple_graph::partition::{LdgPartitioner, Partitioner};
    use ripple_graph::stream::{build_stream, StreamConfig};
    use ripple_graph::synth::DatasetSpec;

    fn bootstrap(
        workload: Workload,
        layers: usize,
        seed: u64,
    ) -> (DynamicGraph, GnnModel, EmbeddingStore, Vec<UpdateBatch>) {
        let full = DatasetSpec::custom(160, 5.0, 6, 4)
            .generate_weighted(seed, workload.needs_edge_weights())
            .unwrap();
        let plan = build_stream(
            &full,
            &StreamConfig {
                total_updates: 60,
                seed: seed ^ 1,
                ..Default::default()
            },
        )
        .unwrap();
        let model = workload.build_model(6, 8, 4, layers, seed ^ 2).unwrap();
        let store = full_inference(&plan.snapshot, &model).unwrap();
        let batches = plan.batches(12);
        (plan.snapshot, model, store, batches)
    }

    #[test]
    fn distributed_matches_single_machine_for_sum_and_mean() {
        for (workload, layers) in [(Workload::GcS, 2), (Workload::GcM, 3), (Workload::GsS, 2)] {
            let (snapshot, model, store, batches) = bootstrap(workload, layers, 7);
            let partitioning = LdgPartitioner::new().partition(&snapshot, 4).unwrap();
            let mut dist = DistRippleEngine::new(
                &snapshot,
                model.clone(),
                &store,
                partitioning,
                NetworkModel::ten_gbe(),
            )
            .unwrap();
            let mut single =
                RippleEngine::new(snapshot, model, store, RippleConfig::default()).unwrap();
            for batch in &batches {
                dist.process_batch(batch).unwrap();
                single.process_batch(batch).unwrap();
            }
            let diff = dist
                .gather_store()
                .max_diff_all_layers(single.store())
                .unwrap();
            assert!(diff < 2e-3, "{workload}: diff {diff}");
        }
    }

    #[test]
    fn intra_worker_threads_are_bit_identical_and_charge_same_bytes() {
        let (snapshot, model, store, batches) = bootstrap(Workload::GcS, 2, 23);
        let partitioning = LdgPartitioner::new().partition(&snapshot, 3).unwrap();
        let mut serial = DistRippleEngine::new(
            &snapshot,
            model.clone(),
            &store,
            partitioning.clone(),
            NetworkModel::ten_gbe(),
        )
        .unwrap();
        assert_eq!(serial.threads(), 1);
        let mut threaded = DistRippleEngine::new(
            &snapshot,
            model,
            &store,
            partitioning,
            NetworkModel::ten_gbe(),
        )
        .unwrap()
        .with_threads(4);
        assert_eq!(threaded.threads(), 4);
        for batch in &batches {
            let a = serial.process_batch(batch).unwrap();
            let b = threaded.process_batch(batch).unwrap();
            assert_eq!(a.comm.bytes, b.comm.bytes);
            assert_eq!(a.comm.messages, b.comm.messages);
            assert_eq!(a.affected_final, b.affected_final);
        }
        assert!(serial.gather_store() == threaded.gather_store());
    }

    #[test]
    fn empty_batch_moves_zero_bytes() {
        let (snapshot, model, store, _) = bootstrap(Workload::GcS, 2, 11);
        let partitioning = LdgPartitioner::new().partition(&snapshot, 4).unwrap();
        let mut engine = DistRippleEngine::new(
            &snapshot,
            model,
            &store,
            partitioning,
            NetworkModel::ten_gbe(),
        )
        .unwrap();
        let stats = engine.process_batch(&UpdateBatch::new()).unwrap();
        assert_eq!(stats.comm.bytes, 0);
        assert_eq!(stats.comm.messages, 0);
        assert_eq!(stats.comm_time, Duration::ZERO);
        assert_eq!(stats.affected_final, 0);
        assert_eq!(stats.batch_size, 0);
    }

    #[test]
    fn single_partition_never_communicates() {
        let (snapshot, model, store, batches) = bootstrap(Workload::GcS, 2, 13);
        let partitioning = LdgPartitioner::new().partition(&snapshot, 1).unwrap();
        let mut engine = DistRippleEngine::new(
            &snapshot,
            model,
            &store,
            partitioning,
            NetworkModel::ten_gbe(),
        )
        .unwrap();
        for batch in &batches {
            let stats = engine.process_batch(batch).unwrap();
            assert_eq!(stats.comm.bytes, 0, "one worker has nobody to talk to");
        }
    }

    #[test]
    fn halo_bytes_scale_with_halo_size() {
        // A directed path 0 -> 1 -> ... -> 7. Splitting it in the middle cuts
        // one edge; interleaving even/odd vertices cuts every edge.
        let mut graph = DynamicGraph::new(8, 2);
        for v in 0..7u32 {
            graph.add_edge(VertexId(v), VertexId(v + 1), 1.0).unwrap();
        }
        let model = Workload::GcS.build_model(2, 4, 2, 2, 3).unwrap();
        let store = full_inference(&graph, &model).unwrap();
        let contiguous = Partitioning::from_assignment(
            (0..8).map(|v| PartitionId(u32::from(v >= 4))).collect(),
            2,
        )
        .unwrap();
        let interleaved =
            Partitioning::from_assignment((0..8u32).map(|v| PartitionId(v % 2)).collect(), 2)
                .unwrap();
        assert!(
            HaloInfo::compute(&graph, &interleaved).total_halo_replicas()
                > HaloInfo::compute(&graph, &contiguous).total_halo_replicas()
        );

        let batch = UpdateBatch::from_updates(vec![GraphUpdate::update_feature(
            VertexId(0),
            vec![1.0, -1.0],
        )]);
        let mut bytes = Vec::new();
        for partitioning in [contiguous, interleaved] {
            let mut engine = DistRippleEngine::new(
                &graph,
                model.clone(),
                &store,
                partitioning,
                NetworkModel::ten_gbe(),
            )
            .unwrap();
            bytes.push(engine.process_batch(&batch).unwrap().comm.halo_bytes);
        }
        assert!(
            bytes[1] > bytes[0],
            "larger halo must move more bytes: contiguous {} vs interleaved {}",
            bytes[0],
            bytes[1]
        );
    }

    #[test]
    fn topology_snapshot_tracks_the_replicated_graph() {
        let (snapshot, model, store, batches) = bootstrap(Workload::GcS, 2, 29);
        let partitioning = LdgPartitioner::new().partition(&snapshot, 3).unwrap();
        let mut engine = DistRippleEngine::new(
            &snapshot,
            model,
            &store,
            partitioning,
            NetworkModel::ten_gbe(),
        )
        .unwrap();
        assert_eq!(engine.topology_epoch(), 0);
        for batch in &batches {
            engine.process_batch(batch).unwrap();
        }
        assert_eq!(engine.topology_epoch(), batches.len() as u64);
        let graph = engine.graph();
        let topo = engine.topology();
        assert_eq!(GraphView::num_edges(topo), graph.num_edges());
        for v in 0..graph.num_vertices() as u32 {
            let vid = VertexId(v);
            assert_eq!(topo.in_neighbors(vid), graph.in_neighbors(vid));
            assert_eq!(topo.out_neighbors(vid), graph.out_neighbors(vid));
        }
    }

    #[test]
    fn constructor_validates_shapes() {
        let (snapshot, model, store, _) = bootstrap(Workload::GcS, 2, 17);
        let partitioning = LdgPartitioner::new().partition(&snapshot, 4).unwrap();
        let wrong_model = Workload::GcS.build_model(6, 8, 4, 3, 0).unwrap();
        assert!(DistRippleEngine::new(
            &snapshot,
            wrong_model,
            &store,
            partitioning.clone(),
            NetworkModel::ten_gbe(),
        )
        .is_err());
        let small = EmbeddingStore::zeroed(&model, 10);
        assert!(DistRippleEngine::new(
            &snapshot,
            model,
            &small,
            partitioning,
            NetworkModel::ten_gbe(),
        )
        .is_err());
    }

    #[test]
    fn invalid_updates_are_reported() {
        let (snapshot, model, store, _) = bootstrap(Workload::GcS, 2, 19);
        let n = snapshot.num_vertices() as u32;
        let partitioning = LdgPartitioner::new().partition(&snapshot, 2).unwrap();
        let mut engine = DistRippleEngine::new(
            &snapshot,
            model,
            &store,
            partitioning,
            NetworkModel::ten_gbe(),
        )
        .unwrap();
        let bad = UpdateBatch::from_updates(vec![GraphUpdate::update_feature(
            VertexId(n + 3),
            vec![0.0; 6],
        )]);
        assert!(engine.process_batch(&bad).is_err());
    }
}
