//! Shared per-worker state helpers of the distributed engines.
//!
//! Both engines keep one [`EmbeddingStore`] per worker, full-sized but
//! *authoritative only for the rows of vertices that worker owns* — exactly
//! the ownership discipline of a real deployment, where reading a remote row
//! without first communicating it would be a bug. [`gather_store`] assembles
//! the authoritative rows back into one store, which is how every exactness
//! test compares a distributed run against the single-machine engines.

use crate::{DistError, Result};
use ripple_gnn::{EmbeddingStore, GnnModel};
use ripple_graph::partition::Partitioning;
use ripple_graph::{DynamicGraph, VertexId};

/// Validates that graph, model, bootstrap store and partitioning fit
/// together.
pub(crate) fn validate_shapes(
    graph: &DynamicGraph,
    model: &GnnModel,
    store: &EmbeddingStore,
    partitioning: &Partitioning,
) -> Result<()> {
    if store.num_vertices() != graph.num_vertices() {
        return Err(DistError::Mismatch(format!(
            "store covers {} vertices, graph has {}",
            store.num_vertices(),
            graph.num_vertices()
        )));
    }
    if store.num_layers() != model.num_layers() {
        return Err(DistError::Mismatch(format!(
            "store has {} layers, model has {}",
            store.num_layers(),
            model.num_layers()
        )));
    }
    if graph.feature_dim() != model.input_dim() {
        return Err(DistError::Mismatch(format!(
            "graph features are {}-wide, model expects {}",
            graph.feature_dim(),
            model.input_dim()
        )));
    }
    if partitioning.num_vertices() != graph.num_vertices() {
        return Err(DistError::Mismatch(format!(
            "partitioning covers {} vertices, graph has {}",
            partitioning.num_vertices(),
            graph.num_vertices()
        )));
    }
    Ok(())
}

/// Groups vertices by their owning partition, sorted within each partition
/// so that per-worker processing (and therefore float accumulation) order is
/// reproducible across runs even when the input set is hash-ordered.
pub(crate) fn group_by_part(
    vertices: impl IntoIterator<Item = VertexId>,
    partitioning: &Partitioning,
) -> Vec<Vec<VertexId>> {
    let mut by_part = vec![Vec::new(); partitioning.num_parts()];
    for v in vertices {
        by_part[partitioning.part_of(v).index()].push(v);
    }
    for part in &mut by_part {
        part.sort_unstable();
    }
    by_part
}

/// Assembles the authoritative (owner-held) rows of every per-worker store
/// into one [`EmbeddingStore`], the distributed counterpart of reading a
/// single-machine engine's store.
///
/// # Panics
///
/// Panics if `stores` is empty or the stores disagree with the partitioning
/// on vertex count (engine constructors enforce both).
pub fn gather_store(stores: &[EmbeddingStore], partitioning: &Partitioning) -> EmbeddingStore {
    let mut gathered = stores[0].clone();
    let num_layers = gathered.num_layers();
    for v in 0..partitioning.num_vertices() {
        let vid = VertexId(v as u32);
        let owner = partitioning.part_of(vid).index();
        if owner == 0 {
            continue;
        }
        let src = &stores[owner];
        for l in 0..=num_layers {
            gathered
                .set_embedding(l, vid, src.embedding(l, vid))
                .expect("stores share one shape");
        }
        for l in 1..=num_layers {
            gathered
                .set_aggregate(l, vid, src.aggregate(l, vid))
                .expect("stores share one shape");
        }
    }
    gathered
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_gnn::layer_wise::full_inference;
    use ripple_gnn::Workload;
    use ripple_graph::partition::{HashPartitioner, Partitioner};
    use ripple_graph::synth::DatasetSpec;

    #[test]
    fn gather_reassembles_owner_rows() {
        let graph = DatasetSpec::custom(40, 3.0, 4, 3).generate(1).unwrap();
        let model = Workload::GcS.build_model(4, 6, 3, 2, 0).unwrap();
        let store = full_inference(&graph, &model).unwrap();
        let partitioning = HashPartitioner::new().partition(&graph, 3).unwrap();

        // Perturb each worker's copy on rows it does NOT own; the gathered
        // store must ignore those rows entirely.
        let mut stores = vec![store.clone(); 3];
        for (p, s) in stores.iter_mut().enumerate() {
            for v in 0..40u32 {
                let vid = VertexId(v);
                if partitioning.part_of(vid).index() != p {
                    s.set_embedding(2, vid, &[9.0, 9.0, 9.0]).unwrap();
                }
            }
        }
        let gathered = gather_store(&stores, &partitioning);
        assert_eq!(gathered.max_diff_all_layers(&store).unwrap(), 0.0);
    }

    #[test]
    fn shape_validation_rejects_mismatches() {
        let graph = DatasetSpec::custom(30, 3.0, 4, 3).generate(2).unwrap();
        let model = Workload::GcS.build_model(4, 6, 3, 2, 0).unwrap();
        let store = full_inference(&graph, &model).unwrap();
        let partitioning = HashPartitioner::new().partition(&graph, 2).unwrap();
        assert!(validate_shapes(&graph, &model, &store, &partitioning).is_ok());

        let other_model = Workload::GcS.build_model(4, 6, 3, 3, 0).unwrap();
        assert!(validate_shapes(&graph, &other_model, &store, &partitioning).is_err());

        let small = EmbeddingStore::zeroed(&model, 10);
        assert!(validate_shapes(&graph, &model, &small, &partitioning).is_err());

        let small_graph = DatasetSpec::custom(10, 2.0, 4, 3).generate(2).unwrap();
        let bad_parts = HashPartitioner::new().partition(&small_graph, 2).unwrap();
        assert!(validate_shapes(&graph, &model, &store, &bad_parts).is_err());

        let wrong_width = Workload::GcS.build_model(6, 6, 3, 2, 0).unwrap();
        let wrong_store = EmbeddingStore::zeroed(&wrong_width, 30);
        assert!(validate_shapes(&graph, &wrong_width, &wrong_store, &partitioning).is_err());
    }

    #[test]
    fn grouping_is_sorted_within_each_partition() {
        let graph = DatasetSpec::custom(20, 2.0, 4, 3).generate(4).unwrap();
        let partitioning = HashPartitioner::new().partition(&graph, 3).unwrap();
        let scrambled = [7u32, 3, 19, 0, 12, 9, 6, 15].map(VertexId);
        let grouped = group_by_part(scrambled, &partitioning);
        assert_eq!(grouped.iter().map(Vec::len).sum::<usize>(), scrambled.len());
        for (p, vertices) in grouped.iter().enumerate() {
            assert!(
                vertices.windows(2).all(|w| w[0] < w[1]),
                "partition {p} unsorted"
            );
            assert!(vertices
                .iter()
                .all(|&v| partitioning.part_of(v).index() == p));
        }
    }
}
