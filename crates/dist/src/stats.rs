//! Per-batch and per-stream statistics of the distributed engines.

use crate::network::CommStats;
use ripple_core::metrics::{median, percentile};
use std::time::Duration;

/// Cost and coverage statistics of one distributed batch.
///
/// `compute_time` is measured wall-clock time, taken as the *slowest worker*
/// of each compute phase (workers run concurrently in a real deployment);
/// `comm_time` is simulated from the [`crate::NetworkModel`] and the bytes
/// each superstep put on the wire.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DistBatchStats {
    /// Number of updates in the batch.
    pub batch_size: usize,
    /// Wall-clock compute time (slowest worker per superstep, summed over
    /// supersteps).
    pub compute_time: Duration,
    /// Simulated network time across all supersteps.
    pub comm_time: Duration,
    /// Communication ledger (bytes/messages, with a breakdown).
    pub comm: CommStats,
    /// Number of distinct vertices whose final-layer embedding was refreshed.
    pub affected_final: usize,
    /// Number of BSP supersteps executed (one per GNN hop).
    pub supersteps: usize,
}

impl DistBatchStats {
    /// Total simulated batch latency: compute plus communication.
    pub fn total_time(&self) -> Duration {
        self.compute_time + self.comm_time
    }

    /// Updates processed per second of total batch latency.
    pub fn throughput(&self) -> f64 {
        let secs = self.total_time().as_secs_f64();
        if secs == 0.0 {
            return f64::INFINITY;
        }
        self.batch_size as f64 / secs
    }
}

/// Summary of a whole update stream processed by one distributed strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct DistSummary {
    /// Strategy label (e.g. "dist-ripple", "dist-rc").
    pub strategy: String,
    /// Number of partitions (workers) the graph was split across.
    pub num_parts: usize,
    /// Number of batches processed.
    pub num_batches: usize,
    /// Total number of updates across all batches.
    pub total_updates: usize,
    /// Sum of all batch latencies (compute + simulated communication).
    pub total_time: Duration,
    /// Median batch latency.
    pub median_latency: Duration,
    /// 95th-percentile batch latency.
    pub p95_latency: Duration,
    /// Throughput in updates per second of total latency.
    pub throughput: f64,
    /// Total wall-clock compute time.
    pub total_compute_time: Duration,
    /// Total simulated network time.
    pub total_comm_time: Duration,
    /// Total bytes that crossed partition boundaries.
    pub total_bytes: usize,
    /// Total messages that crossed partition boundaries.
    pub total_messages: usize,
}

impl DistSummary {
    /// Builds a summary from per-batch statistics.
    pub fn from_stats(
        strategy: impl Into<String>,
        num_parts: usize,
        stats: &[DistBatchStats],
    ) -> Self {
        let latencies: Vec<Duration> = stats.iter().map(DistBatchStats::total_time).collect();
        let total_time: Duration = latencies.iter().sum();
        let total_updates: usize = stats.iter().map(|s| s.batch_size).sum();
        let throughput = if total_time.is_zero() {
            f64::INFINITY
        } else {
            total_updates as f64 / total_time.as_secs_f64()
        };
        DistSummary {
            strategy: strategy.into(),
            num_parts,
            num_batches: stats.len(),
            total_updates,
            total_time,
            median_latency: median(&latencies),
            p95_latency: percentile(&latencies, 95.0),
            throughput,
            total_compute_time: stats.iter().map(|s| s.compute_time).sum(),
            total_comm_time: stats.iter().map(|s| s.comm_time).sum(),
            total_bytes: stats.iter().map(|s| s.comm.bytes).sum(),
            total_messages: stats.iter().map(|s| s.comm.messages).sum(),
        }
    }

    /// One line in the format used by the experiment harness tables.
    pub fn table_row(&self) -> String {
        format!(
            "{:<12} parts={:<3} updates={:<7} thpt={:>10.1} up/s  median={:>9.3} ms  compute={:>8.3} s  comm={:>8.3} s  bytes={:>10}  msgs={:>8}",
            self.strategy,
            self.num_parts,
            self.total_updates,
            self.throughput,
            self.median_latency.as_secs_f64() * 1e3,
            self.total_compute_time.as_secs_f64(),
            self.total_comm_time.as_secs_f64(),
            self.total_bytes,
            self.total_messages,
        )
    }
}

impl std::fmt::Display for DistSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.table_row())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(compute_ms: u64, comm_ms: u64, batch: usize, bytes: usize) -> DistBatchStats {
        DistBatchStats {
            batch_size: batch,
            compute_time: Duration::from_millis(compute_ms),
            comm_time: Duration::from_millis(comm_ms),
            comm: CommStats {
                messages: 2,
                bytes,
                update_bytes: 0,
                halo_bytes: bytes,
            },
            affected_final: 5,
            supersteps: 2,
        }
    }

    #[test]
    fn batch_totals() {
        let s = stats(3, 7, 10, 128);
        assert_eq!(s.total_time(), Duration::from_millis(10));
        assert!((s.throughput() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn summary_aggregates() {
        let all = vec![
            stats(1, 9, 10, 100),
            stats(2, 18, 10, 300),
            stats(1, 4, 10, 50),
        ];
        let summary = DistSummary::from_stats("dist-ripple", 4, &all);
        assert_eq!(summary.num_parts, 4);
        assert_eq!(summary.num_batches, 3);
        assert_eq!(summary.total_updates, 30);
        assert_eq!(summary.total_time, Duration::from_millis(35));
        assert_eq!(summary.median_latency, Duration::from_millis(10));
        assert_eq!(summary.total_bytes, 450);
        assert_eq!(summary.total_messages, 6);
        assert_eq!(summary.total_compute_time, Duration::from_millis(4));
        assert_eq!(summary.total_comm_time, Duration::from_millis(31));
        assert!(summary.table_row().contains("dist-ripple"));
        assert!(summary.to_string().contains("up/s"));
    }

    #[test]
    fn empty_stream_summary() {
        let summary = DistSummary::from_stats("dist-rc", 2, &[]);
        assert_eq!(summary.total_updates, 0);
        assert!(summary.throughput.is_infinite());
    }
}
