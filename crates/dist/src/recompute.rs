//! The distributed layer-wise recompute baseline (DistDGL/RC-style).
//!
//! Same BSP superstep structure as [`crate::DistRippleEngine`], but the
//! embedding refresh is **pull-based**: a worker recomputing an affected
//! vertex at hop `l` re-aggregates *all* of its in-neighbours, and it has no
//! change tracking to tell which remote neighbours actually moved — so every
//! superstep it must fetch the hop-`l-1` embeddings of **every** remote
//! in-neighbour of its affected vertices. Halo traffic therefore scales with
//! the full cut in-degree `k` of the affected region, while the incremental
//! engine's push-based deltas scale with the changed in-degree `k'`. That
//! asymmetry is the paper's ~70× communication gap (Fig 12c).
//!
//! Vertex features (hop 0) are DistDGL-style halo replicas kept fresh by the
//! update broadcast, so hop 1 never pulls.

use crate::network::NetworkModel;
use crate::stats::DistBatchStats;
use crate::worker::{gather_store, group_by_part, validate_shapes};
use crate::Result;
use ripple_core::DeltaMessage;
use ripple_gnn::layer_wise::recompute_vertices_at_hop;
use ripple_gnn::recompute::affected_hops;
use ripple_gnn::{EmbeddingStore, GnnModel};
use ripple_graph::partition::Partitioning;
use ripple_graph::{DynamicGraph, GraphUpdate, UpdateBatch, VertexId};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// The distributed layer-wise recompute engine (the RC baseline of
/// Figs 12–13).
#[derive(Debug, Clone)]
pub struct DistRecomputeEngine {
    graph: DynamicGraph,
    model: GnnModel,
    partitioning: Partitioning,
    network: NetworkModel,
    stores: Vec<EmbeddingStore>,
}

impl DistRecomputeEngine {
    /// Creates a distributed recompute engine from bootstrapped
    /// single-machine state.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DistError::Mismatch`] if graph, model, store and
    /// partitioning shapes do not fit together.
    pub fn new(
        graph: &DynamicGraph,
        model: GnnModel,
        store: &EmbeddingStore,
        partitioning: Partitioning,
        network: NetworkModel,
    ) -> Result<Self> {
        validate_shapes(graph, &model, store, &partitioning)?;
        let stores = vec![store.clone(); partitioning.num_parts()];
        Ok(DistRecomputeEngine {
            graph: graph.clone(),
            model,
            partitioning,
            network,
            stores,
        })
    }

    /// Number of workers.
    pub fn num_parts(&self) -> usize {
        self.partitioning.num_parts()
    }

    /// The replicated topology (reflecting every processed batch).
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// The model used for inference.
    pub fn model(&self) -> &GnnModel {
        &self.model
    }

    /// The vertex-to-worker assignment.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// The interconnect cost model.
    pub fn network(&self) -> NetworkModel {
        self.network
    }

    /// Assembles the authoritative rows of every worker into one store.
    pub fn gather_store(&self) -> EmbeddingStore {
        gather_store(&self.stores, &self.partitioning)
    }

    /// Applies a batch of updates and recomputes every affected embedding by
    /// full re-aggregation, one BSP superstep per hop.
    ///
    /// # Errors
    ///
    /// Propagates graph and tensor errors; the engine should be considered
    /// poisoned after an error.
    pub fn process_batch(&mut self, batch: &UpdateBatch) -> Result<DistBatchStats> {
        let DistRecomputeEngine {
            graph,
            model,
            partitioning,
            network,
            stores,
        } = self;
        let num_parts = partitioning.num_parts();
        let mut stats = DistBatchStats {
            batch_size: batch.len(),
            ..DistBatchStats::default()
        };

        // Superstep 0: broadcast the batch, then apply it to the replicated
        // topology and to every worker's replicated feature table.
        stats
            .comm
            .record_update_broadcast(num_parts - 1, batch.wire_bytes());
        stats.comm_time += network.transfer_time(stats.comm.update_bytes);

        let update_start = Instant::now();
        for update in batch {
            graph.apply(update)?;
            if let GraphUpdate::UpdateFeature { vertex, features } = update {
                for store in stores.iter_mut() {
                    store.set_embedding(0, *vertex, features)?;
                }
            }
        }
        stats.compute_time += update_start.elapsed();

        // Supersteps 1..=L: pull remote inputs, then recompute locally.
        let hops = affected_hops(graph, model, batch);
        stats.affected_final = hops.last().map(|set| set.len()).unwrap_or(0);
        for (index, affected) in hops.iter().enumerate() {
            let hop = index + 1;
            stats.supersteps += 1;
            let by_part = group_by_part(affected.iter().copied(), partitioning);

            // Communication phase: every worker fetches the previous-hop
            // embedding of each distinct remote in-neighbour of its affected
            // vertices. Hop-0 features are replicated, so hop 1 pulls
            // nothing.
            let mut superstep_bytes = 0usize;
            if hop >= 2 {
                for (part, vertices) in by_part.iter().enumerate() {
                    let mut remote: BTreeSet<VertexId> = BTreeSet::new();
                    for &v in vertices {
                        for &u in graph.in_neighbors(v) {
                            if partitioning.part_of(u).index() != part {
                                remote.insert(u);
                            }
                        }
                    }
                    for u in remote {
                        // The pull response reuses the delta-message wire
                        // format, so both strategies are charged identically
                        // per shipped row.
                        let owner = partitioning.part_of(u).index();
                        let row = stores[owner].embedding(hop - 1, u).to_vec();
                        let response = DeltaMessage::new(u, hop - 1, row);
                        let wire = response.wire_bytes();
                        stats.comm.record_halo_message(wire);
                        superstep_bytes += wire;
                        stores[part].set_embedding(hop - 1, u, &response.delta)?;
                    }
                }
            }
            stats.comm_time += network.transfer_time(superstep_bytes);

            // Compute phase: full re-aggregation of each worker's affected
            // vertices; the phase costs as much as its slowest worker.
            let mut slowest_worker = Duration::ZERO;
            for (part, vertices) in by_part.iter().enumerate() {
                if vertices.is_empty() {
                    continue;
                }
                let worker_start = Instant::now();
                recompute_vertices_at_hop(graph, model, &mut stores[part], hop, vertices)?;
                slowest_worker = slowest_worker.max(worker_start.elapsed());
            }
            stats.compute_time += slowest_worker;
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DistRippleEngine;
    use ripple_gnn::layer_wise::full_inference;
    use ripple_gnn::recompute::{RecomputeConfig, RecomputeEngine};
    use ripple_gnn::Workload;
    use ripple_graph::partition::{LdgPartitioner, Partitioner};
    use ripple_graph::stream::{build_stream, StreamConfig};
    use ripple_graph::synth::DatasetSpec;

    fn bootstrap(
        layers: usize,
        seed: u64,
    ) -> (DynamicGraph, GnnModel, EmbeddingStore, Vec<UpdateBatch>) {
        let full = DatasetSpec::custom(150, 5.0, 6, 4).generate(seed).unwrap();
        let plan = build_stream(
            &full,
            &StreamConfig {
                total_updates: 60,
                seed: seed ^ 1,
                ..Default::default()
            },
        )
        .unwrap();
        let model = Workload::GcS
            .build_model(6, 8, 4, layers, seed ^ 2)
            .unwrap();
        let store = full_inference(&plan.snapshot, &model).unwrap();
        let batches = plan.batches(12);
        (plan.snapshot, model, store, batches)
    }

    #[test]
    fn distributed_rc_matches_single_machine_rc() {
        let (snapshot, model, store, batches) = bootstrap(3, 23);
        let partitioning = LdgPartitioner::new().partition(&snapshot, 4).unwrap();
        let mut dist = DistRecomputeEngine::new(
            &snapshot,
            model.clone(),
            &store,
            partitioning,
            NetworkModel::ten_gbe(),
        )
        .unwrap();
        let mut single =
            RecomputeEngine::new(snapshot, model, store, RecomputeConfig::rc()).unwrap();
        for batch in &batches {
            dist.process_batch(batch).unwrap();
            single.process_batch(batch).unwrap();
        }
        let diff = dist
            .gather_store()
            .max_diff_all_layers(single.store())
            .unwrap();
        assert!(diff < 1e-5, "diff {diff}");
    }

    #[test]
    fn recompute_pulls_more_than_ripple_pushes() {
        let (snapshot, model, store, batches) = bootstrap(2, 29);
        let partitioning = LdgPartitioner::new().partition(&snapshot, 4).unwrap();
        let network = NetworkModel::ten_gbe();
        let mut rc = DistRecomputeEngine::new(
            &snapshot,
            model.clone(),
            &store,
            partitioning.clone(),
            network,
        )
        .unwrap();
        let mut ripple =
            DistRippleEngine::new(&snapshot, model, &store, partitioning, network).unwrap();
        let mut rc_halo = 0usize;
        let mut ripple_halo = 0usize;
        for batch in &batches {
            rc_halo += rc.process_batch(batch).unwrap().comm.halo_bytes;
            ripple_halo += ripple.process_batch(batch).unwrap().comm.halo_bytes;
        }
        assert!(
            rc_halo > ripple_halo,
            "pull-everything must outweigh push-changes: rc {rc_halo} vs ripple {ripple_halo}"
        );
    }

    #[test]
    fn empty_batch_moves_zero_bytes_and_touches_nothing() {
        let (snapshot, model, store, _) = bootstrap(2, 31);
        let partitioning = LdgPartitioner::new().partition(&snapshot, 3).unwrap();
        let mut engine = DistRecomputeEngine::new(
            &snapshot,
            model,
            &store,
            partitioning,
            NetworkModel::ten_gbe(),
        )
        .unwrap();
        let stats = engine.process_batch(&UpdateBatch::new()).unwrap();
        assert_eq!(stats.comm.bytes, 0);
        assert_eq!(stats.comm_time, Duration::ZERO);
        assert_eq!(
            engine.gather_store().max_diff_all_layers(&store).unwrap(),
            0.0
        );
    }
}
