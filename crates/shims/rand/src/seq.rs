//! Sequence helpers (subset of `rand::seq`).

use crate::rngs::SmallRng;
use crate::Rng;

/// Slice shuffling (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle(&mut self, rng: &mut SmallRng);
}

impl<T> SliceRandom for [T] {
    fn shuffle(&mut self, rng: &mut SmallRng) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

/// Index sampling without replacement (subset of `rand::seq::index`).
pub mod index {
    use super::*;

    /// A set of sampled indices (subset of `rand::seq::index::IndexVec`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct IndexVec {
        indices: Vec<usize>,
    }

    impl IndexVec {
        /// Iterator over the sampled indices.
        pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
            self.indices.iter().copied()
        }

        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.indices.len()
        }

        /// Returns `true` if no indices were sampled.
        pub fn is_empty(&self) -> bool {
            self.indices.is_empty()
        }

        /// Consumes the set, returning the indices.
        pub fn into_vec(self) -> Vec<usize> {
            self.indices
        }
    }

    /// Samples `amount` distinct indices uniformly from `0..length` using a
    /// partial Fisher–Yates shuffle.
    ///
    /// # Panics
    ///
    /// Panics if `amount > length`.
    pub fn sample(rng: &mut SmallRng, length: usize, amount: usize) -> IndexVec {
        assert!(
            amount <= length,
            "cannot sample {amount} of {length} indices"
        );
        let mut pool: Vec<usize> = (0..length).collect();
        for i in 0..amount {
            let j = i + (rng.next_u64() % (length - i) as u64) as usize;
            pool.swap(i, j);
        }
        pool.truncate(amount);
        IndexVec { indices: pool }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::SeedableRng;

        #[test]
        fn sample_is_distinct_and_in_range() {
            let mut rng = SmallRng::seed_from_u64(5);
            let picked = sample(&mut rng, 100, 10);
            assert_eq!(picked.len(), 10);
            assert!(!picked.is_empty());
            let set: std::collections::HashSet<_> = picked.iter().collect();
            assert_eq!(set.len(), 10);
            assert!(picked.iter().all(|i| i < 100));
            assert_eq!(picked.clone().into_vec().len(), 10);
        }

        #[test]
        fn shuffle_is_a_permutation() {
            let mut rng = SmallRng::seed_from_u64(9);
            let mut v: Vec<u32> = (0..50).collect();
            v.shuffle(&mut rng);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        }
    }
}
