//! Concrete generators (subset of `rand::rngs`).

use crate::{Rng, SeedableRng};

/// A small, fast, deterministic PRNG (SplitMix64), standing in for
/// `rand::rngs::SmallRng`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    state: u64,
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }
}

impl Rng for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea & Flood): one add plus a finalising mix.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
