//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The workspace only needs *deterministic, seeded* pseudo-randomness for
//! synthetic dataset generation, update-stream construction, weight
//! initialisation and neighbour sampling — statistical quality far below
//! cryptographic is fine, but determinism per seed is load-bearing (the
//! exactness tests replay identical streams). This shim implements the
//! `SmallRng`/`Rng`/`SeedableRng`/`seq` surface those call sites use on top
//! of a SplitMix64 generator.
//!
//! The generated *sequences* differ from the real `rand` crate, which is fine:
//! nothing in the workspace bakes in expected values from rand 0.8 streams.

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// sequences.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` from its standard distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Types drawable via [`Rng::gen`] (subset of `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value from the standard distribution.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Unit-interval `f64` in `[0, 1)` from 53 random bits.
#[inline]
pub(crate) fn unit_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unit-interval `f32` in `[0, 1)` from 24 random bits.
#[inline]
pub(crate) fn unit_f32<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges drawable via [`Rng::gen_range`] (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128) - (self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128 % span)) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                (lo as u128 + (rng.next_u64() as u128 % span)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + unit_f32(rng) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=4);
            assert!(y <= 4);
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let d = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&d));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mean: f64 = (0..4096).map(|_| rng.gen::<f64>()).sum::<f64>() / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} too far from 0.5");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = rng.gen_range(5u32..5);
    }
}
