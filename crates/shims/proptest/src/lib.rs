//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The registry is unreachable in this build environment, so the real
//! property-testing engine cannot be vendored. This shim keeps the
//! `proptest!` test files compiling and *meaningfully running*: each property
//! is executed for `ProptestConfig::cases` deterministically seeded random
//! inputs. What it does **not** do is shrink failing cases or persist
//! regressions — when the real crate becomes available it can replace this
//! shim without touching the test files.
//!
//! Supported surface: `proptest! { #![proptest_config(..)] #[test] fn f(x in
//! strategy, ..) {..} }`, integer/float range strategies, tuple strategies,
//! `prop::collection::vec`, `any::<T>()`, `Strategy::prop_map`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!` macros.

use std::marker::PhantomData;
use std::ops::Range;

pub mod collection;

/// Re-exports mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Runner configuration (subset of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for API compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
        }
    }
}

/// Deterministic test-input generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot sample below zero");
        (self.next_u64() % bound as u64) as usize
    }
}

/// Creates the deterministic RNG for one property, seeded from its name so
/// different properties in one file explore different streams.
pub fn test_rng(name: &str) -> TestRng {
    // FNV-1a over the property name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng { state: h }
}

/// A generator of random test inputs (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (subset of `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            strategy: self,
            map: f,
        }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128) - (self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128 % span)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() as f32
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T` (subset of `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

/// Property-test entry macro (subset of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( config = ($cfg:expr); ) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($params:tt)* ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                $crate::__proptest_bind!(__rng; $($params)*);
                $body
            }
        }
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; ) => {};
    ($rng:ident; mut $pat:ident in $($rest:tt)*) => {
        $crate::__proptest_strat!($rng; [mut] $pat; []; $($rest)*);
    };
    ($rng:ident; $pat:ident in $($rest:tt)*) => {
        $crate::__proptest_strat!($rng; [] $pat; []; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_strat {
    ($rng:ident; [$($m:tt)?] $pat:ident; [$($acc:tt)*]; ) => {
        let $($m)? $pat = $crate::Strategy::generate(&($($acc)*), &mut $rng);
    };
    ($rng:ident; [$($m:tt)?] $pat:ident; [$($acc:tt)*]; , $($rest:tt)*) => {
        let $($m)? $pat = $crate::Strategy::generate(&($($acc)*), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; [$($m:tt)?] $pat:ident; [$($acc:tt)*]; $t:tt $($rest:tt)*) => {
        $crate::__proptest_strat!($rng; [$($m)?] $pat; [$($acc)* $t]; $($rest)*);
    };
}

/// Assertion inside a property (plain `assert!` in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property (plain `assert_eq!` in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property (plain `assert_ne!` in the shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = crate::test_rng("range_strategies_respect_bounds");
        for _ in 0..500 {
            let x = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let f = (-1.0f32..1.0).generate(&mut rng);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let mut rng = crate::test_rng("vec_and_tuple_strategies_compose");
        let strat = prop::collection::vec((any::<bool>(), 0u32..10), 2..5);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|(_, x)| *x < 10));
        }
        let exact = prop::collection::vec(0usize..4, 7);
        assert_eq!(exact.generate(&mut rng).len(), 7);
    }

    #[test]
    fn prop_map_transforms_values() {
        let mut rng = crate::test_rng("prop_map_transforms_values");
        let strat = (0u32..5).prop_map(|x| x * 10);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert_eq!(v % 10, 0);
            assert!(v < 50);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// The macro front-end binds multiple parameters, including `mut`.
        #[test]
        fn macro_front_end_works(
            a in 0usize..10,
            mut v in prop::collection::vec(0u8..3, 1..6),
        ) {
            prop_assume!(a != 9);
            prop_assert!(a < 9);
            v.reverse();
            prop_assert!(v.len() < 6);
            prop_assert_eq!(v.len(), v.capacity().min(v.len()));
            prop_assert_ne!(v.len(), 0);
        }
    }
}
