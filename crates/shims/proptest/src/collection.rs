//! Collection strategies (subset of `proptest::collection`).

use crate::{Strategy, TestRng};
use std::ops::Range;

/// A length specification for [`vec()`]: an exact `usize` or a `Range<usize>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max_exclusive: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max_exclusive: range.end,
        }
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = self.size.max_exclusive - self.size.min;
        let len = self.size.min + if span > 1 { rng.below(span) } else { 0 };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy producing `Vec`s of values drawn from `element`, with a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
