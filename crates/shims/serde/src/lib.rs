//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types to keep
//! the wire-format door open, but no code path serialises anything yet. This
//! shim provides the two marker traits and re-exports the no-op derive macros
//! so `use serde::{Deserialize, Serialize}` plus `#[derive(...)]` compile
//! unchanged in environments without a crates.io mirror.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the shim).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the shim).
pub trait Deserialize<'de>: Sized {}
