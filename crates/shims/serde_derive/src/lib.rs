//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! This workspace builds in environments without a crates.io mirror, so the
//! real `serde` cannot be vendored. The workspace only ever *derives*
//! `Serialize`/`Deserialize` (nothing serialises at runtime yet), so the
//! derives can safely expand to nothing. When a real serialisation backend is
//! introduced, this shim should be replaced by the genuine crates.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
