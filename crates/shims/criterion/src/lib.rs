//! Offline stand-in for the subset of the `criterion` benchmarking API this
//! workspace's bench targets use.
//!
//! The container builds without network access, so the real crates.io
//! `criterion` cannot be vendored. This shim keeps the bench targets
//! compiling and runnable: each benchmark executes a small fixed number of
//! timed iterations and prints a single mean-time line per benchmark id.
//! It makes no statistical claims — the workspace's JSON artifacts come from
//! the experiment binaries, not from these bench targets.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Iterations each benchmark routine runs (after one untimed warm-up).
const SHIM_ITERS: u32 = 3;

/// How work per iteration is reported, mirroring criterion's enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch-size hint for [`Bencher::iter_batched`]; the shim runs every batch
/// size identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input (fresh setup per iteration).
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(value: &str) -> Self {
        BenchmarkId { id: value.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(value: String) -> Self {
        BenchmarkId { id: value }
    }
}

/// Drives one benchmark routine.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times `routine` over the shim's fixed iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let _ = routine(); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..SHIM_ITERS {
            let _ = routine();
        }
        self.elapsed += start.elapsed();
        self.iters += SHIM_ITERS;
    }

    /// Times `routine` over fresh inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let _ = routine(setup()); // warm-up, untimed
        for _ in 0..SHIM_ITERS {
            let input = setup();
            let start = Instant::now();
            let _ = routine(input);
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }

    /// Like [`Bencher::iter_batched`] but hands the routine a mutable
    /// reference to the input.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut warm = setup();
        let _ = routine(&mut warm); // warm-up, untimed
        for _ in 0..SHIM_ITERS {
            let mut input = setup();
            let start = Instant::now();
            let _ = routine(&mut input);
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, group: &str, id: &str) {
        let mean = if self.iters == 0 {
            Duration::ZERO
        } else {
            self.elapsed / self.iters
        };
        println!(
            "bench {group}/{id}: mean {mean:?} over {} iters",
            self.iters
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sample-size hint; the shim ignores it.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Measurement-time hint; the shim ignores it.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Declares the per-iteration throughput; the shim ignores it.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<ID: Into<BenchmarkId>, R>(&mut self, id: ID, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new();
        routine(&mut bencher);
        bencher.report(&self.name, &id.id);
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<ID: Into<BenchmarkId>, I: ?Sized, R>(
        &mut self,
        id: ID,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new();
        routine(&mut bencher, input);
        bencher.report(&self.name, &id.id);
        self
    }

    /// Ends the group (no-op beyond parity with criterion's API).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<R>(&mut self, id: &str, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new();
        routine(&mut bencher);
        bencher.report("", id);
        self
    }
}

/// Re-export of the standard opaque-value hint, for parity with criterion's
/// `black_box`.
pub use std::hint::black_box;

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routines_and_counts_iters() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut calls = 0u32;
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_function("counting", |b| b.iter(|| calls += 1));
        assert_eq!(calls, SHIM_ITERS + 1);
        let mut batched = 0u32;
        group.bench_with_input(BenchmarkId::new("param", 8), &8usize, |b, &_n| {
            b.iter_batched(|| 1u32, |x| batched += x, BatchSize::LargeInput)
        });
        group.finish();
        assert_eq!(batched, SHIM_ITERS + 1);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("agg", 42).id, "agg/42");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }
}
