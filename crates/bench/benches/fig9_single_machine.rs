//! Bench form of Fig 9/Fig 10: per-batch processing cost of DRC, RC and
//! Ripple for each of the five GNN workloads (batch size 10, 2-layer models
//! on an Arxiv-like graph; 3-layer variant for the GC-S workload).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ripple_bench::BenchScenario;
use ripple_gnn::recompute::RecomputeConfig;
use ripple_gnn::Workload;
use std::hint::black_box;

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_workloads_batch10");
    group.sample_size(10);
    for workload in Workload::all() {
        let scenario = BenchScenario::new(2000, 7.0, 16, workload, 2, 10, 1);
        let batch = scenario.batches[0].clone();
        group.bench_function(BenchmarkId::new("drc", workload.name()), |b| {
            b.iter_batched(
                || scenario.recompute_engine(RecomputeConfig::drc()),
                |mut e| black_box(e.process_batch(&batch).unwrap()),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_function(BenchmarkId::new("rc", workload.name()), |b| {
            b.iter_batched(
                || scenario.recompute_engine(RecomputeConfig::rc()),
                |mut e| black_box(e.process_batch(&batch).unwrap()),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_function(BenchmarkId::new("ripple", workload.name()), |b| {
            b.iter_batched(
                || scenario.ripple_engine(),
                |mut e| black_box(e.process_batch(&batch).unwrap()),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig10_three_layer_gcs");
    group.sample_size(10);
    let scenario = BenchScenario::new(2000, 20.0, 16, Workload::GcS, 3, 10, 1);
    let batch = scenario.batches[0].clone();
    group.bench_function("rc", |b| {
        b.iter_batched(
            || scenario.recompute_engine(RecomputeConfig::rc()),
            |mut e| black_box(e.process_batch(&batch).unwrap()),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("ripple", |b| {
        b.iter_batched(
            || scenario.ripple_engine(),
            |mut e| black_box(e.process_batch(&batch).unwrap()),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
