//! Bench form of Fig 2b: per-batch latency of RC vs Ripple as the update
//! batch size grows, on a sparse (Arxiv-like) and a denser (Products-like)
//! graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ripple_bench::BenchScenario;
use ripple_gnn::recompute::RecomputeConfig;
use ripple_gnn::Workload;
use std::hint::black_box;

fn bench_batch_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2b_batch_size_sweep");
    group.sample_size(10);
    for (name, degree) in [("arxiv_like", 7.0f64), ("products_like", 25.0)] {
        for batch_size in [1usize, 10, 100] {
            let scenario = BenchScenario::new(1500, degree, 16, Workload::GcS, 3, batch_size, 1);
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/rc"), batch_size),
                &batch_size,
                |b, _| {
                    b.iter_batched(
                        || scenario.recompute_engine(RecomputeConfig::rc()),
                        |mut engine| black_box(engine.process_batch(&scenario.batches[0]).unwrap()),
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/ripple"), batch_size),
                &batch_size,
                |b, _| {
                    b.iter_batched(
                        || scenario.ripple_engine(),
                        |mut engine| black_box(engine.process_batch(&scenario.batches[0]).unwrap()),
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_batch_sizes);
criterion_main!(benches);
