//! Micro-benchmark of the linear aggregation functions (paper Table 1) over
//! neighbourhoods of increasing size — the per-vertex cost RC pays in full
//! (`k` accumulates) and Ripple avoids.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ripple_gnn::Aggregator;
use ripple_graph::VertexId;
use ripple_tensor::init;
use std::hint::black_box;

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_aggregators");
    group.sample_size(20);
    let table = init::normal_like(4096, 64, 1);
    for &degree in &[8usize, 64, 512] {
        let neighbors: Vec<VertexId> = (0..degree as u32).map(VertexId).collect();
        let weights: Vec<f32> = (0..degree).map(|i| 0.1 + (i % 7) as f32 * 0.1).collect();
        group.throughput(Throughput::Elements(degree as u64));
        for aggregator in Aggregator::all() {
            group.bench_with_input(
                BenchmarkId::new(aggregator.to_string(), degree),
                &degree,
                |b, _| {
                    b.iter(|| {
                        black_box(aggregator.aggregate(
                            black_box(&table),
                            black_box(&neighbors),
                            black_box(&weights),
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);
