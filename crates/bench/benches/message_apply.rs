//! Micro-benchmark of the paper's §4.3.3 benefit analysis: updating one
//! vertex whose neighbourhood has `k` members of which only `k'` changed.
//! RC re-aggregates all `k`; Ripple applies `k'` pre-accumulated deltas
//! (2·k' scalar ops) through the mailbox.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ripple_core::MailboxSet;
use ripple_gnn::Aggregator;
use ripple_graph::VertexId;
use ripple_tensor::init;
use std::hint::black_box;

fn bench_incremental_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("benefit_analysis_k_vs_kprime");
    group.sample_size(30);
    let dim = 64usize;
    let table = init::normal_like(1024, dim, 2);
    let aggregator = Aggregator::Sum;
    for &(k, k_prime) in &[(64usize, 2usize), (256, 4), (1024, 8)] {
        let neighbors: Vec<VertexId> = (0..k as u32).map(VertexId).collect();
        let weights = vec![1.0f32; k];
        group.bench_with_input(
            BenchmarkId::new("rc_full_reaggregate", format!("k={k}")),
            &k,
            |b, _| {
                b.iter(|| {
                    black_box(aggregator.aggregate(
                        black_box(&table),
                        black_box(&neighbors),
                        black_box(&weights),
                    ))
                })
            },
        );
        let deltas: Vec<Vec<f32>> = (0..k_prime)
            .map(|i| table.row(i).iter().map(|x| x * 0.01).collect())
            .collect();
        group.bench_with_input(
            BenchmarkId::new("ripple_apply_deltas", format!("kprime={k_prime}_k={k}")),
            &k_prime,
            |b, _| {
                b.iter(|| {
                    let mut mailbox = MailboxSet::new(1);
                    for d in &deltas {
                        mailbox.deposit(1, VertexId(0), 1.0, black_box(d));
                    }
                    let mut agg = table.row(0).to_vec();
                    for (_, delta) in mailbox.take_hop(1) {
                        ripple_tensor::add_assign(&mut agg, &delta);
                    }
                    black_box(agg)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_incremental_vs_full);
criterion_main!(benches);
