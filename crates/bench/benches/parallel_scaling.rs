//! Thread-scaling of the parallel Ripple engine: per-batch processing cost
//! of the serial engine vs [`ripple_core::ParallelRippleEngine`] at 2/4/8
//! workers on a Criterion-sized medium synthetic graph (8k vertices, avg
//! in-degree 10, batch size 200 — large enough that every hop's affected
//! frontier dwarfs the pool's spawn cost, small enough for repeated
//! sampling; the fig9 harness sweep uses the larger `scaling_cell` in
//! `src/experiments.rs`).
//!
//! On a multi-core host the parallel rows should beat the serial row from 2
//! threads up, approaching the core count for the compute-bound fraction; on
//! a single core the rows only measure pool overhead. Either way the
//! embeddings are bit-identical, which `tests/parallel_determinism.rs`
//! asserts separately.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ripple_bench::BenchScenario;
use ripple_gnn::Workload;
use std::hint::black_box;

fn bench_parallel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling_medium_batch200");
    group.sample_size(10);
    let scenario = BenchScenario::new(8_000, 10.0, 32, Workload::GcS, 2, 200, 1);
    let batch = scenario.batches[0].clone();

    group.bench_function("serial", |b| {
        b.iter_batched(
            || scenario.ripple_engine(),
            |mut e| black_box(e.process_batch(&batch).unwrap()),
            criterion::BatchSize::LargeInput,
        )
    });
    for threads in [2usize, 4, 8] {
        group.bench_function(BenchmarkId::new("parallel", threads), |b| {
            b.iter_batched(
                || scenario.parallel_ripple_engine(threads),
                |mut e| black_box(e.process_batch(&batch).unwrap()),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
