//! Bench form of Fig 12/Fig 13: distributed Ripple vs distributed RC batch
//! processing on a Papers-like graph partitioned 4 and 8 ways.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ripple_bench::BenchScenario;
use ripple_dist::{DistRecomputeEngine, DistRippleEngine, NetworkModel};
use ripple_gnn::Workload;
use ripple_graph::partition::{LdgPartitioner, Partitioner};
use std::hint::black_box;

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_distributed_batch100");
    group.sample_size(10);
    let scenario = BenchScenario::new(3000, 8.0, 16, Workload::GcS, 3, 100, 1);
    let batch = scenario.batches[0].clone();
    for parts in [4usize, 8] {
        let partitioning = LdgPartitioner::new()
            .partition(&scenario.snapshot, parts)
            .expect("partitioning");
        group.bench_function(BenchmarkId::new("dist_rc", parts), |b| {
            b.iter_batched(
                || {
                    DistRecomputeEngine::new(
                        &scenario.snapshot,
                        scenario.model.clone(),
                        &scenario.store,
                        partitioning.clone(),
                        NetworkModel::ten_gbe(),
                    )
                    .expect("engine")
                },
                |mut e| black_box(e.process_batch(&batch).unwrap()),
                criterion::BatchSize::LargeInput,
            )
        });
        group.bench_function(BenchmarkId::new("dist_ripple", parts), |b| {
            b.iter_batched(
                || {
                    DistRippleEngine::new(
                        &scenario.snapshot,
                        scenario.model.clone(),
                        &scenario.store,
                        partitioning.clone(),
                        NetworkModel::ten_gbe(),
                    )
                    .expect("engine")
                },
                |mut e| black_box(e.process_batch(&batch).unwrap()),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distributed);
criterion_main!(benches);
