//! Throughput of the batched compute kernels against the per-vertex path:
//! register-blocked `gemm_into` vs a row-at-a-time matvec loop, and batched
//! `full_inference` vs the `full_inference_per_vertex` reference, swept over
//! hidden dimensions 16/64/256. The two paths are bit-identical
//! (`tests/kernel_parity.rs`), so this bench isolates the pure throughput
//! effect of batching: register-tile operand reuse and the removal of
//! per-vertex dispatch overhead.
//!
//! When the `RIPPLE_KERNEL_JSON` environment variable names a file, the
//! bench additionally times the `full_inference` and GEMM comparisons with
//! plain wall-clock repetitions and writes the rows (including the
//! batched-over-per-vertex speedup) as the `BENCH_kernels.json` artifact CI
//! uploads next to `BENCH_parallel.json`. The artifact records the detected
//! core count and the active/detected SIMD tiers, and adds a `simd_gemm`
//! section comparing the forced-scalar kernels against the active tier —
//! with a speedup *floor* asserted only when the environment actually has a
//! SIMD tier to spend (never on a scalar-only host, so a 1-core scalar
//! runner can't silently upload numbers that look like a regression).

use criterion::{criterion_group, BenchmarkId, Criterion};
use ripple_gnn::layer_wise::{full_inference, full_inference_per_vertex};
use ripple_gnn::{Aggregator, GnnModel, LayerKind};
use ripple_graph::synth::DatasetSpec;
use ripple_graph::DynamicGraph;
use ripple_tensor::{init, ops, simd, Matrix, SimdTier};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Hidden widths swept by both comparisons (the paper's models span 16–602).
const HIDDEN_DIMS: [usize; 3] = [16, 64, 256];

/// Rows of the GEMM operand sweep (a mid-sized frontier).
const GEMM_ROWS: usize = 512;

/// A bootstrap-shaped scenario: power-law graph plus a 2-layer GraphConv/sum
/// model with the requested hidden width.
fn scenario(hidden_dim: usize) -> (DynamicGraph, GnnModel) {
    let graph = DatasetSpec::custom(2_000, 8.0, 16, 8)
        .generate(42)
        .expect("dataset");
    let model = GnnModel::new(
        LayerKind::GraphConv,
        Aggregator::Sum,
        &[16, hidden_dim, 8],
        7,
    )
    .expect("model");
    (graph, model)
}

fn bench_gemm_vs_matvec(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_vs_matvec_512rows");
    group.sample_size(10);
    for dim in HIDDEN_DIMS {
        let a = init::uniform(GEMM_ROWS, dim, -1.0, 1.0, 1);
        let w = init::uniform(dim, dim, -1.0, 1.0, 2);
        group.bench_with_input(BenchmarkId::new("matvec_per_row", dim), &dim, |b, _| {
            let mut out = vec![0.0f32; dim];
            b.iter(|| {
                for i in 0..GEMM_ROWS {
                    ops::row_matmul_into(a.row(i), &w, &mut out).unwrap();
                }
                black_box(out[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("gemm_batched", dim), &dim, |b, _| {
            let mut out = Matrix::default();
            b.iter(|| {
                ops::gemm_into(&a, &w, &mut out).unwrap();
                black_box(out.as_slice()[0])
            })
        });
    }
    group.finish();
}

fn bench_full_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_inference_2k_vertices");
    group.sample_size(10);
    for dim in HIDDEN_DIMS {
        let (graph, model) = scenario(dim);
        group.bench_with_input(BenchmarkId::new("per_vertex", dim), &dim, |b, _| {
            b.iter(|| black_box(full_inference_per_vertex(&graph, &model).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("batched", dim), &dim, |b, _| {
            b.iter(|| black_box(full_inference(&graph, &model).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm_vs_matvec, bench_full_inference);

/// Mean wall-clock seconds of `f` over `reps` timed repetitions (after one
/// warm-up run).
fn time_mean(reps: u32, mut f: impl FnMut()) -> f64 {
    f();
    let mut total = Duration::ZERO;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        total += start.elapsed();
    }
    total.as_secs_f64() / f64::from(reps)
}

/// Interleaved A/B timing: alternates one pass of each side per round and
/// reports per-side medians, so machine noise hits both sides equally.
fn time_interleaved(rounds: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    a();
    b(); // warm-up
    let mut a_times = Vec::with_capacity(rounds);
    let mut b_times = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        a();
        a_times.push(start.elapsed());
        let start = Instant::now();
        b();
        b_times.push(start.elapsed());
    }
    let median = |times: &mut Vec<Duration>| {
        times.sort_unstable();
        times[times.len() / 2].as_secs_f64()
    };
    (median(&mut a_times), median(&mut b_times))
}

/// Dense-GEMM speedup floor asserted for the active SIMD tier over the
/// forced-scalar kernels (only on hardware that *has* a non-scalar tier).
/// The 8-lane AVX2 / 4-lane NEON tiles should clear this comfortably at the
/// swept dims; the floor is deliberately below the ~2x target so CI noise
/// doesn't flake the job.
const SIMD_GEMM_FLOOR: f64 = 1.5;

/// The forced-scalar vs active-tier GEMM comparison (`simd_gemm` section).
/// Returns the JSON rows and asserts the floor when a SIMD tier is active.
fn simd_gemm_rows() -> Vec<String> {
    let tier = simd::active_tier();
    let mut rows = Vec::new();
    for dim in HIDDEN_DIMS {
        let a = init::uniform(GEMM_ROWS, dim, -1.0, 1.0, 1);
        let w = init::uniform(dim, dim, -1.0, 1.0, 2);
        let mut out_scalar = Matrix::default();
        let mut out_simd = Matrix::default();
        let (scalar, simd_time) = time_interleaved(
            30,
            || {
                simd::force_tier(Some(SimdTier::Scalar));
                ops::gemm_into(&a, &w, &mut out_scalar).unwrap();
                black_box(out_scalar.as_slice()[0]);
            },
            || {
                simd::force_tier(None);
                ops::gemm_into(&a, &w, &mut out_simd).unwrap();
                black_box(out_simd.as_slice()[0]);
            },
        );
        simd::force_tier(None);
        // The tiers must agree bit for bit — the whole point of the design.
        assert_eq!(
            out_scalar.as_slice(),
            out_simd.as_slice(),
            "scalar and {tier} GEMM diverged at dim {dim}"
        );
        let speedup = scalar / simd_time;
        if tier != SimdTier::Scalar {
            assert!(
                speedup >= SIMD_GEMM_FLOOR,
                "{tier} GEMM speedup {speedup:.2}x below the {SIMD_GEMM_FLOOR}x floor at dim {dim}"
            );
        }
        rows.push(format!(
            "    {{\"section\": \"simd_gemm\", \"hidden_dim\": {dim}, \"tier\": \"{tier}\", \
             \"scalar_ms\": {:.4}, \"simd_ms\": {:.4}, \"speedup\": {:.3}}}",
            scalar * 1e3,
            simd_time * 1e3,
            speedup
        ));
    }
    rows
}

/// Writes the `BENCH_kernels.json` artifact (hand-rolled: the offline serde
/// shim has no serialiser).
fn write_kernels_json(path: &str) {
    let mut rows = Vec::new();
    for dim in HIDDEN_DIMS {
        let (graph, model) = scenario(dim);
        let per_vertex = time_mean(5, || {
            drop(black_box(
                full_inference_per_vertex(&graph, &model).unwrap(),
            ))
        });
        let batched = time_mean(5, || {
            drop(black_box(full_inference(&graph, &model).unwrap()))
        });
        rows.push(format!(
            "    {{\"section\": \"full_inference\", \"hidden_dim\": {dim}, \
             \"per_vertex_ms\": {:.4}, \"batched_ms\": {:.4}, \"speedup\": {:.3}}}",
            per_vertex * 1e3,
            batched * 1e3,
            per_vertex / batched
        ));
    }
    for dim in HIDDEN_DIMS {
        let a = init::uniform(GEMM_ROWS, dim, -1.0, 1.0, 1);
        let w = init::uniform(dim, dim, -1.0, 1.0, 2);
        let mut row_out = vec![0.0f32; dim];
        let matvec = time_mean(20, || {
            for i in 0..GEMM_ROWS {
                ops::row_matmul_into(a.row(i), &w, &mut row_out).unwrap();
            }
            black_box(row_out[0]);
        });
        let mut out = Matrix::default();
        let gemm = time_mean(20, || {
            ops::gemm_into(&a, &w, &mut out).unwrap();
            black_box(out.as_slice()[0]);
        });
        rows.push(format!(
            "    {{\"section\": \"gemm_vs_matvec\", \"hidden_dim\": {dim}, \
             \"matvec_ms\": {:.4}, \"gemm_ms\": {:.4}, \"speedup\": {:.3}}}",
            matvec * 1e3,
            gemm * 1e3,
            matvec / gemm
        ));
    }
    rows.extend(simd_gemm_rows());
    let json = format!(
        "{{\n  \"experiment\": \"kernel_throughput\",\n  \"simd_tier\": \"{}\",\n  \
         \"detected_tier\": \"{}\",\n  \"cores\": {},\n  \
         \"simd_floor_asserted\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        simd::active_tier(),
        simd::detected_tier(),
        simd::detected_cores(),
        simd::active_tier() != SimdTier::Scalar,
        rows.join(",\n")
    );
    std::fs::write(path, &json).expect("writing kernel JSON");
    println!("wrote {path}:\n{json}");
}

fn main() {
    benches();
    if let Ok(path) = std::env::var("RIPPLE_KERNEL_JSON") {
        if !path.is_empty() {
            write_kernels_json(&path);
        }
    }
}
