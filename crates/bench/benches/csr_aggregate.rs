//! Sparse-phase throughput: the Vec-list neighbour walk vs the CSR stream.
//!
//! The aggregation phase of bootstrap inference (and of every frontier
//! re-evaluation) pulls each vertex's in-neighbour ids and weights and folds
//! the matching embedding rows into an accumulator. With [`DynamicGraph`]
//! each vertex's lists are separate heap `Vec`s (two dependent pointer loads
//! per vertex before the stream starts); a CSR view serves the same slices
//! out of two flat arrays, so consecutive vertices read consecutive memory —
//! the layout DistDGL-style systems use for their sparse throughput. The
//! two walks are bit-identical (`tests/csr_parity.rs`), so this bench
//! isolates the pure layout effect at mean degrees 4/16/64.
//!
//! When the `RIPPLE_CSR_JSON` environment variable names a file, the bench
//! re-times both walks with plain wall-clock repetitions and writes the rows
//! (including the CSR-over-Vec speedup) as the `BENCH_csr.json` artifact CI
//! uploads next to `BENCH_kernels.json` and `BENCH_serve.json`.

use criterion::{criterion_group, BenchmarkId, Criterion};
use ripple_gnn::Aggregator;
use ripple_graph::synth::DatasetSpec;
use ripple_graph::{CsrGraph, DynamicGraph, GraphView, VertexId};
use ripple_tensor::{init, Matrix};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Mean in-degrees swept (the paper's datasets span ~3–60).
const DEGREES: [usize; 3] = [4, 16, 64];
/// Vertices per scenario graph.
const VERTICES: usize = 2_000;
/// Embedding width of the aggregated table.
const DIM: usize = 8;

/// The streaming steady state the engines actually compare: a dynamic graph
/// that has absorbed churn (its per-vertex `Vec`s reallocated and reordered
/// by `push`/`swap_remove`, fragmenting the heap the way any real update
/// stream does) versus the compacted CSR snapshot of the same topology. A
/// freshly generated graph's `Vec`s happen to sit almost sequentially in
/// the heap, which would flatter the list walk.
fn scenario(degree: usize) -> (DynamicGraph, CsrGraph, Matrix) {
    let mut graph = DatasetSpec::custom(VERTICES, degree as f64, 8, 4)
        .generate_weighted(1729 + degree as u64, true)
        .expect("dataset");
    // Churn ~30% of the edge count: delete existing edges, add fresh ones.
    let mut state = 0x2545f4914f6cdd1du64 ^ degree as u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let churn = graph.num_edges() * 3 / 10;
    for _ in 0..churn {
        let u = VertexId((next() % VERTICES as u64) as u32);
        let v = VertexId((next() % VERTICES as u64) as u32);
        if u == v {
            continue;
        }
        if graph.has_edge(u, v) {
            graph.remove_edge(u, v).expect("edge exists");
        } else {
            let w = (next() % 5) as f32 * 0.5 + 0.5;
            graph.add_edge(u, v, w).expect("vertices exist");
        }
    }
    let csr = graph.to_csr();
    let table = init::uniform(VERTICES, DIM, -1.0, 1.0, 7);
    (graph, csr, table)
}

/// One full sparse phase: the raw aggregate of every vertex, streamed
/// through `view`'s adjacency slices.
fn sparse_phase<G: GraphView>(view: &G, table: &Matrix, out: &mut [f32]) -> f32 {
    let aggregator = Aggregator::WeightedSum;
    let mut checksum = 0.0f32;
    for v in 0..view.num_vertices() as u32 {
        let (neighbors, weights) = view.in_adjacency(VertexId(v));
        aggregator.raw_aggregate_into(table, neighbors, weights, out);
        checksum += out[0];
    }
    checksum
}

fn bench_csr_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_aggregate_2k_vertices");
    group.sample_size(10);
    for degree in DEGREES {
        let (graph, csr, table) = scenario(degree);
        group.bench_with_input(
            BenchmarkId::new("vec_list_walk", degree),
            &degree,
            |b, _| {
                let mut out = vec![0.0f32; DIM];
                b.iter(|| black_box(sparse_phase(&graph, &table, &mut out)))
            },
        );
        group.bench_with_input(BenchmarkId::new("csr_stream", degree), &degree, |b, _| {
            let mut out = vec![0.0f32; DIM];
            b.iter(|| black_box(sparse_phase(&csr, &table, &mut out)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_csr_aggregate);

/// Interleaved A/B timing: alternates one pass of each side per round so
/// machine noise (a noisy shared core, frequency drift) hits both equally,
/// then reports the per-side **median** round, which shrugs off outliers
/// that a mean would absorb. Returns `(a_seconds, b_seconds)`.
fn time_interleaved(rounds: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    a();
    b(); // warm-up
    let mut a_times = Vec::with_capacity(rounds);
    let mut b_times = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        a();
        a_times.push(start.elapsed());
        let start = Instant::now();
        b();
        b_times.push(start.elapsed());
    }
    let median = |times: &mut Vec<Duration>| {
        times.sort_unstable();
        times[times.len() / 2].as_secs_f64()
    };
    (median(&mut a_times), median(&mut b_times))
}

/// Writes the `BENCH_csr.json` artifact (hand-rolled: the offline serde shim
/// has no serialiser).
fn write_csr_json(path: &str) {
    let mut rows = Vec::new();
    for degree in DEGREES {
        let (graph, csr, table) = scenario(degree);
        let mut out_a = vec![0.0f32; DIM];
        let mut out_b = vec![0.0f32; DIM];
        // More rounds at low degree, where a single pass is fast and noisy.
        let rounds = (512 / degree.max(1)).clamp(15, 60);
        let (vec_walk, csr_stream) = time_interleaved(
            rounds,
            || {
                black_box(sparse_phase(&graph, &table, &mut out_a));
            },
            || {
                black_box(sparse_phase(&csr, &table, &mut out_b));
            },
        );
        rows.push(format!(
            "    {{\"section\": \"sparse_aggregate\", \"mean_degree\": {degree}, \
             \"vertices\": {VERTICES}, \"dim\": {DIM}, \"edges\": {}, \
             \"vec_list_ms\": {:.4}, \"csr_stream_ms\": {:.4}, \"speedup\": {:.3}}}",
            csr.num_edges(),
            vec_walk * 1e3,
            csr_stream * 1e3,
            vec_walk / csr_stream
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"csr_aggregate\",\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(path, &json).expect("writing CSR JSON");
    println!("wrote {path}:\n{json}");
}

fn main() {
    benches();
    if let Ok(path) = std::env::var("RIPPLE_CSR_JSON") {
        if !path.is_empty() {
            write_csr_json(&path);
        }
    }
}
