//! Sparse-phase throughput: the Vec-list neighbour walk vs the CSR stream.
//!
//! The aggregation phase of bootstrap inference (and of every frontier
//! re-evaluation) pulls each vertex's in-neighbour ids and weights and folds
//! the matching embedding rows into an accumulator. With [`DynamicGraph`]
//! each vertex's lists are separate heap `Vec`s (two dependent pointer loads
//! per vertex before the stream starts); a CSR view serves the same slices
//! out of two flat arrays, so consecutive vertices read consecutive memory —
//! the layout DistDGL-style systems use for their sparse throughput. The
//! two walks are bit-identical (`tests/csr_parity.rs`), so this bench
//! isolates the pure layout effect at mean degrees 4/16/64.
//!
//! When the `RIPPLE_CSR_JSON` environment variable names a file, the bench
//! re-times both walks with plain wall-clock repetitions and writes the rows
//! (including the CSR-over-Vec speedup) as the `BENCH_csr.json` artifact CI
//! uploads next to `BENCH_kernels.json` and `BENCH_serve.json`. The artifact
//! records the detected core count and SIMD tier, and adds a `simd_sparse`
//! section comparing the forced-scalar sparse phase against the active tier
//! (SIMD `axpy` + software prefetch of upcoming neighbour rows) — with a
//! speedup floor asserted at mean degree ≥ 16 only when the environment has
//! a non-scalar tier, so a scalar-only runner reports honestly instead of
//! silently uploading numbers with no SIMD in them.

use criterion::{criterion_group, BenchmarkId, Criterion};
use ripple_gnn::Aggregator;
use ripple_graph::synth::DatasetSpec;
use ripple_graph::{CsrGraph, DynamicGraph, GraphView, VertexId};
use ripple_tensor::{init, simd, Matrix, SimdTier};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Mean in-degrees swept (the paper's datasets span ~3–60).
const DEGREES: [usize; 3] = [4, 16, 64];
/// Vertices per scenario graph.
const VERTICES: usize = 2_000;
/// Embedding width of the aggregated table.
const DIM: usize = 8;

/// Sparse-phase speedup floor (active tier vs forced scalar) asserted at
/// mean degree ≥ 16 on SIMD-capable hardware. The gather-latency win from
/// prefetch plus the lane-parallel `axpy` comfortably clears this; the floor
/// stays modest because the sparse phase is memory-bound, not compute-bound.
const SIMD_SPARSE_FLOOR: f64 = 1.05;
/// The degree at which the sparse-phase floor starts being asserted —
/// below this the rows are too short for prefetch to matter.
const SIMD_SPARSE_FLOOR_DEGREE: usize = 16;
/// Vertices in the `simd_sparse` scenario. The legacy 2k x dim-8 table is
/// 64 KiB — fully cache-resident, so it cannot exhibit the gather-latency
/// stall prefetch exists to hide (prefetching L1-resident rows is pure
/// overhead). The SIMD comparison therefore uses a table well past L2:
/// 40k x 32 x 4 B = 5 MiB, the shape where embedding gathers actually miss.
const SIMD_VERTICES: usize = 40_000;
/// Embedding width of the `simd_sparse` scenario (serving models span
/// 16–602; 32 keeps the bench fast while exceeding a cache line per row).
const SIMD_DIM: usize = 32;

/// The streaming steady state the engines actually compare: a dynamic graph
/// that has absorbed churn (its per-vertex `Vec`s reallocated and reordered
/// by `push`/`swap_remove`, fragmenting the heap the way any real update
/// stream does) versus the compacted CSR snapshot of the same topology. A
/// freshly generated graph's `Vec`s happen to sit almost sequentially in
/// the heap, which would flatter the list walk.
fn scenario(degree: usize) -> (DynamicGraph, CsrGraph, Matrix) {
    let mut graph = DatasetSpec::custom(VERTICES, degree as f64, 8, 4)
        .generate_weighted(1729 + degree as u64, true)
        .expect("dataset");
    // Churn ~30% of the edge count: delete existing edges, add fresh ones.
    let mut state = 0x2545f4914f6cdd1du64 ^ degree as u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let churn = graph.num_edges() * 3 / 10;
    for _ in 0..churn {
        let u = VertexId((next() % VERTICES as u64) as u32);
        let v = VertexId((next() % VERTICES as u64) as u32);
        if u == v {
            continue;
        }
        if graph.has_edge(u, v) {
            graph.remove_edge(u, v).expect("edge exists");
        } else {
            let w = (next() % 5) as f32 * 0.5 + 0.5;
            graph.add_edge(u, v, w).expect("vertices exist");
        }
    }
    let csr = graph.to_csr();
    let table = init::uniform(VERTICES, DIM, -1.0, 1.0, 7);
    (graph, csr, table)
}

/// One full sparse phase: the raw aggregate of every vertex, streamed
/// through `view`'s adjacency slices.
fn sparse_phase<G: GraphView>(view: &G, table: &Matrix, out: &mut [f32]) -> f32 {
    let aggregator = Aggregator::WeightedSum;
    let mut checksum = 0.0f32;
    for v in 0..view.num_vertices() as u32 {
        let (neighbors, weights) = view.in_adjacency(VertexId(v));
        aggregator.raw_aggregate_into(table, neighbors, weights, out);
        checksum += out[0];
    }
    checksum
}

fn bench_csr_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_aggregate_2k_vertices");
    group.sample_size(10);
    for degree in DEGREES {
        let (graph, csr, table) = scenario(degree);
        group.bench_with_input(
            BenchmarkId::new("vec_list_walk", degree),
            &degree,
            |b, _| {
                let mut out = vec![0.0f32; DIM];
                b.iter(|| black_box(sparse_phase(&graph, &table, &mut out)))
            },
        );
        group.bench_with_input(BenchmarkId::new("csr_stream", degree), &degree, |b, _| {
            let mut out = vec![0.0f32; DIM];
            b.iter(|| black_box(sparse_phase(&csr, &table, &mut out)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_csr_aggregate);

/// Interleaved A/B timing: alternates one pass of each side per round so
/// machine noise (a noisy shared core, frequency drift) hits both equally,
/// then reports the per-side **median** round, which shrugs off outliers
/// that a mean would absorb. Returns `(a_seconds, b_seconds)`.
fn time_interleaved(rounds: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    a();
    b(); // warm-up
    let mut a_times = Vec::with_capacity(rounds);
    let mut b_times = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let start = Instant::now();
        a();
        a_times.push(start.elapsed());
        let start = Instant::now();
        b();
        b_times.push(start.elapsed());
    }
    let median = |times: &mut Vec<Duration>| {
        times.sort_unstable();
        times[times.len() / 2].as_secs_f64()
    };
    (median(&mut a_times), median(&mut b_times))
}

/// Writes the `BENCH_csr.json` artifact (hand-rolled: the offline serde shim
/// has no serialiser).
fn write_csr_json(path: &str) {
    let mut rows = Vec::new();
    for degree in DEGREES {
        let (graph, csr, table) = scenario(degree);
        let mut out_a = vec![0.0f32; DIM];
        let mut out_b = vec![0.0f32; DIM];
        // More rounds at low degree, where a single pass is fast and noisy.
        let rounds = (512 / degree.max(1)).clamp(15, 60);
        let (vec_walk, csr_stream) = time_interleaved(
            rounds,
            || {
                black_box(sparse_phase(&graph, &table, &mut out_a));
            },
            || {
                black_box(sparse_phase(&csr, &table, &mut out_b));
            },
        );
        rows.push(format!(
            "    {{\"section\": \"sparse_aggregate\", \"mean_degree\": {degree}, \
             \"vertices\": {VERTICES}, \"dim\": {DIM}, \"edges\": {}, \
             \"vec_list_ms\": {:.4}, \"csr_stream_ms\": {:.4}, \"speedup\": {:.3}}}",
            csr.num_edges(),
            vec_walk * 1e3,
            csr_stream * 1e3,
            vec_walk / csr_stream
        ));
    }
    rows.extend(simd_sparse_rows());
    let json = format!(
        "{{\n  \"experiment\": \"csr_aggregate\",\n  \"simd_tier\": \"{}\",\n  \
         \"detected_tier\": \"{}\",\n  \"cores\": {},\n  \
         \"simd_floor_asserted\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
        simd::active_tier(),
        simd::detected_tier(),
        simd::detected_cores(),
        simd::active_tier() != SimdTier::Scalar,
        rows.join(",\n")
    );
    std::fs::write(path, &json).expect("writing CSR JSON");
    println!("wrote {path}:\n{json}");
}

/// The `simd_sparse` scenario: a [`SIMD_VERTICES`] x [`SIMD_DIM`] embedding
/// table (past L2, so neighbour gathers genuinely miss) and the CSR stream
/// of a power-law graph at the requested mean degree. No churn pass — the
/// comparison never touches the Vec-list layout, only the CSR snapshot.
fn simd_scenario(degree: usize) -> (CsrGraph, Matrix) {
    let graph = DatasetSpec::custom(SIMD_VERTICES, degree as f64, 8, 4)
        .generate_weighted(9191 + degree as u64, true)
        .expect("dataset");
    let csr = graph.to_csr();
    let table = init::uniform(SIMD_VERTICES, SIMD_DIM, -1.0, 1.0, 7);
    (csr, table)
}

/// The forced-scalar vs active-tier CSR sparse phase (`simd_sparse`
/// section): same graph, same CSR stream, only the kernel tier (and with it
/// the neighbour-row prefetch) differs. Asserts bit-identical accumulates
/// and, at mean degree ≥ [`SIMD_SPARSE_FLOOR_DEGREE`] on SIMD-capable
/// hardware, the [`SIMD_SPARSE_FLOOR`] speedup.
fn simd_sparse_rows() -> Vec<String> {
    let tier = simd::active_tier();
    let mut rows = Vec::new();
    for degree in DEGREES {
        let (csr, table) = simd_scenario(degree);
        let mut out_scalar = vec![0.0f32; SIMD_DIM];
        let mut out_simd = vec![0.0f32; SIMD_DIM];
        let rounds = (256 / degree.max(1)).clamp(9, 31);
        let (scalar, simd_time) = time_interleaved(
            rounds,
            || {
                simd::force_tier(Some(SimdTier::Scalar));
                black_box(sparse_phase(&csr, &table, &mut out_scalar));
            },
            || {
                simd::force_tier(None);
                black_box(sparse_phase(&csr, &table, &mut out_simd));
            },
        );
        simd::force_tier(None);
        assert_eq!(
            out_scalar, out_simd,
            "scalar and {tier} sparse phases diverged at degree {degree}"
        );
        let speedup = scalar / simd_time;
        if tier != SimdTier::Scalar && degree >= SIMD_SPARSE_FLOOR_DEGREE {
            assert!(
                speedup >= SIMD_SPARSE_FLOOR,
                "{tier} sparse-phase speedup {speedup:.2}x below the \
                 {SIMD_SPARSE_FLOOR}x floor at degree {degree}"
            );
        }
        rows.push(format!(
            "    {{\"section\": \"simd_sparse\", \"mean_degree\": {degree}, \
             \"vertices\": {SIMD_VERTICES}, \"dim\": {SIMD_DIM}, \"tier\": \"{tier}\", \
             \"scalar_ms\": {:.4}, \"simd_ms\": {:.4}, \"speedup\": {:.3}}}",
            scalar * 1e3,
            simd_time * 1e3,
            speedup
        ));
    }
    rows
}

fn main() {
    benches();
    if let Ok(path) = std::env::var("RIPPLE_CSR_JSON") {
        if !path.is_empty() {
            write_csr_json(&path);
        }
    }
}
