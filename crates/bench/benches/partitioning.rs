//! Benchmarks the METIS stand-in partitioners (hash, LDG, BFS region
//! growing) used by the distributed experiments (paper §5.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ripple_graph::partition::{BfsPartitioner, HashPartitioner, LdgPartitioner, Partitioner};
use ripple_graph::synth::DatasetSpec;
use std::hint::black_box;

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioning");
    group.sample_size(10);
    let graph = DatasetSpec::custom(5_000, 8.0, 4, 4)
        .generate(5)
        .expect("graph");
    for parts in [4usize, 16] {
        group.bench_with_input(BenchmarkId::new("hash", parts), &parts, |b, &p| {
            b.iter(|| black_box(HashPartitioner::new().partition(&graph, p).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("ldg", parts), &parts, |b, &p| {
            b.iter(|| black_box(LdgPartitioner::new().partition(&graph, p).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("bfs", parts), &parts, |b, &p| {
            b.iter(|| black_box(BfsPartitioner::new().partition(&graph, p).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
