//! Shared fixtures for the Criterion benchmark harness.
//!
//! Each bench target regenerates (a scaled-down version of) one of the
//! paper's tables/figures or micro-benchmarks one of the core primitives.
//! The fixtures here keep graph sizes small enough for Criterion's repeated
//! sampling while preserving the relative ordering of the strategies.

use ripple_core::{ParallelRippleEngine, RippleConfig, RippleEngine};
use ripple_gnn::layer_wise::full_inference;
use ripple_gnn::recompute::{RecomputeConfig, RecomputeEngine};
use ripple_gnn::{EmbeddingStore, GnnModel, Workload};
use ripple_graph::stream::{build_stream, StreamConfig};
use ripple_graph::synth::DatasetSpec;
use ripple_graph::{DynamicGraph, UpdateBatch};

/// A bootstrapped benchmark scenario: snapshot, model, embeddings and a
/// pre-batched update stream.
pub struct BenchScenario {
    /// Initial snapshot graph.
    pub snapshot: DynamicGraph,
    /// Model under test.
    pub model: GnnModel,
    /// Bootstrap embeddings of the snapshot.
    pub store: EmbeddingStore,
    /// Update batches to replay.
    pub batches: Vec<UpdateBatch>,
}

impl BenchScenario {
    /// Builds a scenario over a power-law graph.
    ///
    /// # Panics
    ///
    /// Panics on generation/inference failures (benchmarks treat these as
    /// fatal).
    pub fn new(
        num_vertices: usize,
        avg_in_degree: f64,
        feature_dim: usize,
        workload: Workload,
        num_layers: usize,
        batch_size: usize,
        num_batches: usize,
    ) -> Self {
        let spec = DatasetSpec::custom(num_vertices, avg_in_degree, feature_dim, 8);
        let full = spec
            .generate_weighted(42, workload.needs_edge_weights())
            .expect("dataset");
        let plan = build_stream(
            &full,
            &StreamConfig {
                holdout_fraction: 0.1,
                total_updates: batch_size * num_batches,
                seed: 7,
            },
        )
        .expect("stream");
        let model = workload
            .build_model(feature_dim, 32, 8, num_layers, 3)
            .expect("model");
        let store = full_inference(&plan.snapshot, &model).expect("bootstrap");
        let batches = plan.batches(batch_size);
        BenchScenario {
            snapshot: plan.snapshot,
            model,
            store,
            batches,
        }
    }

    /// A fresh Ripple engine over this scenario's bootstrap state.
    pub fn ripple_engine(&self) -> RippleEngine {
        RippleEngine::new(
            self.snapshot.clone(),
            self.model.clone(),
            self.store.clone(),
            RippleConfig::default(),
        )
        .expect("ripple engine")
    }

    /// A fresh multi-threaded Ripple engine over this scenario's bootstrap
    /// state.
    pub fn parallel_ripple_engine(&self, threads: usize) -> ParallelRippleEngine {
        ParallelRippleEngine::new(
            self.snapshot.clone(),
            self.model.clone(),
            self.store.clone(),
            RippleConfig::default(),
            threads,
        )
        .expect("parallel ripple engine")
    }

    /// A fresh recompute engine (RC or DRC-style) over this scenario's
    /// bootstrap state.
    pub fn recompute_engine(&self, config: RecomputeConfig) -> RecomputeEngine {
        RecomputeEngine::new(
            self.snapshot.clone(),
            self.model.clone(),
            self.store.clone(),
            config,
        )
        .expect("recompute engine")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_builds_and_engines_process_batches() {
        let scenario = BenchScenario::new(200, 4.0, 8, Workload::GcS, 2, 10, 2);
        assert_eq!(scenario.batches.len(), 2);
        let mut ripple = scenario.ripple_engine();
        let mut rc = scenario.recompute_engine(RecomputeConfig::rc());
        ripple.process_batch(&scenario.batches[0]).unwrap();
        rc.process_batch(&scenario.batches[0]).unwrap();
    }
}
